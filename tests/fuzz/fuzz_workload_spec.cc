// Fuzz target: the workload-spec parser ("zipf,objects=...,skew=..."). A
// malformed spec must produce a soft error, never an aborting QDLP_CHECK
// inside a generator or an oversized allocation; the limits passed here cap
// whatever a hostile spec asks for.

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/trace/workload_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxSpec = 160;
  const std::string spec(reinterpret_cast<const char*>(data),
                         size < kMaxSpec ? size : kMaxSpec);

  qdlp::WorkloadSpecLimits limits;
  limits.max_requests = 4096;
  limits.max_objects = 4096;

  std::string error;
  const auto trace = qdlp::BuildWorkload(spec, &error, limits);
  if (trace.has_value()) {
    // The limits are a hard contract, not advice.
    if (trace->requests.size() > limits.max_requests) {
      __builtin_trap();
    }
  } else if (error.empty()) {
    __builtin_trap();  // failures must explain themselves
  }
  return 0;
}
