// Fuzz target: the three trace parsers (QDT1 binary, CSV, oracleGeneral)
// against arbitrary bytes. Parsers must reject malformed input with nullopt
// — never crash, over-allocate, or read out of bounds. Successfully parsed
// traces are additionally replayed through a small policy so the downstream
// contract (arbitrary ids are safe) is exercised too.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "src/core/policy_factory.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"

namespace {

constexpr size_t kMaxReplay = 4096;

void ReplayThroughPolicy(const qdlp::Trace& trace) {
  const auto policy = qdlp::MakePolicy("s3fifo", 32);
  const size_t limit = trace.requests.size() < kMaxReplay
                           ? trace.requests.size()
                           : kMaxReplay;
  for (size_t i = 0; i < limit; ++i) {
    policy->Access(trace.requests[i]);
  }
  policy->CheckInvariants();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string buffer(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream in(buffer);
    const auto trace = qdlp::ParseTraceBinary(in);
    if (trace.has_value()) {
      ReplayThroughPolicy(*trace);
    }
  }
  {
    std::istringstream in(buffer);
    const auto trace = qdlp::ParseTraceCsv(in);
    if (trace.has_value()) {
      ReplayThroughPolicy(*trace);
    }
  }
  {
    std::istringstream in(buffer);
    const auto trace = qdlp::ParseTraceOracleGeneral(in);
    if (trace.has_value()) {
      ReplayThroughPolicy(*trace);
    }
  }
  return 0;
}
