// Standalone driver for the fuzz entrypoints.
//
// Each fuzz target defines the libFuzzer ABI (LLVMFuzzerTestOneInput). When
// the toolchain has libFuzzer (clang, -DQDLP_LIBFUZZER=ON) the real fuzzer
// provides main() and this file is not compiled. GCC-only builds get this
// driver instead, with two modes:
//
//   <binary> FILE...        replay saved inputs (crash reproducers, corpus)
//   <binary> [--smoke [N]]  deterministic smoke run: N pseudo-random inputs
//                           (default 2000) in three flavours — raw bytes,
//                           QDT1-framed bytes, and printable spec-ish text —
//                           so every target gets plausible input shapes.
//
// The smoke mode is wired into ctest (label "fuzz"): it is not a fuzzer,
// but it keeps the entrypoints compiled, linked, and crash-free in CI.

#ifndef QDLP_LIBFUZZER

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/util/random.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int ReplayFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  std::printf("replayed %s (%zu bytes)\n", path, bytes.size());
  return 0;
}

void FillRandom(qdlp::Rng& rng, std::vector<uint8_t>& buffer, size_t length) {
  buffer.resize(length);
  for (size_t i = 0; i < length; ++i) {
    buffer[i] = static_cast<uint8_t>(rng.NextBounded(256));
  }
}

int SmokeRun(uint64_t iterations) {
  qdlp::Rng rng(0x51u);  // fixed seed: the smoke run is deterministic
  std::vector<uint8_t> buffer;
  constexpr char kSpecAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789,=.-";
  for (uint64_t i = 0; i < iterations; ++i) {
    switch (i % 3) {
      case 0:  // raw bytes
        FillRandom(rng, buffer, rng.NextBounded(513));
        break;
      case 1: {  // QDT1-framed: magic + count header + payload
        const uint64_t count = rng.NextBounded(64);
        FillRandom(rng, buffer, rng.NextBounded(count * 8 + 9));
        buffer.insert(buffer.begin(), reinterpret_cast<const uint8_t*>(&count),
                      reinterpret_cast<const uint8_t*>(&count) + 8);
        const uint8_t magic[4] = {'Q', 'D', 'T', '1'};
        buffer.insert(buffer.begin(), magic, magic + 4);
        break;
      }
      default: {  // printable workload-spec-ish text
        const size_t length = rng.NextBounded(65);
        buffer.resize(length);
        for (size_t j = 0; j < length; ++j) {
          buffer[j] = static_cast<uint8_t>(
              kSpecAlphabet[rng.NextBounded(sizeof(kSpecAlphabet) - 1)]);
        }
        break;
      }
    }
    LLVMFuzzerTestOneInput(buffer.data(), buffer.size());
  }
  std::printf("smoke: %llu inputs, no crash\n",
              static_cast<unsigned long long>(iterations));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) {
    return SmokeRun(2000);
  }
  if (std::strcmp(argv[1], "--smoke") == 0) {
    const uint64_t iterations =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;
    return SmokeRun(iterations);
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= ReplayFile(argv[i]);
  }
  return rc;
}

#endif  // !QDLP_LIBFUZZER
