// Fuzz target: the policy factory's name parser plus a short replay. An
// arbitrary name string must either resolve to a working policy or return
// nullptr — no crashes, no aborts (capacity is kept >= 2 so QD compositions
// are always legal). Resolved policies take a deterministic burst of
// accesses with periodic invariant validation.

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/policy_factory.h"
#include "src/util/random.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) {
    return 0;
  }
  const size_t capacity =
      2 + ((static_cast<size_t>(data[0]) | (static_cast<size_t>(data[1]) << 8)) %
           2048);
  constexpr size_t kMaxName = 48;
  const size_t name_length = (size - 2) < kMaxName ? (size - 2) : kMaxName;
  const std::string name(reinterpret_cast<const char*>(data + 2), name_length);

  // "belady" needs a trace; the factory must return nullptr, not crash.
  const auto policy = qdlp::MakePolicy(name, capacity);
  if (policy == nullptr) {
    return 0;
  }
  for (uint64_t i = 0; i < 512; ++i) {
    policy->Access(qdlp::SplitMix64(i) % (capacity * 4));
    if (i % 64 == 0) {
      policy->CheckInvariants();
    }
  }
  policy->CheckInvariants();
  return 0;
}
