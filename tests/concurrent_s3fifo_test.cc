// Concurrent S3-FIFO: sequential equivalence oracle + multi-thread stress.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_s3fifo.h"
#include "src/core/s3fifo.h"
#include "src/trace/generators.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

class S3FifoEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(S3FifoEquivalenceTest, SingleThreadMatchesSequentialPolicy) {
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 1000;
  config.skew = 0.9;
  config.seed = GetParam();
  const Trace trace = GenerateZipf(config);
  constexpr size_t kCapacity = 120;
  S3FifoPolicy sequential(kCapacity);
  ConcurrentS3FifoCache concurrent(kCapacity, 0.10, 0.9, 4);
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const ObjectId id = trace.requests[i];
    ASSERT_EQ(concurrent.Get(id), sequential.Access(id))
        << "diverged at request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, S3FifoEquivalenceTest,
                         ::testing::Values(801, 802, 803, 804));

TEST(ConcurrentS3FifoTest, CapacityBoundedUnderThreads) {
  constexpr size_t kCapacity = 1000;
  ConcurrentS3FifoCache cache(kCapacity, 0.10, 0.9, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + static_cast<uint64_t>(t));
      ZipfSampler zipf(20000, 1.0);
      for (int i = 0; i < 40000; ++i) {
        cache.Get(zipf.Sample(rng));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_GE(cache.size(), kCapacity / 2);  // steady state: mostly full
}

TEST(ConcurrentS3FifoTest, HitRatioSaneUnderThreads) {
  constexpr size_t kCapacity = 2000;
  ConcurrentS3FifoCache cache(kCapacity, 0.10, 0.9, 8);
  std::atomic<uint64_t> hits{0};
  constexpr int kThreads = 6;
  constexpr int kOps = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(910 + static_cast<uint64_t>(t));
      ZipfSampler zipf(10000, 1.0);
      uint64_t local = 0;
      for (int i = 0; i < kOps; ++i) {
        local += cache.Get(zipf.Sample(rng)) ? 1 : 0;
      }
      hits.fetch_add(local);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double hit_ratio = static_cast<double>(hits.load()) /
                           (static_cast<double>(kThreads) * kOps);
  EXPECT_GT(hit_ratio, 0.5);
  EXPECT_LT(hit_ratio, 0.99);
}

TEST(ConcurrentS3FifoTest, GhostPathWorks) {
  ConcurrentS3FifoCache cache(20, 0.10, 0.9, 2);
  cache.Get(1);
  // Flood so 1 is quick-demoted to the ghost, then returns via main.
  for (ObjectId id = 100; id < 140; ++id) {
    cache.Get(id);
  }
  EXPECT_FALSE(cache.Get(1));  // ghost hit is still a miss
  EXPECT_TRUE(cache.Get(1));   // but now resident (admitted into main)
}

}  // namespace
}  // namespace qdlp
