// LeCaR and CACHEUS: expert-weight behaviour and general sanity.

#include <gtest/gtest.h>

#include "src/policies/cacheus.h"
#include "src/policies/lecar.h"
#include "src/policies/lfu.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(LecarTest, BasicHitMissAndCapacity) {
  LecarPolicy lecar(4);
  EXPECT_FALSE(lecar.Access(1));
  EXPECT_FALSE(lecar.Access(2));
  EXPECT_TRUE(lecar.Access(1));
  for (ObjectId id = 10; id < 100; ++id) {
    lecar.Access(id);
    ASSERT_LE(lecar.size(), 4u);
  }
}

TEST(LecarTest, WeightsStayNormalized) {
  LecarPolicy lecar(8);
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 300;
  config.seed = 61;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    lecar.Access(id);
    ASSERT_GE(lecar.lru_weight(), 0.0);
    ASSERT_LE(lecar.lru_weight(), 1.0);
  }
}

TEST(LecarTest, LfuFriendlyWorkloadShiftsWeightAwayFromLru) {
  // Workload: a hot set accessed frequently plus a churning one-touch
  // stream. Evicting hot objects (which LRU's recency view tolerates once
  // the churn floods the list) is a mistake LeCaR should learn from.
  LecarPolicy lecar(50);
  Rng rng(63);
  ObjectId churn = 1u << 24;
  for (int i = 0; i < 60000; ++i) {
    if (rng.NextBool(0.4)) {
      lecar.Access(rng.NextBounded(30));  // hot, high frequency
    } else {
      lecar.Access(churn++);
    }
  }
  EXPECT_LT(lecar.lru_weight(), 0.5);
}

TEST(LecarTest, DeterministicForSeed) {
  const auto run = [] {
    LecarPolicy lecar(16);
    ZipfTraceConfig config;
    config.num_requests = 5000;
    config.num_objects = 100;
    config.seed = 65;
    const Trace trace = GenerateZipf(config);
    uint64_t hits = 0;
    for (const ObjectId id : trace.requests) {
      hits += lecar.Access(id) ? 1 : 0;
    }
    return hits;
  };
  EXPECT_EQ(run(), run());
}

TEST(CacheusTest, BasicHitMissAndCapacity) {
  CacheusPolicy cacheus(4);
  EXPECT_FALSE(cacheus.Access(1));
  EXPECT_TRUE(cacheus.Access(1));
  for (ObjectId id = 10; id < 100; ++id) {
    cacheus.Access(id);
    ASSERT_LE(cacheus.size(), 4u);
  }
}

TEST(CacheusTest, LearningRateStaysInBounds) {
  CacheusPolicy cacheus(32);
  ZipfTraceConfig config;
  config.num_requests = 50000;
  config.num_objects = 1000;
  config.seed = 67;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    cacheus.Access(id);
    ASSERT_GE(cacheus.learning_rate(), 1e-3);
    ASSERT_LE(cacheus.learning_rate(), 1.0);
  }
}

TEST(CacheusTest, LearningRateAdapts) {
  CacheusPolicy cacheus(32);
  ScanLoopConfig config;
  config.num_requests = 50000;
  config.hot_objects = 200;
  config.seed = 69;
  const Trace trace = GenerateScanLoop(config);
  const double initial = cacheus.learning_rate();
  bool changed = false;
  for (const ObjectId id : trace.requests) {
    cacheus.Access(id);
    if (cacheus.learning_rate() != initial) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(AdaptiveTest, NoWorseThanWorstExpertOnMixedWorkload) {
  // On a workload blending recency-friendly and frequency-friendly phases,
  // the adaptive combiners should land at least near the better expert.
  ZipfTraceConfig zipf_config;
  zipf_config.num_requests = 30000;
  zipf_config.num_objects = 600;
  zipf_config.skew = 0.8;
  zipf_config.seed = 71;
  const Trace trace = GenerateZipf(zipf_config);
  constexpr size_t kCapacity = 60;

  const auto hits_of = [&](EvictionPolicy& policy) {
    uint64_t hits = 0;
    for (const ObjectId id : trace.requests) {
      hits += policy.Access(id) ? 1 : 0;
    }
    return hits;
  };
  LruPolicy lru(kCapacity);
  LfuPolicy lfu(kCapacity);
  LecarPolicy lecar(kCapacity);
  CacheusPolicy cacheus(kCapacity);
  const uint64_t lru_hits = hits_of(lru);
  const uint64_t lfu_hits = hits_of(lfu);
  const uint64_t lecar_hits = hits_of(lecar);
  const uint64_t cacheus_hits = hits_of(cacheus);
  const uint64_t worst = std::min(lru_hits, lfu_hits);
  // Allow 10% slack: the combiner pays some exploration cost.
  EXPECT_GT(lecar_hits * 10, worst * 9);
  EXPECT_GT(cacheus_hits * 10, worst * 9);
}

}  // namespace
}  // namespace qdlp
