// CAR, MQ, LRU-K, W-TinyLFU, relaxed-promotion LRU variants, and the ARC
// adaptation knobs.

#include <gtest/gtest.h>

#include "src/policies/arc.h"
#include "src/policies/car.h"
#include "src/policies/lazy_lru.h"
#include "src/policies/lru.h"
#include "src/policies/lruk.h"
#include "src/policies/mq.h"
#include "src/policies/wtinylfu.h"
#include "src/trace/generators.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

// ---------- CAR ----------

TEST(CarTest, BasicHitMiss) {
  CarPolicy car(4);
  EXPECT_FALSE(car.Access(1));
  EXPECT_TRUE(car.Access(1));
  EXPECT_TRUE(car.Contains(1));
}

TEST(CarTest, InvariantsUnderMixedWorkload) {
  constexpr size_t kCapacity = 32;
  CarPolicy car(kCapacity);
  ZipfTraceConfig config;
  config.num_requests = 40000;
  config.num_objects = 400;
  config.seed = 501;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    car.Access(id);
    // FAST'04 invariants (II'-IV'): |T1|+|T2| <= c, |T1|+|B1| <= c,
    // |T2|+|B2| <= 2c, total directory <= 2c.
    ASSERT_LE(car.t1_size() + car.t2_size(), kCapacity);
    ASSERT_LE(car.t1_size() + car.b1_size(), kCapacity);
    ASSERT_LE(car.t2_size() + car.b2_size(), 2 * kCapacity);
    ASSERT_LE(car.t1_size() + car.t2_size() + car.b1_size() + car.b2_size(),
              2 * kCapacity);
    ASSERT_GE(car.target_p(), 0.0);
    ASSERT_LE(car.target_p(), static_cast<double>(kCapacity));
  }
  EXPECT_EQ(car.size(), kCapacity);
}

TEST(CarTest, ReferencedPagesGraduateToT2) {
  CarPolicy car(4);
  car.Access(1);
  car.Access(1);  // ref bit set in T1
  car.Access(2);
  car.Access(3);
  car.Access(4);
  EXPECT_EQ(car.t2_size(), 0u);  // graduation happens lazily, at replacement
  car.Access(5);                 // forces Replace(): 1 moves to T2, 2 evicted
  EXPECT_TRUE(car.Contains(1));
  EXPECT_FALSE(car.Contains(2));
  EXPECT_GE(car.t2_size(), 1u);
}

TEST(CarTest, ScanResistanceLikeArc) {
  constexpr size_t kCapacity = 100;
  CarPolicy car(kCapacity);
  LruPolicy lru(kCapacity);
  Rng rng(503);
  ObjectId scan_id = 1u << 21;
  uint64_t car_hits = 0;
  uint64_t lru_hits = 0;
  for (int i = 0; i < 40000; ++i) {
    const ObjectId id =
        rng.NextBool(0.5) ? rng.NextBounded(80) : scan_id++;
    car_hits += car.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_GT(car_hits, lru_hits);
}

// ---------- MQ ----------

TEST(MqTest, BasicHitMissAndCapacity) {
  MqPolicy mq(8);
  EXPECT_FALSE(mq.Access(1));
  EXPECT_TRUE(mq.Access(1));
  for (ObjectId id = 0; id < 500; ++id) {
    mq.Access(id % 61);
    ASSERT_LE(mq.size(), 8u);
  }
}

TEST(MqTest, FrequentObjectsClimbLevels) {
  MqPolicy mq(16);
  for (int i = 0; i < 8; ++i) {
    mq.Access(1);  // frequency 8 -> level 3
  }
  mq.Access(2);  // frequency 1 -> level 0
  EXPECT_GE(mq.queue_size(3), 1u);
  EXPECT_GE(mq.queue_size(0), 1u);
}

TEST(MqTest, EvictsFromLowestLevelFirst) {
  MqPolicy mq(3);
  mq.Access(1);
  mq.Access(1);  // level 1
  mq.Access(2);
  mq.Access(2);  // level 1
  mq.Access(3);  // level 0
  mq.Access(4);  // evicts 3 (lowest level LRU), not the frequent ones
  EXPECT_TRUE(mq.Contains(1));
  EXPECT_TRUE(mq.Contains(2));
  EXPECT_FALSE(mq.Contains(3));
}

TEST(MqTest, GhostRemembersFrequency) {
  MqPolicy mq(3, 8, /*lifetime=*/1000000, /*ghost_factor=*/4.0);
  for (int i = 0; i < 8; ++i) {
    mq.Access(1);
  }
  // Evict 1 by filling with fresh objects (1 is high level; fill pushes
  // low-level objects first, so force enough churn).
  for (ObjectId id = 10; id < 14; ++id) {
    mq.Access(id);
  }
  if (!mq.Contains(1)) {
    EXPECT_GT(mq.ghost_size(), 0u);
    mq.Access(1);  // readmission with remembered frequency -> high level
    EXPECT_GE(mq.queue_size(3), 1u);
  }
}

TEST(MqTest, ExpiredBlocksDemote) {
  MqPolicy mq(4, 8, /*lifetime=*/10);
  for (int i = 0; i < 8; ++i) {
    mq.Access(1);  // level 3
  }
  // 50 accesses to other objects age object 1 well past its lifetime.
  for (int i = 0; i < 50; ++i) {
    mq.Access(2 + static_cast<ObjectId>(i % 3));
  }
  EXPECT_EQ(mq.queue_size(3), 0u);  // demoted below its original level
  EXPECT_TRUE(mq.Contains(1));      // but still resident
}

// ---------- LRU-K ----------

TEST(LruKTest, BasicHitMissAndCapacity) {
  LruKPolicy lruk(8, 2);
  EXPECT_FALSE(lruk.Access(1));
  EXPECT_TRUE(lruk.Access(1));
  for (ObjectId id = 0; id < 500; ++id) {
    lruk.Access(id % 61);
    ASSERT_LE(lruk.size(), 8u);
  }
}

TEST(LruKTest, SingleReferenceObjectsEvictedBeforeTwiceReferenced) {
  LruKPolicy lruk(3, 2);
  lruk.Access(1);
  lruk.Access(1);  // 1 has 2 references
  lruk.Access(2);
  lruk.Access(2);  // 2 has 2 references
  lruk.Access(3);  // 3 has 1 reference
  lruk.Access(4);  // must evict 3 (infinite backward K-distance)
  EXPECT_TRUE(lruk.Contains(1));
  EXPECT_TRUE(lruk.Contains(2));
  EXPECT_FALSE(lruk.Contains(3));
}

TEST(LruKTest, EvictsOldestKthAccess) {
  LruKPolicy lruk(2, 2);
  lruk.Access(1);  // t=1
  lruk.Access(1);  // t=2 -> 1's 2nd-most-recent = 1
  lruk.Access(2);  // t=3
  lruk.Access(2);  // t=4 -> 2's 2nd-most-recent = 3
  lruk.Access(1);  // t=5 -> 1's last two accesses are {2, 5}
  // Backward K-distance compares the 2nd-most-recent access: 1's is t=2,
  // 2's is t=3. Object 1 has the older one, so it is the victim even though
  // it was touched most recently.
  lruk.Access(7);
  EXPECT_FALSE(lruk.Contains(1));
  EXPECT_TRUE(lruk.Contains(2));
}

TEST(LruKTest, RetainedHistorySurvivesEviction) {
  LruKPolicy lruk(2, 2, /*history_factor=*/4.0);
  lruk.Access(1);
  lruk.Access(1);
  lruk.Access(1);  // well-referenced
  lruk.Access(2);
  lruk.Access(3);  // evicts someone; histories retained
  lruk.Access(4);
  // Re-access of 1: its history gives it two+ references immediately, so it
  // should outlast a fresh single-touch object.
  lruk.Access(1);
  lruk.Access(5);
  EXPECT_TRUE(lruk.Contains(1));
}

// ---------- W-TinyLFU ----------

TEST(WTinyLfuTest, BasicHitMissAndCapacity) {
  WTinyLfuPolicy cache(64);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_TRUE(cache.Access(1));
  for (ObjectId id = 0; id < 5000; ++id) {
    cache.Access(id % 611);
    ASSERT_LE(cache.size(), 64u);
  }
}

TEST(WTinyLfuTest, OneHitWondersRejectedAtAdmission) {
  WTinyLfuPolicy cache(100);
  // Build a frequent working set.
  for (int round = 0; round < 20; ++round) {
    for (ObjectId id = 0; id < 50; ++id) {
      cache.Access(id);
    }
  }
  const uint64_t rejections_before = cache.rejections();
  // One-touch flood: candidates with sketch frequency ~1 dueling against
  // established probation victims.
  for (ObjectId id = 100000; id < 101000; ++id) {
    cache.Access(id);
  }
  EXPECT_GT(cache.rejections(), rejections_before);
  // The hot set survives.
  int retained = 0;
  for (ObjectId id = 0; id < 50; ++id) {
    retained += cache.Contains(id) ? 1 : 0;
  }
  EXPECT_GE(retained, 45);
}

TEST(WTinyLfuTest, AdmissionAsQuickDemotion) {
  // §5: TinyLFU-style admission is a (more aggressive) form of QD. On a
  // stationary working set polluted by one-hit wonders, rejecting the
  // wonders at admission must beat plain LRU, which lets them churn the
  // whole queue.
  Rng rng(505);
  ZipfSampler zipf(2000, 1.0);
  constexpr size_t kCacheSize = 500;
  WTinyLfuPolicy wtlfu(kCacheSize);
  LruPolicy lru(kCacheSize);
  uint64_t wtlfu_hits = 0;
  uint64_t lru_hits = 0;
  ObjectId wonder = 1u << 26;
  for (int i = 0; i < 100000; ++i) {
    const ObjectId id = rng.NextBool(0.5) ? zipf.Sample(rng) : wonder++;
    wtlfu_hits += wtlfu.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_GT(wtlfu_hits, lru_hits);
}

TEST(WTinyLfuTest, TooAggressiveUnderPopularityDecay) {
  // The flip side §5 warns about: under strong popularity decay, newly-hot
  // objects carry low sketch frequency and keep losing the admission duel
  // to stale-but-frequent incumbents, so LRU (pure recency) wins. This
  // pins the behaviour so the trade-off stays visible.
  PopularityDecayConfig config;
  config.num_requests = 60000;
  config.one_hit_wonder_fraction = 0.3;
  config.seed = 505;
  const Trace trace = GeneratePopularityDecay(config);
  const size_t cache_size = trace.num_objects / 20;
  WTinyLfuPolicy wtlfu(cache_size);
  LruPolicy lru(cache_size);
  uint64_t wtlfu_hits = 0;
  uint64_t lru_hits = 0;
  for (const ObjectId id : trace.requests) {
    wtlfu_hits += wtlfu.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_LT(wtlfu_hits, lru_hits);
}

// ---------- relaxed-promotion LRU variants ----------

TEST(BatchedLruTest, MatchesLruCloselyOnZipf) {
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 500;
  config.seed = 507;
  const Trace trace = GenerateZipf(config);
  constexpr size_t kCapacity = 100;
  BatchedPromotionLru batched(kCapacity, 64);
  LruPolicy lru(kCapacity);
  uint64_t batched_hits = 0;
  uint64_t lru_hits = 0;
  for (const ObjectId id : trace.requests) {
    batched_hits += batched.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  // Batched promotion should track LRU within a few percent.
  EXPECT_GT(static_cast<double>(batched_hits),
            0.95 * static_cast<double>(lru_hits));
}

TEST(BatchedLruTest, BatchOfOneIsExactlyLru) {
  ZipfTraceConfig config;
  config.num_requests = 10000;
  config.num_objects = 300;
  config.seed = 509;
  const Trace trace = GenerateZipf(config);
  BatchedPromotionLru batched(50, 1);
  LruPolicy lru(50);
  for (const ObjectId id : trace.requests) {
    ASSERT_EQ(batched.Access(id), lru.Access(id));
  }
}

TEST(PromoteOldOnlyTest, SkipsFreshPromotions) {
  PromoteOldOnlyLru cache(100, 0.5);  // promote only if idle >= 50 requests
  cache.Access(1);
  cache.Access(1);  // immediately re-hit: promotion skipped
  EXPECT_EQ(cache.promotions_performed(), 0u);
  EXPECT_EQ(cache.promotions_skipped(), 1u);
}

TEST(PromoteOldOnlyTest, MatchesLruCloselyOnZipf) {
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 500;
  config.seed = 511;
  const Trace trace = GenerateZipf(config);
  constexpr size_t kCapacity = 100;
  PromoteOldOnlyLru lazy(kCapacity, 0.3);
  LruPolicy lru(kCapacity);
  uint64_t lazy_hits = 0;
  uint64_t lru_hits = 0;
  for (const ObjectId id : trace.requests) {
    lazy_hits += lazy.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(lazy_hits),
            0.95 * static_cast<double>(lru_hits));
}

// ---------- ARC adaptation knobs ----------

TEST(ArcVariantsTest, NamesReflectConfiguration) {
  EXPECT_EQ(ArcPolicy(10).name(), "arc");
  EXPECT_EQ(ArcPolicy(10, 0.25).name(), "arc-slow");
  EXPECT_EQ(ArcPolicy(10, 1.0, 0.1).name(), "arc-fixed");
}

TEST(ArcVariantsTest, FixedPNeverMoves) {
  ArcPolicy arc(20, 1.0, 0.25);
  const double p0 = arc.target_p();
  Rng rng(513);
  for (int i = 0; i < 20000; ++i) {
    arc.Access(rng.NextBounded(200));
  }
  EXPECT_DOUBLE_EQ(arc.target_p(), p0);
}

TEST(ArcVariantsTest, SlowAdaptationMovesLess) {
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 600;
  config.seed = 515;
  const Trace trace = GenerateZipf(config);
  ArcPolicy fast(50);
  ArcPolicy slow(50, 0.25);
  double fast_total = 0.0;
  double slow_total = 0.0;
  double fast_prev = 0.0;
  double slow_prev = 0.0;
  for (const ObjectId id : trace.requests) {
    fast.Access(id);
    slow.Access(id);
    fast_total += std::abs(fast.target_p() - fast_prev);
    slow_total += std::abs(slow.target_p() - slow_prev);
    fast_prev = fast.target_p();
    slow_prev = slow.target_p();
  }
  EXPECT_LT(slow_total, fast_total);
}

}  // namespace
}  // namespace qdlp
