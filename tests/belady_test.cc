#include <gtest/gtest.h>

#include <vector>

#include "src/policies/belady.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

uint64_t ReplayMisses(BeladyPolicy& policy, const std::vector<ObjectId>& trace) {
  uint64_t misses = 0;
  for (const ObjectId id : trace) {
    misses += policy.Access(id) ? 0 : 1;
  }
  return misses;
}

TEST(BeladyTest, EvictsFarthestFuture) {
  // Classic example: cache of 2. Sequence: a b c a b. Optimal: evict c (or
  // never admit it) -> 3 misses.
  const std::vector<ObjectId> trace = {1, 2, 3, 1, 2};
  BeladyPolicy belady(2, trace);
  EXPECT_EQ(ReplayMisses(belady, trace), 3u);
}

TEST(BeladyTest, BypassesNeverReusedObjects) {
  const std::vector<ObjectId> trace = {1, 2, 99, 1, 2};
  BeladyPolicy belady(2, trace);
  // 99 is never reused: Belady must not displace 1 or 2 for it.
  EXPECT_EQ(ReplayMisses(belady, trace), 3u);
  EXPECT_TRUE(belady.Contains(1));
  EXPECT_TRUE(belady.Contains(2));
  EXPECT_FALSE(belady.Contains(99));
}

// Exhaustive optimality oracle: brute-force minimum misses over all eviction
// choices, for tiny traces/caches.
uint64_t BruteForceOptimalMisses(const std::vector<ObjectId>& trace,
                                 size_t position, std::vector<ObjectId> cache,
                                 size_t capacity) {
  if (position == trace.size()) {
    return 0;
  }
  const ObjectId id = trace[position];
  for (const ObjectId resident : cache) {
    if (resident == id) {
      return BruteForceOptimalMisses(trace, position + 1, cache, capacity);
    }
  }
  // Miss. Choice: bypass, or evict any resident (if full) / just insert.
  if (cache.size() < capacity) {
    cache.push_back(id);
    return 1 + BruteForceOptimalMisses(trace, position + 1, cache, capacity);
  }
  uint64_t best = 1 + BruteForceOptimalMisses(trace, position + 1, cache,
                                              capacity);  // bypass
  for (size_t i = 0; i < cache.size(); ++i) {
    std::vector<ObjectId> next = cache;
    next[i] = id;
    best = std::min(
        best, 1 + BruteForceOptimalMisses(trace, position + 1, next, capacity));
  }
  return best;
}

class BeladyOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BeladyOptimalityTest, MatchesBruteForceOnTinyTraces) {
  Rng rng(GetParam());
  std::vector<ObjectId> trace;
  for (int i = 0; i < 12; ++i) {
    trace.push_back(rng.NextBounded(5));
  }
  for (const size_t capacity : {1u, 2u, 3u}) {
    BeladyPolicy belady(capacity, trace);
    const uint64_t belady_misses = ReplayMisses(belady, trace);
    const uint64_t optimal =
        BruteForceOptimalMisses(trace, 0, {}, capacity);
    EXPECT_EQ(belady_misses, optimal)
        << "capacity " << capacity << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyOptimalityTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(BeladyTest, CapacityRespected) {
  ZipfTraceConfig config;
  config.num_requests = 10000;
  config.num_objects = 300;
  config.seed = 91;
  const Trace trace = GenerateZipf(config);
  BeladyPolicy belady(20, trace.requests);
  for (const ObjectId id : trace.requests) {
    belady.Access(id);
    ASSERT_LE(belady.size(), 20u);
  }
}

}  // namespace
}  // namespace qdlp
