// Thread stress for the concurrent caches, built to run under
// ThreadSanitizer (the "tsan" CMake preset; ctest label "sanitizer").
//
// Several threads hammer each cache with overlapping skewed key streams —
// maximizing hit-path/miss-path interleavings on shared ids — then the
// structural invariants are validated at quiescent points. Under TSan every
// cross-thread access ordering bug in the hit path (the lock-free CLOCK
// counter bumps, the shared-lock index reads) becomes a hard failure; in
// normal builds this doubles as a cheap concurrency smoke test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_qdlp_fifo.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/locked_lru.h"
#include "src/concurrent/mpsc_ring.h"
#include "src/concurrent/sharded_lru.h"
#include "src/concurrent/striped_index.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 25000;
constexpr uint64_t kUniverse = 4096;  // ids overlap heavily across threads

void HammerFromManyThreads(ConcurrentCache& cache) {
  std::atomic<uint64_t> total_hits{0};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop_stats{false};

  // A telemetry reader storms Stats() for the whole run: snapshots must be
  // safe concurrently with the lock-free hit path and the eviction lock
  // (under TSan this is the counters' and occupancy reads' race check).
  std::thread stats_reader([&] {
    uint64_t snapshots = 0;
    while (!stop_stats.load(std::memory_order_acquire)) {
      const CacheStats stats = cache.Stats();
      // Each Get() counts exactly one of hit/miss, so even a torn-free
      // relaxed snapshot can never conjure more of one than of both.
      EXPECT_LE(stats.hits, stats.requests);
      EXPECT_LE(stats.misses, stats.requests);
      ++snapshots;
    }
    EXPECT_GT(snapshots, 0u);
  });

  const auto worker = [&](int thread_index) {
    Rng rng(0xabcdef01u + static_cast<uint64_t>(thread_index));
    uint64_t hits = 0;
    for (int op = 0; op < kOpsPerThread; ++op) {
      // Skewed stream: a small hot set shared by all threads plus a cold
      // tail, so the same ids race through hit and miss paths constantly.
      ObjectId id;
      if (rng.NextBool(0.7)) {
        id = rng.NextBounded(kUniverse / 16);  // hot
      } else {
        id = rng.NextBounded(kUniverse);  // cold tail
      }
      hits += cache.Get(id) ? 1 : 0;
    }
    total_hits.fetch_add(hits, std::memory_order_relaxed);
    total_ops.fetch_add(kOpsPerThread, std::memory_order_relaxed);
  };

  // Two rounds with an invariant check at the quiescent point between them:
  // corruption from round one cannot hide behind round two's churn.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(worker, round * kThreads + t);
    }
    for (auto& thread : threads) {
      thread.join();
    }
    cache.CheckInvariants();
  }

  stop_stats.store(true, std::memory_order_release);
  stats_reader.join();

  EXPECT_EQ(total_ops.load(), 2ull * kThreads * kOpsPerThread);
  // A cache of this size over this stream must produce plenty of hits; a
  // near-zero count means Get() stopped admitting or finding anything.
  EXPECT_GT(total_hits.load(), total_ops.load() / 10) << cache.name();

  // Quiescent: the counters must have counted every Get() exactly once.
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.requests, total_ops.load()) << cache.name();
  EXPECT_EQ(stats.hits, total_hits.load()) << cache.name();
  EXPECT_EQ(stats.hits + stats.misses, stats.requests) << cache.name();
}

TEST(TsanStressTest, GlobalLockLru) {
  GlobalLockLruCache cache(512);
  HammerFromManyThreads(cache);
}

TEST(TsanStressTest, ShardedLru) {
  ShardedLruCache cache(512, /*num_shards=*/8);
  HammerFromManyThreads(cache);
}

TEST(TsanStressTest, ConcurrentClock) {
  ConcurrentClockCache cache(512, /*bits=*/1, /*num_shards=*/8);
  HammerFromManyThreads(cache);
}

TEST(TsanStressTest, ConcurrentS3Fifo) {
  ConcurrentS3FifoCache cache(512, /*small_fraction=*/0.10,
                              /*ghost_factor=*/0.9, /*num_shards=*/8);
  HammerFromManyThreads(cache);
}

TEST(TsanStressTest, ConcurrentQdLpFifo) {
  ConcurrentQdLpFifo cache(512, /*num_stripes=*/8);
  HammerFromManyThreads(cache);
}

// The lock-free index alone: one serialized writer churns insert/erase
// while lock-free readers probe — TSan checks the seqlock + release/acquire
// slot protocol directly, without a cache on top.
TEST(TsanStressTest, StripedIndexReadersVsWriter) {
  StripedAtomicIndex index(/*max_entries=*/1024, /*num_stripes=*/8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads - 1; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0x51ab0000u + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        uint32_t value;
        index.Find(rng.NextBounded(kUniverse), &value);
      }
    });
  }
  Rng rng(0x51ab1111u);
  std::vector<bool> present(kUniverse, false);
  for (int step = 0; step < 150000; ++step) {
    const ObjectId id = rng.NextBounded(kUniverse);
    if (present[id]) {
      index.Erase(id);
      present[id] = false;
    } else {
      index.Insert(id, static_cast<uint32_t>(id));
      present[id] = true;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : readers) {
    thread.join();
  }
  index.CheckInvariants();
}

// The miss-path buffers alone: concurrent producers vs one consumer.
TEST(TsanStressTest, MpscRingProducersVsConsumer) {
  MpscRing ring(64);
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(0x3156c000u + static_cast<uint64_t>(t));
      for (int i = 0; i < 50000; ++i) {
        ring.TryPush(rng.NextBounded(kUniverse));
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  uint64_t value;
  uint64_t popped = 0;
  while (done.load(std::memory_order_acquire) < kThreads ||
         ring.TryPop(&value)) {
    if (ring.TryPop(&value)) {
      ++popped;
    }
  }
  for (auto& thread : producers) {
    thread.join();
  }
  EXPECT_GT(popped, 0u);
}

}  // namespace
}  // namespace qdlp
