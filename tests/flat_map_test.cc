// FlatMap: the open-addressing std::unordered_map replacement under the
// policy indexes. Unit tests pin tombstone reuse, the Emplace pointer
// contract, and growth; the property test runs randomized op sequences
// against std::unordered_map as the reference model.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/util/flat_map.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(FlatMapTest, StartsEmpty) {
  FlatMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Contains(0));
  EXPECT_EQ(map.Find(42), nullptr);
  map.CheckInvariants();
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int> map;
  map[7] = 70;
  map[8] = 80;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70);
  EXPECT_EQ(*map.Find(8), 80);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Erase(7));  // already gone
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_EQ(map.size(), 1u);
  map.CheckInvariants();
}

TEST(FlatMapTest, OperatorBracketDefaultConstructsOnce) {
  FlatMap<int> map;
  EXPECT_EQ(map[5], 0);  // default int
  map[5] = 99;
  EXPECT_EQ(map[5], 99);  // second lookup finds, does not reset
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, EmplaceReportsInsertedFlag) {
  FlatMap<int> map;
  const auto [first, inserted_first] = map.Emplace(11);
  EXPECT_TRUE(inserted_first);
  *first = 1;
  const auto [second, inserted_second] = map.Emplace(11);
  EXPECT_FALSE(inserted_second);
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(map.size(), 1u);
}

// The emplace-first-then-evict miss path in FIFO/LRU/SIEVE depends on this:
// the newcomer's Value* must survive the victim's Erase.
TEST(FlatMapTest, EmplacePointerSurvivesEraseOfOtherKeys) {
  FlatMap<int> map;
  map.Reserve(128);
  for (uint64_t key = 0; key < 100; ++key) {
    map[key] = static_cast<int>(key);
  }
  const auto [value, inserted] = map.Emplace(1000);
  ASSERT_TRUE(inserted);
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(map.Erase(key));
  }
  *value = 123;  // still the slot for key 1000: full slots never move
  ASSERT_NE(map.Find(1000), nullptr);
  EXPECT_EQ(*map.Find(1000), 123);
  map.CheckInvariants();
}

TEST(FlatMapTest, TombstoneReuseKeepsTableFromGrowing) {
  FlatMap<int> map;
  map.Reserve(1000);
  for (uint64_t key = 0; key < 1000; ++key) {
    map[key] = 1;
  }
  const size_t bytes_at_highwater = map.MemoryBytes();
  // Cache-eviction churn: erase victim + insert newcomer, 100k rounds.
  // Slot recycling (tombstone reuse + erase-time pruning + same-size
  // cleanup rehash) must keep the table at its Reserve()d footprint.
  uint64_t oldest = 0;
  uint64_t next = 1000;
  for (int round = 0; round < 100000; ++round) {
    ASSERT_TRUE(map.Erase(oldest++));
    map[next++] = 1;
  }
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(map.MemoryBytes(), bytes_at_highwater);
  map.CheckInvariants();
}

TEST(FlatMapTest, GrowPreservesAllEntries) {
  FlatMap<uint64_t> map;  // no Reserve: force repeated doubling
  constexpr uint64_t kCount = 10000;
  for (uint64_t key = 0; key < kCount; ++key) {
    map[key * 2654435761ULL] = key;
  }
  EXPECT_EQ(map.size(), kCount);
  for (uint64_t key = 0; key < kCount; ++key) {
    const uint64_t* value = map.Find(key * 2654435761ULL);
    ASSERT_NE(value, nullptr) << "key " << key;
    EXPECT_EQ(*value, key);
  }
  map.CheckInvariants();
}

TEST(FlatMapTest, ClearEmptiesAndStaysUsable) {
  FlatMap<int> map;
  for (uint64_t key = 0; key < 100; ++key) {
    map[key] = 1;
  }
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  map.CheckInvariants();
  map[5] = 50;
  EXPECT_EQ(*map.Find(5), 50);
}

TEST(FlatMapTest, ForEachVisitsEveryLiveEntryOnce) {
  FlatMap<int> map;
  for (uint64_t key = 10; key < 20; ++key) {
    map[key] = static_cast<int>(key) * 10;
  }
  map.Erase(13);
  std::unordered_map<uint64_t, int> seen;
  map.ForEach([&seen](uint64_t key, const int& value) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "duplicate key " << key;
  });
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_EQ(seen.count(13), 0u);
  EXPECT_EQ(seen.at(17), 170);
}

TEST(FlatMapTest, AdversarialCollidingKeys) {
  // Keys chosen to land in the same home bucket of a 16-slot table: the
  // probe chain, tombstone transitions, and pruning all run on one run.
  FlatMap<int> map;
  std::vector<uint64_t> colliding;
  const uint64_t target = FlatMapHash(1) & 15;
  for (uint64_t key = 0; colliding.size() < 8; ++key) {
    if ((FlatMapHash(key) & 15) == target) {
      colliding.push_back(key);
    }
  }
  for (const uint64_t key : colliding) {
    map[key] = static_cast<int>(key);
  }
  // Erase from the middle of the chain, then re-find everything else.
  ASSERT_TRUE(map.Erase(colliding[3]));
  ASSERT_TRUE(map.Erase(colliding[5]));
  for (size_t i = 0; i < colliding.size(); ++i) {
    if (i == 3 || i == 5) {
      EXPECT_EQ(map.Find(colliding[i]), nullptr);
    } else {
      ASSERT_NE(map.Find(colliding[i]), nullptr);
      EXPECT_EQ(*map.Find(colliding[i]), static_cast<int>(colliding[i]));
    }
  }
  // Reinsert through the tombstones.
  map[colliding[3]] = -3;
  EXPECT_EQ(*map.Find(colliding[3]), -3);
  map.CheckInvariants();
}

// Randomized differential test against std::unordered_map. Skewed key
// choice keeps hit/miss/re-insert paths all exercised.
TEST(FlatMapPropertyTest, MatchesUnorderedMapUnderRandomOps) {
  for (const uint64_t seed : {401ULL, 402ULL, 403ULL}) {
    Rng rng(seed);
    FlatMap<uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> reference;
    for (int op = 0; op < 50000; ++op) {
      const uint64_t key = rng.NextBounded(512);  // small space: collisions
      const uint64_t choice = rng.NextBounded(100);
      if (choice < 50) {  // insert / overwrite
        const uint64_t value = rng.Next();
        map[key] = value;
        reference[key] = value;
      } else if (choice < 80) {  // erase
        EXPECT_EQ(map.Erase(key), reference.erase(key) > 0) << "key " << key;
      } else {  // lookup
        const auto it = reference.find(key);
        const uint64_t* found = map.Find(key);
        if (it == reference.end()) {
          EXPECT_EQ(found, nullptr) << "key " << key;
        } else {
          ASSERT_NE(found, nullptr) << "key " << key;
          EXPECT_EQ(*found, it->second);
        }
      }
      if (op % 1024 == 0) {
        map.CheckInvariants();
      }
    }
    map.CheckInvariants();
    ASSERT_EQ(map.size(), reference.size()) << "seed " << seed;
    size_t visited = 0;
    map.ForEach([&](uint64_t key, const uint64_t& value) {
      ++visited;
      const auto it = reference.find(key);
      ASSERT_NE(it, reference.end()) << "phantom key " << key;
      EXPECT_EQ(value, it->second);
    });
    EXPECT_EQ(visited, reference.size());
  }
}

TEST(FlatMapTest, PrefetchIsSafeOnAnyKey) {
  // Prefetch is a pure performance hint; the contract is only that it never
  // faults, present key or not, including on an empty table.
  FlatMap<int> map;
  map.Prefetch(0);
  map.Prefetch(~uint64_t{0});
  for (uint64_t key = 0; key < 100; ++key) {
    map[key] = static_cast<int>(key);
  }
  for (uint64_t key = 0; key < 200; ++key) {
    map.Prefetch(key);
  }
  map.CheckInvariants();
}

TEST(FlatMapTest, FindManyMatchesFind) {
  Rng rng(2024);
  FlatMap<uint64_t> map;
  for (int i = 0; i < 4096; ++i) {
    const uint64_t key = rng.NextBounded(8192);
    map[key] = key * 3;
  }
  // Query batch mixes hits and misses, shorter and longer than the
  // prefetch depth, in randomized order.
  for (const size_t batch : {size_t{1}, size_t{3}, size_t{64}, size_t{1000}}) {
    std::vector<uint64_t> keys(batch);
    for (size_t i = 0; i < batch; ++i) {
      keys[i] = rng.NextBounded(16384);
    }
    std::vector<uint64_t*> batched(batch, nullptr);
    map.FindMany(keys.data(), batch, batched.data());
    for (size_t i = 0; i < batch; ++i) {
      EXPECT_EQ(batched[i], map.Find(keys[i])) << "batch " << batch
                                               << " index " << i;
    }
  }
}

}  // namespace
}  // namespace qdlp
