// Differential testing: QdCache over 2-bit CLOCK (QD-LP-FIFO) vs an
// independently-written naive reference model. Every request's hit/miss
// outcome must match exactly across random workloads, capacities, and
// seeds — the strongest guard against subtle queue/ghost bookkeeping bugs.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/core/qd_cache.h"
#include "src/policies/clock.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

// Naive model of the Fig-4 flow: O(n) scans, no generation tricks.
class ReferenceQdLpFifo {
 public:
  ReferenceQdLpFifo(size_t probation_cap, size_t main_cap, size_t ghost_cap)
      : probation_cap_(probation_cap),
        main_cap_(main_cap),
        ghost_cap_(ghost_cap) {}

  bool Access(ObjectId id) {
    // 1. probation hit: set the accessed bit.
    for (auto& [entry_id, accessed] : probation_) {
      if (entry_id == id) {
        accessed = true;
        return true;
      }
    }
    // 2. main (2-bit CLOCK as reinsertion queue) hit: bump counter.
    for (auto& [entry_id, counter] : main_) {
      if (entry_id == id) {
        counter = std::min(counter + 1, 3);
        return true;
      }
    }
    // 3. ghost hit: consume and admit straight into main.
    const auto ghost_it = std::find(ghost_.begin(), ghost_.end(), id);
    if (ghost_it != ghost_.end()) {
      ghost_.erase(ghost_it);
      InsertMain(id);
      return false;
    }
    // 4. cold miss: probation.
    while (probation_.size() >= probation_cap_) {
      EvictProbation();
    }
    probation_.emplace_back(id, false);
    return false;
  }

 private:
  void InsertMain(ObjectId id) {
    while (main_.size() >= main_cap_) {
      auto [victim, counter] = main_.front();
      main_.pop_front();
      if (counter > 0) {
        main_.emplace_back(victim, counter - 1);
      }
      // else: evicted outright (main evictions are not ghosted)
    }
    main_.emplace_back(id, 0);
  }

  void EvictProbation() {
    auto [victim, accessed] = probation_.front();
    probation_.pop_front();
    if (accessed) {
      InsertMain(victim);
    } else {
      ghost_.push_back(victim);
      if (ghost_.size() > ghost_cap_) {
        ghost_.pop_front();
      }
    }
  }

  size_t probation_cap_;
  size_t main_cap_;
  size_t ghost_cap_;
  std::deque<std::pair<ObjectId, bool>> probation_;
  std::deque<std::pair<ObjectId, int>> main_;  // (id, counter); front = hand
  std::deque<ObjectId> ghost_;                 // front = oldest
};

struct FuzzCase {
  uint64_t seed;
  size_t probation;
  size_t main;
};

class QdDifferentialTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(QdDifferentialTest, HitMissSequencesMatchReference) {
  const FuzzCase fuzz = GetParam();
  QdCache real(fuzz.probation,
               std::make_unique<ClockPolicy>(fuzz.main, 2));
  ReferenceQdLpFifo reference(fuzz.probation, fuzz.main, fuzz.main);

  Rng rng(fuzz.seed);
  ZipfSampler zipf(500, 0.9);
  ObjectId wonder = 1u << 20;
  for (int i = 0; i < 40000; ++i) {
    ObjectId id;
    const double kind = rng.NextDouble();
    if (kind < 0.6) {
      id = zipf.Sample(rng);  // popular core
    } else if (kind < 0.8) {
      id = 1000 + rng.NextBounded(5000);  // lukewarm band
    } else {
      id = wonder++;  // one-hit wonders
    }
    ASSERT_EQ(real.Access(id), reference.Access(id))
        << "diverged at request " << i << " (id " << id << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QdDifferentialTest,
    ::testing::Values(FuzzCase{11, 5, 45}, FuzzCase{12, 10, 90},
                      FuzzCase{13, 3, 17}, FuzzCase{14, 1, 9},
                      FuzzCase{15, 20, 60}, FuzzCase{16, 7, 193}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_p" +
             std::to_string(info.param.probation) + "_m" +
             std::to_string(info.param.main);
    });

}  // namespace
}  // namespace qdlp
