// Differential testing: QdCache over 2-bit CLOCK (QD-LP-FIFO) vs the
// independently-written naive reference model in tests/oracle/. Every
// request's hit/miss outcome must match exactly across random workloads,
// capacities, and seeds — the strongest guard against subtle queue/ghost
// bookkeeping bugs. (The broader zoo-wide sweep lives in
// oracle_differential_test.cc; this test keeps direct control over the
// probation/main/ghost split and hammers it with adversarial id mixes.)

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/qd_cache.h"
#include "src/policies/clock.h"
#include "src/util/random.h"
#include "src/util/zipf.h"
#include "tests/oracle/reference_models.h"

namespace qdlp {
namespace {

struct FuzzCase {
  uint64_t seed;
  size_t probation;
  size_t main;
};

class QdDifferentialTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(QdDifferentialTest, HitMissSequencesMatchReference) {
  const FuzzCase fuzz = GetParam();
  QdCache real(fuzz.probation,
               std::make_unique<ClockPolicy>(fuzz.main, 2));
  // QdCache sizes its ghost as main * ghost_factor (default 1.0).
  oracle::RefQdLpFifo reference(fuzz.probation, fuzz.main, fuzz.main);

  Rng rng(fuzz.seed);
  ZipfSampler zipf(500, 0.9);
  ObjectId wonder = 1u << 20;
  for (int i = 0; i < 40000; ++i) {
    ObjectId id;
    const double kind = rng.NextDouble();
    if (kind < 0.6) {
      id = zipf.Sample(rng);  // popular core
    } else if (kind < 0.8) {
      id = 1000 + rng.NextBounded(5000);  // lukewarm band
    } else {
      id = wonder++;  // one-hit wonders
    }
    ASSERT_EQ(real.Access(id), reference.Access(id))
        << "diverged at request " << i << " (id " << id << ")";
    ASSERT_EQ(real.size(), reference.size())
        << "occupancy diverged at request " << i << " (id " << id << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QdDifferentialTest,
    ::testing::Values(FuzzCase{11, 5, 45}, FuzzCase{12, 10, 90},
                      FuzzCase{13, 3, 17}, FuzzCase{14, 1, 9},
                      FuzzCase{15, 20, 60}, FuzzCase{16, 7, 193}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_p" +
             std::to_string(info.param.probation) + "_m" +
             std::to_string(info.param.main);
    });

}  // namespace
}  // namespace qdlp
