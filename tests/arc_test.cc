#include <gtest/gtest.h>

#include "src/policies/arc.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(ArcTest, BasicHitMiss) {
  ArcPolicy arc(4);
  EXPECT_FALSE(arc.Access(1));
  EXPECT_FALSE(arc.Access(2));
  EXPECT_TRUE(arc.Access(1));  // promoted to T2
  EXPECT_EQ(arc.t2_size(), 1u);
  EXPECT_EQ(arc.t1_size(), 1u);
  EXPECT_TRUE(arc.Contains(1));
  EXPECT_TRUE(arc.Contains(2));
}

TEST(ArcTest, CapacityRespected) {
  ArcPolicy arc(8);
  for (ObjectId id = 0; id < 1000; ++id) {
    arc.Access(id % 37);
    EXPECT_LE(arc.size(), 8u);
  }
}

TEST(ArcTest, InvariantsHoldUnderMixedWorkload) {
  constexpr size_t kCapacity = 32;
  ArcPolicy arc(kCapacity);
  ZipfTraceConfig config;
  config.num_requests = 50000;
  config.num_objects = 400;
  config.seed = 41;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    arc.Access(id);
    // FAST'03 invariants: |T1|+|T2| <= c, |T1|+|B1| <= c,
    // |T1|+|T2|+|B1|+|B2| <= 2c, 0 <= p <= c.
    ASSERT_LE(arc.t1_size() + arc.t2_size(), kCapacity);
    ASSERT_LE(arc.t1_size() + arc.b1_size(), kCapacity);
    ASSERT_LE(arc.t1_size() + arc.t2_size() + arc.b1_size() + arc.b2_size(),
              2 * kCapacity);
    ASSERT_GE(arc.target_p(), 0.0);
    ASSERT_LE(arc.target_p(), static_cast<double>(kCapacity));
  }
  EXPECT_EQ(arc.size(), kCapacity);  // steady state: full
}

TEST(ArcTest, GhostHitAdaptsTarget) {
  ArcPolicy arc(4);
  // Fill T1 with 1..4, then push 5..8 so 1..4 fall into B1.
  for (ObjectId id = 1; id <= 8; ++id) {
    arc.Access(id);
  }
  // 5..8 are resident in T1; 1..4 are B1 ghosts (T1 was full, so the oldest
  // went through replace -> B1).
  const double p_before = arc.target_p();
  bool ghost_was_hit = false;
  for (ObjectId id = 1; id <= 4; ++id) {
    if (!arc.Contains(id) && arc.b1_size() > 0) {
      const bool hit = arc.Access(id);
      EXPECT_FALSE(hit);  // ghost hits are still misses
      ghost_was_hit = true;
      break;
    }
  }
  if (ghost_was_hit) {
    EXPECT_GT(arc.target_p(), p_before);  // recency target grew
  }
}

TEST(ArcTest, ScanResistanceBeatsLru) {
  // A scan (one-touch stream) mixed into a stable working set: ARC must keep
  // more of the working set than LRU does.
  constexpr size_t kCapacity = 100;
  ArcPolicy arc(kCapacity);
  LruPolicy lru(kCapacity);
  uint64_t arc_hits = 0;
  uint64_t lru_hits = 0;
  ObjectId scan_id = 1000000;
  Rng rng(43);
  for (int round = 0; round < 30000; ++round) {
    ObjectId id;
    if (rng.NextBool(0.5)) {
      id = rng.NextBounded(80);  // hot working set fits in cache
    } else {
      id = scan_id++;  // never reused
    }
    arc_hits += arc.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_GT(arc_hits, lru_hits);
}

TEST(ArcTest, FrequentSetRetainedAgainstRecencyFlood) {
  ArcPolicy arc(10);
  // Establish frequency for 0..4.
  for (int round = 0; round < 5; ++round) {
    for (ObjectId id = 0; id < 5; ++id) {
      arc.Access(id);
    }
  }
  // Flood with one-touch ids.
  for (ObjectId id = 100; id < 130; ++id) {
    arc.Access(id);
  }
  int retained = 0;
  for (ObjectId id = 0; id < 5; ++id) {
    retained += arc.Contains(id) ? 1 : 0;
  }
  EXPECT_GE(retained, 3);
}

}  // namespace
}  // namespace qdlp
