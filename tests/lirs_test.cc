#include <gtest/gtest.h>

#include "src/policies/lirs.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(LirsTest, BasicWarmupAndHits) {
  LirsPolicy lirs(10);
  for (ObjectId id = 0; id < 10; ++id) {
    EXPECT_FALSE(lirs.Access(id));
  }
  EXPECT_EQ(lirs.size(), 10u);
  for (ObjectId id = 0; id < 10; ++id) {
    EXPECT_TRUE(lirs.Access(id)) << id;
  }
}

TEST(LirsTest, CapacityRespected) {
  LirsPolicy lirs(16);
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 500;
  config.seed = 51;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    lirs.Access(id);
    ASSERT_LE(lirs.size(), 16u);
  }
  EXPECT_EQ(lirs.size(), 16u);
}

TEST(LirsTest, StackBottomAlwaysLir) {
  LirsPolicy lirs(20);
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 300;
  config.seed = 53;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    lirs.Access(id);
    ASSERT_TRUE(lirs.StackBottomIsLir());
  }
}

TEST(LirsTest, LirCountBounded) {
  LirsPolicy lirs(50);
  ScanLoopConfig config;
  config.num_requests = 30000;
  config.hot_objects = 200;
  config.seed = 55;
  const Trace trace = GenerateScanLoop(config);
  for (const ObjectId id : trace.requests) {
    lirs.Access(id);
    ASSERT_LE(lirs.lir_count(), 50u);
  }
}

TEST(LirsTest, HirPromotionOnQuickReuse) {
  // Capacity 10 -> 9 LIR + 1 HIR (1% floor). Warm LIR with 0..8, then a new
  // block touched twice in quick succession must displace a stale LIR block
  // eventually.
  LirsPolicy lirs(10);
  for (ObjectId id = 0; id < 9; ++id) {
    lirs.Access(id);
  }
  // 100 is admitted as resident HIR (LIR set full after warmup completes).
  lirs.Access(100);
  EXPECT_TRUE(lirs.Contains(100));
  // Re-access while still in stack S: upgraded to LIR.
  EXPECT_TRUE(lirs.Access(100));
  // It should survive a burst of one-touch insertions (they churn the HIR
  // queue, not the LIR set).
  for (ObjectId id = 200; id < 230; ++id) {
    lirs.Access(id);
  }
  EXPECT_TRUE(lirs.Contains(100));
}

TEST(LirsTest, OneTouchStreamDoesNotDisplaceLirSet) {
  LirsPolicy lirs(20);
  // Build a LIR working set with repeated accesses.
  for (int round = 0; round < 3; ++round) {
    for (ObjectId id = 0; id < 15; ++id) {
      lirs.Access(id);
    }
  }
  // Scan: 500 one-touch blocks.
  for (ObjectId id = 1000; id < 1500; ++id) {
    lirs.Access(id);
  }
  int retained = 0;
  for (ObjectId id = 0; id < 15; ++id) {
    retained += lirs.Contains(id) ? 1 : 0;
  }
  // LIRS is scan-resistant: the LIR set survives the scan.
  EXPECT_GE(retained, 14);
}

TEST(LirsTest, ScanResistanceBeatsLru) {
  constexpr size_t kCapacity = 100;
  LirsPolicy lirs(kCapacity);
  LruPolicy lru(kCapacity);
  uint64_t lirs_hits = 0;
  uint64_t lru_hits = 0;
  Rng rng(57);
  ObjectId scan_id = 1u << 20;
  for (int i = 0; i < 40000; ++i) {
    ObjectId id;
    if (rng.NextBool(0.5)) {
      id = rng.NextBounded(80);
    } else {
      id = scan_id++;
    }
    lirs_hits += lirs.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_GT(lirs_hits, lru_hits);
}

TEST(LirsTest, NonResidentMetadataBounded) {
  // Default bound: 3x capacity of non-resident entries. Stack size is then
  // bounded by residents + non-residents.
  constexpr size_t kCapacity = 30;
  LirsPolicy lirs(kCapacity, 0.01, 3.0);
  for (ObjectId id = 0; id < 100000; ++id) {
    lirs.Access(id);  // pure one-touch flood
    ASSERT_LE(lirs.stack_size(), kCapacity * 4 + 2);
  }
}

}  // namespace
}  // namespace qdlp
