// The footnote-2 conjecture: the impression that CLOCK is worse than LRU
// "came from the 1960s when LRU and CLOCK were designed for virtual memory
// page replacement", where working sets change abruptly between phases; the
// paper conjectures LRU adapts to such phase changes better than CLOCK, and
// observes that block/web cache workloads do not have them. These tests pin
// both halves on synthetic workloads.

#include <gtest/gtest.h>

#include "src/policies/clock.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"

namespace qdlp {
namespace {

uint64_t HitsOf(EvictionPolicy& policy, const Trace& trace) {
  uint64_t hits = 0;
  for (const ObjectId id : trace.requests) {
    hits += policy.Access(id) ? 1 : 0;
  }
  return hits;
}

TEST(PhaseChangeTest, GeneratorProducesDisjointPhases) {
  PhaseChangeConfig config;
  config.num_requests = 30000;
  config.working_set = 1000;
  config.phase_length = 10000;
  config.seed = 901;
  const Trace trace = GeneratePhaseChange(config);
  // Phase k draws ids from [k*W, (k+1)*W).
  for (uint64_t i = 0; i < trace.requests.size(); ++i) {
    const uint64_t phase = i / config.phase_length;
    ASSERT_GE(trace.requests[i], phase * config.working_set);
    ASSERT_LT(trace.requests[i], (phase + 1) * config.working_set);
  }
  EXPECT_GT(trace.num_objects, 2000u);  // at least two disjoint sets touched
}

TEST(PhaseChangeTest, LruAdaptsToAbruptPhasesBetterThanClock) {
  // The regime the paper concedes to LRU. Cache smaller than one working
  // set; at each phase switch CLOCK's surviving reference bits make it
  // keep dead pages for extra sweeps, while LRU flushes them in one pass.
  PhaseChangeConfig config;
  config.num_requests = 120000;
  config.working_set = 3000;
  config.skew = 0.6;  // flat-ish: most of the working set matters
  config.phase_length = 8000;
  config.seed = 903;
  const Trace trace = GeneratePhaseChange(config);
  constexpr size_t kCapacity = 2000;
  LruPolicy lru(kCapacity);
  ClockPolicy clock(kCapacity, 2);
  const uint64_t lru_hits = HitsOf(lru, trace);
  const uint64_t clock_hits = HitsOf(clock, trace);
  EXPECT_GT(lru_hits, clock_hits);
}

TEST(PhaseChangeTest, NoPhasesMeansClockWinsAgain) {
  // The same parameters with a single endless phase flips the result back
  // to the paper's main finding (LP-FIFO >= LRU on cache workloads).
  PhaseChangeConfig config;
  config.num_requests = 120000;
  config.working_set = 3000;
  config.skew = 0.6;
  config.phase_length = 200000;  // never switches
  config.seed = 905;
  const Trace trace = GeneratePhaseChange(config);
  constexpr size_t kCapacity = 2000;
  LruPolicy lru(kCapacity);
  ClockPolicy clock(kCapacity, 2);
  const uint64_t lru_hits = HitsOf(lru, trace);
  const uint64_t clock_hits = HitsOf(clock, trace);
  EXPECT_GE(clock_hits, lru_hits);
}

}  // namespace
}  // namespace qdlp
