// GhostQueue, QdCache (the paper's QD construction), QD-LP-FIFO, the
// policy factory, S3-FIFO, and SIEVE.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/ghost_queue.h"
#include "src/core/policy_factory.h"
#include "src/core/qd_cache.h"
#include "src/core/s3fifo.h"
#include "src/core/sieve.h"
#include "src/policies/fifo.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(GhostQueueTest, InsertAndConsume) {
  GhostQueue ghost(3);
  ghost.Insert(1);
  EXPECT_TRUE(ghost.Contains(1));
  EXPECT_TRUE(ghost.Consume(1));
  EXPECT_FALSE(ghost.Contains(1));
  EXPECT_FALSE(ghost.Consume(1));  // consumed entries are gone
}

TEST(GhostQueueTest, EvictsOldestWhenFull) {
  GhostQueue ghost(2);
  ghost.Insert(1);
  ghost.Insert(2);
  ghost.Insert(3);
  EXPECT_FALSE(ghost.Contains(1));
  EXPECT_TRUE(ghost.Contains(2));
  EXPECT_TRUE(ghost.Contains(3));
  EXPECT_EQ(ghost.size(), 2u);
}

TEST(GhostQueueTest, ReinsertRefreshesPosition) {
  GhostQueue ghost(2);
  ghost.Insert(1);
  ghost.Insert(2);
  ghost.Insert(1);  // refresh: 2 is now the oldest
  ghost.Insert(3);
  EXPECT_TRUE(ghost.Contains(1));
  EXPECT_FALSE(ghost.Contains(2));
  EXPECT_TRUE(ghost.Contains(3));
}

TEST(GhostQueueTest, SizeBoundedUnderChurn) {
  GhostQueue ghost(10);
  Rng rng(101);
  for (int i = 0; i < 10000; ++i) {
    const ObjectId id = rng.NextBounded(50);
    if (rng.NextBool(0.3)) {
      ghost.Consume(id);
    } else {
      ghost.Insert(id);
    }
    ASSERT_LE(ghost.size(), 10u);
  }
}

std::unique_ptr<QdCache> MakeQdLru(size_t probation, size_t main) {
  return std::make_unique<QdCache>(probation,
                                   std::make_unique<LruPolicy>(main));
}

TEST(QdCacheTest, MissEntersProbation) {
  auto qd = MakeQdLru(2, 8);
  EXPECT_FALSE(qd->Access(1));
  EXPECT_EQ(qd->probation_size(), 1u);
  EXPECT_EQ(qd->main().size(), 0u);
  EXPECT_TRUE(qd->Contains(1));
}

TEST(QdCacheTest, ProbationHitSetsBitWithoutMoving) {
  auto qd = MakeQdLru(2, 8);
  qd->Access(1);
  EXPECT_TRUE(qd->Access(1));
  EXPECT_EQ(qd->probation_size(), 1u);
  EXPECT_EQ(qd->main().size(), 0u);  // promotion is lazy: at eviction time
}

TEST(QdCacheTest, AccessedEvicteePromotedToMain) {
  auto qd = MakeQdLru(2, 8);
  qd->Access(1);
  qd->Access(1);  // mark accessed
  qd->Access(2);
  qd->Access(3);  // probation full (2): evicts 1 -> promoted to main
  EXPECT_EQ(qd->promotions(), 1u);
  EXPECT_TRUE(qd->main().Contains(1));
  EXPECT_TRUE(qd->Contains(1));
}

TEST(QdCacheTest, UntouchedEvicteeGoesToGhost) {
  auto qd = MakeQdLru(2, 8);
  qd->Access(1);
  qd->Access(2);
  qd->Access(3);  // evicts 1 (never re-accessed) -> ghost
  EXPECT_EQ(qd->quick_demotions(), 1u);
  EXPECT_FALSE(qd->Contains(1));
  EXPECT_TRUE(qd->ghost().Contains(1));
}

TEST(QdCacheTest, GhostHitAdmitsDirectlyToMain) {
  auto qd = MakeQdLru(2, 8);
  qd->Access(1);
  qd->Access(2);
  qd->Access(3);  // 1 -> ghost
  ASSERT_TRUE(qd->ghost().Contains(1));
  EXPECT_FALSE(qd->Access(1));  // still a miss...
  EXPECT_TRUE(qd->main().Contains(1));  // ...but admitted straight to main
  EXPECT_EQ(qd->ghost_admissions(), 1u);
  EXPECT_FALSE(qd->ghost().Contains(1));  // consumed
}

TEST(QdCacheTest, TotalSizeBounded) {
  auto qd = MakeQdLru(3, 12);
  Rng rng(103);
  for (int i = 0; i < 20000; ++i) {
    qd->Access(rng.NextBounded(200));
    ASSERT_LE(qd->size(), 15u);
    ASSERT_LE(qd->probation_size(), 3u);
  }
}

TEST(QdCacheTest, FiltersOneHitWonders) {
  // One-hit wonders must never reach the main cache.
  auto qd = MakeQdLru(5, 45);
  for (ObjectId id = 0; id < 10000; ++id) {
    qd->Access(id);  // every object touched exactly once
  }
  EXPECT_EQ(qd->main().size(), 0u);
  EXPECT_EQ(qd->promotions(), 0u);
  EXPECT_EQ(qd->ghost_admissions(), 0u);
}

TEST(PolicyFactoryTest, BuildsEveryKnownPolicy) {
  ZipfTraceConfig config;
  config.num_requests = 200;
  config.num_objects = 50;
  config.seed = 105;
  const Trace trace = GenerateZipf(config);
  for (const std::string& name : KnownPolicyNames()) {
    auto policy = MakePolicy(name, 20, &trace.requests);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->capacity(), 20u) << name;
  }
}

TEST(PolicyFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakePolicy("no-such-policy", 10), nullptr);
  EXPECT_EQ(MakePolicy("qd-no-such-policy", 10), nullptr);
}

TEST(PolicyFactoryTest, BeladyRequiresTrace) {
  EXPECT_EQ(MakePolicy("belady", 10, nullptr), nullptr);
}

TEST(PolicyFactoryTest, QdSplitIsTenPercent) {
  auto policy = MakePolicy("qd-lru", 100);
  ASSERT_NE(policy, nullptr);
  auto* qd = dynamic_cast<QdCache*>(policy.get());
  ASSERT_NE(qd, nullptr);
  EXPECT_EQ(qd->probation_capacity(), 10u);
  EXPECT_EQ(qd->main().capacity(), 90u);
  EXPECT_EQ(qd->name(), "qd-lru");
}

TEST(PolicyFactoryTest, QdLpFifoUsesTwoBitClockMain) {
  auto policy = MakePolicy("qd-lp-fifo", 100);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "qd-lp-fifo");
  auto* qd = dynamic_cast<QdCache*>(policy.get());
  ASSERT_NE(qd, nullptr);
  EXPECT_EQ(qd->main().name(), "clock2");
}

TEST(S3FifoTest, BasicFlow) {
  S3FifoPolicy s3(10);  // small = 1, main = 9
  EXPECT_FALSE(s3.Access(1));
  EXPECT_EQ(s3.small_size(), 1u);
  EXPECT_TRUE(s3.Access(1));  // freq bump
  s3.Access(2);  // small over its share -> 1 promoted to main (freq >= 1)
  EXPECT_TRUE(s3.Contains(1));
}

TEST(S3FifoTest, OneHitWondersFiltered) {
  S3FifoPolicy s3(50, 0.10);
  for (ObjectId id = 0; id < 5000; ++id) {
    s3.Access(id);
  }
  EXPECT_EQ(s3.main_size(), 0u);  // nothing ever proved reuse
  EXPECT_LE(s3.size(), 50u);
}

TEST(S3FifoTest, GhostHitGoesToMain) {
  S3FifoPolicy s3(20, 0.10);
  s3.Access(1);
  // Flood small queue so 1 is quick-demoted into the ghost.
  for (ObjectId id = 100; id < 120; ++id) {
    s3.Access(id);
  }
  ASSERT_FALSE(s3.Contains(1));
  EXPECT_FALSE(s3.Access(1));  // ghost hit -> main
  EXPECT_GT(s3.main_size(), 0u);
  EXPECT_TRUE(s3.Contains(1));
}

TEST(S3FifoTest, CapacityRespected) {
  S3FifoPolicy s3(16);
  Rng rng(107);
  for (int i = 0; i < 30000; ++i) {
    s3.Access(rng.NextBounded(300));
    ASSERT_LE(s3.size(), 16u);
  }
}

TEST(SieveTest, VisitedObjectsSurviveTheHand) {
  SievePolicy sieve(3);
  sieve.Access(1);
  sieve.Access(2);
  sieve.Access(3);
  sieve.Access(1);  // visited
  sieve.Access(4);  // hand sweeps from tail: 1 spared, 2 evicted
  EXPECT_TRUE(sieve.Contains(1));
  EXPECT_FALSE(sieve.Contains(2));
  EXPECT_TRUE(sieve.Contains(3));
  EXPECT_TRUE(sieve.Contains(4));
}

TEST(SieveTest, HandDoesNotMoveSurvivors) {
  // After sparing 1 the hand rests just before it (toward head); the next
  // eviction continues from there rather than rescanning the tail.
  SievePolicy sieve(3);
  sieve.Access(1);
  sieve.Access(2);
  sieve.Access(3);
  sieve.Access(1);  // visit 1 (tail)
  sieve.Access(4);  // evict 2; hand now at 3
  sieve.Access(1);  // visit 1 again — but hand is already past it
  sieve.Access(5);  // evict 3 (hand position), not re-protected 1
  EXPECT_TRUE(sieve.Contains(1));
  EXPECT_FALSE(sieve.Contains(3));
}

TEST(SieveTest, CapacityRespected) {
  SievePolicy sieve(16);
  Rng rng(109);
  for (int i = 0; i < 30000; ++i) {
    sieve.Access(rng.NextBounded(300));
    ASSERT_LE(sieve.size(), 16u);
  }
}

TEST(SieveTest, AllVisitedWrapsAndEvicts) {
  SievePolicy sieve(3);
  sieve.Access(1);
  sieve.Access(2);
  sieve.Access(3);
  sieve.Access(1);
  sieve.Access(2);
  sieve.Access(3);  // all visited
  sieve.Access(4);  // must clear bits and evict someone
  EXPECT_EQ(sieve.size(), 3u);
  EXPECT_TRUE(sieve.Contains(4));
}

}  // namespace
}  // namespace qdlp
