// Size-aware subsystem: sized traces, byte-budget policies, GDSF, the
// size-aware QD-LP-FIFO, and shared property sweeps.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/sized/gdsf.h"
#include "src/sized/sized_basic.h"
#include "src/sized/sized_factory.h"
#include "src/sized/sized_qdlp.h"
#include "src/sized/sized_trace.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

SizedTrace WebTrace(uint64_t seed = 601, uint64_t requests = 30000) {
  SizedWebConfig config;
  config.num_requests = requests;
  config.num_objects = 3000;
  config.seed = seed;
  return GenerateSizedWeb(config);
}

TEST(SizedTraceTest, SizesAreStablePerObject) {
  const SizedTrace trace = WebTrace();
  std::unordered_map<ObjectId, uint64_t> seen;
  for (const SizedRequest& request : trace.requests) {
    const auto [it, inserted] = seen.try_emplace(request.id, request.size);
    ASSERT_EQ(it->second, request.size) << "object changed size mid-trace";
  }
  EXPECT_EQ(trace.num_objects, seen.size());
}

TEST(SizedTraceTest, SizesWithinBounds) {
  SizedWebConfig config;
  config.num_requests = 20000;
  config.min_size = 100;
  config.max_size = 10000;
  config.seed = 603;
  const SizedTrace trace = GenerateSizedWeb(config);
  for (const SizedRequest& request : trace.requests) {
    ASSERT_GE(request.size, 100u);
    ASSERT_LE(request.size, 10000u);
  }
}

TEST(SizedTraceTest, SizeDistributionHasHeavyTail) {
  const SizedTrace trace = WebTrace(605);
  uint64_t max_size = 0;
  double sum = 0.0;
  std::vector<uint64_t> sizes;
  for (const SizedRequest& request : trace.requests) {
    max_size = std::max(max_size, request.size);
    sum += static_cast<double>(request.size);
    sizes.push_back(request.size);
  }
  std::sort(sizes.begin(), sizes.end());
  const uint64_t median = sizes[sizes.size() / 2];
  const double mean = sum / static_cast<double>(sizes.size());
  EXPECT_GT(mean, static_cast<double>(median));  // right-skew
  EXPECT_GT(max_size, median * 50);              // heavy tail
}

TEST(SizedTraceTest, FromUniformPreservesRequests) {
  Trace uniform;
  uniform.requests = {1, 2, 1};
  uniform.num_objects = 2;
  const SizedTrace sized = FromUniform(uniform, 4096);
  ASSERT_EQ(sized.requests.size(), 3u);
  EXPECT_EQ(sized.requests[0].id, 1u);
  EXPECT_EQ(sized.requests[0].size, 4096u);
  EXPECT_EQ(sized.total_object_bytes, 2u * 4096u);
}

class SizedPolicyPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SizedPolicyPropertyTest, BytesNeverExceedCapacity) {
  const SizedTrace trace = WebTrace(607);
  constexpr uint64_t kCapacity = 2 << 20;  // 2 MiB
  auto policy = MakeSizedPolicy(GetParam(), kCapacity);
  ASSERT_NE(policy, nullptr);
  for (const SizedRequest& request : trace.requests) {
    policy->Access(request);
    ASSERT_LE(policy->used_bytes(), kCapacity);
  }
}

TEST_P(SizedPolicyPropertyTest, OversizedObjectsBypassed) {
  auto policy = MakeSizedPolicy(GetParam(), 1000);
  ASSERT_NE(policy, nullptr);
  EXPECT_FALSE(policy->Access(1, 5000));  // larger than the cache
  EXPECT_FALSE(policy->Contains(1));
  EXPECT_EQ(policy->used_bytes(), 0u);
}

TEST_P(SizedPolicyPropertyTest, HitAfterAdmission) {
  auto policy = MakeSizedPolicy(GetParam(), 1 << 20);
  ASSERT_NE(policy, nullptr);
  EXPECT_FALSE(policy->Access(42, 1000));
  EXPECT_TRUE(policy->Contains(42));
  EXPECT_TRUE(policy->Access(42, 1000));
}

TEST_P(SizedPolicyPropertyTest, DeterministicReplay) {
  const SizedTrace trace = WebTrace(609, 10000);
  const auto run = [&] {
    auto policy = MakeSizedPolicy(GetParam(), 4 << 20);
    return ReplaySizedTrace(*policy, trace).hits;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(SizedPolicyPropertyTest, ByteAndObjectRatiosInRange) {
  const SizedTrace trace = WebTrace(611, 15000);
  auto policy = MakeSizedPolicy(GetParam(), 4 << 20);
  const SizedSimResult result = ReplaySizedTrace(*policy, trace);
  EXPECT_GE(result.object_miss_ratio(), 0.0);
  EXPECT_LE(result.object_miss_ratio(), 1.0);
  EXPECT_GE(result.byte_miss_ratio(), 0.0);
  EXPECT_LE(result.byte_miss_ratio(), 1.0);
  EXPECT_GT(result.hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSized, SizedPolicyPropertyTest,
    ::testing::ValuesIn(KnownSizedPolicyNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(SizedLruTest, EvictsUntilFits) {
  SizedLruPolicy lru(1000);
  lru.Access(1, 400);
  lru.Access(2, 400);
  lru.Access(3, 500);  // evicts LRU object 1; 400 + 500 then fits
  EXPECT_FALSE(lru.Contains(1));
  EXPECT_TRUE(lru.Contains(2));
  EXPECT_TRUE(lru.Contains(3));
  EXPECT_EQ(lru.used_bytes(), 900u);

  lru.Access(4, 900);  // needs the whole budget: evicts both survivors
  EXPECT_FALSE(lru.Contains(2));
  EXPECT_FALSE(lru.Contains(3));
  EXPECT_TRUE(lru.Contains(4));
  EXPECT_EQ(lru.used_bytes(), 900u);
}

TEST(SizedClockTest, ReinsertionProtectsAccessed) {
  SizedClockPolicy clock(1000, 1);
  clock.Access(1, 400);
  clock.Access(2, 400);
  clock.Access(1, 400);  // protect 1
  clock.Access(3, 400);  // sweep: 1 reinserted, 2 evicted
  EXPECT_TRUE(clock.Contains(1));
  EXPECT_FALSE(clock.Contains(2));
  EXPECT_TRUE(clock.Contains(3));
}

TEST(GdsfTest, PrefersSmallObjectsAtEqualFrequency) {
  // Two candidates with equal frequency: the larger has lower priority
  // (frequency/size), so it is evicted first.
  GdsfPolicy gdsf(1000);
  gdsf.Access(1, 100);  // small
  gdsf.Access(2, 800);  // large
  gdsf.Access(3, 500);  // needs 400 bytes freed: evicts 2 (lowest f/s)
  EXPECT_TRUE(gdsf.Contains(1));
  EXPECT_FALSE(gdsf.Contains(2));
  EXPECT_TRUE(gdsf.Contains(3));
}

TEST(GdsfTest, FrequencyOvercomesSize) {
  GdsfPolicy gdsf(1000);
  gdsf.Access(2, 600);
  for (int i = 0; i < 20; ++i) {
    gdsf.Access(2, 600);  // drive 2's frequency up: priority 21/600
  }
  gdsf.Access(1, 100);  // priority 1/100 < 21/600
  gdsf.Access(3, 400);  // needs 100 bytes freed: evicts 1, not frequent 2
  EXPECT_TRUE(gdsf.Contains(2));
  EXPECT_FALSE(gdsf.Contains(1));
  EXPECT_TRUE(gdsf.Contains(3));
}

TEST(GdsfTest, InflationMonotonicallyIncreases) {
  GdsfPolicy gdsf(2000);
  Rng rng(613);
  double last = 0.0;
  for (int i = 0; i < 5000; ++i) {
    gdsf.Access(rng.NextBounded(500), 100 + rng.NextBounded(400));
    ASSERT_GE(gdsf.inflation(), last);
    last = gdsf.inflation();
  }
}

TEST(SizedGhostTest, ByteBudgetEnforced) {
  SizedGhost ghost(1000);
  for (ObjectId id = 0; id < 100; ++id) {
    ghost.Insert(id, 100);
    ASSERT_LE(ghost.charged_bytes(), 1000u);
  }
  // Only the ~10 most recent fit.
  EXPECT_FALSE(ghost.Contains(0));
  EXPECT_TRUE(ghost.Contains(99));
}

TEST(SizedGhostTest, ConsumeReleasesCharge) {
  SizedGhost ghost(1000);
  ghost.Insert(1, 600);
  ghost.Insert(2, 400);
  EXPECT_EQ(ghost.charged_bytes(), 1000u);
  EXPECT_TRUE(ghost.Consume(1));
  EXPECT_EQ(ghost.charged_bytes(), 400u);
  EXPECT_FALSE(ghost.Consume(1));
}

TEST(SizedQdLpFifoTest, FlowCountersBehave) {
  SizedQdLpFifo cache(10000, 0.10);  // probation = 1000 bytes
  cache.Access(1, 300);
  cache.Access(1, 300);  // accessed bit
  cache.Access(2, 300);
  cache.Access(3, 300);
  cache.Access(4, 300);  // probation over 1000: evicts 1 -> promoted
  EXPECT_GE(cache.promotions(), 1u);
  EXPECT_TRUE(cache.main().Contains(1));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(SizedQdLpFifoTest, GhostRescueGoesToMain) {
  SizedQdLpFifo cache(10000, 0.10);
  cache.Access(1, 300);
  cache.Access(2, 300);
  cache.Access(3, 300);
  cache.Access(4, 300);  // 1 quick-demoted -> ghost
  ASSERT_FALSE(cache.Contains(1));
  EXPECT_FALSE(cache.Access(1, 300));  // ghost hit: miss but straight to main
  EXPECT_TRUE(cache.main().Contains(1));
  EXPECT_EQ(cache.ghost_admissions(), 1u);
}

TEST(SizedQdLpFifoTest, OversizedForProbationGoesToMain) {
  SizedQdLpFifo cache(10000, 0.10);  // probation 1000 bytes
  EXPECT_FALSE(cache.Access(7, 5000));
  EXPECT_TRUE(cache.main().Contains(7));
}

TEST(SizedQdLpFifoTest, FiltersOneHitWondersByBytes) {
  SizedQdLpFifo cache(1 << 20, 0.10);
  for (ObjectId id = 0; id < 5000; ++id) {
    cache.Access(id, 1000);  // one-touch stream, all probation-sized
  }
  EXPECT_EQ(cache.promotions(), 0u);
  EXPECT_EQ(cache.main().object_count(), 0u);
}

TEST(SizedComparisonTest, QdLpBeatsLruOnWonderHeavyWeb) {
  SizedWebConfig config;
  config.num_requests = 60000;
  config.num_objects = 5000;
  config.one_hit_wonder_fraction = 0.25;
  config.seed = 615;
  const SizedTrace trace = GenerateSizedWeb(config);
  const uint64_t capacity = trace.total_object_bytes / 20;
  auto lru = MakeSizedPolicy("sized-lru", capacity);
  auto qdlp = MakeSizedPolicy("sized-qd-lp-fifo", capacity);
  const auto lru_result = ReplaySizedTrace(*lru, trace);
  const auto qdlp_result = ReplaySizedTrace(*qdlp, trace);
  EXPECT_LT(qdlp_result.object_miss_ratio(), lru_result.object_miss_ratio());
}

}  // namespace
}  // namespace qdlp
