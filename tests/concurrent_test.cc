// Thread-safe caches: single-thread semantics, multi-thread stress, and
// agreement with the sequential policies where applicable.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/locked_lru.h"
#include "src/concurrent/sharded_lru.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

TEST(GlobalLockLruTest, MatchesSequentialLruSingleThreaded) {
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 500;
  config.seed = 401;
  const Trace trace = GenerateZipf(config);
  GlobalLockLruCache concurrent(100);
  LruPolicy sequential(100);
  for (const ObjectId id : trace.requests) {
    ASSERT_EQ(concurrent.Get(id), sequential.Access(id));
  }
}

class ConcurrentStressTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<ConcurrentCache> MakeCache(size_t capacity) {
    const std::string& kind = GetParam();
    if (kind == "global-lru") {
      return std::make_unique<GlobalLockLruCache>(capacity);
    }
    if (kind == "sharded-lru") {
      return std::make_unique<ShardedLruCache>(capacity, 8);
    }
    return std::make_unique<ConcurrentClockCache>(capacity, 1, 8);
  }
};

TEST_P(ConcurrentStressTest, ParallelHammerProducesSaneHitCounts) {
  constexpr size_t kCapacity = 2000;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50000;
  auto cache = MakeCache(kCapacity);
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      ZipfSampler zipf(10000, 1.0);
      uint64_t local_hits = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        local_hits += cache->Get(zipf.Sample(rng)) ? 1 : 0;
      }
      hits.fetch_add(local_hits);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double hit_ratio = static_cast<double>(hits.load()) /
                           (static_cast<double>(kThreads) * kOpsPerThread);
  // Zipf(1.0) over 10k keys with a 2k cache: hit ratio lands well inside
  // (0.5, 0.99) for any sane policy; 0 or 1 would indicate corruption.
  EXPECT_GT(hit_ratio, 0.5);
  EXPECT_LT(hit_ratio, 0.99);
}

TEST_P(ConcurrentStressTest, DisjointKeySpacesDoNotInterfere) {
  constexpr size_t kCapacity = 4000;
  constexpr int kThreads = 4;
  auto cache = MakeCache(kCapacity);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread loops over a private working set much smaller than its
      // fair share; after warmup, everything must be a hit.
      const ObjectId base = static_cast<ObjectId>(t) << 32;
      constexpr int kSetSize = 200;
      for (int round = 0; round < 50; ++round) {
        for (int k = 0; k < kSetSize; ++k) {
          const bool hit = cache->Get(base + static_cast<ObjectId>(k));
          if (round > 10 && !hit) {
            // A miss after warmup means another thread's keys displaced ours
            // (possible under global eviction, but should be rare with
            // capacity 4000 vs 800 live keys). Count gross failures only.
            failed.store(true);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(failed.load());
}

INSTANTIATE_TEST_SUITE_P(Kinds, ConcurrentStressTest,
                         ::testing::Values("global-lru", "sharded-lru",
                                           "clock"));

TEST(ConcurrentClockTest, SingleThreadBehavesLikeClock) {
  // With one shard and one thread the concurrent clock is a plain CLOCK; we
  // check the second-chance property rather than exact slot equivalence.
  ConcurrentClockCache cache(3, 1, 1);
  cache.Get(1);
  cache.Get(2);
  cache.Get(3);
  EXPECT_TRUE(cache.Get(1));   // protect 1
  EXPECT_FALSE(cache.Get(4));  // evicts 2 (first zero-counter after 1)
  EXPECT_TRUE(cache.Get(1));
  EXPECT_TRUE(cache.Get(3));
  EXPECT_TRUE(cache.Get(4));
}

TEST(ConcurrentClockTest, CapacityEnforcedUnderThreads) {
  constexpr size_t kCapacity = 500;
  ConcurrentClockCache cache(kCapacity, 2, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 30000; ++i) {
        cache.Get(rng.NextBounded(5000));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Every key must still be resolvable without crashes; spot-check gets.
  for (ObjectId id = 0; id < 100; ++id) {
    cache.Get(id);
  }
  SUCCEED();
}

TEST(ShardedLruTest, CapacityDistributedAcrossShards) {
  ShardedLruCache cache(10, 3);  // 4+3+3
  // Insert many keys; no crash, and hits work.
  for (ObjectId id = 0; id < 1000; ++id) {
    cache.Get(id);
  }
  cache.Get(999);
  SUCCEED();
}

// Regression: per-shard capacity must never truncate to zero and the shard
// capacities must sum to the requested total. With integer division alone,
// capacity 10 over 16 shards gave every shard zero slots (nothing was ever
// cacheable) and capacity 10 over 3 shards summed to 9.
TEST(ShardedLruTest, CapacityNotTruncatedWithMoreShardsThanObjects) {
  ShardedLruCache cache(10, 16);  // shards clamp to 10, one slot each
  EXPECT_FALSE(cache.Get(42));
  EXPECT_TRUE(cache.Get(42)) << "a just-admitted key must hit";
  cache.CheckInvariants();  // asserts sum(shard capacities) == 10
}

TEST(ShardedLruTest, RemainderCapacityIsDistributed) {
  // 7 over 3 shards: 3+2+2, not 2+2+2.
  ShardedLruCache cache(7, 3);
  cache.CheckInvariants();
  for (ObjectId id = 0; id < 100; ++id) {
    cache.Get(id);
  }
  cache.CheckInvariants();
  // Sum of shard sizes can reach the full 7 under a spread key set.
  ShardedLruCache one_each(5, 5);
  one_each.CheckInvariants();
}

}  // namespace
}  // namespace qdlp
