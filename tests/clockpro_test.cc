// CLOCK-Pro.

#include <gtest/gtest.h>

#include "src/policies/clockpro.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(ClockProTest, BasicHitMiss) {
  ClockProPolicy clockpro(4);
  EXPECT_FALSE(clockpro.Access(1));
  EXPECT_TRUE(clockpro.Access(1));
  EXPECT_TRUE(clockpro.Contains(1));
}

TEST(ClockProTest, CapacityRespected) {
  ClockProPolicy clockpro(16);
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 500;
  config.seed = 1301;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    clockpro.Access(id);
    ASSERT_LE(clockpro.size(), 16u);
    ASSERT_EQ(clockpro.size(), clockpro.hot_count() + clockpro.cold_count());
    ASSERT_LE(clockpro.nonresident_count(), 16u);
    ASSERT_GE(clockpro.cold_target(), 1u);
    ASSERT_LE(clockpro.cold_target(), 16u);
  }
  EXPECT_EQ(clockpro.size(), 16u);
}

TEST(ClockProTest, TestPeriodHitAdmitsHot) {
  ClockProPolicy clockpro(4);
  clockpro.Access(1);
  // Push 1 through its resident test period without re-access.
  for (ObjectId id = 2; id <= 8; ++id) {
    clockpro.Access(id);
  }
  ASSERT_FALSE(clockpro.Contains(1));
  ASSERT_GT(clockpro.nonresident_count(), 0u);
  clockpro.Access(1);  // non-resident test hit: admitted hot
  EXPECT_TRUE(clockpro.Contains(1));
  EXPECT_GE(clockpro.hot_count(), 1u);
}

TEST(ClockProTest, ResidentTestHitPromotes) {
  ClockProPolicy clockpro(4);
  clockpro.Access(1);
  clockpro.Access(1);  // referenced while cold-resident
  // Force the cold hand over it.
  for (ObjectId id = 2; id <= 6; ++id) {
    clockpro.Access(id);
  }
  // 1 must have been promoted rather than evicted.
  EXPECT_TRUE(clockpro.Contains(1));
}

TEST(ClockProTest, ScanResistanceBeatsLru) {
  constexpr size_t kCapacity = 100;
  ClockProPolicy clockpro(kCapacity);
  LruPolicy lru(kCapacity);
  Rng rng(1303);
  ObjectId scan_id = 1u << 21;
  uint64_t clockpro_hits = 0;
  uint64_t lru_hits = 0;
  for (int i = 0; i < 60000; ++i) {
    const ObjectId id = rng.NextBool(0.5) ? rng.NextBounded(80) : scan_id++;
    clockpro_hits += clockpro.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_GT(clockpro_hits, lru_hits);
}

TEST(ClockProTest, ColdTargetAdapts) {
  ClockProPolicy clockpro(32);
  const size_t initial = clockpro.cold_target();
  ScanLoopConfig config;
  config.num_requests = 30000;
  config.hot_objects = 300;
  config.seed = 1305;
  const Trace trace = GenerateScanLoop(config);
  bool moved = false;
  for (const ObjectId id : trace.requests) {
    clockpro.Access(id);
    if (clockpro.cold_target() != initial) {
      moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace qdlp
