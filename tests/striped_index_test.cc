// StripedAtomicIndex: single-writer semantics, differential testing against
// FlatMap, and lock-free-reader stress (a data-race hunting ground for the
// tsan preset; see docs/TESTING.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/concurrent/striped_index.h"
#include "src/util/flat_map.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(StripedIndexTest, InsertFindEraseBasics) {
  StripedAtomicIndex index(/*max_entries=*/64, /*num_stripes=*/4);
  uint32_t value = 0;
  EXPECT_FALSE(index.Find(7, &value));
  EXPECT_EQ(index.size(), 0u);

  index.Insert(7, 70);
  index.Insert(8, 80);
  EXPECT_EQ(index.size(), 2u);
  ASSERT_TRUE(index.Find(7, &value));
  EXPECT_EQ(value, 70u);
  ASSERT_TRUE(index.Find(8, &value));
  EXPECT_EQ(value, 80u);
  EXPECT_TRUE(index.Contains(7));
  EXPECT_FALSE(index.Contains(9));

  EXPECT_TRUE(index.Update(7, 71));
  ASSERT_TRUE(index.Find(7, &value));
  EXPECT_EQ(value, 71u);
  EXPECT_FALSE(index.Update(9, 90));

  EXPECT_TRUE(index.Erase(7));
  EXPECT_FALSE(index.Erase(7));
  EXPECT_FALSE(index.Find(7, &value));
  EXPECT_EQ(index.size(), 1u);
  index.CheckInvariants();
}

TEST(StripedIndexTest, ForEachVisitsEveryLiveEntryOnce) {
  StripedAtomicIndex index(/*max_entries=*/128, /*num_stripes=*/8);
  for (ObjectId id = 0; id < 100; ++id) {
    index.Insert(id, static_cast<uint32_t>(id * 3));
  }
  for (ObjectId id = 0; id < 100; id += 2) {
    EXPECT_TRUE(index.Erase(id));
  }
  std::unordered_map<ObjectId, uint32_t> seen;
  index.ForEach([&](ObjectId id, uint32_t value) {
    EXPECT_TRUE(seen.emplace(id, value).second) << "duplicate id " << id;
  });
  EXPECT_EQ(seen.size(), 50u);
  for (const auto& [id, value] : seen) {
    EXPECT_EQ(id % 2, 1u);
    EXPECT_EQ(value, static_cast<uint32_t>(id * 3));
  }
}

// Differential: random insert/erase/update churn must agree with FlatMap at
// every step. Keys are drawn from a small universe so tombstone reuse,
// pruning, and same-size rebuilds all trigger.
TEST(StripedIndexTest, ChurnMatchesFlatMap) {
  StripedAtomicIndex index(/*max_entries=*/200, /*num_stripes=*/4);
  FlatMap<uint32_t> model;
  Rng rng(12345);
  constexpr uint64_t kUniverse = 300;
  for (int step = 0; step < 60000; ++step) {
    const ObjectId id = rng.NextBounded(kUniverse);
    const uint32_t roll = static_cast<uint32_t>(rng.NextBounded(100));
    if (roll < 45) {
      // Insert if absent (mirrors the caches: Insert requires absence).
      if (!model.Contains(id)) {
        const uint32_t value = static_cast<uint32_t>(step);
        index.Insert(id, value);
        *model.Emplace(id).first = value;
      }
    } else if (roll < 80) {
      const bool erased_model = model.Erase(id);
      EXPECT_EQ(index.Erase(id), erased_model);
    } else {
      uint32_t* entry = model.Find(id);
      if (entry != nullptr) {
        *entry = static_cast<uint32_t>(step);
        EXPECT_TRUE(index.Update(id, static_cast<uint32_t>(step)));
      } else {
        EXPECT_FALSE(index.Update(id, 0));
      }
    }
    if (step % 512 == 0) {
      index.CheckInvariants();
      EXPECT_EQ(index.size(), model.size());
      for (ObjectId probe = 0; probe < kUniverse; ++probe) {
        uint32_t value;
        const uint32_t* expected = model.Find(probe);
        ASSERT_EQ(index.Find(probe, &value), expected != nullptr);
        if (expected != nullptr) {
          EXPECT_EQ(value, *expected);
        }
      }
    }
  }
  index.CheckInvariants();
}

// Growth: inserting far past the construction hint must still work (stripes
// rebuild/double under the seqlock) and keep every entry findable.
TEST(StripedIndexTest, GrowsBeyondConstructionHint) {
  StripedAtomicIndex index(/*max_entries=*/16, /*num_stripes=*/2);
  constexpr ObjectId kCount = 5000;
  for (ObjectId id = 0; id < kCount; ++id) {
    index.Insert(id, static_cast<uint32_t>(id + 1));
  }
  EXPECT_EQ(index.size(), kCount);
  for (ObjectId id = 0; id < kCount; ++id) {
    uint32_t value;
    ASSERT_TRUE(index.Find(id, &value)) << id;
    EXPECT_EQ(value, static_cast<uint32_t>(id + 1));
  }
  index.CheckInvariants();
  EXPECT_GT(index.MemoryBytes(), 0u);
}

// Lock-free readers vs one mutating writer. The writer maintains the
// self-certifying mapping value == f(id), so any torn/stale read a reader
// could observe would break the equality; under TSan this is also the
// data-race probe for the seqlock + release/acquire slot protocol.
TEST(StripedIndexTest, ReadersNeverSeeTornValuesUnderChurn) {
  StripedAtomicIndex index(/*max_entries=*/256, /*num_stripes=*/4);
  constexpr uint64_t kUniverse = 512;
  const auto value_of = [](ObjectId id) {
    return static_cast<uint32_t>(id * 2654435761u + 17);
  };
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_hits{0};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(77 + static_cast<uint64_t>(t));
      uint64_t hits = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const ObjectId id = rng.NextBounded(kUniverse);
        uint32_t value;
        if (index.Find(id, &value)) {
          ++hits;
          if (value != value_of(id)) {
            torn.store(true, std::memory_order_relaxed);
          }
        }
      }
      reader_hits.fetch_add(hits, std::memory_order_relaxed);
    });
  }

  Rng rng(99);
  FlatMap<uint32_t> present;
  for (int step = 0; step < 200000; ++step) {
    const ObjectId id = rng.NextBounded(kUniverse);
    if (present.Contains(id)) {
      present.Erase(id);
      index.Erase(id);
    } else {
      *present.Emplace(id).first = 1;
      index.Insert(id, value_of(id));
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : readers) {
    thread.join();
  }
  EXPECT_FALSE(torn.load());
  EXPECT_GT(reader_hits.load(), 0u);
  index.CheckInvariants();
}

}  // namespace
}  // namespace qdlp
