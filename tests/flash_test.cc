// Flash-cache model: miss ratios, write amplification, and the §2 ordering
// (FIFO WA = 1 < CLOCK < LRU-with-GC).

#include <gtest/gtest.h>

#include "src/flash/flash_model.h"
#include "src/policies/clock.h"
#include "src/policies/fifo.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

Trace FlashTrace(uint64_t seed = 1201) {
  ZipfTraceConfig config;
  config.num_requests = 100000;
  config.num_objects = 8000;
  config.skew = 0.9;
  config.seed = seed;
  return GenerateZipf(config);
}

TEST(LogFlashTest, FifoWriteAmplificationIsExactlyOne) {
  LogFlashCache cache(1000, 100, /*bits=*/0);
  const Trace trace = FlashTrace();
  for (const ObjectId id : trace.requests) {
    cache.Access(id);
  }
  EXPECT_DOUBLE_EQ(cache.stats().write_amplification(), 1.0);
  EXPECT_GT(cache.stats().segments_erased, 0u);
}

TEST(LogFlashTest, FifoMissRatioMatchesPolicyFifo) {
  // Segment-batched reclaim frees a whole segment at once, so occupancy
  // oscillates in [capacity - segment + 1, capacity]; the steady-state miss
  // ratio must still track exact FIFO closely.
  LogFlashCache flash(1000, 100, 0);
  FifoPolicy fifo(1000);
  const Trace trace = FlashTrace(1203);
  uint64_t flash_hits = 0;
  uint64_t fifo_hits = 0;
  for (const ObjectId id : trace.requests) {
    flash_hits += flash.Access(id) ? 1 : 0;
    fifo_hits += fifo.Access(id) ? 1 : 0;
  }
  const double denom = static_cast<double>(trace.requests.size());
  EXPECT_NEAR(static_cast<double>(flash_hits) / denom,
              static_cast<double>(fifo_hits) / denom, 0.02);
}

TEST(LogFlashTest, ClockPaysForReinsertions) {
  LogFlashCache clock_flash(1000, 100, /*bits=*/1);
  const Trace trace = FlashTrace(1205);
  for (const ObjectId id : trace.requests) {
    clock_flash.Access(id);
  }
  EXPECT_GT(clock_flash.stats().write_amplification(), 1.0);
  // ...but buys a lower miss ratio than flash-FIFO.
  LogFlashCache fifo_flash(1000, 100, 0);
  for (const ObjectId id : trace.requests) {
    fifo_flash.Access(id);
  }
  EXPECT_LT(clock_flash.stats().miss_ratio(), fifo_flash.stats().miss_ratio());
}

TEST(LogFlashTest, ClockMissRatioMatchesPolicyClock) {
  // Segment-batched reclaim with reinsertion is still CLOCK semantically?
  // Not exactly request-for-request (the hand moves a segment at a time),
  // but the steady-state miss ratio must land very close.
  LogFlashCache flash(2000, 100, 1);
  ClockPolicy clock(2000, 1);
  const Trace trace = FlashTrace(1207);
  uint64_t flash_hits = 0;
  uint64_t clock_hits = 0;
  for (const ObjectId id : trace.requests) {
    flash_hits += flash.Access(id) ? 1 : 0;
    clock_hits += clock.Access(id) ? 1 : 0;
  }
  const double flash_ratio =
      static_cast<double>(flash_hits) / static_cast<double>(trace.requests.size());
  const double clock_ratio =
      static_cast<double>(clock_hits) / static_cast<double>(trace.requests.size());
  EXPECT_NEAR(flash_ratio, clock_ratio, 0.02);
}

TEST(LruFlashTest, ResidencyBoundedAndGcRuns) {
  LruFlashCache cache(1000, 100);
  const Trace trace = FlashTrace(1209);
  for (const ObjectId id : trace.requests) {
    cache.Access(id);
    ASSERT_LE(cache.resident(), 1000u);
  }
  EXPECT_GT(cache.stats().segments_erased, 0u);
  EXPECT_GT(cache.stats().write_amplification(), 1.0);  // GC rewrites
}

TEST(LruFlashTest, MissRatioMatchesPolicyLru) {
  // Logical behaviour is exactly LRU; only the device bookkeeping differs.
  LruFlashCache flash(1000, 100);
  LruPolicy lru(1000);
  const Trace trace = FlashTrace(1211);
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    ASSERT_EQ(flash.Access(trace.requests[i]), lru.Access(trace.requests[i]))
        << "diverged at " << i;
  }
}

TEST(QdLpFlashTest, WonderHeavyTrafficIsWriteCheap) {
  // Quick demotion drops one-hit wonders with their segment: they cost one
  // write each and no reinsertions, so WA stays near 1 even under churn.
  QdLpFlashCache cache(1000, 100);
  Rng rng(1213);
  ObjectId wonder = 1u << 22;
  ZipfSampler zipf(700, 1.0);
  for (int i = 0; i < 100000; ++i) {
    cache.Access(rng.NextBool(0.5) ? zipf.Sample(rng) : wonder++);
  }
  EXPECT_LT(cache.stats().write_amplification(), 1.3);
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(RipqLruFlashTest, MissRatioMatchesPolicyLruExactly) {
  RipqLruFlashCache flash(1000, 100);
  LruPolicy lru(1000);
  const Trace trace = FlashTrace(1217);
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    ASSERT_EQ(flash.Access(trace.requests[i]), lru.Access(trace.requests[i]))
        << "diverged at " << i;
  }
}

TEST(RipqLruFlashTest, HotObjectsRewrittenEveryLap) {
  // A hot working set plus one-touch churn: the churn drives device laps,
  // and every lap must rewrite the (retained) hot set — WA well above 1.
  RipqLruFlashCache cache(1000, 100);
  for (ObjectId id = 0; id < 900; ++id) {
    cache.Access(id);  // establish the hot set
  }
  Rng rng(1219);
  for (int i = 0; i < 50000; ++i) {
    if (rng.NextBool(0.5)) {
      cache.Access(rng.NextBounded(900));
    } else {
      cache.Access((1u << 23) + static_cast<ObjectId>(i));  // churn
    }
  }
  EXPECT_GT(cache.stats().write_amplification(), 2.0);
}

TEST(FlashOrderingTest, WriteAmplificationOrdersAsSection2Claims) {
  // The §2 ordering on a cache-shaped workload: FIFO (=1) <= QD-LP-FIFO and
  // CLOCK, all far below RIPQ-style exact LRU, which rewrites every
  // retained object once per device lap.
  const Trace trace = FlashTrace(1215);
  LogFlashCache fifo(1000, 100, 0);
  LogFlashCache clock(1000, 100, 1);
  QdLpFlashCache qdlp(1000, 100);
  RipqLruFlashCache ripq(1000, 100);
  for (const ObjectId id : trace.requests) {
    fifo.Access(id);
    clock.Access(id);
    qdlp.Access(id);
    ripq.Access(id);
  }
  EXPECT_DOUBLE_EQ(fifo.stats().write_amplification(), 1.0);
  EXPECT_LE(fifo.stats().write_amplification(),
            qdlp.stats().write_amplification());
  EXPECT_LT(qdlp.stats().write_amplification(),
            ripq.stats().write_amplification());
  EXPECT_LT(clock.stats().write_amplification(),
            ripq.stats().write_amplification());
}

}  // namespace
}  // namespace qdlp
