// Simulator, sweeps, residency accounting, MRC.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/policy_factory.h"
#include "src/policies/lru.h"
#include "src/sim/mrc.h"
#include "src/sim/residency.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep.h"
#include "src/trace/generators.h"
#include "src/trace/registry.h"

namespace qdlp {
namespace {

Trace SmallZipfTrace(uint64_t seed = 301) {
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 1000;
  config.seed = seed;
  return GenerateZipf(config);
}

TEST(SimulatorTest, CountsAddUp) {
  const Trace trace = SmallZipfTrace();
  LruPolicy lru(100);
  const SimResult result = ReplayTrace(lru, trace);
  EXPECT_EQ(result.requests, trace.requests.size());
  EXPECT_EQ(result.hits + result.misses(), result.requests);
  EXPECT_GT(result.hits, 0u);
  EXPECT_GT(result.misses(), 0u);
  EXPECT_NEAR(result.miss_ratio() + result.hit_ratio(), 1.0, 1e-12);
}

TEST(SimulatorTest, SimulatePolicyMatchesmanualReplay) {
  const Trace trace = SmallZipfTrace();
  LruPolicy lru(100);
  const SimResult manual = ReplayTrace(lru, trace);
  const SimResult factory = SimulatePolicy("lru", trace, 100);
  EXPECT_EQ(manual.hits, factory.hits);
}

TEST(SimulatorTest, CacheSizesMatchPaperFractions) {
  Trace trace;
  trace.num_objects = 100000;
  const CacheSizes sizes = CacheSizesFor(trace);
  EXPECT_EQ(sizes.small, 100u);   // 0.1%
  EXPECT_EQ(sizes.large, 10000u);  // 10%
}

TEST(SimulatorTest, CacheSizeFloor) {
  Trace trace;
  trace.num_objects = 100;
  EXPECT_EQ(CacheSizeForFraction(trace, 0.001), 10u);  // floor of 10
}

TEST(SimulatorTest, BiggerCacheNeverWorseForLru) {
  // LRU has the inclusion property: strictly larger caches cannot miss more.
  const Trace trace = SmallZipfTrace(303);
  const double mr_small = SimulatePolicy("lru", trace, 50).miss_ratio();
  const double mr_large = SimulatePolicy("lru", trace, 200).miss_ratio();
  EXPECT_LE(mr_large, mr_small);
}

TEST(SweepTest, GridIsCompleteAndDeterministicOrder) {
  std::vector<Trace> traces;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Trace trace = SmallZipfTrace(seed);
    trace.name = "t" + std::to_string(seed);
    trace.dataset = "testset";
    traces.push_back(std::move(trace));
  }
  SweepConfig config;
  config.policies = {"lru", "fifo"};
  config.size_fractions = {0.01, 0.10};
  config.num_threads = 4;
  const auto points = RunSweep(traces, config);
  ASSERT_EQ(points.size(), 3u * 2u * 2u);
  // Trace-major deterministic layout.
  EXPECT_EQ(points[0].trace, "t1");
  EXPECT_EQ(points[0].policy, "lru");
  EXPECT_EQ(points[1].policy, "fifo");
  for (const auto& point : points) {
    EXPECT_GT(point.miss_ratio, 0.0);
    EXPECT_LE(point.miss_ratio, 1.0);
    EXPECT_GT(point.cache_size, 0u);
  }
}

TEST(SweepTest, ParallelMatchesSerial) {
  std::vector<Trace> traces;
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    Trace trace = SmallZipfTrace(seed);
    trace.name = "t" + std::to_string(seed);
    traces.push_back(std::move(trace));
  }
  SweepConfig config;
  config.policies = {"lru", "fifo-reinsertion", "arc"};
  config.size_fractions = {0.05};
  config.num_threads = 1;
  const auto serial = RunSweep(traces, config);
  config.num_threads = 8;
  const auto parallel = RunSweep(traces, config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace, parallel[i].trace);
    EXPECT_EQ(serial[i].policy, parallel[i].policy);
    EXPECT_DOUBLE_EQ(serial[i].miss_ratio, parallel[i].miss_ratio);
  }
}

TEST(SweepTest, WinFractionBasics) {
  std::vector<SweepPoint> points;
  const auto add = [&](const std::string& trace, const std::string& policy,
                       double mr) {
    SweepPoint point;
    point.trace = trace;
    point.dataset = "d";
    point.policy = policy;
    point.size_fraction = 0.1;
    point.miss_ratio = mr;
    points.push_back(point);
  };
  add("t1", "a", 0.2);
  add("t1", "b", 0.3);  // a wins
  add("t2", "a", 0.4);
  add("t2", "b", 0.4);  // tie -> 0.5
  add("t3", "a", 0.5);
  add("t3", "b", 0.1);  // a loses
  EXPECT_DOUBLE_EQ(WinFraction(points, "a", "b", 0.1), 1.5 / 3.0);
  EXPECT_DOUBLE_EQ(WinFraction(points, "b", "a", 0.1), 1.5 / 3.0);
}

// Regression: ties used to require bit-exact equality, but two policies
// that behave identically can accumulate their miss ratios through
// different float paths and differ in the last ulp — the tie then silently
// became a win for one side. Ties are now epsilon-based (1e-9).
TEST(SweepTest, WinFractionTiesAreEpsilonBased) {
  std::vector<SweepPoint> points;
  const auto add = [&](const std::string& trace, const std::string& policy,
                       double mr) {
    SweepPoint point;
    point.trace = trace;
    point.dataset = "d";
    point.policy = policy;
    point.size_fraction = 0.1;
    point.miss_ratio = mr;
    points.push_back(point);
  };
  // Differ by one ulp-ish amount, far below the 1e-9 tie epsilon.
  const double base = 0.3;
  add("t1", "a", base);
  add("t1", "b", base + 1e-12);
  EXPECT_DOUBLE_EQ(WinFraction(points, "a", "b", 0.1), 0.5);
  EXPECT_DOUBLE_EQ(WinFraction(points, "b", "a", 0.1), 0.5);
  // A real difference (above epsilon) is still a win, not a tie.
  add("t2", "a", 0.2);
  add("t2", "b", 0.2001);
  EXPECT_DOUBLE_EQ(WinFraction(points, "a", "b", 0.1), 1.5 / 2.0);
  EXPECT_DOUBLE_EQ(WinFraction(points, "b", "a", 0.1), 0.5 / 2.0);
}

TEST(SweepTest, ReductionsVsBaseline) {
  std::vector<SweepPoint> points;
  SweepPoint p;
  p.trace = "t1";
  p.size_fraction = 0.1;
  p.policy = "x";
  p.miss_ratio = 0.25;
  points.push_back(p);
  p.policy = "fifo";
  p.miss_ratio = 0.50;
  points.push_back(p);
  const auto reductions = ReductionsVsBaseline(points, "x", "fifo", 0.1);
  ASSERT_EQ(reductions.size(), 1u);
  EXPECT_DOUBLE_EQ(reductions[0], 0.5);
}

TEST(ResidencyTest, AccountantTracksResidency) {
  ResidencyAccountant accountant;
  accountant.OnInsert(1, 10);
  accountant.OnEvict(1, 25);
  EXPECT_EQ(accountant.ResidencyOf(1), 15u);
  accountant.OnInsert(1, 30);  // second residency
  accountant.OnEvict(1, 40);
  EXPECT_EQ(accountant.ResidencyOf(1), 25u);
  EXPECT_DOUBLE_EQ(accountant.TotalResidency(), 25.0);
}

TEST(ResidencyTest, FinalizeClosesOpenResidencies) {
  ResidencyAccountant accountant;
  accountant.OnInsert(7, 5);
  accountant.FinalizeAt(20);
  EXPECT_EQ(accountant.ResidencyOf(7), 15u);
}

TEST(ResidencyTest, ListenerIntegrationConservation) {
  // Total residency over the replay must equal (roughly) cache_size x
  // elapsed time once the cache is full: the cache is always exactly full,
  // so all its space-time goes somewhere.
  const Trace trace = SmallZipfTrace(305);
  constexpr size_t kCapacity = 100;
  auto policy = MakePolicy("lru", kCapacity, &trace.requests);
  ResidencyAccountant accountant;
  policy->set_event_sink(&accountant);
  ReplayTrace(*policy, trace);
  accountant.FinalizeAt(policy->now());
  const double elapsed = static_cast<double>(policy->now());
  const double expected = static_cast<double>(kCapacity) * elapsed;
  // Warmup (cache not yet full) makes the true value slightly smaller.
  EXPECT_LE(accountant.TotalResidency(), expected + 1.0);
  EXPECT_GE(accountant.TotalResidency(), expected * 0.9);
}

TEST(ResidencyTest, DecileSharesSumToOne) {
  const Trace trace = SmallZipfTrace(307);
  const ResidencyReport report =
      RunResidencyExperiment("lru", trace, 100);
  double sum = 0.0;
  for (const double share : report.decile_share) {
    EXPECT_GE(share, 0.0);
    sum += share;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(report.miss_ratio, 0.0);
}

TEST(ResidencyTest, BeladySpendsLessOnUnpopularThanLru) {
  // The Fig-3 headline: efficient algorithms spend fewer resources on
  // unpopular objects. Compare the bottom-half share of Belady vs LRU.
  const Trace trace = SmallZipfTrace(309);
  const ResidencyReport lru = RunResidencyExperiment("lru", trace, 50);
  const ResidencyReport belady = RunResidencyExperiment("belady", trace, 50);
  const auto bottom_half = [](const ResidencyReport& report) {
    double sum = 0.0;
    for (size_t decile = 5; decile < kNumDeciles; ++decile) {
      sum += report.decile_share[decile];
    }
    return sum;
  };
  EXPECT_LT(bottom_half(belady), bottom_half(lru));
  EXPECT_LT(belady.miss_ratio, lru.miss_ratio);
}

TEST(MrcTest, CurveHasRequestedPoints) {
  const Trace trace = SmallZipfTrace(311);
  const auto curve = ComputeMrc("lru", trace, {0.01, 0.05, 0.2});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_LT(curve[2].miss_ratio, curve[0].miss_ratio + 1e-12);
  EXPECT_GT(curve[2].cache_size, curve[0].cache_size);
}

TEST(MrcTest, DefaultFractionsAreSorted) {
  const auto fractions = DefaultMrcFractions();
  for (size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GT(fractions[i], fractions[i - 1]);
  }
}

TEST(SimulatorDeathTest, UnknownPolicyDiesNamingItAndTheRegistry) {
  // The abort message must name the offending policy and list the known
  // names, so a typo in a harness config is diagnosable from the output.
  const Trace trace = SmallZipfTrace();
  EXPECT_DEATH(SimulatePolicy("lru-typo", trace, 100),
               "unknown policy \"lru-typo\".*known:.*qd-lp-fifo");
}

TEST(SimulatorDeathTest, BeladyWithoutTraceDiesExplainingWhy) {
  EXPECT_DEATH(MakePolicyOrDie("belady", 100, nullptr),
               "\"belady\" requires the request stream");
}

TEST(IntegrationTest, RegistrySmokeSweep) {
  // End-to-end: a miniature registry swept with the core comparison set.
  const auto traces = MaterializeRegistry(0.02);
  SweepConfig config;
  config.policies = {"lru", "fifo", "fifo-reinsertion", "qd-lp-fifo"};
  config.size_fractions = {0.01};
  const auto points = RunSweep(traces, config);
  EXPECT_EQ(points.size(), traces.size() * 4);
  for (const auto& point : points) {
    EXPECT_GE(point.miss_ratio, 0.0);
    EXPECT_LE(point.miss_ratio, 1.0);
  }
}

}  // namespace
}  // namespace qdlp
