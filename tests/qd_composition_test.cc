// The LEGO claim (§5/§6): QD composes over ANY base eviction algorithm.
// Sweep the QD wrapper across every non-composed base policy and check the
// composition invariants hold regardless of what runs the main cache.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/policy_factory.h"
#include "src/core/qd_cache.h"
#include "src/sim/simulator.h"
#include "src/trace/generators.h"

namespace qdlp {
namespace {

std::vector<std::string> ComposableBases() {
  // Everything the factory knows except offline Belady and already-composed
  // designs.
  std::vector<std::string> bases;
  for (const std::string& name : KnownPolicyNames()) {
    if (name == "belady" || name.rfind("qd-", 0) == 0 || name == "s3fifo" ||
        name == "sieve") {
      continue;
    }
    bases.push_back(name);
  }
  return bases;
}

class QdCompositionTest : public ::testing::TestWithParam<std::string> {};

TEST_P(QdCompositionTest, BuildsAndSplitsBudget) {
  auto policy = MakeQdPolicy(GetParam(), 200);
  ASSERT_NE(policy, nullptr) << GetParam();
  auto* qd = dynamic_cast<QdCache*>(policy.get());
  ASSERT_NE(qd, nullptr);
  EXPECT_EQ(qd->probation_capacity(), 20u);
  EXPECT_EQ(qd->main().capacity(), 180u);
  EXPECT_EQ(policy->capacity(), 200u);
}

TEST_P(QdCompositionTest, InvariantsUnderWebWorkload) {
  PopularityDecayConfig config;
  config.num_requests = 20000;
  config.one_hit_wonder_fraction = 0.2;
  config.seed = 911;
  const Trace trace = GeneratePopularityDecay(config);
  auto policy = MakeQdPolicy(GetParam(), 150);
  ASSERT_NE(policy, nullptr);
  auto* qd = dynamic_cast<QdCache*>(policy.get());
  for (const ObjectId id : trace.requests) {
    const bool was_resident = policy->Contains(id);
    const bool hit = policy->Access(id);
    ASSERT_EQ(hit, was_resident);
    ASSERT_LE(policy->size(), 150u);
    ASSERT_LE(qd->probation_size(), qd->probation_capacity());
  }
  // Flow-conservation: every probation departure is either a promotion or a
  // quick demotion.
  EXPECT_GT(qd->quick_demotions(), 0u);
}

TEST_P(QdCompositionTest, OneHitWondersNeverReachMain) {
  auto policy = MakeQdPolicy(GetParam(), 100);
  ASSERT_NE(policy, nullptr);
  auto* qd = dynamic_cast<QdCache*>(policy.get());
  for (ObjectId id = 0; id < 3000; ++id) {
    policy->Access(id);
  }
  EXPECT_EQ(qd->promotions(), 0u);
  EXPECT_EQ(qd->main().size(), 0u);
}

TEST_P(QdCompositionTest, QdBehavesOnWonderHeavyWebWorkload) {
  // The §4 claim, per base. For the five SOTA algorithms the paper
  // QD-enhances (and the plain recency designs) QD must help outright on a
  // wonder-heavy workload. Bases that already carry their own non-resident
  // history (MQ's Qout, LRU-K's retained histories, LIRS's stack — and the
  // paper itself reports per-trace regressions for QD at small sizes) only
  // need to stay within a bounded regression: QD composes safely, it is not
  // claimed to dominate every filter-bearing algorithm everywhere.
  PopularityDecayConfig config;
  config.num_requests = 60000;
  config.one_hit_wonder_fraction = 0.3;
  config.recency_skew = 0.8;
  config.seed = 913;
  const Trace trace = GeneratePopularityDecay(config);
  const size_t cache_size = static_cast<size_t>(trace.num_objects / 50);
  const SimResult base = SimulatePolicy(GetParam(), trace, cache_size);
  auto qd = MakeQdPolicy(GetParam(), cache_size);
  ASSERT_NE(qd, nullptr);
  const SimResult enhanced = ReplayTrace(*qd, trace);

  const std::set<std::string> strict = {"lru",  "fifo",    "fifo-reinsertion",
                                        "clock2", "clock3", "arc",
                                        "lecar",  "cacheus", "lhd",
                                        "slru",   "lfu",     "random"};
  if (strict.contains(GetParam())) {
    EXPECT_LE(enhanced.miss_ratio(), base.miss_ratio() + 0.01)
        << "QD-" << GetParam() << " regressed vs " << GetParam();
  } else {
    EXPECT_LE(enhanced.miss_ratio(), base.miss_ratio() * 1.15 + 0.01)
        << "QD-" << GetParam() << " regressed catastrophically";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBases, QdCompositionTest, ::testing::ValuesIn(ComposableBases()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace qdlp
