// Batched sweep engine differential: one interleaved pass over the dense
// stream must be observationally identical to replaying each cell alone
// over the original trace — bit-identical hit counts, hence bit-identical
// miss ratios, for every serial policy across every lane of the engine
// (dense index + dense ids, flat index + dense ids, flat index + original
// ids). RunSweep's two engines are likewise pinned against each other,
// points compared field by field in order.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/batch_replay.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep.h"
#include "src/trace/dense_trace.h"
#include "src/trace/generators.h"
#include "src/trace/trace.h"

namespace qdlp {
namespace {

// QDLP_CHECK_INVARIANTS (on in the debug and sanitizer presets) re-runs
// CheckInvariants() after every Access, which is O(resident state) on the
// flat policies and O(universe) on the dense-index lane. At full size that
// turns this suite's millions of replayed requests into an hour-scale run,
// so those builds replay the same grid — every policy, every lane, every
// shape — at 1/8 scale, mirroring how oracle_differential_test sizes
// itself. CacheSizeForFraction floors at 10, so no cell degenerates.
#ifdef QDLP_CHECK_INVARIANTS
constexpr uint64_t kScale = 8;
#else
constexpr uint64_t kScale = 1;
#endif

// The five workload shapes (src/trace/generators.h), sized down so the
// full-policy differential stays inside the tier-1 budget.
std::vector<Trace> TestTraces() {
  std::vector<Trace> traces;
  {
    ZipfTraceConfig config;
    config.num_requests = 20000 / kScale;
    config.num_objects = 3000 / kScale;
    traces.push_back(GenerateZipf(config));
  }
  {
    PopularityDecayConfig config;
    config.num_requests = 20000 / kScale;
    config.initial_objects = 800 / kScale;
    traces.push_back(GeneratePopularityDecay(config));
  }
  {
    ScanLoopConfig config;
    config.num_requests = 20000 / kScale;
    config.hot_objects = 2000 / kScale;
    config.hot_drift_objects = 500 / kScale;
    traces.push_back(GenerateScanLoop(config));
  }
  {
    PhaseChangeConfig config;
    config.num_requests = 20000 / kScale;
    config.working_set = 800 / kScale;
    config.phase_length = 4000 / kScale;
    traces.push_back(GeneratePhaseChange(config));
  }
  {
    HighReuseKvConfig config;
    config.num_requests = 20000 / kScale;
    config.num_objects = 1500 / kScale;
    traces.push_back(GenerateHighReuseKv(config));
  }
  return traces;
}

constexpr double kFractions[] = {0.001, 0.01, 0.10};

// Every registered policy, batched against its own per-cell replay, across
// 5 trace shapes x 3 size fractions. EXPECT_EQ on integer hit counts: the
// engines must agree exactly, not approximately.
TEST(BatchReplayTest, MatchesPerCellReplayForAllPolicies) {
  const std::vector<std::string> policies = KnownPolicyNames();
  for (const Trace& trace : TestTraces()) {
    const DenseTrace dense = DensifyTrace(trace);
    std::vector<BatchCellSpec> cells;
    for (const double fraction : kFractions) {
      const size_t cache_size = CacheSizeForFraction(trace, fraction);
      for (const std::string& policy : policies) {
        cells.push_back(BatchCellSpec{policy, cache_size});
      }
    }
    const std::vector<SimResult> batched =
        BatchReplayTrace(dense, cells, {}, &trace.requests);
    ASSERT_EQ(batched.size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      auto policy =
          MakePolicyOrDie(cells[i].policy, cells[i].cache_size, &trace.requests);
      const SimResult reference = ReplayTrace(*policy, trace);
      EXPECT_EQ(batched[i].hits, reference.hits)
          << trace.name << " " << cells[i].policy << " size "
          << cells[i].cache_size;
      EXPECT_EQ(batched[i].requests, reference.requests);
      EXPECT_EQ(batched[i].cache_size, reference.cache_size);
      EXPECT_EQ(batched[i].policy, reference.policy);
    }
  }
}

// Forcing max_dense_universe = 0 pushes every remap-invariant policy onto
// the flat-index + dense-ids lane; results must not move.
TEST(BatchReplayTest, FlatIndexLaneMatchesDenseIndexLane) {
  ZipfTraceConfig config;
  config.num_requests = 30000 / kScale;
  config.num_objects = 4000 / kScale;
  const Trace trace = GenerateZipf(config);
  const DenseTrace dense = DensifyTrace(trace);
  std::vector<BatchCellSpec> cells;
  for (const char* policy :
       {"fifo", "lru", "fifo-reinsertion", "clock2", "clock3", "sieve",
        "s3fifo", "qd-lp-fifo"}) {
    ASSERT_TRUE(HasDenseVariant(policy)) << policy;
    cells.push_back(BatchCellSpec{policy, 400 / kScale});
  }
  BatchReplayOptions flat_lane;
  flat_lane.max_dense_universe = 0;
  const std::vector<SimResult> with_dense_index =
      BatchReplayTrace(dense, cells, {}, &trace.requests);
  const std::vector<SimResult> with_flat_index =
      BatchReplayTrace(dense, cells, flat_lane, &trace.requests);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(with_dense_index[i].hits, with_flat_index[i].hits)
        << cells[i].policy;
  }
}

// Odd batch sizes exercise the tail-batch handling.
TEST(BatchReplayTest, BatchSizeDoesNotChangeResults) {
  HighReuseKvConfig config;
  config.num_requests = 10000 / kScale;
  config.num_objects = 900 / kScale;
  const Trace trace = GenerateHighReuseKv(config);
  const DenseTrace dense = DensifyTrace(trace);
  const size_t cache_size = 90 / kScale;
  const std::vector<BatchCellSpec> cells = {{"qd-lp-fifo", cache_size},
                                            {"lhd", cache_size},
                                            {"belady", cache_size}};
  std::vector<SimResult> reference =
      BatchReplayTrace(dense, cells, {}, &trace.requests);
  for (const size_t batch_size : {size_t{1}, size_t{7}, size_t{100000}}) {
    BatchReplayOptions options;
    options.batch_size = batch_size;
    const std::vector<SimResult> results =
        BatchReplayTrace(dense, cells, options, &trace.requests);
    for (size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(results[i].hits, reference[i].hits)
          << cells[i].policy << " batch " << batch_size;
    }
  }
}

// Dense policy variants are drop-in equivalent: built directly (no engine
// in between), a dense-backed policy fed dense ids produces the same hit
// sequence as the flat-backed one fed the original ids.
TEST(BatchReplayTest, DensePolicyVariantsMatchFlatDirectly) {
  ScanLoopConfig config;
  config.num_requests = 15000 / kScale;
  config.hot_objects = 1500 / kScale;
  const Trace trace = GenerateScanLoop(config);
  const DenseTrace dense = DensifyTrace(trace);
  const size_t cache_size = 150 / kScale;
  for (const char* name :
       {"fifo", "lru", "clock2", "sieve", "s3fifo", "qd-lp-fifo"}) {
    auto dense_policy = MakeDensePolicy(name, cache_size, dense.num_objects());
    ASSERT_NE(dense_policy, nullptr) << name;
    auto flat_policy = MakePolicyOrDie(name, cache_size);
    EXPECT_EQ(dense_policy->name(), flat_policy->name());
    EXPECT_EQ(dense_policy->capacity(), flat_policy->capacity());
    uint64_t dense_hits = 0;
    uint64_t flat_hits = 0;
    for (size_t i = 0; i < trace.requests.size(); ++i) {
      const bool dense_hit = dense_policy->Access(dense.requests[i]);
      const bool flat_hit = flat_policy->Access(trace.requests[i]);
      ASSERT_EQ(dense_hit, flat_hit) << name << " at request " << i;
      dense_hits += dense_hit ? 1 : 0;
      flat_hits += flat_hit ? 1 : 0;
    }
    EXPECT_EQ(dense_hits, flat_hits);
    dense_policy->CheckInvariants();
    flat_policy->CheckInvariants();
  }
}

// The two RunSweep engines must emit the same points in the same order —
// every field, miss ratios compared as exact doubles.
TEST(BatchReplayTest, SweepEnginesProduceIdenticalPoints) {
  const std::vector<Trace> traces = TestTraces();
  SweepConfig config;
  config.policies = {"fifo", "lru",    "clock2",     "sieve",
                     "s3fifo", "random", "qd-lp-fifo", "arc"};
  config.size_fractions = {0.001, 0.01, 0.10};
  config.num_threads = 2;

  config.engine = SweepEngine::kBatched;
  const std::vector<SweepPoint> batched = RunSweep(traces, config);
  config.engine = SweepEngine::kPerCell;
  const std::vector<SweepPoint> per_cell = RunSweep(traces, config);

  ASSERT_EQ(batched.size(), per_cell.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].trace, per_cell[i].trace) << i;
    EXPECT_EQ(batched[i].dataset, per_cell[i].dataset) << i;
    EXPECT_EQ(batched[i].cls, per_cell[i].cls) << i;
    EXPECT_EQ(batched[i].size_fraction, per_cell[i].size_fraction) << i;
    EXPECT_EQ(batched[i].cache_size, per_cell[i].cache_size) << i;
    EXPECT_EQ(batched[i].policy, per_cell[i].policy) << i;
    // Bit-identical, not approximately equal: both engines accumulate
    // integer hit counts and divide once.
    EXPECT_EQ(batched[i].miss_ratio, per_cell[i].miss_ratio)
        << batched[i].trace << " " << batched[i].policy;
  }
}

}  // namespace
}  // namespace qdlp
