// LHD and Hyperbolic (sampled-eviction policies).

#include <gtest/gtest.h>

#include "src/policies/hyperbolic.h"
#include "src/policies/lhd.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(LhdTest, BasicHitMissAndCapacity) {
  LhdPolicy lhd(8);
  EXPECT_FALSE(lhd.Access(1));
  EXPECT_TRUE(lhd.Access(1));
  for (ObjectId id = 0; id < 500; ++id) {
    lhd.Access(id % 61);
    ASSERT_LE(lhd.size(), 8u);
  }
  EXPECT_EQ(lhd.size(), 8u);
}

TEST(LhdTest, DeterministicForSeed) {
  const auto run = [] {
    LhdPolicy lhd(32);
    ZipfTraceConfig config;
    config.num_requests = 10000;
    config.num_objects = 300;
    config.seed = 73;
    const Trace trace = GenerateZipf(config);
    uint64_t hits = 0;
    for (const ObjectId id : trace.requests) {
      hits += lhd.Access(id) ? 1 : 0;
    }
    return hits;
  };
  EXPECT_EQ(run(), run());
}

TEST(LhdTest, PrefersHotObjectsOverScan) {
  // LHD's hit-density estimate should starve one-touch scan objects.
  LhdPolicy lhd(100);
  LruPolicy lru(100);
  Rng rng(75);
  ObjectId scan_id = 1u << 22;
  uint64_t lhd_hits = 0;
  uint64_t lru_hits = 0;
  for (int i = 0; i < 60000; ++i) {
    ObjectId id;
    if (rng.NextBool(0.5)) {
      id = rng.NextBounded(80);
    } else {
      id = scan_id++;
    }
    lhd_hits += lhd.Access(id) ? 1 : 0;
    lru_hits += lru.Access(id) ? 1 : 0;
  }
  EXPECT_GT(lhd_hits, lru_hits);
}

TEST(HyperbolicTest, BasicHitMissAndCapacity) {
  HyperbolicPolicy hyperbolic(8);
  EXPECT_FALSE(hyperbolic.Access(1));
  EXPECT_TRUE(hyperbolic.Access(1));
  for (ObjectId id = 0; id < 500; ++id) {
    hyperbolic.Access(id % 61);
    ASSERT_LE(hyperbolic.size(), 8u);
  }
}

TEST(HyperbolicTest, EvictsLowFrequencyYoungObjectsFirst) {
  HyperbolicPolicy hyperbolic(10, /*seed=*/1, /*sample_size=*/64);
  // Hot objects 0..7 accessed many times.
  for (int round = 0; round < 20; ++round) {
    for (ObjectId id = 0; id < 8; ++id) {
      hyperbolic.Access(id);
    }
  }
  // Churn interleaved with continued hot traffic: the hot objects' n/age
  // priority stays high while each churn object decays after insertion.
  ObjectId churn = 100;
  for (int round = 0; round < 40; ++round) {
    hyperbolic.Access(churn++);
    for (ObjectId id = 0; id < 8; ++id) {
      hyperbolic.Access(id);
    }
  }
  int retained = 0;
  for (ObjectId id = 0; id < 8; ++id) {
    retained += hyperbolic.Contains(id) ? 1 : 0;
  }
  EXPECT_GE(retained, 6);
}

TEST(HyperbolicTest, FullSamplingFindsGlobalMinimum) {
  // sample_size >= capacity means exact lowest-priority eviction.
  HyperbolicPolicy hyperbolic(4, /*seed=*/1, /*sample_size=*/64);
  hyperbolic.Access(1);
  hyperbolic.Access(1);
  hyperbolic.Access(1);
  hyperbolic.Access(2);
  hyperbolic.Access(2);
  hyperbolic.Access(3);
  hyperbolic.Access(3);
  hyperbolic.Access(4);
  hyperbolic.Access(4);
  // Priorities now: 1 -> 3/t, others ~2/t; 5 inserted evicts the minimum,
  // which cannot be object 1.
  hyperbolic.Access(5);
  EXPECT_TRUE(hyperbolic.Contains(1));
}

}  // namespace
}  // namespace qdlp
