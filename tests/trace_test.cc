#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unordered_set>

#include "src/trace/generators.h"
#include "src/trace/registry.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"

namespace qdlp {
namespace {

TEST(TraceStatsTest, CountsUniqueObjects) {
  EXPECT_EQ(CountUniqueObjects({1, 2, 3, 2, 1}), 3u);
  EXPECT_EQ(CountUniqueObjects({}), 0u);
}

TEST(TraceStatsTest, ComputesFrequencyAndOneHitWonders) {
  Trace trace;
  trace.requests = {1, 1, 1, 2, 3};  // obj 1 x3, obj 2 x1, obj 3 x1
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.num_requests, 5u);
  EXPECT_EQ(stats.num_objects, 3u);
  EXPECT_NEAR(stats.mean_frequency, 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.one_hit_wonder_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.compulsory_miss_ratio, 3.0 / 5.0, 1e-12);
}

TEST(ZipfGeneratorTest, DeterministicAndSized) {
  ZipfTraceConfig config;
  config.num_requests = 5000;
  config.num_objects = 500;
  config.seed = 3;
  const Trace a = GenerateZipf(config);
  const Trace b = GenerateZipf(config);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.requests.size(), 5000u);
  EXPECT_LE(a.num_objects, 500u);
  EXPECT_GT(a.num_objects, 100u);
}

TEST(ZipfGeneratorTest, SeedChangesStream) {
  ZipfTraceConfig config;
  config.num_requests = 1000;
  config.seed = 1;
  const Trace a = GenerateZipf(config);
  config.seed = 2;
  const Trace b = GenerateZipf(config);
  EXPECT_NE(a.requests, b.requests);
}

TEST(PopularityDecayTest, HasOneHitWonders) {
  PopularityDecayConfig config;
  config.num_requests = 50000;
  config.one_hit_wonder_fraction = 0.2;
  config.seed = 5;
  const Trace trace = GeneratePopularityDecay(config);
  const TraceStats stats = ComputeTraceStats(trace);
  // At least the injected one-hit stream should show up as one-hit wonders.
  EXPECT_GT(stats.one_hit_wonder_ratio, 0.2);
  EXPECT_EQ(trace.cls, WorkloadClass::kWeb);
}

TEST(PopularityDecayTest, PopularityDecays) {
  // Objects introduced early should receive less traffic late in the trace
  // than recently-introduced objects.
  PopularityDecayConfig config;
  config.num_requests = 60000;
  config.one_hit_wonder_fraction = 0.0;
  config.seed = 7;
  const Trace trace = GeneratePopularityDecay(config);
  // Compare reuse of first-half-introduced objects in the second half.
  std::unordered_set<ObjectId> first_half;
  const size_t half = trace.requests.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    first_half.insert(trace.requests[i]);
  }
  size_t old_hits = 0;
  for (size_t i = half; i < trace.requests.size(); ++i) {
    old_hits += first_half.contains(trace.requests[i]) ? 1 : 0;
  }
  // With popularity decay, well under half of late traffic goes to old ids.
  EXPECT_LT(static_cast<double>(old_hits) / static_cast<double>(half), 0.5);
}

TEST(ScanLoopTest, ProducesScansAndStaysDeterministic) {
  ScanLoopConfig config;
  config.num_requests = 50000;
  config.seed = 9;
  const Trace a = GenerateScanLoop(config);
  const Trace b = GenerateScanLoop(config);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cls, WorkloadClass::kBlock);
  // Scans create objects outside the hot universe.
  EXPECT_GT(a.num_objects, config.hot_objects / 2);
  // Consecutive-address runs exist (scan signature).
  size_t runs = 0;
  for (size_t i = 1; i < a.requests.size(); ++i) {
    if (a.requests[i] == a.requests[i - 1] + 1) {
      ++runs;
    }
  }
  EXPECT_GT(runs, 100u);
}

TEST(ScanLoopTest, NoScansWhenDisabled) {
  ScanLoopConfig config;
  config.num_requests = 20000;
  config.scan_start_probability = 0.0;
  config.loop_start_probability = 0.0;
  config.hot_objects = 100;
  config.hot_drift_objects = 0;  // stationary popularity
  config.seed = 11;
  const Trace trace = GenerateScanLoop(config);
  EXPECT_LE(trace.num_objects, 100u);
}

TEST(ScanLoopTest, HotSetDriftRetiresOldObjects) {
  ScanLoopConfig config;
  config.num_requests = 40000;
  config.scan_start_probability = 0.0;
  config.loop_start_probability = 0.0;
  config.hot_objects = 500;
  config.hot_drift_objects = 400;
  config.seed = 13;
  const Trace trace = GenerateScanLoop(config);
  // The sliding window introduces ~hot_drift_objects fresh ids.
  EXPECT_GT(trace.num_objects, 500u);
  EXPECT_LE(trace.num_objects, 500u + 400u);
  // Late requests come from the advanced window (its base is ~399 by then).
  EXPECT_GT(trace.requests.back(), 300u);
}

TEST(HighReuseKvTest, MostObjectsReused) {
  HighReuseKvConfig config;
  config.num_requests = 100000;
  config.num_objects = 5000;
  config.seed = 13;
  const Trace trace = GenerateHighReuseKv(config);
  const TraceStats stats = ComputeTraceStats(trace);
  // The paper's social-network observation: most objects accessed > once.
  EXPECT_LT(stats.one_hit_wonder_ratio, 0.5);
  EXPECT_GT(stats.mean_frequency, 5.0);
}

TEST(RegistryTest, HasTenFamilies) {
  const auto specs = Table1Datasets();
  ASSERT_EQ(specs.size(), 10u);
  std::unordered_set<std::string> names;
  int block = 0;
  int web = 0;
  for (const auto& spec : specs) {
    names.insert(spec.name);
    (spec.cls == WorkloadClass::kBlock ? block : web) += 1;
  }
  EXPECT_EQ(names.size(), 10u);  // unique names
  EXPECT_EQ(block, 5);
  EXPECT_EQ(web, 5);
}

TEST(RegistryTest, TraceCountScales) {
  const auto specs = Table1Datasets();
  for (const auto& spec : specs) {
    EXPECT_EQ(TraceCountAtScale(spec, 1.0), spec.base_trace_count);
    EXPECT_GE(TraceCountAtScale(spec, 4.0), spec.base_trace_count * 2 - 1);
    EXPECT_GE(TraceCountAtScale(spec, 0.01), 1);
  }
}

TEST(RegistryTest, MakeTraceDeterministicPerIndex) {
  const auto specs = Table1Datasets();
  const Trace a = MakeTrace(specs[0], 0, 0.25);
  const Trace b = MakeTrace(specs[0], 0, 0.25);
  const Trace c = MakeTrace(specs[0], 1, 0.25);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_NE(a.requests, c.requests);
  EXPECT_EQ(a.dataset, specs[0].name);
  EXPECT_EQ(a.name, specs[0].name + "/000");
}

TEST(RegistryTest, MaterializeSmallScale) {
  const auto traces = MaterializeRegistry(0.04);
  EXPECT_GE(traces.size(), 10u);  // at least one per family
  for (const auto& trace : traces) {
    EXPECT_GE(trace.requests.size(), 10000u);
    EXPECT_GT(trace.num_objects, 100u);
  }
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : cleanup_) {
      std::remove(path.c_str());
    }
  }
  std::string TempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(TraceIoTest, BinaryRoundTrip) {
  Trace trace;
  trace.name = "t";
  trace.requests = {1, 5, 1, 99, 1ULL << 50};
  trace.num_objects = CountUniqueObjects(trace.requests);
  const std::string path = TempPath("trace.bin");
  ASSERT_TRUE(WriteTraceBinary(trace, path));
  const auto loaded = ReadTraceBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->requests, trace.requests);
  EXPECT_EQ(loaded->num_objects, trace.num_objects);
}

TEST_F(TraceIoTest, CsvRoundTrip) {
  Trace trace;
  trace.name = "t";
  trace.requests = {7, 7, 8, 9};
  const std::string path = TempPath("trace.csv");
  ASSERT_TRUE(WriteTraceCsv(trace, path));
  const auto loaded = ReadTraceCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->requests, trace.requests);
  EXPECT_EQ(loaded->num_objects, 3u);
}

TEST_F(TraceIoTest, MissingFileFailsGracefully) {
  EXPECT_FALSE(ReadTraceBinary("/nonexistent/path.bin").has_value());
  EXPECT_FALSE(ReadTraceCsv("/nonexistent/path.csv").has_value());
}

TEST_F(TraceIoTest, CorruptBinaryRejected) {
  const std::string path = TempPath("bad.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a trace", f);
    fclose(f);
  }
  EXPECT_FALSE(ReadTraceBinary(path).has_value());
}

TEST_F(TraceIoTest, OracleGeneralRoundTrip) {
  Trace trace;
  trace.name = "t";
  trace.requests = {10, 20, 10, 30, 20, 10};
  trace.num_objects = 3;
  const std::string path = TempPath("trace.oracleGeneral");
  ASSERT_TRUE(WriteTraceOracleGeneral(trace, path));
  const auto loaded = ReadTraceOracleGeneral(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->requests, trace.requests);
  EXPECT_EQ(loaded->num_objects, 3u);
}

TEST_F(TraceIoTest, OracleGeneralRejectsMisalignedFiles) {
  const std::string path = TempPath("bad.oracleGeneral");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("12345", f);  // 5 bytes: not a multiple of 24
    fclose(f);
  }
  EXPECT_FALSE(ReadTraceOracleGeneral(path).has_value());
}

class ZipfFitTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFitTest, RecoversGeneratorExponent) {
  const double alpha = GetParam();
  ZipfTraceConfig config;
  config.num_requests = 300000;
  config.num_objects = 10000;
  config.skew = alpha;
  config.seed = 1001;
  const Trace trace = GenerateZipf(config);
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_NEAR(stats.zipf_alpha, alpha, 0.15) << "alpha " << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfFitTest,
                         ::testing::Values(0.7, 0.9, 1.1));

TEST(ZipfFitTest, UniformTraceFitsNearZero) {
  Trace trace;
  for (int round = 0; round < 20; ++round) {
    for (ObjectId id = 0; id < 1000; ++id) {
      trace.requests.push_back(id);  // perfectly uniform popularity
    }
  }
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_NEAR(stats.zipf_alpha, 0.0, 0.05);
}

}  // namespace
}  // namespace qdlp
