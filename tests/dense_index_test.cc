// DenseIndex: the direct-indexed slot array behind the dense-id fast path.
// Unit tests pin the FlatMap-compatible API contract; the property test
// runs randomized op sequences against FlatMap as the reference model so
// the two backings are interchangeable under the policy templates.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/util/dense_index.h"
#include "src/util/flat_map.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(DenseIndexTest, StartsEmpty) {
  DenseIndex<int> index(64);
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.Contains(0));
  EXPECT_EQ(index.Find(42), nullptr);
  index.CheckInvariants();
}

TEST(DenseIndexTest, ZeroUniverseHoldsNothing) {
  DenseIndex<int> index(0);
  EXPECT_TRUE(index.empty());
  EXPECT_FALSE(index.Contains(0));
  index.Prefetch(7);  // out-of-universe prefetch must be a safe no-op
  index.CheckInvariants();
}

TEST(DenseIndexTest, InsertFindErase) {
  DenseIndex<int> index(16);
  index[7] = 70;
  index[8] = 80;
  EXPECT_EQ(index.size(), 2u);
  ASSERT_NE(index.Find(7), nullptr);
  EXPECT_EQ(*index.Find(7), 70);
  EXPECT_EQ(*index.Find(8), 80);
  EXPECT_TRUE(index.Erase(7));
  EXPECT_FALSE(index.Erase(7));  // already gone
  EXPECT_EQ(index.Find(7), nullptr);
  EXPECT_EQ(index.size(), 1u);
  index.CheckInvariants();
}

TEST(DenseIndexTest, EmplaceReportsInsertion) {
  DenseIndex<int> index(8);
  auto [first, inserted_first] = index.Emplace(3);
  EXPECT_TRUE(inserted_first);
  *first = 33;
  auto [second, inserted_second] = index.Emplace(3);
  EXPECT_FALSE(inserted_second);
  EXPECT_EQ(second, first);  // slots never move
  EXPECT_EQ(*second, 33);
}

TEST(DenseIndexTest, EraseResetsValueForReinsert) {
  DenseIndex<int> index(4);
  index[2] = 99;
  index.Erase(2);
  auto [value, inserted] = index.Emplace(2);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*value, 0);  // default-constructed, not the stale 99
}

TEST(DenseIndexTest, ForEachVisitsInIdOrder) {
  DenseIndex<int> index(32);
  index[9] = 90;
  index[1] = 10;
  index[20] = 200;
  std::vector<uint64_t> keys;
  index.ForEach([&](uint64_t key, const int& value) {
    keys.push_back(key);
    EXPECT_EQ(value, static_cast<int>(key * 10));
  });
  EXPECT_EQ(keys, (std::vector<uint64_t>{1, 9, 20}));
}

TEST(DenseIndexTest, ClearEmptiesEverything) {
  DenseIndex<int> index(16);
  for (uint64_t key = 0; key < 16; ++key) {
    index[key] = 1;
  }
  index.Clear();
  EXPECT_TRUE(index.empty());
  for (uint64_t key = 0; key < 16; ++key) {
    EXPECT_FALSE(index.Contains(key));
  }
  index.CheckInvariants();
}

TEST(DenseIndexTest, FactoryBuildsConfiguredUniverse) {
  DenseIndexFactory factory{100};
  auto index = factory.Make<uint32_t>();
  index[99] = 1;
  EXPECT_TRUE(index.Contains(99));
  EXPECT_FALSE(index.Contains(100));  // outside the universe
}

// Randomized differential against FlatMap: any op sequence over a dense key
// space must be observationally identical between the two backings.
TEST(DenseIndexTest, MatchesFlatMapOnRandomOps) {
  constexpr uint64_t kUniverse = 512;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    DenseIndex<uint64_t> dense(kUniverse);
    FlatMap<uint64_t> flat;
    for (int op = 0; op < 50000; ++op) {
      const uint64_t key = rng.NextBounded(kUniverse);
      const uint64_t choice = rng.NextBounded(100);
      if (choice < 50) {  // insert / overwrite
        const uint64_t value = rng.Next();
        dense[key] = value;
        flat[key] = value;
      } else if (choice < 80) {  // erase
        EXPECT_EQ(dense.Erase(key), flat.Erase(key)) << "key " << key;
      } else {  // lookup
        const uint64_t* dense_found = dense.Find(key);
        const uint64_t* flat_found = flat.Find(key);
        ASSERT_EQ(dense_found == nullptr, flat_found == nullptr)
            << "key " << key;
        if (dense_found != nullptr) {
          EXPECT_EQ(*dense_found, *flat_found);
        }
      }
      EXPECT_EQ(dense.size(), flat.size());
      if (op % 1024 == 0) {
        dense.CheckInvariants();
      }
    }
    dense.CheckInvariants();
    size_t visited = 0;
    dense.ForEach([&](uint64_t key, const uint64_t& value) {
      ++visited;
      const uint64_t* reference = flat.Find(key);
      ASSERT_NE(reference, nullptr) << "phantom key " << key;
      EXPECT_EQ(value, *reference);
    });
    EXPECT_EQ(visited, flat.size());
  }
}

}  // namespace
}  // namespace qdlp
