// IntrusiveList: the slab-backed std::list replacement under the queue
// policies. Unit tests pin the slot-id contract (stability, free-list
// reuse); the property test runs randomized op sequences against std::list
// as the reference model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <vector>

#include "src/util/intrusive_list.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

using SlotId = IntrusiveList<int>::SlotId;

std::vector<int> Collect(const IntrusiveList<int>& list) {
  std::vector<int> out;
  list.ForEach([&out](SlotId, const int& value) { out.push_back(value); });
  return out;
}

TEST(IntrusiveListTest, StartsEmpty) {
  IntrusiveList<int> list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), IntrusiveList<int>::kNullSlot);
  EXPECT_EQ(list.back(), IntrusiveList<int>::kNullSlot);
  list.CheckInvariants();
}

TEST(IntrusiveListTest, PushFrontAndBackOrder) {
  IntrusiveList<int> list;
  list.PushBack(2);
  list.PushFront(1);
  list.PushBack(3);
  EXPECT_EQ(Collect(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list[list.front()], 1);
  EXPECT_EQ(list[list.back()], 3);
  list.CheckInvariants();
}

TEST(IntrusiveListTest, NextPrevWalkBothDirections) {
  IntrusiveList<int> list;
  const SlotId a = list.PushBack(10);
  const SlotId b = list.PushBack(20);
  const SlotId c = list.PushBack(30);
  EXPECT_EQ(list.Next(a), b);
  EXPECT_EQ(list.Next(b), c);
  EXPECT_EQ(list.Next(c), IntrusiveList<int>::kNullSlot);
  EXPECT_EQ(list.Prev(c), b);
  EXPECT_EQ(list.Prev(b), a);
  EXPECT_EQ(list.Prev(a), IntrusiveList<int>::kNullSlot);
}

TEST(IntrusiveListTest, EraseHeadMiddleTail) {
  IntrusiveList<int> list;
  const SlotId a = list.PushBack(1);
  const SlotId b = list.PushBack(2);
  const SlotId c = list.PushBack(3);
  const SlotId d = list.PushBack(4);
  list.Erase(b);  // middle
  EXPECT_EQ(Collect(list), (std::vector<int>{1, 3, 4}));
  list.Erase(a);  // head
  EXPECT_EQ(Collect(list), (std::vector<int>{3, 4}));
  list.Erase(d);  // tail
  EXPECT_EQ(Collect(list), (std::vector<int>{3}));
  EXPECT_EQ(list.front(), c);
  EXPECT_EQ(list.back(), c);
  list.CheckInvariants();
  list.Erase(c);  // last node
  EXPECT_TRUE(list.empty());
  list.CheckInvariants();
}

TEST(IntrusiveListTest, ErasedSlotsAreReusedNotGrown) {
  IntrusiveList<int> list;
  std::vector<SlotId> slots;
  for (int i = 0; i < 100; ++i) {
    slots.push_back(list.PushBack(i));
  }
  const size_t bytes_at_highwater = list.MemoryBytes();
  // Churn: erase + push 1000 times; the slab must not grow past the
  // high-water mark because freed slots go back on the free list.
  for (int round = 0; round < 1000; ++round) {
    list.Erase(list.front());
    list.PushBack(round);
  }
  EXPECT_EQ(list.size(), 100u);
  EXPECT_EQ(list.MemoryBytes(), bytes_at_highwater);
  list.CheckInvariants();
}

TEST(IntrusiveListTest, SlotIdsStableAcrossOtherOperations) {
  IntrusiveList<int> list;
  const SlotId keep = list.PushBack(42);
  for (int i = 0; i < 50; ++i) {
    list.PushFront(i);
    list.PushBack(1000 + i);
  }
  list.Erase(list.front());
  list.Erase(list.back());
  EXPECT_EQ(list[keep], 42);
  list.MoveToFront(keep);
  EXPECT_EQ(list.front(), keep);
  list.MoveToBack(keep);
  EXPECT_EQ(list.back(), keep);
  EXPECT_EQ(list[keep], 42);
  list.CheckInvariants();
}

TEST(IntrusiveListTest, MoveToFrontIsLruPromotion) {
  IntrusiveList<int> list;
  list.PushBack(1);
  const SlotId b = list.PushBack(2);
  list.PushBack(3);
  list.MoveToFront(b);
  EXPECT_EQ(Collect(list), (std::vector<int>{2, 1, 3}));
  list.MoveToFront(b);  // already at front: no-op
  EXPECT_EQ(Collect(list), (std::vector<int>{2, 1, 3}));
  list.CheckInvariants();
}

TEST(IntrusiveListTest, MoveToBackIsFifoReinsertion) {
  IntrusiveList<int> list;
  const SlotId a = list.PushBack(1);
  list.PushBack(2);
  list.PushBack(3);
  list.MoveToBack(a);
  EXPECT_EQ(Collect(list), (std::vector<int>{2, 3, 1}));
  list.MoveToBack(a);  // already at back: no-op
  EXPECT_EQ(Collect(list), (std::vector<int>{2, 3, 1}));
  list.CheckInvariants();
}

TEST(IntrusiveListTest, MoveOnSingleElementList) {
  IntrusiveList<int> list;
  const SlotId only = list.PushBack(7);
  list.MoveToFront(only);
  list.MoveToBack(only);
  EXPECT_EQ(Collect(list), (std::vector<int>{7}));
  list.CheckInvariants();
}

TEST(IntrusiveListTest, ReserveAvoidsReallocation) {
  IntrusiveList<int> list;
  list.Reserve(64);
  const size_t reserved_bytes = list.MemoryBytes();
  for (int i = 0; i < 64; ++i) {
    list.PushBack(i);
  }
  EXPECT_EQ(list.MemoryBytes(), reserved_bytes);
}

// Randomized differential test: an op mix shaped like policy usage
// (push/erase/splice) must stay element-for-element equal to std::list.
TEST(IntrusiveListPropertyTest, MatchesStdListUnderRandomOps) {
  for (const uint64_t seed : {301ULL, 302ULL, 303ULL}) {
    Rng rng(seed);
    IntrusiveList<int> list;
    std::list<int> reference;
    // Mirror of the live slot ids, index-aligned with `reference` order is
    // not needed — track ids alongside their values instead.
    std::vector<SlotId> live;
    int next_value = 0;
    for (int op = 0; op < 20000; ++op) {
      const uint64_t choice = rng.NextBounded(100);
      if (choice < 30 || live.empty()) {  // push front/back
        const int value = next_value++;
        if (rng.NextBool(0.5)) {
          live.push_back(list.PushBack(value));
          reference.push_back(value);
        } else {
          live.push_back(list.PushFront(value));
          reference.push_front(value);
        }
      } else if (choice < 55) {  // erase a random live node
        const size_t pick = rng.NextBounded(live.size());
        const SlotId slot = live[pick];
        const int value = list[slot];
        list.Erase(slot);
        auto it = std::find(reference.begin(), reference.end(), value);
        ASSERT_NE(it, reference.end());
        reference.erase(it);
        live[pick] = live.back();
        live.pop_back();
      } else if (choice < 80) {  // MoveToFront (LRU hit)
        const SlotId slot = live[rng.NextBounded(live.size())];
        const int value = list[slot];
        list.MoveToFront(slot);
        auto it = std::find(reference.begin(), reference.end(), value);
        reference.splice(reference.begin(), reference, it);
      } else {  // MoveToBack (FIFO reinsertion)
        const SlotId slot = live[rng.NextBounded(live.size())];
        const int value = list[slot];
        list.MoveToBack(slot);
        auto it = std::find(reference.begin(), reference.end(), value);
        reference.splice(reference.end(), reference, it);
      }
      if (op % 512 == 0) {
        list.CheckInvariants();
      }
    }
    list.CheckInvariants();
    const std::vector<int> got = Collect(list);
    const std::vector<int> want(reference.begin(), reference.end());
    ASSERT_EQ(got, want) << "seed " << seed;
  }
}

// Values are unique in the property test above, so std::find is
// unambiguous; this guard keeps that assumption honest.
TEST(IntrusiveListPropertyTest, DistinctValuesStayDistinct) {
  IntrusiveList<int> list;
  const SlotId a = list.PushBack(1);
  const SlotId b = list.PushBack(1);  // duplicates are allowed by the list
  EXPECT_NE(a, b);
  list.Erase(a);
  EXPECT_EQ(list[b], 1);
  EXPECT_EQ(list.size(), 1u);
}

}  // namespace
}  // namespace qdlp
