// The telemetry layer's correctness gate (docs/OBSERVABILITY.md).
//
// Pins the counters no observer should ever have to doubt:
//  * Stats().hits/misses equal externally tallied Access() outcomes for
//    every registered policy across trace shapes (the oracle-style pinning;
//    the full lockstep runs live in oracle_differential_test.cc);
//  * the AccessEvent sink observes exactly the events the counters count,
//    with monotone logical timestamps;
//  * the QD composition's per-queue flow adds up (probation departures =
//    promotions + demotions, occupancy = probation + main);
//  * the concurrent caches, driven single-threaded, count exactly;
//  * Remove() counts as an eviction and the removal API answers honestly
//    (SupportsRemoval() false => Remove() is a no-op returning false).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_qdlp_fifo.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/locked_lru.h"
#include "src/concurrent/sharded_lru.h"
#include "src/core/policy_factory.h"
#include "src/core/qd_cache.h"
#include "src/obs/access_event.h"
#include "src/obs/cache_stats.h"
#include "src/trace/generators.h"

namespace qdlp {
namespace {

std::vector<ObjectId> BuildTrace(const std::string& shape, uint64_t seed) {
  constexpr uint64_t kRequests = 6000;
  if (shape == "zipf") {
    ZipfTraceConfig config;
    config.num_requests = kRequests;
    config.num_objects = 2000;
    config.skew = 1.0;
    config.seed = seed;
    return GenerateZipf(config).requests;
  }
  if (shape == "web") {
    PopularityDecayConfig config;
    config.num_requests = kRequests;
    config.initial_objects = 400;
    config.seed = seed;
    return GeneratePopularityDecay(config).requests;
  }
  if (shape == "block") {
    ScanLoopConfig config;
    config.num_requests = kRequests;
    config.hot_objects = 1200;
    config.hot_drift_objects = 300;
    config.scan_length_min = 40;
    config.scan_length_max = 300;
    config.loop_region = 60;
    config.seed = seed;
    return GenerateScanLoop(config).requests;
  }
  ADD_FAILURE() << "unknown shape " << shape;
  return {};
}

const std::vector<std::string>& Shapes() {
  static const std::vector<std::string> shapes = {"zipf", "web", "block"};
  return shapes;
}

// ---------------------------------------------------------------------------
// Oracle-pinned counts: the policy's own hits/misses must equal what the
// replay loop observes, for every policy name the factory knows.

using StatsCase = std::tuple<std::string, std::string>;

class StatsPinningTest : public ::testing::TestWithParam<StatsCase> {};

TEST_P(StatsPinningTest, CountersMatchExternalTally) {
  const auto& [policy_name, shape] = GetParam();
  const std::vector<ObjectId> trace = BuildTrace(shape, 0xC0FFEEu);
  ASSERT_FALSE(trace.empty());
  constexpr size_t kCacheSize = 101;

  auto policy = MakePolicy(policy_name, kCacheSize, &trace);
  ASSERT_NE(policy, nullptr) << policy_name;

  uint64_t external_hits = 0;
  for (const ObjectId id : trace) {
    external_hits += policy->Access(id) ? 1 : 0;
  }

  const CacheStats stats = policy->Stats();
  EXPECT_EQ(stats.requests, trace.size());
  EXPECT_EQ(stats.hits, external_hits);
  EXPECT_EQ(stats.misses, trace.size() - external_hits);
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  EXPECT_EQ(stats.size, policy->size());
  EXPECT_EQ(stats.inserts - stats.evictions, stats.size);
  EXPECT_LE(stats.inserts, stats.misses);
  EXPECT_LE(stats.ghost_hits, stats.misses);
  // The full consistency battery (aborts on violation).
  policy->CheckInvariants();
}

std::string StatsCaseName(const ::testing::TestParamInfo<StatsCase>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, StatsPinningTest,
    ::testing::Combine(::testing::ValuesIn(KnownPolicyNames()),
                       ::testing::ValuesIn(Shapes())),
    StatsCaseName);

// Counters are monotone: sampled along the replay, no flow counter ever
// decreases and the identities hold at every sample point.
TEST(StatsMonotonicityTest, FlowCountersNeverDecrease) {
  const std::vector<ObjectId> trace = BuildTrace("zipf", 0xBEEFu);
  for (const std::string name : {"lru", "qd-lp-fifo", "s3fifo", "arc"}) {
    auto policy = MakePolicy(name, 64);
    ASSERT_NE(policy, nullptr) << name;
    CacheStats prev;
    for (size_t i = 0; i < trace.size(); ++i) {
      policy->Access(trace[i]);
      if (i % 97 != 0) {
        continue;
      }
      const CacheStats cur = policy->Stats();
      EXPECT_GE(cur.requests, prev.requests) << name;
      EXPECT_GE(cur.hits, prev.hits) << name;
      EXPECT_GE(cur.misses, prev.misses) << name;
      EXPECT_GE(cur.inserts, prev.inserts) << name;
      EXPECT_GE(cur.evictions, prev.evictions) << name;
      EXPECT_GE(cur.promotions, prev.promotions) << name;
      EXPECT_GE(cur.demotions, prev.demotions) << name;
      EXPECT_GE(cur.ghost_hits, prev.ghost_hits) << name;
      EXPECT_EQ(cur.hits + cur.misses, cur.requests) << name;
      EXPECT_EQ(cur.inserts - cur.evictions, cur.size) << name;
      prev = cur;
    }
  }
}

// ---------------------------------------------------------------------------
// Event sink: the hook stream and the counters are two views of the same
// events — they must agree exactly, and logical time must be monotone.

struct CountingSink : AccessEventSink {
  CacheStats seen;  // event tallies, same fields as the counters
  uint64_t last_time = 0;
  bool time_monotone = true;

  void Note(uint64_t time) {
    if (time < last_time) {
      time_monotone = false;
    }
    last_time = time;
  }
  void OnHit(ObjectId, uint64_t time) override {
    ++seen.hits;
    Note(time);
  }
  void OnMiss(ObjectId, uint64_t time) override {
    ++seen.misses;
    Note(time);
  }
  void OnInsert(ObjectId, uint64_t time) override {
    ++seen.inserts;
    Note(time);
  }
  void OnEvict(ObjectId, uint64_t time) override {
    ++seen.evictions;
    Note(time);
  }
  void OnPromote(ObjectId, uint64_t time) override {
    ++seen.promotions;
    Note(time);
  }
  void OnDemote(ObjectId, uint64_t time) override {
    ++seen.demotions;
    Note(time);
  }
  void OnGhostHit(ObjectId, uint64_t time) override {
    ++seen.ghost_hits;
    Note(time);
  }
};

TEST(AccessEventSinkTest, SinkSeesExactlyWhatCountersCount) {
  const std::vector<ObjectId> trace = BuildTrace("web", 0xABCDu);
  for (const std::string name :
       {"lru", "sieve", "qd-lp-fifo", "s3fifo", "slru", "arc"}) {
    auto policy = MakePolicy(name, 101);
    ASSERT_NE(policy, nullptr) << name;
    CountingSink sink;
    policy->set_event_sink(&sink);
    for (const ObjectId id : trace) {
      policy->Access(id);
    }
    const CacheStats stats = policy->Stats();
    EXPECT_EQ(sink.seen.hits, stats.hits) << name;
    EXPECT_EQ(sink.seen.misses, stats.misses) << name;
    EXPECT_EQ(sink.seen.inserts, stats.inserts) << name;
    EXPECT_EQ(sink.seen.evictions, stats.evictions) << name;
    EXPECT_EQ(sink.seen.promotions, stats.promotions) << name;
    EXPECT_EQ(sink.seen.demotions, stats.demotions) << name;
    EXPECT_EQ(sink.seen.ghost_hits, stats.ghost_hits) << name;
    EXPECT_TRUE(sink.time_monotone) << name;
    EXPECT_LE(sink.last_time, policy->now()) << name;
    policy->set_event_sink(nullptr);
  }
}

// Detaching the sink stops the stream; the counters keep counting.
TEST(AccessEventSinkTest, DetachedSinkSeesNothingMore) {
  auto policy = MakePolicy("lru", 8);
  ASSERT_NE(policy, nullptr);
  CountingSink sink;
  policy->set_event_sink(&sink);
  policy->Access(1);
  policy->Access(1);
  EXPECT_EQ(sink.seen.misses, 1u);
  EXPECT_EQ(sink.seen.hits, 1u);
  policy->set_event_sink(nullptr);
  policy->Access(2);
  EXPECT_EQ(sink.seen.misses, 1u);  // unchanged
  EXPECT_EQ(policy->Stats().misses, 2u);
}

// ---------------------------------------------------------------------------
// QD flow: the paper's §4 probation -> {main, ghost} split must add up.

TEST(QdFlowStatsTest, ProbationFlowAddsUp) {
  const std::vector<ObjectId> trace = BuildTrace("block", 0x5EEDu);
  auto policy = MakePolicy("qd-lp-fifo", 200, &trace);
  ASSERT_NE(policy, nullptr);
  for (const ObjectId id : trace) {
    policy->Access(id);
  }
  const CacheStats stats = policy->Stats();
  // Per-queue occupancy fills in and is consistent with the total.
  EXPECT_EQ(stats.probation_size + stats.main_size, stats.size);
  EXPECT_GT(stats.demotions, 0u);
  // Every ghost hit consumed an entry some quick demotion wrote.
  EXPECT_LE(stats.ghost_hits, stats.demotions);
  // Quick demotions leave cache space: demotions are a subset of evictions.
  EXPECT_LE(stats.demotions, stats.evictions);
  // The QdCache accessors are aliases of the same counters.
  const auto* qd = dynamic_cast<const QdCache*>(policy.get());
  ASSERT_NE(qd, nullptr);
  EXPECT_EQ(qd->promotions(), stats.promotions);
  EXPECT_EQ(qd->quick_demotions(), stats.demotions);
  EXPECT_EQ(qd->ghost_admissions(), stats.ghost_hits);
}

TEST(QdFlowStatsTest, S3FifoOccupancyAddsUp) {
  const std::vector<ObjectId> trace = BuildTrace("zipf", 0x51u);
  auto policy = MakePolicy("s3fifo", 150);
  ASSERT_NE(policy, nullptr);
  for (const ObjectId id : trace) {
    policy->Access(id);
  }
  const CacheStats stats = policy->Stats();
  EXPECT_EQ(stats.probation_size + stats.main_size, stats.size);
  EXPECT_GT(stats.ghost_size, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent caches, single-threaded: counting must be exact (no dropped
// admissions without contention), and Stats() must agree with an external
// tally just like the sequential policies.

template <typename MakeCache>
void ExpectConcurrentCountsExact(const char* label, MakeCache make) {
  const std::vector<ObjectId> trace = BuildTrace("zipf", 0xACE5u);
  auto cache = make();
  uint64_t external_hits = 0;
  for (const ObjectId id : trace) {
    external_hits += cache->Get(id) ? 1 : 0;
  }
  const CacheStats stats = cache->Stats();
  EXPECT_EQ(stats.requests, trace.size()) << label;
  EXPECT_EQ(stats.hits, external_hits) << label;
  EXPECT_EQ(stats.misses, trace.size() - external_hits) << label;
  EXPECT_EQ(stats.hits + stats.misses, stats.requests) << label;
  // Single-threaded nothing is buffered or dropped: every miss admits.
  EXPECT_EQ(stats.inserts, stats.misses) << label;
  EXPECT_EQ(stats.inserts - stats.evictions, stats.size) << label;
  cache->CheckInvariants();
}

TEST(ConcurrentStatsTest, SingleThreadedCountsAreExact) {
  static constexpr size_t kCapacity = 101;
  ExpectConcurrentCountsExact("global-lock-lru", [] {
    return std::make_unique<GlobalLockLruCache>(kCapacity);
  });
  ExpectConcurrentCountsExact("sharded-lru", [] {
    return std::make_unique<ShardedLruCache>(kCapacity, 4);
  });
  ExpectConcurrentCountsExact("concurrent-clock", [] {
    return std::make_unique<ConcurrentClockCache>(kCapacity, 1, 4);
  });
  ExpectConcurrentCountsExact("concurrent-s3fifo", [] {
    return std::make_unique<ConcurrentS3FifoCache>(kCapacity, 0.10, 0.9, 4);
  });
  ExpectConcurrentCountsExact("concurrent-qdlp-fifo", [] {
    return std::make_unique<ConcurrentQdLpFifo>(kCapacity, 4);
  });
}

TEST(ConcurrentStatsTest, QdLpOccupancyAddsUp) {
  const std::vector<ObjectId> trace = BuildTrace("zipf", 0x77u);
  ConcurrentQdLpFifo cache(101, 4);
  for (const ObjectId id : trace) {
    cache.Get(id);
  }
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.probation_size + stats.main_size, stats.size);
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_LE(stats.ghost_hits, stats.demotions);
}

// ---------------------------------------------------------------------------
// Removal API.

TEST(RemovalStatsTest, SerialRemoveCountsAsEviction) {
  for (const std::string name : {"lru", "fifo", "clock2"}) {
    auto policy = MakePolicy(name, 16);
    ASSERT_NE(policy, nullptr) << name;
    ASSERT_TRUE(policy->SupportsRemoval()) << name;
    policy->Access(42);
    const uint64_t evictions_before = policy->Stats().evictions;
    EXPECT_TRUE(policy->Remove(42)) << name;
    EXPECT_FALSE(policy->Contains(42)) << name;
    EXPECT_EQ(policy->Stats().evictions, evictions_before + 1) << name;
    EXPECT_FALSE(policy->Remove(42)) << name;  // already gone
    EXPECT_EQ(policy->Stats().evictions, evictions_before + 1) << name;
    policy->CheckInvariants();  // inserts - evictions == size still holds
  }
}

TEST(RemovalStatsTest, PoliciesWithoutRemovalSaySo) {
  auto policy = MakePolicy("arc", 16);
  ASSERT_NE(policy, nullptr);
  EXPECT_FALSE(policy->SupportsRemoval());
  policy->Access(7);
  EXPECT_FALSE(policy->Remove(7));
  EXPECT_TRUE(policy->Contains(7));  // untouched
}

TEST(RemovalStatsTest, ShardedLruRemoveWorks) {
  ShardedLruCache cache(64, 4);
  EXPECT_TRUE(cache.SupportsRemoval());
  cache.Get(5);
  ASSERT_TRUE(cache.Get(5));  // now resident
  const uint64_t evictions_before = cache.Stats().evictions;
  EXPECT_TRUE(cache.Remove(5));
  EXPECT_EQ(cache.Stats().evictions, evictions_before + 1);
  EXPECT_FALSE(cache.Remove(5));
  EXPECT_FALSE(cache.Get(5));  // miss: readmitted fresh
  cache.CheckInvariants();
}

TEST(RemovalStatsTest, BaseConcurrentCachesDeclineRemoval) {
  ConcurrentClockCache clock(16, 1, 4);
  EXPECT_FALSE(clock.SupportsRemoval());
  clock.Get(3);
  EXPECT_FALSE(clock.Remove(3));
  EXPECT_TRUE(clock.Get(3));  // still resident
}

}  // namespace
}  // namespace qdlp
