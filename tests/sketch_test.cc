// BloomFilter and CountMinSketch (the TinyLFU substrates).

#include <gtest/gtest.h>

#include "src/util/bloom_filter.h"
#include "src/util/count_min_sketch.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000);
  for (uint64_t key = 0; key < 1000; ++key) {
    filter.Insert(key * 7919);
  }
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_TRUE(filter.MayContain(key * 7919)) << key;
  }
}

TEST(BloomFilterTest, FalsePositiveRateBounded) {
  BloomFilter filter(10000);
  for (uint64_t key = 0; key < 10000; ++key) {
    filter.Insert(key);
  }
  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (uint64_t key = 1000000; key < 1000000 + kProbes; ++key) {
    false_positives += filter.MayContain(key) ? 1 : 0;
  }
  // Sized for ~3%; allow generous slack.
  EXPECT_LT(static_cast<double>(false_positives) / kProbes, 0.10);
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter filter(100);
  filter.Insert(42);
  ASSERT_TRUE(filter.MayContain(42));
  filter.Clear();
  EXPECT_FALSE(filter.MayContain(42));
  EXPECT_EQ(filter.inserted(), 0u);
}

TEST(BloomFilterTest, EmptyContainsNothing) {
  BloomFilter filter(100);
  int hits = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    hits += filter.MayContain(key) ? 1 : 0;
  }
  EXPECT_EQ(hits, 0);
}

TEST(CountMinSketchTest, NeverUndercountsWithinWindow) {
  CountMinSketch sketch(1000, /*sample_factor=*/100);  // no aging in test
  for (int i = 0; i < 7; ++i) {
    sketch.Increment(123);
  }
  EXPECT_GE(sketch.Estimate(123), 7u);
}

TEST(CountMinSketchTest, SaturatesAtFifteen) {
  CountMinSketch sketch(1000, 1000);
  for (int i = 0; i < 100; ++i) {
    sketch.Increment(5);
  }
  EXPECT_EQ(sketch.Estimate(5), 15u);
}

TEST(CountMinSketchTest, UnseenKeysEstimateNearZero) {
  CountMinSketch sketch(4096, 1000);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    sketch.Increment(rng.NextBounded(2000));
  }
  // Overcounting exists but should be small on a sketch this wide.
  int overcounted = 0;
  for (uint64_t key = 1000000; key < 1000500; ++key) {
    overcounted += sketch.Estimate(key) > 1 ? 1 : 0;
  }
  EXPECT_LT(overcounted, 50);
}

TEST(CountMinSketchTest, AgingHalvesCounts) {
  CountMinSketch sketch(64, /*sample_factor=*/1);  // ages every 64 increments
  for (int i = 0; i < 10; ++i) {
    sketch.Increment(7);
  }
  const uint32_t before = sketch.Estimate(7);
  ASSERT_GE(before, 10u);
  // Push enough other traffic to trigger aging.
  for (uint64_t key = 100; key < 200; ++key) {
    sketch.Increment(key);
  }
  EXPECT_GE(sketch.aging_count(), 1u);
  EXPECT_LT(sketch.Estimate(7), before);
}

TEST(CountMinSketchTest, ConservativeUpdateTracksHeavyHitters) {
  CountMinSketch sketch(4096, 100);
  Rng rng(5);
  // 90% of traffic to key 1, the rest spread thin.
  for (int i = 0; i < 5000; ++i) {
    if (rng.NextBool(0.9)) {
      sketch.Increment(1);
    } else {
      sketch.Increment(rng.NextBounded(4000) + 10);
    }
  }
  EXPECT_EQ(sketch.Estimate(1), 15u);  // heavy hitter saturated
}

}  // namespace
}  // namespace qdlp
