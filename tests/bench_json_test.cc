// BENCH_throughput.json emitter smoke test: the writer in bench/bench_json.h
// (no google-benchmark dependency) must produce parseable JSON with the
// documented keys, since CI and docs/PERFORMANCE.md consumers load it with a
// strict parser.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_json.h"

namespace qdlp {
namespace {

std::vector<BenchJsonResult> SampleResults() {
  BenchJsonResult lru;
  lru.benchmark = "BM_Access/lru";
  lru.policy = "lru";
  lru.threads = 1;
  lru.ops_per_sec = 37664700.0;
  lru.bytes_per_object = 38.2;
  BenchJsonResult clock;
  clock.benchmark = "BM_ConcurrentClock/threads:4/real_time";
  clock.policy = "concurrent-clock";
  clock.threads = 4;
  clock.ops_per_sec = 1.25e7;
  clock.bytes_per_object = 0.0;
  return {lru, clock};
}

TEST(BenchJsonTest, ContainsExpectedKeysAndValues) {
  const std::string json = BenchJsonToString("micro_policies", SampleResults());
  for (const std::string key :
       {"\"schema_version\": 1", "\"binary\": \"micro_policies\"",
        "\"results\": [", "\"benchmark\": \"BM_Access/lru\"",
        "\"policy\": \"lru\"", "\"threads\": 1", "\"ops_per_sec\": 37664700.0",
        "\"bytes_per_object\": 38.2", "\"policy\": \"concurrent-clock\"",
        "\"threads\": 4"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing: " << key;
  }
}

// Minimal structural JSON validation: balanced braces/brackets outside
// strings, no trailing comma before a closer. Catches the emitter bugs a
// real parser would reject without needing a JSON library in the test.
void ExpectStructurallyValidJson(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  char last_significant = '\0';
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        last_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        ASSERT_NE(last_significant, ',') << "trailing comma before }";
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        ASSERT_NE(last_significant, ',') << "trailing comma before ]";
        stack.pop_back();
        break;
      default:
        break;
    }
    if (c != ' ' && c != '\n' && c != '\t') {
      last_significant = c;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_TRUE(stack.empty()) << "unbalanced braces";
}

TEST(BenchJsonTest, OutputIsStructurallyValid) {
  ExpectStructurallyValidJson(
      BenchJsonToString("micro_policies", SampleResults()));
  ExpectStructurallyValidJson(BenchJsonToString("empty", {}));
}

TEST(BenchJsonTest, EscapesSpecialCharacters) {
  BenchJsonResult weird;
  weird.benchmark = "BM_\"quote\"/back\\slash\nnewline\ttab";
  weird.policy = std::string("ctl\x01", 4);
  const std::string json = BenchJsonToString("b", {weird});
  EXPECT_NE(json.find("BM_\\\"quote\\\"/back\\\\slash\\nnewline\\ttab"),
            std::string::npos);
  EXPECT_NE(json.find("ctl\\u0001"), std::string::npos);
  ExpectStructurallyValidJson(json);
}

TEST(BenchJsonTest, NumbersAreAlwaysFloatsAndFinite) {
  EXPECT_EQ(BenchJsonNumber(1.0), "1.0");
  EXPECT_EQ(BenchJsonNumber(0.0), "0.0");
  EXPECT_EQ(BenchJsonNumber(37664700.0), "37664700.0");
  // JSON has no NaN/Infinity; the writer clamps them to 0.
  EXPECT_EQ(BenchJsonNumber(std::nan("")), "0.0");
  EXPECT_EQ(BenchJsonNumber(1.0 / 0.0), "0.0");
  EXPECT_EQ(BenchJsonNumber(-1.0 / 0.0), "0.0");
}

TEST(BenchJsonTest, WriteRoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "/bench_json_test.json";
  ASSERT_TRUE(WriteBenchJson(path, "micro_policies", SampleResults()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), BenchJsonToString("micro_policies", SampleResults()));
  std::remove(path.c_str());
}

TEST(BenchJsonTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      WriteBenchJson("/nonexistent-dir/x/y.json", "b", SampleResults()));
}

TEST(BenchJsonTest, OutputPathHonorsEnvOverride) {
  // Default when unset.
  unsetenv("QDLP_BENCH_JSON");
  EXPECT_EQ(BenchJsonOutputPath(), "BENCH_throughput.json");
  setenv("QDLP_BENCH_JSON", "/tmp/override.json", 1);
  EXPECT_EQ(BenchJsonOutputPath(), "/tmp/override.json");
  unsetenv("QDLP_BENCH_JSON");
}

TEST(BenchJsonTest, PolicySegmentExtraction) {
  EXPECT_EQ(PolicyFromBenchmarkName("BM_Access/lru"), "lru");
  EXPECT_EQ(PolicyFromBenchmarkName("BM_Access/qd-lp-fifo"), "qd-lp-fifo");
  EXPECT_EQ(PolicyFromBenchmarkName("BM_Access/lru/threads:4"), "lru");
  // Config-only segments fall back to the family name.
  EXPECT_EQ(PolicyFromBenchmarkName("BM_Timed/threads:4"), "BM_Timed");
  EXPECT_EQ(PolicyFromBenchmarkName("BM_Solo"), "BM_Solo");
  // UseRealTime()'s "/real_time" suffix is an ordinary segment; binaries
  // that use it supply their own namer (see throughput_scalability.cc).
  EXPECT_EQ(PolicyFromBenchmarkName("BM_GlobalLockLru/threads:4/real_time"),
            "real_time");
}

}  // namespace
}  // namespace qdlp
