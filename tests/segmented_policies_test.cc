// SLRU, 2Q, LFU, Random.

#include <gtest/gtest.h>

#include "src/policies/lfu.h"
#include "src/policies/random_policy.h"
#include "src/policies/slru.h"
#include "src/policies/twoq.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(SlruTest, NewObjectsEnterProbation) {
  SlruPolicy slru(10, 0.5);
  slru.Access(1);
  EXPECT_EQ(slru.probation_size(), 1u);
  EXPECT_EQ(slru.protected_size(), 0u);
}

TEST(SlruTest, HitPromotesToProtected) {
  SlruPolicy slru(10, 0.5);
  slru.Access(1);
  EXPECT_TRUE(slru.Access(1));
  EXPECT_EQ(slru.protected_size(), 1u);
  EXPECT_EQ(slru.probation_size(), 0u);
}

TEST(SlruTest, OneTouchObjectsEvictedBeforePromoted) {
  SlruPolicy slru(10, 0.5);
  // 1 and 2 are promoted.
  slru.Access(1);
  slru.Access(1);
  slru.Access(2);
  slru.Access(2);
  // Flood with one-touch ids; promoted objects survive.
  for (ObjectId id = 100; id < 200; ++id) {
    slru.Access(id);
  }
  EXPECT_TRUE(slru.Contains(1));
  EXPECT_TRUE(slru.Contains(2));
}

TEST(SlruTest, ProtectedOverflowDemotes) {
  SlruPolicy slru(4, 0.5);  // protected capacity = 2
  for (ObjectId id = 1; id <= 3; ++id) {
    slru.Access(id);
    slru.Access(id);  // promote each
  }
  EXPECT_LE(slru.protected_size(), 2u);
  EXPECT_EQ(slru.size(), 3u);  // nothing lost, just demoted
}

TEST(SlruTest, CapacityRespected) {
  SlruPolicy slru(16);
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 500;
  config.seed = 81;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    slru.Access(id);
    ASSERT_LE(slru.size(), 16u);
  }
}

TEST(TwoQTest, MissGoesToA1In) {
  TwoQPolicy twoq(20);
  twoq.Access(1);
  EXPECT_EQ(twoq.a1in_size(), 1u);
  EXPECT_EQ(twoq.am_size(), 0u);
}

TEST(TwoQTest, A1InHitDoesNotPromote) {
  TwoQPolicy twoq(20);
  twoq.Access(1);
  EXPECT_TRUE(twoq.Access(1));  // correlated reference
  EXPECT_EQ(twoq.a1in_size(), 1u);
  EXPECT_EQ(twoq.am_size(), 0u);
}

TEST(TwoQTest, GhostHitPromotesToAm) {
  TwoQPolicy twoq(8, 0.25, 0.5);  // kin = 2
  twoq.Access(1);
  // Fill the cache, then force reclaims so 1 falls out of A1in into the
  // ghost (reclaims only start once all 8 slots are resident).
  for (ObjectId id = 2; id <= 11; ++id) {
    twoq.Access(id);
  }
  ASSERT_FALSE(twoq.Contains(1));
  ASSERT_TRUE(twoq.InGhost(1));
  EXPECT_FALSE(twoq.Access(1));  // ghost hit is still a miss
  EXPECT_FALSE(twoq.InGhost(1));
  EXPECT_GT(twoq.am_size(), 0u);
  EXPECT_TRUE(twoq.Contains(1));
}

TEST(TwoQTest, CapacityRespected) {
  TwoQPolicy twoq(16);
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 400;
  config.seed = 83;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    twoq.Access(id);
    ASSERT_LE(twoq.size(), 16u);
  }
}

TEST(LfuTest, EvictsLowestFrequency) {
  LfuPolicy lfu(3);
  lfu.Access(1);
  lfu.Access(1);
  lfu.Access(2);
  lfu.Access(2);
  lfu.Access(3);          // freq 1
  EXPECT_FALSE(lfu.Access(4));  // evicts 3
  EXPECT_FALSE(lfu.Contains(3));
  EXPECT_TRUE(lfu.Contains(1));
  EXPECT_TRUE(lfu.Contains(2));
}

TEST(LfuTest, TieBreaksByRecency) {
  LfuPolicy lfu(3);
  lfu.Access(1);
  lfu.Access(2);
  lfu.Access(3);
  // All freq 1; least recently used among them is 1.
  lfu.Access(4);
  EXPECT_FALSE(lfu.Contains(1));
  EXPECT_TRUE(lfu.Contains(2));
}

TEST(LfuTest, FrequencyTracked) {
  LfuPolicy lfu(4);
  lfu.Access(1);
  lfu.Access(1);
  lfu.Access(1);
  EXPECT_EQ(lfu.FrequencyOf(1), 3u);
  EXPECT_EQ(lfu.FrequencyOf(2), 0u);
}

TEST(LfuTest, CapacityRespected) {
  LfuPolicy lfu(16);
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 400;
  config.seed = 85;
  const Trace trace = GenerateZipf(config);
  for (const ObjectId id : trace.requests) {
    lfu.Access(id);
    ASSERT_LE(lfu.size(), 16u);
  }
}

TEST(RandomTest, CapacityAndMembership) {
  RandomPolicy random(8);
  for (ObjectId id = 0; id < 100; ++id) {
    random.Access(id);
    ASSERT_LE(random.size(), 8u);
    ASSERT_TRUE(random.Contains(id));  // just-inserted is resident
  }
}

TEST(RandomTest, HitsOnResidentObjects) {
  RandomPolicy random(8);
  random.Access(1);
  EXPECT_TRUE(random.Access(1));
}

}  // namespace
}  // namespace qdlp
