// Environment knobs and the CSV export path of TablePrinter.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/util/env.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("QDLP_TEST_KNOB");
    unsetenv("QDLP_CSV");
  }
};

TEST_F(EnvTest, DoubleFallbackWhenUnset) {
  unsetenv("QDLP_TEST_KNOB");
  EXPECT_DOUBLE_EQ(GetEnvDouble("QDLP_TEST_KNOB", 2.5), 2.5);
}

TEST_F(EnvTest, DoubleParsesValue) {
  setenv("QDLP_TEST_KNOB", "0.125", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("QDLP_TEST_KNOB", 2.5), 0.125);
}

TEST_F(EnvTest, DoubleFallbackOnGarbage) {
  setenv("QDLP_TEST_KNOB", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("QDLP_TEST_KNOB", 2.5), 2.5);
}

TEST_F(EnvTest, IntParsesAndFallsBack) {
  setenv("QDLP_TEST_KNOB", "42", 1);
  EXPECT_EQ(GetEnvInt("QDLP_TEST_KNOB", 7), 42);
  setenv("QDLP_TEST_KNOB", "xyz", 1);
  EXPECT_EQ(GetEnvInt("QDLP_TEST_KNOB", 7), 7);
  unsetenv("QDLP_TEST_KNOB");
  EXPECT_EQ(GetEnvInt("QDLP_TEST_KNOB", 7), 7);
}

TEST_F(EnvTest, CsvExportWritesWhenEnvSet) {
  const std::string dir = ::testing::TempDir();
  setenv("QDLP_CSV", dir.c_str(), 1);
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.MaybeExportCsv("env_table_test_export");
  std::ifstream in(dir + "/env_table_test_export.csv");
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "a,b\n1,2\n");
}

TEST_F(EnvTest, CsvExportNoopWhenUnset) {
  unsetenv("QDLP_CSV");
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.MaybeExportCsv("should_not_exist_anywhere");  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace qdlp
