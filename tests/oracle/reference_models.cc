#include "tests/oracle/reference_models.h"

#include <algorithm>
#include <cmath>

namespace qdlp {
namespace oracle {

namespace {

// The factory rounds fractional capacities with llround and clamps to at
// least one object; the oracles must split budgets the same way.
size_t ScaledCapacity(size_t capacity, double fraction) {
  return std::max<size_t>(
      1, static_cast<size_t>(
             std::llround(static_cast<double>(capacity) * fraction)));
}

}  // namespace

// ---------------------------------------------------------------------------
// RefFifo

bool RefFifo::Access(ObjectId id) {
  if (Contains(id)) {
    return true;
  }
  if (queue_.size() == capacity_) {
    queue_.pop_front();
  }
  queue_.push_back(id);
  return false;
}

bool RefFifo::Contains(ObjectId id) const {
  return std::find(queue_.begin(), queue_.end(), id) != queue_.end();
}

// ---------------------------------------------------------------------------
// RefLru

bool RefLru::Access(ObjectId id) {
  const auto it = std::find(mru_.begin(), mru_.end(), id);
  if (it != mru_.end()) {
    mru_.erase(it);
    mru_.insert(mru_.begin(), id);
    return true;
  }
  if (mru_.size() == capacity_) {
    mru_.pop_back();
  }
  mru_.insert(mru_.begin(), id);
  return false;
}

bool RefLru::Contains(ObjectId id) const {
  return std::find(mru_.begin(), mru_.end(), id) != mru_.end();
}

// ---------------------------------------------------------------------------
// RefLfu

bool RefLfu::Access(ObjectId id) {
  ++clock_;
  for (Entry& entry : entries_) {
    if (entry.id == id) {
      ++entry.frequency;
      entry.stamp = clock_;
      return true;
    }
  }
  if (entries_.size() == capacity_) {
    // Victim: minimal frequency; among those, the one that reached its
    // current frequency earliest (LfuPolicy evicts its bucket's back).
    size_t victim = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      const Entry& cand = entries_[i];
      const Entry& best = entries_[victim];
      if (cand.frequency < best.frequency ||
          (cand.frequency == best.frequency && cand.stamp < best.stamp)) {
        victim = i;
      }
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
  }
  entries_.push_back(Entry{id, 1, clock_});
  return false;
}

bool RefLfu::Contains(ObjectId id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.id == id; });
}

// ---------------------------------------------------------------------------
// RefClock

RefClock::RefClock(size_t capacity, int bits)
    : capacity_(capacity), max_counter_((1 << bits) - 1) {}

bool RefClock::Access(ObjectId id) {
  for (auto& [entry_id, counter] : queue_) {
    if (entry_id == id) {
      counter = std::min(counter + 1, max_counter_);
      return true;
    }
  }
  while (queue_.size() >= capacity_) {
    auto [victim, counter] = queue_.front();
    queue_.pop_front();
    if (counter > 0) {
      queue_.emplace_back(victim, counter - 1);  // second chance
    }
    // else: evicted outright
  }
  queue_.emplace_back(id, 0);
  return false;
}

bool RefClock::Contains(ObjectId id) const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const auto& e) { return e.first == id; });
}

// ---------------------------------------------------------------------------
// RefSieve

bool RefSieve::Access(ObjectId id) {
  for (Node& node : queue_) {
    if (node.id == id) {
      node.visited = true;
      return true;
    }
  }
  if (queue_.size() == capacity_) {
    EvictOne();
  }
  queue_.push_back(Node{id, false});  // newest end
  return false;
}

void RefSieve::EvictOne() {
  // The hand resumes where the previous eviction stopped; when unset (or
  // after it passed the newest entry) it restarts at the oldest.
  if (hand_ == kNoHand) {
    hand_ = 0;
  }
  // Sweep from older to newer, clearing visited bits, until an unvisited
  // victim is found. Wrap from the newest entry back to the oldest.
  while (queue_[hand_].visited) {
    queue_[hand_].visited = false;
    hand_ = (hand_ + 1 == queue_.size()) ? 0 : hand_ + 1;
  }
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(hand_));
  // The element after the victim (toward newer) shifted into hand_'s index;
  // that is exactly where the hand should rest. If the victim was the
  // newest entry the hand falls off the end and is reset.
  if (hand_ == queue_.size()) {
    hand_ = kNoHand;
  }
}

bool RefSieve::Contains(ObjectId id) const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Node& n) { return n.id == id; });
}

// ---------------------------------------------------------------------------
// RefGhost

void RefGhost::Insert(ObjectId id) {
  if (capacity_ == 0) {
    return;
  }
  const auto it = std::find(queue_.begin(), queue_.end(), id);
  if (it != queue_.end()) {
    queue_.erase(it);  // refresh: most recent insert wins
  }
  queue_.push_back(id);
  while (queue_.size() > capacity_) {
    queue_.pop_front();
  }
}

bool RefGhost::Consume(ObjectId id) {
  const auto it = std::find(queue_.begin(), queue_.end(), id);
  if (it == queue_.end()) {
    return false;
  }
  queue_.erase(it);
  return true;
}

bool RefGhost::Contains(ObjectId id) const {
  return std::find(queue_.begin(), queue_.end(), id) != queue_.end();
}

// ---------------------------------------------------------------------------
// RefS3Fifo

RefS3Fifo::RefS3Fifo(size_t capacity, double small_fraction,
                     double ghost_factor)
    : capacity_(capacity),
      small_capacity_(
          std::min(ScaledCapacity(capacity, small_fraction), capacity)),
      ghost_(ScaledCapacity(capacity, ghost_factor)) {}

bool RefS3Fifo::Access(ObjectId id) {
  for (auto& [entry_id, freq] : small_) {
    if (entry_id == id) {
      freq = std::min(freq + 1, 3);
      return true;
    }
  }
  for (auto& [entry_id, freq] : main_) {
    if (entry_id == id) {
      freq = std::min(freq + 1, 3);
      return true;
    }
  }
  MakeRoom();
  if (ghost_.Consume(id)) {
    main_.emplace_back(id, 0);
  } else {
    small_.emplace_back(id, 0);
  }
  return false;
}

void RefS3Fifo::MakeRoom() {
  while (small_.size() + main_.size() >= capacity_) {
    if (!small_.empty() && (small_.size() >= small_capacity_ || main_.empty())) {
      EvictSmall();
    } else {
      EvictMain();
    }
  }
}

void RefS3Fifo::EvictSmall() {
  auto [victim, freq] = small_.front();
  small_.pop_front();
  if (freq >= 1) {
    // Re-accessed on probation: promote to main (frees no space; the
    // MakeRoom loop keeps going).
    main_.emplace_back(victim, 0);
  } else {
    ghost_.Insert(victim);
  }
}

void RefS3Fifo::EvictMain() {
  while (true) {
    auto [candidate, freq] = main_.front();
    main_.pop_front();
    if (freq > 0) {
      main_.emplace_back(candidate, freq - 1);  // another lap at freq - 1
      continue;
    }
    return;  // evicted outright; main evictions are not ghosted
  }
}

bool RefS3Fifo::Contains(ObjectId id) const {
  const auto match = [&](const auto& e) { return e.first == id; };
  return std::any_of(small_.begin(), small_.end(), match) ||
         std::any_of(main_.begin(), main_.end(), match);
}

// ---------------------------------------------------------------------------
// RefQdLpFifo

RefQdLpFifo::RefQdLpFifo(size_t probation_capacity, size_t main_capacity,
                         size_t ghost_capacity)
    : probation_capacity_(probation_capacity),
      main_(main_capacity, /*bits=*/2),
      ghost_(ghost_capacity) {}

bool RefQdLpFifo::Access(ObjectId id) {
  // 1. Probation hit: set the accessed bit, nothing moves.
  for (auto& [entry_id, accessed] : probation_) {
    if (entry_id == id) {
      accessed = true;
      return true;
    }
  }
  // 2. Main hit: the CLOCK model bumps its counter.
  if (main_.Contains(id)) {
    return main_.Access(id);
  }
  // 3. Ghost hit: consume and admit straight into main (still a miss).
  if (ghost_.Consume(id)) {
    main_.Access(id);
    return false;
  }
  // 4. Cold miss: probation.
  while (probation_.size() >= probation_capacity_) {
    EvictProbation();
  }
  probation_.emplace_back(id, false);
  return false;
}

void RefQdLpFifo::EvictProbation() {
  auto [victim, accessed] = probation_.front();
  probation_.pop_front();
  if (accessed) {
    main_.Access(victim);  // lazy promotion
  } else {
    ghost_.Insert(victim);  // quick demotion
  }
}

bool RefQdLpFifo::Contains(ObjectId id) const {
  return std::any_of(probation_.begin(), probation_.end(),
                     [&](const auto& e) { return e.first == id; }) ||
         main_.Contains(id);
}

// ---------------------------------------------------------------------------
// MakeExactOracle

std::unique_ptr<ReferenceModel> MakeExactOracle(const std::string& name,
                                                size_t capacity) {
  if (name == "fifo") {
    return std::make_unique<RefFifo>(capacity);
  }
  if (name == "lru") {
    return std::make_unique<RefLru>(capacity);
  }
  if (name == "lfu") {
    return std::make_unique<RefLfu>(capacity);
  }
  if (name == "fifo-reinsertion" || name == "clock" || name == "clock1") {
    return std::make_unique<RefClock>(capacity, 1);
  }
  if (name == "clock2") {
    return std::make_unique<RefClock>(capacity, 2);
  }
  if (name == "clock3") {
    return std::make_unique<RefClock>(capacity, 3);
  }
  if (name == "sieve") {
    return std::make_unique<RefSieve>(capacity);
  }
  if (name == "s3fifo") {
    // S3FifoPolicy defaults: small_fraction 0.10, ghost_factor 0.9.
    return std::make_unique<RefS3Fifo>(capacity, 0.10, 0.9);
  }
  if (name == "qd-lp-fifo") {
    // Reproduce MakeQdPolicy's split: 10% probation (at least 1, at most
    // capacity - 1), the rest main, ghost = main * ghost_factor (1.0).
    const size_t probation =
        std::min(ScaledCapacity(capacity, 0.10), capacity - 1);
    const size_t main_capacity = capacity - probation;
    const size_t ghost = ScaledCapacity(main_capacity, 1.0);
    return std::make_unique<RefQdLpFifo>(probation, main_capacity, ghost);
  }
  return nullptr;
}

}  // namespace oracle
}  // namespace qdlp
