// Model-based oracles for the policy zoo.
//
// Each reference model is an obviously-correct, naive re-implementation of a
// policy's *specification*: O(n) scans over flat containers, no generation
// counters, no iterator caches, no sharding. They share no code with the
// production policies in src/ — that independence is the point. The
// DifferentialRunner (differential_runner.h) replays randomized traces
// through a production policy and its oracle in lockstep and asserts the
// hit/miss decisions agree.
//
// The models are deliberately slow (linear scans everywhere). They are test
// machinery; keeping them dumb keeps them trustworthy.

#ifndef QDLP_TESTS_ORACLE_REFERENCE_MODELS_H_
#define QDLP_TESTS_ORACLE_REFERENCE_MODELS_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/trace.h"

namespace qdlp {
namespace oracle {

// Minimal cache-model interface: request an object, learn hit/miss.
class ReferenceModel {
 public:
  virtual ~ReferenceModel() = default;

  // Requests `id`; admits on miss (evicting as needed). Returns true on hit.
  virtual bool Access(ObjectId id) = 0;
  // Number of objects currently holding cache space (ghosts excluded).
  virtual size_t size() const = 0;
  // True when `id` currently holds cache space.
  virtual bool Contains(ObjectId id) const = 0;
  virtual const char* name() const = 0;
};

// FIFO: evict in insertion order; hits touch nothing.
class RefFifo : public ReferenceModel {
 public:
  explicit RefFifo(size_t capacity) : capacity_(capacity) {}

  bool Access(ObjectId id) override;
  size_t size() const override { return queue_.size(); }
  bool Contains(ObjectId id) const override;
  const char* name() const override { return "ref-fifo"; }

 private:
  const size_t capacity_;
  std::deque<ObjectId> queue_;  // front = oldest
};

// LRU: move-to-front list, evict the back.
class RefLru : public ReferenceModel {
 public:
  explicit RefLru(size_t capacity) : capacity_(capacity) {}

  bool Access(ObjectId id) override;
  size_t size() const override { return mru_.size(); }
  bool Contains(ObjectId id) const override;
  const char* name() const override { return "ref-lru"; }

 private:
  const size_t capacity_;
  std::vector<ObjectId> mru_;  // front = most recently used
};

// LFU with the production tie-break: evict the entry of minimal frequency
// that entered that frequency class earliest (LfuPolicy's buckets push new
// arrivals at the front and evict from the back).
class RefLfu : public ReferenceModel {
 public:
  explicit RefLfu(size_t capacity) : capacity_(capacity) {}

  bool Access(ObjectId id) override;
  size_t size() const override { return entries_.size(); }
  bool Contains(ObjectId id) const override;
  const char* name() const override { return "ref-lfu"; }

 private:
  struct Entry {
    ObjectId id;
    uint64_t frequency;
    uint64_t stamp;  // clock_ value when `frequency` last changed
  };
  const size_t capacity_;
  uint64_t clock_ = 0;
  std::vector<Entry> entries_;
};

// k-bit CLOCK as a reinsertion queue: the ring-buffer-with-hand formulation
// in src/policies/clock.cc is behaviourally identical to a FIFO where the
// front entry is reinserted at the back (counter - 1) while its counter is
// positive. The queue form is the obviously-correct one.
class RefClock : public ReferenceModel {
 public:
  RefClock(size_t capacity, int bits);

  bool Access(ObjectId id) override;
  size_t size() const override { return queue_.size(); }
  bool Contains(ObjectId id) const override;
  const char* name() const override { return "ref-clock"; }

 private:
  const size_t capacity_;
  const int max_counter_;
  std::deque<std::pair<ObjectId, int>> queue_;  // front = hand
};

// SIEVE: visited bits, a hand that survives evictions, new objects at the
// head. Modelled as a vector ordered oldest -> newest with an index hand.
class RefSieve : public ReferenceModel {
 public:
  explicit RefSieve(size_t capacity) : capacity_(capacity) {}

  bool Access(ObjectId id) override;
  size_t size() const override { return queue_.size(); }
  bool Contains(ObjectId id) const override;
  const char* name() const override { return "ref-sieve"; }

 private:
  struct Node {
    ObjectId id;
    bool visited;
  };
  static constexpr size_t kNoHand = static_cast<size_t>(-1);

  void EvictOne();

  const size_t capacity_;
  std::vector<Node> queue_;  // [0] = oldest, back = newest
  size_t hand_ = kNoHand;    // index into queue_, or kNoHand
};

// Plain FIFO ghost list: remembers recently evicted ids, capped at
// `capacity` (0 = disabled). Consume removes and reports membership.
class RefGhost {
 public:
  explicit RefGhost(size_t capacity) : capacity_(capacity) {}

  void Insert(ObjectId id);
  bool Consume(ObjectId id);
  bool Contains(ObjectId id) const;
  size_t size() const { return queue_.size(); }

 private:
  const size_t capacity_;
  std::deque<ObjectId> queue_;  // front = oldest
};

// S3-FIFO (Yang et al.): small probationary FIFO + main FIFO with lazy
// promotion + ghost. Mirrors the spec in DESIGN.md / src/core/s3fifo.cc:
//  - hits bump a 2-bit frequency (saturating at 3);
//  - room is made by evicting from small while it is over its target (or
//    main is empty), else from main;
//  - a small victim with freq >= 1 moves to main (freeing no space), a
//    freq-0 victim is ghosted;
//  - main reinserts positive-frequency candidates at freq - 1;
//  - ghost hits admit directly into main.
class RefS3Fifo : public ReferenceModel {
 public:
  RefS3Fifo(size_t capacity, double small_fraction, double ghost_factor);

  bool Access(ObjectId id) override;
  size_t size() const override { return small_.size() + main_.size(); }
  bool Contains(ObjectId id) const override;
  const char* name() const override { return "ref-s3fifo"; }

 private:
  void MakeRoom();
  void EvictSmall();
  void EvictMain();

  const size_t capacity_;
  size_t small_capacity_;
  std::deque<std::pair<ObjectId, int>> small_;  // (id, freq); front = oldest
  std::deque<std::pair<ObjectId, int>> main_;
  RefGhost ghost_;
};

// QD-LP-FIFO (the paper's §4 composition): probationary FIFO with accessed
// bits in front of a 2-bit CLOCK main cache, plus a ghost queue feeding the
// main cache directly. Composes RefClock + RefGhost.
class RefQdLpFifo : public ReferenceModel {
 public:
  RefQdLpFifo(size_t probation_capacity, size_t main_capacity,
              size_t ghost_capacity);

  bool Access(ObjectId id) override;
  size_t size() const override { return probation_.size() + main_.size(); }
  bool Contains(ObjectId id) const override;
  const char* name() const override { return "ref-qd-lp-fifo"; }

 private:
  void EvictProbation();

  const size_t probation_capacity_;
  std::deque<std::pair<ObjectId, bool>> probation_;  // (id, accessed bit)
  RefClock main_;
  RefGhost ghost_;
};

// Builds the exact oracle for a production policy name, reproducing the
// factory's capacity split (policy_factory.cc) so hit/miss sequences match
// request-for-request. Returns nullptr for names without an exact oracle
// (adaptive policies get bounded-divergence treatment instead). Covered:
// fifo, lru, lfu, fifo-reinsertion/clock/clock1, clock2, clock3, sieve,
// s3fifo, qd-lp-fifo.
std::unique_ptr<ReferenceModel> MakeExactOracle(const std::string& name,
                                                size_t capacity);

}  // namespace oracle
}  // namespace qdlp

#endif  // QDLP_TESTS_ORACLE_REFERENCE_MODELS_H_
