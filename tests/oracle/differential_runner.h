// Lockstep differential replay: a production cache (the subject) and a
// reference model (the oracle) consume the same request stream; the runner
// cross-checks their decisions and the subject's structural invariants.
//
// Two comparison modes:
//  * exact (divergence_slack == 0): every request's hit/miss outcome must
//    match, and occupancy must agree after every request. For policies with
//    a deterministic spec (FIFO, LRU, LFU, CLOCK, SIEVE, S3-FIFO, the QD
//    composition, and the concurrent caches driven single-threaded).
//  * bounded (divergence_slack > 0): adaptive policies (ARC, LIRS,
//    CLOCK-Pro, W-TinyLFU, ...) legitimately disagree with any simple
//    oracle per-request; the runner instead bounds the cumulative hit-count
//    divergence and keeps the self-consistency checks (hit iff resident
//    before, size <= capacity, invariants) which are oracle-independent.
//
// The runner is gtest-free on purpose: fuzz drivers reuse it.

#ifndef QDLP_TESTS_ORACLE_DIFFERENTIAL_RUNNER_H_
#define QDLP_TESTS_ORACLE_DIFFERENTIAL_RUNNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/policies/eviction_policy.h"
#include "tests/oracle/reference_models.h"

namespace qdlp {
namespace oracle {

// Adapts anything with a bool-returning access operation to the runner.
// Size/Contains are optional: concurrent caches don't all expose them.
class DiffSubject {
 public:
  virtual ~DiffSubject() = default;

  virtual bool Access(ObjectId id) = 0;
  virtual size_t capacity() const = 0;
  virtual std::optional<size_t> Size() const { return std::nullopt; }
  virtual std::optional<bool> Contains(ObjectId /*id*/) const {
    return std::nullopt;
  }
  // Structural self-validation (aborts via QDLP_CHECK on violation).
  virtual void CheckInvariants() const {}
};

// Subject backed by a sequential EvictionPolicy.
class PolicySubject : public DiffSubject {
 public:
  explicit PolicySubject(EvictionPolicy& policy) : policy_(policy) {}

  bool Access(ObjectId id) override { return policy_.Access(id); }
  size_t capacity() const override { return policy_.capacity(); }
  std::optional<size_t> Size() const override { return policy_.size(); }
  std::optional<bool> Contains(ObjectId id) const override {
    return policy_.Contains(id);
  }
  void CheckInvariants() const override { policy_.CheckInvariants(); }

 private:
  EvictionPolicy& policy_;
};

// Subject backed by a ConcurrentCache, driven from one thread. Concurrent
// caches expose neither size nor membership through the base interface;
// CheckInvariants is non-const there (it takes the cache's locks).
class ConcurrentSubject : public DiffSubject {
 public:
  explicit ConcurrentSubject(ConcurrentCache& cache) : cache_(cache) {}

  bool Access(ObjectId id) override { return cache_.Get(id); }
  size_t capacity() const override { return cache_.capacity(); }
  void CheckInvariants() const override { cache_.CheckInvariants(); }

 private:
  ConcurrentCache& cache_;
};

struct DiffOptions {
  // 0 = exact mode. Otherwise the allowed cumulative hit-count divergence
  // is divergence_slack * requests_so_far + divergence_grace.
  double divergence_slack = 0.0;
  uint64_t divergence_grace = 300;
  // Run the subject's CheckInvariants every this many requests (and once at
  // the end). The checks are O(size); a prime stride keeps them cheap while
  // still catching corruption close to where it happened. When the build
  // defines QDLP_CHECK_INVARIANTS, sequential policies additionally
  // self-check after every access regardless of this setting.
  uint64_t invariant_stride = 61;
};

struct DiffOutcome {
  bool ok = true;
  std::string failure;  // empty when ok
  uint64_t requests = 0;
  uint64_t subject_hits = 0;
  uint64_t oracle_hits = 0;
};

// Replays `requests` through subject and oracle in lockstep. Returns the
// first failure (decision mismatch, occupancy mismatch, self-inconsistency,
// divergence budget exceeded) or ok = true. Invariant violations abort via
// QDLP_CHECK inside the subject.
DiffOutcome RunDifferential(DiffSubject& subject, ReferenceModel& model,
                            const std::vector<ObjectId>& requests,
                            const DiffOptions& options = {});

}  // namespace oracle
}  // namespace qdlp

#endif  // QDLP_TESTS_ORACLE_DIFFERENTIAL_RUNNER_H_
