#include "tests/oracle/differential_runner.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace qdlp {
namespace oracle {

namespace {

DiffOutcome Fail(DiffOutcome outcome, uint64_t index, ObjectId id,
                 const std::string& what) {
  std::ostringstream oss;
  oss << what << " at request " << index << " (id " << id << ")";
  outcome.ok = false;
  outcome.failure = oss.str();
  return outcome;
}

}  // namespace

DiffOutcome RunDifferential(DiffSubject& subject, ReferenceModel& model,
                            const std::vector<ObjectId>& requests,
                            const DiffOptions& options) {
  const bool exact = options.divergence_slack == 0.0;
  DiffOutcome outcome;
  for (uint64_t i = 0; i < requests.size(); ++i) {
    const ObjectId id = requests[i];

    // Membership before the access predicts the access outcome: a cache
    // hit means exactly "the object was resident". This holds for every
    // policy in the zoo (ghost hits are misses) and needs no oracle.
    const std::optional<bool> resident_before = subject.Contains(id);

    const bool subject_hit = subject.Access(id);
    const bool model_hit = model.Access(id);
    ++outcome.requests;
    outcome.subject_hits += subject_hit ? 1 : 0;
    outcome.oracle_hits += model_hit ? 1 : 0;

    if (resident_before.has_value() && *resident_before != subject_hit) {
      return Fail(outcome, i, id,
                  std::string("self-inconsistency: Contains() said ") +
                      (*resident_before ? "resident" : "absent") +
                      " but Access() reported " +
                      (subject_hit ? "hit" : "miss"));
    }

    if (exact) {
      if (subject_hit != model_hit) {
        return Fail(outcome, i, id,
                    std::string("decision mismatch: subject ") +
                        (subject_hit ? "hit" : "miss") + ", oracle " +
                        (model_hit ? "hit" : "miss"));
      }
    } else {
      const double allowed =
          options.divergence_slack * static_cast<double>(i + 1) +
          static_cast<double>(options.divergence_grace);
      const double diverged =
          std::abs(static_cast<double>(outcome.subject_hits) -
                   static_cast<double>(outcome.oracle_hits));
      if (diverged > allowed) {
        std::ostringstream oss;
        oss << "cumulative hit divergence " << diverged << " exceeds budget "
            << allowed << " (subject " << outcome.subject_hits << ", oracle "
            << outcome.oracle_hits << ")";
        return Fail(outcome, i, id, oss.str());
      }
    }

    const std::optional<size_t> subject_size = subject.Size();
    if (subject_size.has_value()) {
      if (*subject_size > subject.capacity()) {
        std::ostringstream oss;
        oss << "occupancy " << *subject_size << " exceeds capacity "
            << subject.capacity();
        return Fail(outcome, i, id, oss.str());
      }
      if (exact && *subject_size != model.size()) {
        std::ostringstream oss;
        oss << "occupancy mismatch: subject " << *subject_size << ", oracle "
            << model.size();
        return Fail(outcome, i, id, oss.str());
      }
    }

    if (options.invariant_stride != 0 && i % options.invariant_stride == 0) {
      subject.CheckInvariants();
    }
  }
  subject.CheckInvariants();
  return outcome;
}

}  // namespace oracle
}  // namespace qdlp
