// Removal support (FIFO/LRU/CLOCK) and the TTL layer.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/policy_factory.h"
#include "src/core/ttl_cache.h"
#include "src/policies/clock.h"
#include "src/policies/fifo.h"
#include "src/policies/lru.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(RemovalTest, LruRemove) {
  LruPolicy lru(4);
  lru.Access(1);
  lru.Access(2);
  EXPECT_TRUE(lru.Remove(1));
  EXPECT_FALSE(lru.Contains(1));
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_FALSE(lru.Remove(1));  // already gone
  EXPECT_FALSE(lru.Access(1));  // re-admission works
}

TEST(RemovalTest, FifoRemoveWithStaleQueueRecords) {
  FifoPolicy fifo(3);
  fifo.Access(1);
  fifo.Access(2);
  fifo.Access(3);
  EXPECT_TRUE(fifo.Remove(2));
  EXPECT_EQ(fifo.size(), 2u);
  // Readmit 2: its stale queue record must not cause a premature eviction.
  fifo.Access(2);  // order is now 1, 3, 2
  fifo.Access(4);  // evicts 1
  EXPECT_FALSE(fifo.Contains(1));
  EXPECT_TRUE(fifo.Contains(3));
  EXPECT_TRUE(fifo.Contains(2));
  fifo.Access(5);  // evicts 3
  EXPECT_FALSE(fifo.Contains(3));
  EXPECT_TRUE(fifo.Contains(2));  // 2's new position is behind 3's
}

TEST(RemovalTest, ClockRemoveFreesSlot) {
  ClockPolicy clock(3, 1);
  clock.Access(1);
  clock.Access(2);
  clock.Access(3);
  EXPECT_TRUE(clock.Remove(2));
  EXPECT_EQ(clock.size(), 2u);
  clock.Access(4);  // reuses the freed slot: no eviction
  EXPECT_EQ(clock.size(), 3u);
  EXPECT_TRUE(clock.Contains(1));
  EXPECT_TRUE(clock.Contains(3));
  EXPECT_TRUE(clock.Contains(4));
}

TEST(RemovalTest, ClockRemoveUnderChurn) {
  ClockPolicy clock(16, 2);
  Rng rng(821);
  for (int i = 0; i < 20000; ++i) {
    const ObjectId id = rng.NextBounded(100);
    if (rng.NextBool(0.1)) {
      clock.Remove(id);
    } else {
      clock.Access(id);
    }
    ASSERT_LE(clock.size(), 16u);
  }
}

TEST(RemovalTest, DefaultPoliciesReportNoSupport) {
  auto arc = MakePolicy("arc", 10);
  EXPECT_FALSE(arc->SupportsRemoval());
  EXPECT_FALSE(arc->Remove(1));
}

TEST(TtlCacheTest, FreshHitThenExpiry) {
  TtlCache cache(std::make_unique<LruPolicy>(10));
  EXPECT_FALSE(cache.Access(1, /*ttl=*/5));
  EXPECT_TRUE(cache.Access(1, 5));  // t=2, expires at t=1+5=6
  EXPECT_TRUE(cache.ContainsFresh(1));
  // Let it expire: accesses to other ids advance the clock past 6.
  for (ObjectId id = 100; id < 105; ++id) {
    cache.Access(id, 100);
  }
  EXPECT_FALSE(cache.ContainsFresh(1));
  EXPECT_FALSE(cache.Access(1, 5));  // expired -> miss, re-admitted
  // LRU supports removal, so the expired object was eagerly reaped before
  // the re-access — the miss is a plain miss, not a stale-content hit.
  EXPECT_GE(cache.eager_expirations(), 1u);
  EXPECT_EQ(cache.expired_hits(), 0u);
  EXPECT_TRUE(cache.Access(1, 5));  // fresh again
}

TEST(TtlCacheTest, EagerExpirationFreesSpace) {
  // LRU supports removal, so expired objects leave promptly even without
  // being re-accessed. Capacity 400 keeps LRU evictions out of the picture.
  TtlCache cache(std::make_unique<LruPolicy>(400), 8);
  for (ObjectId id = 0; id < 50; ++id) {
    cache.Access(id, /*ttl=*/200);  // deadlines 201..250
  }
  EXPECT_EQ(cache.resident(), 50u);
  // 300 long-TTL accesses push the clock to 350: the whole first cohort
  // expires and must be reaped without ever being touched again.
  for (ObjectId id = 1000; id < 1300; ++id) {
    cache.Access(id, 100000);
  }
  EXPECT_EQ(cache.eager_expirations(), 50u);
  for (ObjectId id = 0; id < 50; ++id) {
    EXPECT_FALSE(cache.ContainsFresh(id));
  }
  EXPECT_EQ(cache.resident(), 300u);  // only the live cohort holds space
}

TEST(TtlCacheTest, LazyModeForNonRemovablePolicies) {
  TtlCache cache(MakePolicy("arc", 20), 8);
  cache.Access(1, 2);
  cache.Access(2, 100);
  cache.Access(3, 100);  // t=3: object 1 expired (expires at 3? t=1+2=3)
  cache.Access(4, 100);
  EXPECT_FALSE(cache.ContainsFresh(1));
  EXPECT_EQ(cache.eager_expirations(), 0u);  // no Remove support
  EXPECT_FALSE(cache.Access(1, 10));  // lazy: expired hit counted as miss
  EXPECT_EQ(cache.expired_hits(), 1u);
}

TEST(TtlCacheTest, HitsDoNotExtendTtl) {
  // Web semantics: the TTL is set when content is fetched; GETs don't
  // extend it.
  TtlCache cache(std::make_unique<LruPolicy>(10), 8);
  cache.Access(1, 3);            // t=1, expires at t=4
  EXPECT_TRUE(cache.Access(1, 100));  // t=2: fresh hit, deadline unchanged
  cache.Access(2, 100);
  cache.Access(3, 100);  // t=4: object 1's deadline passes
  EXPECT_FALSE(cache.ContainsFresh(1));
}

TEST(TtlCacheTest, ReadmissionSetsNewDeadlineAndOldHeapEntryIsStale) {
  TtlCache cache(std::make_unique<LruPolicy>(10), 8);
  cache.Access(1, 3);  // t=1, expires at t=4
  for (ObjectId id = 10; id < 16; ++id) {
    cache.Access(id, 100);  // clock to t=7; object 1 reaped
  }
  EXPECT_FALSE(cache.Access(1, 100));  // t=8: re-admitted, expires at 108
  for (ObjectId id = 20; id < 26; ++id) {
    cache.Access(id, 100);  // drain any stale heap entries for id 1
  }
  EXPECT_TRUE(cache.ContainsFresh(1));  // the old t=4 deadline must not bite
}

TEST(TtlCacheTest, ShortTtlActsAsQuickDemotion) {
  // Objects with short TTLs cannot pollute the cache for long — TTL is a
  // removal-driven form of demotion (§2/§5).
  TtlCache cache(std::make_unique<LruPolicy>(50), 8);
  Rng rng(823);
  uint64_t hot_hits = 0;
  uint64_t hot_requests = 0;
  for (int i = 0; i < 30000; ++i) {
    if (rng.NextBool(0.5)) {
      ++hot_requests;
      hot_hits += cache.Access(rng.NextBounded(40), 1000000) ? 1 : 0;
    } else {
      // Churn with 1-request TTLs: dead on arrival.
      cache.Access((1u << 28) + static_cast<ObjectId>(i), 1);
    }
  }
  // The hot set (40 objects, cache 50) should stay nearly fully resident
  // because expired churn is eagerly reaped.
  EXPECT_GT(static_cast<double>(hot_hits) / static_cast<double>(hot_requests),
            0.95);
}

}  // namespace
}  // namespace qdlp
