// Dense-id trace remap: first-appearance numbering, exact round-trip back
// to the original stream, and the trace-stats rewrite that rides on it.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/trace/dense_trace.h"
#include "src/trace/generators.h"
#include "src/trace/trace.h"

namespace qdlp {
namespace {

TEST(DenseIdMapperTest, AssignsFirstAppearanceOrder) {
  DenseIdMapper mapper;
  EXPECT_EQ(mapper.MapOrAssign(900), 0u);
  EXPECT_EQ(mapper.MapOrAssign(5), 1u);
  EXPECT_EQ(mapper.MapOrAssign(900), 0u);  // stable on repeat
  EXPECT_EQ(mapper.MapOrAssign(77), 2u);
  EXPECT_EQ(mapper.num_ids(), 3u);
  EXPECT_EQ(mapper.to_original(), (std::vector<ObjectId>{900, 5, 77}));
}

TEST(DenseTraceTest, DensifyEmptyTrace) {
  Trace trace;
  trace.name = "empty";
  const DenseTrace dense = DensifyTrace(trace);
  EXPECT_EQ(dense.num_requests(), 0u);
  EXPECT_EQ(dense.num_objects(), 0u);
  EXPECT_EQ(dense.name, "empty");
}

TEST(DenseTraceTest, DensifyPreservesStructure) {
  Trace trace;
  trace.name = "toy";
  trace.dataset = "unit";
  trace.cls = WorkloadClass::kWeb;
  trace.requests = {1000, 2000, 1000, 3000, 2000, 1000};
  trace.num_objects = 3;
  const DenseTrace dense = DensifyTrace(trace);
  EXPECT_EQ(dense.name, trace.name);
  EXPECT_EQ(dense.dataset, trace.dataset);
  EXPECT_EQ(dense.cls, trace.cls);
  EXPECT_EQ(dense.requests, (std::vector<uint32_t>{0, 1, 0, 2, 1, 0}));
  EXPECT_EQ(dense.to_original, (std::vector<ObjectId>{1000, 2000, 3000}));
  EXPECT_EQ(dense.num_objects(), 3u);
}

TEST(DenseTraceTest, RoundTripsGeneratedTrace) {
  ZipfTraceConfig config;
  config.num_requests = 50000;
  config.num_objects = 4000;
  const Trace trace = GenerateZipf(config);
  const DenseTrace dense = DensifyTrace(trace);

  ASSERT_EQ(dense.num_requests(), trace.requests.size());
  EXPECT_EQ(dense.num_objects(), trace.num_objects);
  // Translating every dense id back must reproduce the original stream
  // exactly — this is the property the batched engine's original-id lane
  // relies on for bit-identical replays.
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    ASSERT_LT(dense.requests[i], dense.to_original.size());
    ASSERT_EQ(dense.to_original[dense.requests[i]], trace.requests[i])
        << "position " << i;
  }
  // Dense ids are first-appearance-ordered: id k appears in the stream
  // before id k+1 ever does, so the running max increments by at most 1.
  uint32_t next_unseen = 0;
  for (const uint32_t id : dense.requests) {
    ASSERT_LE(id, next_unseen);
    if (id == next_unseen) {
      ++next_unseen;
    }
  }
  EXPECT_EQ(next_unseen, dense.num_objects());
}

TEST(DenseTraceTest, CountUniqueObjectsMatchesRemap) {
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 1500;
  config.seed = 7;
  const Trace trace = GenerateZipf(config);
  EXPECT_EQ(CountUniqueObjects(trace.requests),
            DensifyTrace(trace).num_objects());
  EXPECT_EQ(CountUniqueObjects({}), 0u);
}

TEST(DenseTraceTest, StatsUnchangedByIdRelabeling) {
  // ComputeTraceStats now runs on dense ids internally; its output must be
  // a pure function of the access pattern, so relabeling every id (here:
  // an affine map, preserving distinctness) cannot change any statistic.
  ScanLoopConfig config;
  config.num_requests = 40000;
  const Trace trace = GenerateScanLoop(config);
  Trace relabeled = trace;
  for (ObjectId& id : relabeled.requests) {
    id = id * 2654435761ULL + 17;
  }
  const TraceStats original = ComputeTraceStats(trace);
  const TraceStats mapped = ComputeTraceStats(relabeled);
  EXPECT_EQ(original.num_requests, mapped.num_requests);
  EXPECT_EQ(original.num_objects, mapped.num_objects);
  EXPECT_DOUBLE_EQ(original.mean_frequency, mapped.mean_frequency);
  EXPECT_DOUBLE_EQ(original.one_hit_wonder_ratio, mapped.one_hit_wonder_ratio);
  EXPECT_DOUBLE_EQ(original.top_1pct_share, mapped.top_1pct_share);
  EXPECT_DOUBLE_EQ(original.zipf_alpha, mapped.zipf_alpha);
  EXPECT_DOUBLE_EQ(original.compulsory_miss_ratio,
                   mapped.compulsory_miss_ratio);
}

}  // namespace
}  // namespace qdlp
