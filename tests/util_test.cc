#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/util/random.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversSmallRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(4));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(15);
  int trues = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    trues += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(trues) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.NextExponential(50.0));
  }
  EXPECT_NEAR(sum / kSamples, 50.0, 2.0);
}

TEST(SplitMix64Test, IsDeterministicAndMixes) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  // Adjacent inputs should differ in roughly half the bits.
  const uint64_t diff = SplitMix64(100) ^ SplitMix64(101);
  EXPECT_GT(__builtin_popcountll(diff), 16);
}

class ZipfAgreementTest : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfAgreementTest, RejectionSamplerMatchesTableOracle) {
  const auto [n, skew] = GetParam();
  ZipfSampler fast(n, skew);
  ZipfTable oracle(n, skew);
  constexpr int kSamples = 200000;
  std::vector<double> fast_counts(n, 0.0);
  std::vector<double> oracle_counts(n, 0.0);
  Rng rng_fast(21);
  Rng rng_oracle(22);
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t a = fast.Sample(rng_fast);
    const uint64_t b = oracle.Sample(rng_oracle);
    ASSERT_LT(a, n);
    ASSERT_LT(b, n);
    fast_counts[a] += 1;
    oracle_counts[b] += 1;
  }
  // Compare the head of the distribution (ranks with solid mass).
  for (uint64_t rank = 0; rank < std::min<uint64_t>(n, 5); ++rank) {
    const double pf = fast_counts[rank] / kSamples;
    const double po = oracle_counts[rank] / kSamples;
    EXPECT_NEAR(pf, po, 0.01) << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfAgreementTest,
    ::testing::Values(std::make_tuple(10ULL, 0.6), std::make_tuple(10ULL, 1.0),
                      std::make_tuple(100ULL, 0.8),
                      std::make_tuple(100ULL, 1.0),
                      std::make_tuple(1000ULL, 1.2),
                      std::make_tuple(1000ULL, 0.5)));

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(23);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, SingleObjectAlwaysRankZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(25);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

TEST(ZipfTest, HighSkewConcentrates) {
  ZipfSampler mild(1000, 0.5);
  ZipfSampler steep(1000, 1.5);
  Rng rng_a(27);
  Rng rng_b(27);
  int mild_head = 0;
  int steep_head = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_head += mild.Sample(rng_a) < 10 ? 1 : 0;
    steep_head += steep.Sample(rng_b) < 10 ? 1 : 0;
  }
  EXPECT_GT(steep_head, mild_head * 2);
}

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
  EXPECT_NEAR(stats.variance(), 1.25, 1e-12);
}

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(PercentileSummaryTest, QuantilesOfKnownData) {
  PercentileSummary summary;
  for (int i = 1; i <= 100; ++i) {
    summary.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(summary.Min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.Max(), 100.0);
  EXPECT_NEAR(summary.Median(), 50.5, 1e-9);
  EXPECT_NEAR(summary.Quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(summary.Mean(), 50.5, 1e-9);
}

TEST(PercentileSummaryTest, EmptyReturnsZero) {
  PercentileSummary summary;
  EXPECT_EQ(summary.Quantile(0.5), 0.0);
  EXPECT_EQ(summary.Mean(), 0.0);
}

TEST(PercentileSummaryTest, AddAfterQuantileStillSorted) {
  PercentileSummary summary;
  summary.Add(3.0);
  summary.Add(1.0);
  EXPECT_DOUBLE_EQ(summary.Min(), 1.0);
  summary.Add(0.5);
  EXPECT_DOUBLE_EQ(summary.Min(), 0.5);
  EXPECT_DOUBLE_EQ(summary.Max(), 3.0);
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.WriteCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FmtPercent(0.1234, 1), "12.3%");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

// Regression: a throwing task used to escape WorkerLoop — std::terminate on
// the spot, or a forever-wedged Wait() because in_flight_ was never
// decremented. Wait() must instead drain the queue and rethrow the first
// captured exception.
TEST(ThreadPoolTest, ThrowingTaskIsRethrownFromWait) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // All non-throwing tasks still ran; the pool did not wedge or lose work.
  EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPoolTest, FirstOfManyExceptionsWinsAndPoolStaysUsable) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  bool threw = false;
  try {
    pool.Wait();
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_TRUE(threw);
  // The error was consumed: the pool accepts and runs new work, and the
  // next Wait() returns cleanly.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, NonExceptionTasksUnaffectedByEarlierThrow) {
  ThreadPool pool(4);
  pool.Submit([] { throw 42; });  // non-std::exception payloads work too
  EXPECT_THROW(pool.Wait(), int);
  pool.Wait();  // cleared: no rethrow
  SUCCEED();
}

}  // namespace
}  // namespace qdlp
