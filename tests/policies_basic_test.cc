// FIFO, LRU, and CLOCK semantics, including cross-checks against simple
// reference models (stack-based LRU; deque-based FIFO-Reinsertion).

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "src/policies/clock.h"
#include "src/policies/fifo.h"
#include "src/policies/lru.h"
#include "src/trace/generators.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

TEST(FifoTest, EvictsInInsertionOrder) {
  FifoPolicy fifo(3);
  EXPECT_FALSE(fifo.Access(1));
  EXPECT_FALSE(fifo.Access(2));
  EXPECT_FALSE(fifo.Access(3));
  EXPECT_TRUE(fifo.Access(1));   // hit does not change order
  EXPECT_FALSE(fifo.Access(4));  // evicts 1 (oldest), despite the hit
  EXPECT_FALSE(fifo.Contains(1));
  EXPECT_TRUE(fifo.Contains(2));
  EXPECT_TRUE(fifo.Contains(3));
  EXPECT_TRUE(fifo.Contains(4));
}

TEST(FifoTest, SizeNeverExceedsCapacity) {
  FifoPolicy fifo(5);
  for (ObjectId id = 0; id < 100; ++id) {
    fifo.Access(id);
    EXPECT_LE(fifo.size(), 5u);
  }
  EXPECT_EQ(fifo.size(), 5u);
}

TEST(LruTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru(3);
  lru.Access(1);
  lru.Access(2);
  lru.Access(3);
  EXPECT_TRUE(lru.Access(1));   // 1 becomes MRU
  EXPECT_FALSE(lru.Access(4));  // evicts 2
  EXPECT_TRUE(lru.Contains(1));
  EXPECT_FALSE(lru.Contains(2));
  EXPECT_TRUE(lru.Contains(3));
}

// Reference LRU: O(n) vector-based stack.
class ReferenceLru {
 public:
  explicit ReferenceLru(size_t capacity) : capacity_(capacity) {}
  bool Access(ObjectId id) {
    const auto it = std::find(stack_.begin(), stack_.end(), id);
    if (it != stack_.end()) {
      stack_.erase(it);
      stack_.push_back(id);
      return true;
    }
    if (stack_.size() == capacity_) {
      stack_.erase(stack_.begin());
    }
    stack_.push_back(id);
    return false;
  }

 private:
  size_t capacity_;
  std::vector<ObjectId> stack_;  // back = MRU
};

TEST(LruTest, MatchesReferenceModelOnZipfTrace) {
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 300;
  config.seed = 31;
  const Trace trace = GenerateZipf(config);
  LruPolicy lru(50);
  ReferenceLru reference(50);
  for (const ObjectId id : trace.requests) {
    ASSERT_EQ(lru.Access(id), reference.Access(id));
  }
}

// Reference FIFO-Reinsertion: deque of (id, referenced-bit); eviction pops
// the head, reinserting it at the tail with a decremented counter while the
// counter is non-zero.
class ReferenceFifoReinsertion {
 public:
  ReferenceFifoReinsertion(size_t capacity, int max_counter)
      : capacity_(capacity), max_counter_(max_counter) {}
  bool Access(ObjectId id) {
    for (auto& [entry_id, counter] : queue_) {
      if (entry_id == id) {
        counter = std::min(counter + 1, max_counter_);
        return true;
      }
    }
    if (queue_.size() == capacity_) {
      while (queue_.front().second > 0) {
        auto front = queue_.front();
        queue_.pop_front();
        --front.second;
        queue_.push_back(front);
      }
      queue_.pop_front();
    }
    queue_.push_back({id, 0});
    return false;
  }

 private:
  size_t capacity_;
  int max_counter_;
  std::deque<std::pair<ObjectId, int>> queue_;
};

class ClockEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ClockEquivalenceTest, RingClockMatchesQueueReinsertion) {
  const int bits = GetParam();
  ZipfTraceConfig config;
  config.num_requests = 15000;
  config.num_objects = 200;
  config.seed = 33;
  const Trace trace = GenerateZipf(config);
  ClockPolicy clock(40, bits);
  ReferenceFifoReinsertion reference(40, (1 << bits) - 1);
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    ASSERT_EQ(clock.Access(trace.requests[i]),
              reference.Access(trace.requests[i]))
        << "diverged at request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, ClockEquivalenceTest, ::testing::Values(1, 2, 3));

TEST(ClockTest, HitSetsReferenceProtection) {
  ClockPolicy clock(3, 1);
  clock.Access(1);
  clock.Access(2);
  clock.Access(3);
  clock.Access(1);              // 1 gets its second chance bit
  EXPECT_FALSE(clock.Access(4));  // sweeps: 1 spared, 2 evicted
  EXPECT_TRUE(clock.Contains(1));
  EXPECT_FALSE(clock.Contains(2));
  EXPECT_TRUE(clock.Contains(3));
  EXPECT_TRUE(clock.Contains(4));
}

TEST(ClockTest, TwoBitSurvivesTwoSweeps) {
  ClockPolicy clock(2, 2);
  clock.Access(1);
  clock.Access(1);  // counter -> 1
  clock.Access(1);  // counter -> 2
  clock.Access(2);
  // Two insertions must each decrement 1's counter before it can be evicted.
  clock.Access(3);  // evicts 2 (counter 0) after decrementing 1
  EXPECT_TRUE(clock.Contains(1));
  EXPECT_FALSE(clock.Contains(2));
  clock.Access(4);  // decrements 1 again (to 0), evicts 3
  EXPECT_TRUE(clock.Contains(1));
  clock.Access(5);  // now 1 is evictable
  EXPECT_FALSE(clock.Contains(1));
}

TEST(ClockTest, NameReflectsBits) {
  EXPECT_EQ(ClockPolicy(4, 1).name(), "fifo-reinsertion");
  EXPECT_EQ(ClockPolicy(4, 2).name(), "clock2");
}

TEST(ClockTest, CounterSaturates) {
  ClockPolicy clock(2, 1);
  clock.Access(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(clock.Access(1));  // repeated hits saturate at 1
  }
  clock.Access(2);
  clock.Access(3);  // sweep: 1 spared once (counter 1 -> 0), 2 evicted
  EXPECT_TRUE(clock.Contains(1));
  EXPECT_FALSE(clock.Contains(2));
  clock.Access(4);  // 1's counter is now 0 -> evicted
  EXPECT_FALSE(clock.Contains(1));
}

}  // namespace
}  // namespace qdlp
