# Exports a tiny registry, then replays one exported trace — exercises the
# trace I/O round trip through the user-facing tools.
file(REMOVE_RECURSE "${WORK_DIR}")
execute_process(COMMAND "${EXPORT_BIN}" "${WORK_DIR}" 0.02
                RESULT_VARIABLE export_result)
if(NOT export_result EQUAL 0)
  message(FATAL_ERROR "export_registry failed: ${export_result}")
endif()
file(GLOB exported "${WORK_DIR}/*.bin")
list(GET exported 0 first_trace)
execute_process(COMMAND "${REPLAY_BIN}" "${first_trace}" lru,fifo-reinsertion 0.05
                RESULT_VARIABLE replay_result)
if(NOT replay_result EQUAL 0)
  message(FATAL_ERROR "replay_trace failed: ${replay_result}")
endif()
