// Concurrent QD-LP-FIFO: sequential equivalence against the composed
// MakePolicy("qd-lp-fifo") spec + multi-thread stress with invariant checks.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/concurrent/concurrent_qdlp_fifo.h"
#include "src/core/policy_factory.h"
#include "src/trace/generators.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

class QdLpFifoEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QdLpFifoEquivalenceTest, SingleThreadMatchesSequentialPolicy) {
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 1000;
  config.skew = 0.9;
  config.seed = GetParam();
  const Trace trace = GenerateZipf(config);
  constexpr size_t kCapacity = 120;
  const auto sequential = MakePolicy("qd-lp-fifo", kCapacity);
  ASSERT_NE(sequential, nullptr);
  ConcurrentQdLpFifo concurrent(kCapacity, /*num_stripes=*/4);
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const ObjectId id = trace.requests[i];
    ASSERT_EQ(concurrent.Get(id), sequential->Access(id))
        << "diverged at request " << i;
    if (i % 997 == 0) {
      concurrent.CheckInvariants();
    }
  }
  concurrent.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QdLpFifoEquivalenceTest,
                         ::testing::Values(901, 902, 903, 904));

TEST(ConcurrentQdLpFifoTest, CapacitySplitMatchesFactory) {
  // probation = clamp(round(0.10 * cap), 1, cap - 1); main = the rest.
  ConcurrentQdLpFifo tiny(2);
  EXPECT_EQ(tiny.probation_capacity(), 1u);
  EXPECT_EQ(tiny.main_capacity(), 1u);
  ConcurrentQdLpFifo small(16);
  EXPECT_EQ(small.probation_capacity(), 2u);
  EXPECT_EQ(small.main_capacity(), 14u);
  ConcurrentQdLpFifo big(1000);
  EXPECT_EQ(big.probation_capacity(), 100u);
  EXPECT_EQ(big.main_capacity(), 900u);
  EXPECT_EQ(big.capacity(), 1000u);
}

TEST(ConcurrentQdLpFifoTest, CapacityBoundedUnderThreads) {
  constexpr size_t kCapacity = 1000;
  ConcurrentQdLpFifo cache(kCapacity, /*num_stripes=*/8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(920 + static_cast<uint64_t>(t));
      ZipfSampler zipf(20000, 1.0);
      for (int i = 0; i < 40000; ++i) {
        cache.Get(zipf.Sample(rng));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  cache.CheckInvariants();
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_GE(cache.size(), kCapacity / 2);  // steady state: mostly full
}

TEST(ConcurrentQdLpFifoTest, HitRatioSaneUnderThreads) {
  constexpr size_t kCapacity = 2000;
  ConcurrentQdLpFifo cache(kCapacity, /*num_stripes=*/8);
  std::atomic<uint64_t> hits{0};
  constexpr int kThreads = 6;
  constexpr int kOps = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(930 + static_cast<uint64_t>(t));
      ZipfSampler zipf(10000, 1.0);
      uint64_t local = 0;
      for (int i = 0; i < kOps; ++i) {
        local += cache.Get(zipf.Sample(rng)) ? 1 : 0;
      }
      hits.fetch_add(local);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  cache.CheckInvariants();
  const double hit_ratio = static_cast<double>(hits.load()) /
                           (static_cast<double>(kThreads) * kOps);
  EXPECT_GT(hit_ratio, 0.5);
  EXPECT_LT(hit_ratio, 0.99);
}

TEST(ConcurrentQdLpFifoTest, GhostResurrectionAdmitsIntoMain) {
  ConcurrentQdLpFifo cache(20);  // probation 2, main 18, ghost 18
  cache.Get(1);
  // Flood the probation FIFO so 1 is quick-demoted into the ghost.
  for (ObjectId id = 100; id < 110; ++id) {
    cache.Get(id);
  }
  EXPECT_FALSE(cache.Get(1));  // ghost hit is still a miss...
  EXPECT_TRUE(cache.Get(1));   // ...but 1 is now resident in main
  cache.CheckInvariants();
}

TEST(ConcurrentQdLpFifoTest, LazyPromotionKeepsReaccessedObjects) {
  ConcurrentQdLpFifo cache(20);  // probation 2
  cache.Get(1);
  EXPECT_TRUE(cache.Get(1));  // sets the probation accessed bit
  // Push 1 out of probation; the accessed bit promotes it into main.
  cache.Get(2);
  cache.Get(3);
  EXPECT_TRUE(cache.Get(1));
  cache.CheckInvariants();
}

TEST(ConcurrentQdLpFifoTest, ReportsMetadataBytes) {
  ConcurrentQdLpFifo cache(1000);
  EXPECT_GT(cache.ApproxMetadataBytes(), 0u);
}

}  // namespace
}  // namespace qdlp
