// Property tests for the two history structures the QD machinery leans on:
// the ghost FIFO queue (eviction history) and the blocked Bloom filter
// (TinyLFU's doorkeeper). Exercised at degenerate capacities (0, 1), with
// duplicate inserts, at-capacity eviction order, randomized cross-checks
// against a naive model, and a false-positive-rate bound under load.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

#include "src/core/ghost_queue.h"
#include "src/util/bloom_filter.h"
#include "src/util/random.h"

namespace qdlp {
namespace {

// ---------------------------------------------------------------------------
// GhostQueue

TEST(GhostQueueTest, CapacityZeroRemembersNothing) {
  GhostQueue ghost(0);
  ghost.Insert(1);
  ghost.Insert(2);
  EXPECT_EQ(ghost.size(), 0u);
  EXPECT_FALSE(ghost.Contains(1));
  EXPECT_FALSE(ghost.Consume(1));
  ghost.CheckInvariants();
}

TEST(GhostQueueTest, CapacityOneKeepsOnlyTheNewest) {
  GhostQueue ghost(1);
  ghost.Insert(1);
  EXPECT_TRUE(ghost.Contains(1));
  ghost.Insert(2);
  EXPECT_FALSE(ghost.Contains(1)) << "older entry must have been evicted";
  EXPECT_TRUE(ghost.Contains(2));
  EXPECT_EQ(ghost.size(), 1u);
  ghost.CheckInvariants();
}

TEST(GhostQueueTest, ConsumeRemovesExactlyOnce) {
  GhostQueue ghost(4);
  ghost.Insert(7);
  EXPECT_TRUE(ghost.Consume(7));
  EXPECT_FALSE(ghost.Consume(7)) << "each ghost hit is consumed";
  EXPECT_EQ(ghost.size(), 0u);
  ghost.CheckInvariants();
}

TEST(GhostQueueTest, DuplicateInsertRefreshesPosition) {
  GhostQueue ghost(3);
  ghost.Insert(1);
  ghost.Insert(2);
  ghost.Insert(3);
  // Re-inserting 1 refreshes it to the newest slot; the next two inserts
  // must evict 2 and 3 (now the oldest), never the refreshed 1.
  ghost.Insert(1);
  ghost.Insert(4);
  ghost.Insert(5);
  EXPECT_TRUE(ghost.Contains(1));
  EXPECT_FALSE(ghost.Contains(2));
  EXPECT_FALSE(ghost.Contains(3));
  EXPECT_EQ(ghost.size(), 3u);
  ghost.CheckInvariants();
}

TEST(GhostQueueTest, EvictionAtCapacityIsFifoOrder) {
  constexpr size_t kCapacity = 8;
  GhostQueue ghost(kCapacity);
  for (ObjectId id = 0; id < 2 * kCapacity; ++id) {
    ghost.Insert(id);
    EXPECT_LE(ghost.size(), kCapacity);
  }
  for (ObjectId id = 0; id < kCapacity; ++id) {
    EXPECT_FALSE(ghost.Contains(id)) << "id " << id;
  }
  for (ObjectId id = kCapacity; id < 2 * kCapacity; ++id) {
    EXPECT_TRUE(ghost.Contains(id)) << "id " << id;
  }
  ghost.CheckInvariants();
}

// Randomized differential check against a naive deque model: inserts,
// refreshes, and consumes over a small id universe so every interaction
// (stale records, generation mismatches, trimming) gets exercised.
TEST(GhostQueueTest, MatchesNaiveModelUnderRandomOps) {
  constexpr size_t kCapacity = 16;
  GhostQueue ghost(kCapacity);
  std::deque<ObjectId> model;  // front = oldest, unique entries

  Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const ObjectId id = rng.NextBounded(48);
    if (rng.NextBool(0.35)) {
      const bool model_hit =
          std::find(model.begin(), model.end(), id) != model.end();
      if (model_hit) {
        model.erase(std::find(model.begin(), model.end(), id));
      }
      ASSERT_EQ(ghost.Consume(id), model_hit) << "step " << step;
    } else {
      const auto it = std::find(model.begin(), model.end(), id);
      if (it != model.end()) {
        model.erase(it);
      }
      model.push_back(id);
      if (model.size() > kCapacity) {
        model.pop_front();
      }
      ghost.Insert(id);
    }
    ASSERT_EQ(ghost.size(), model.size()) << "step " << step;
    if (step % 97 == 0) {
      for (const ObjectId check : model) {
        ASSERT_TRUE(ghost.Contains(check)) << "step " << step;
      }
      ghost.CheckInvariants();
    }
  }
  ghost.CheckInvariants();
}

// ---------------------------------------------------------------------------
// BloomFilter

TEST(BloomFilterTest, MinimalCapacityWorks) {
  BloomFilter filter(1);
  EXPECT_FALSE(filter.MayContain(99));
  filter.Insert(99);
  EXPECT_TRUE(filter.MayContain(99));
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000);
  std::vector<uint64_t> keys;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(rng.Next());
    filter.Insert(keys.back());
  }
  for (const uint64_t key : keys) {
    EXPECT_TRUE(filter.MayContain(key)) << "key " << key;
  }
}

TEST(BloomFilterTest, DuplicateInsertStillCountsInserted) {
  BloomFilter filter(16);
  filter.Insert(5);
  filter.Insert(5);
  EXPECT_EQ(filter.inserted(), 2u);
  EXPECT_TRUE(filter.MayContain(5));
}

TEST(BloomFilterTest, ClearForgetsEverything) {
  BloomFilter filter(64);
  for (uint64_t key = 0; key < 64; ++key) {
    filter.Insert(SplitMix64(key));
  }
  filter.Clear();
  EXPECT_EQ(filter.inserted(), 0u);
  int positives = 0;
  for (uint64_t key = 0; key < 64; ++key) {
    positives += filter.MayContain(SplitMix64(key)) ? 1 : 0;
  }
  EXPECT_EQ(positives, 0) << "a cleared filter has no set bits at all";
}

TEST(BloomFilterTest, FalsePositiveRateStaysBounded) {
  // Sized for 3% FPR at nominal load with k = 4 probes; assert a generous
  // 6% on disjoint probe keys so the test is insensitive to hash luck.
  constexpr int kItems = 5000;
  constexpr int kProbes = 20000;
  BloomFilter filter(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    filter.Insert(SplitMix64(i));
  }
  int false_positives = 0;
  for (uint64_t i = 0; i < kProbes; ++i) {
    // Disjoint from the inserted universe by construction.
    if (filter.MayContain(SplitMix64(1'000'000 + i))) {
      ++false_positives;
    }
  }
  const double rate = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(rate, 0.06) << false_positives << " of " << kProbes;
  // And it is a real filter, not a tautology: some bits are actually set.
  EXPECT_EQ(filter.inserted(), static_cast<size_t>(kItems));
}

}  // namespace
}  // namespace qdlp
