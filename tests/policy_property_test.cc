// Cross-policy property tests: invariants every eviction policy must hold,
// swept over the full policy registry × capacities × workload shapes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/generators.h"
#include "src/trace/trace.h"

namespace qdlp {
namespace {

enum class PropertyWorkload { kBlockScan, kWebDecay };

Trace PropertyTrace(uint64_t seed, PropertyWorkload workload) {
  if (workload == PropertyWorkload::kBlockScan) {
    // Zipf core with scans: hit and eviction paths both run hot.
    ScanLoopConfig config;
    config.num_requests = 12000;
    config.hot_objects = 400;
    config.hot_skew = 0.9;
    config.scan_start_probability = 0.004;
    config.seed = seed;
    return GenerateScanLoop(config);
  }
  // Web shape: popularity decay plus one-hit wonders, which exercises the
  // ghost/history machinery of the composed policies.
  PopularityDecayConfig config;
  config.num_requests = 12000;
  config.one_hit_wonder_fraction = 0.2;
  config.initial_objects = 400;
  config.seed = seed;
  return GeneratePopularityDecay(config);
}

class PolicyPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, size_t, PropertyWorkload>> {
 protected:
  std::string PolicyName() const { return std::get<0>(GetParam()); }
  size_t Capacity() const { return std::get<1>(GetParam()); }
  Trace PropertyTrace(uint64_t seed) const {
    return qdlp::PropertyTrace(seed, std::get<2>(GetParam()));
  }
};

TEST_P(PolicyPropertyTest, SizeNeverExceedsCapacity) {
  const Trace trace = PropertyTrace(211);
  auto policy = MakePolicy(PolicyName(), Capacity(), &trace.requests);
  ASSERT_NE(policy, nullptr);
  for (const ObjectId id : trace.requests) {
    policy->Access(id);
    ASSERT_LE(policy->size(), Capacity());
  }
}

TEST_P(PolicyPropertyTest, SteadyStateIsFull) {
  // After far more distinct objects than capacity, a demand-filled cache
  // should hold a substantial population — policies must not leak space.
  // (Not necessarily 100%: admission-filtering designs like QD/S3-FIFO keep
  // their main region at working-set size, and Belady refuses objects with
  // no future use.)
  if (PolicyName() == "belady") {
    GTEST_SKIP();
  }
  const Trace trace = PropertyTrace(223);
  auto policy = MakePolicy(PolicyName(), Capacity(), &trace.requests);
  ASSERT_NE(policy, nullptr);
  for (const ObjectId id : trace.requests) {
    policy->Access(id);
  }
  EXPECT_GE(policy->size(), Capacity() / 2);
}

TEST_P(PolicyPropertyTest, ResidentAfterMissAdmission) {
  if (PolicyName() == "belady") {
    GTEST_SKIP();  // Belady legitimately bypasses never-reused objects
  }
  const Trace trace = PropertyTrace(227);
  auto policy = MakePolicy(PolicyName(), Capacity(), &trace.requests);
  ASSERT_NE(policy, nullptr);
  for (const ObjectId id : trace.requests) {
    const bool hit = policy->Access(id);
    if (!hit) {
      ASSERT_TRUE(policy->Contains(id)) << "missed object not admitted";
    }
  }
}

TEST_P(PolicyPropertyTest, HitImpliesResidentBefore) {
  const Trace trace = PropertyTrace(229);
  auto policy = MakePolicy(PolicyName(), Capacity(), &trace.requests);
  ASSERT_NE(policy, nullptr);
  for (const ObjectId id : trace.requests) {
    const bool was_resident = policy->Contains(id);
    const bool hit = policy->Access(id);
    ASSERT_EQ(hit, was_resident) << "hit/containment disagree";
  }
}

TEST_P(PolicyPropertyTest, DeterministicReplay) {
  const Trace trace = PropertyTrace(233);
  const auto run = [&] {
    auto policy = MakePolicy(PolicyName(), Capacity(), &trace.requests);
    return ReplayTrace(*policy, trace).hits;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(PolicyPropertyTest, MissRatioWithinLogicalBounds) {
  const Trace trace = PropertyTrace(239);
  auto policy = MakePolicy(PolicyName(), Capacity(), &trace.requests);
  ASSERT_NE(policy, nullptr);
  const SimResult result = ReplayTrace(*policy, trace);
  const double compulsory = static_cast<double>(trace.num_objects) /
                            static_cast<double>(trace.requests.size());
  EXPECT_LE(result.miss_ratio(), 1.0);
  // No demand-fill policy can beat the compulsory miss floor.
  EXPECT_GE(result.miss_ratio(), compulsory - 1e-12);
}

TEST_P(PolicyPropertyTest, NeverBeatsBelady) {
  const Trace trace = PropertyTrace(241);
  auto policy = MakePolicy(PolicyName(), Capacity(), &trace.requests);
  ASSERT_NE(policy, nullptr);
  const SimResult result = ReplayTrace(*policy, trace);
  const SimResult optimal = SimulatePolicy("belady", trace, Capacity());
  EXPECT_GE(result.misses(), optimal.misses());
}

std::vector<std::string> AllPolicies() { return KnownPolicyNames(); }

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndSizes, PolicyPropertyTest,
    ::testing::Combine(::testing::ValuesIn(AllPolicies()),
                       ::testing::Values<size_t>(16, 97, 512),
                       ::testing::Values(PropertyWorkload::kBlockScan,
                                         PropertyWorkload::kWebDecay)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, size_t, PropertyWorkload>>& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::to_string(std::get<1>(info.param)) +
          (std::get<2>(info.param) == PropertyWorkload::kBlockScan ? "_block"
                                                                   : "_web");
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace qdlp
