// Golden-sequence tests pinning the random stack to exact values.
//
// Every experiment in this repo claims to be reproducible from a seed; that
// claim is only as strong as the determinism of Rng, ZipfSampler, and the
// generators built on them. The core is integer-only (xoshiro256** +
// SplitMix64 + Lemire reduction), so these sequences are identical on every
// conforming platform; the Zipf sampler additionally relies on IEEE-754
// double arithmetic, which C++ evaluates deterministically for this code.
// If any golden value here changes, every published experiment seed breaks
// — treat that as a semantic API break, not a test to update casually.

#include <gtest/gtest.h>

#include <vector>

#include "src/trace/generators.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

TEST(DeterminismTest, SplitMix64GoldenSequence) {
  const uint64_t expected[] = {16294208416658607535ull, 10451216379200822465ull,
                               10905525725756348110ull, 2092789425003139053ull};
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(SplitMix64(i), expected[i]) << "input " << i;
  }
}

TEST(DeterminismTest, RngNextGoldenSequence) {
  Rng rng(42);
  const uint64_t expected[] = {
      13696896915399030466ull, 12641092763546669283ull,
      14580102322132234639ull, 5279892052835703538ull,
      998668461122301984ull,   3758007787904565436ull,
      16002696224941979801ull, 822789464364203583ull};
  for (const uint64_t value : expected) {
    EXPECT_EQ(rng.Next(), value);
  }
}

TEST(DeterminismTest, RngNextBoundedGoldenSequence) {
  Rng rng(7);
  const uint64_t expected[] = {381ull, 469ull, 926ull, 396ull,
                               540ull, 589ull, 506ull, 713ull};
  for (const uint64_t value : expected) {
    EXPECT_EQ(rng.NextBounded(1000), value);
  }
}

TEST(DeterminismTest, RngReseedRestartsTheStream) {
  Rng rng(42);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(42);
  EXPECT_EQ(rng.Next(), first);
}

TEST(DeterminismTest, ZipfSamplerGoldenSequence) {
  {
    Rng rng(123);
    ZipfSampler zipf(10000, 0.9);
    const uint64_t expected[] = {51ull,   65ull,   9899ull, 4226ull,
                                 1840ull, 1397ull, 44ull,   1150ull};
    for (const uint64_t value : expected) {
      EXPECT_EQ(zipf.Sample(rng), value);
    }
  }
  {
    // skew == 1 takes the exact-log branch; pin it separately.
    Rng rng(9);
    ZipfSampler zipf(500, 1.0);
    const uint64_t expected[] = {86ull, 404ull, 26ull, 12ull,
                                 0ull,  4ull,   5ull,  1ull};
    for (const uint64_t value : expected) {
      EXPECT_EQ(zipf.Sample(rng), value);
    }
  }
}

TEST(DeterminismTest, GenerateZipfGoldenChecksum) {
  ZipfTraceConfig config;
  config.num_requests = 1000;
  config.num_objects = 300;
  config.skew = 1.0;
  config.seed = 5;
  const Trace trace = GenerateZipf(config);
  ASSERT_EQ(trace.requests.size(), 1000u);

  const uint64_t first8[] = {22ull, 15ull, 2ull, 44ull, 1ull, 62ull, 35ull, 1ull};
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(trace.requests[i], first8[i]) << "position " << i;
  }
  uint64_t checksum = 0;
  for (const ObjectId id : trace.requests) {
    checksum = checksum * 31 + id;
  }
  EXPECT_EQ(checksum, 13284934449373579129ull);
}

TEST(DeterminismTest, SameSeedSameTraceAcrossGenerators) {
  // Each generator must be a pure function of its config.
  {
    PopularityDecayConfig config;
    config.num_requests = 2000;
    config.seed = 11;
    EXPECT_EQ(GeneratePopularityDecay(config).requests,
              GeneratePopularityDecay(config).requests);
  }
  {
    ScanLoopConfig config;
    config.num_requests = 2000;
    config.hot_objects = 500;
    config.seed = 11;
    EXPECT_EQ(GenerateScanLoop(config).requests,
              GenerateScanLoop(config).requests);
  }
  {
    HighReuseKvConfig config;
    config.num_requests = 2000;
    config.num_objects = 400;
    config.seed = 11;
    EXPECT_EQ(GenerateHighReuseKv(config).requests,
              GenerateHighReuseKv(config).requests);
  }
  {
    PhaseChangeConfig config;
    config.num_requests = 2000;
    config.working_set = 300;
    config.phase_length = 500;
    config.seed = 11;
    EXPECT_EQ(GeneratePhaseChange(config).requests,
              GeneratePhaseChange(config).requests);
  }
}

}  // namespace
}  // namespace qdlp
