// MpscRing / InsertBuffers: bounded-queue semantics, FIFO order per
// producer, and multi-producer stress where no pushed value may be lost or
// duplicated (run under the tsan preset too; see docs/TESTING.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/concurrent/mpsc_ring.h"

namespace qdlp {
namespace {

TEST(MpscRingTest, PushPopFifoOrderSingleThread) {
  MpscRing ring(8);
  uint64_t value = 0;
  EXPECT_FALSE(ring.TryPop(&value));
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(100 + i));
  }
  EXPECT_FALSE(ring.TryPush(999)) << "ring should be full";
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&value));
    EXPECT_EQ(value, 100 + i);
  }
  EXPECT_FALSE(ring.TryPop(&value));
}

TEST(MpscRingTest, WrapsAroundManyLaps) {
  MpscRing ring(4);
  uint64_t value = 0;
  for (uint64_t lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(ring.TryPush(lap * 2));
    EXPECT_TRUE(ring.TryPush(lap * 2 + 1));
    ASSERT_TRUE(ring.TryPop(&value));
    EXPECT_EQ(value, lap * 2);
    ASSERT_TRUE(ring.TryPop(&value));
    EXPECT_EQ(value, lap * 2 + 1);
  }
  EXPECT_FALSE(ring.TryPop(&value));
}

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing(1).slot_count(), 4u);
  EXPECT_EQ(MpscRing(5).slot_count(), 8u);
  EXPECT_EQ(MpscRing(64).slot_count(), 64u);
  EXPECT_GT(MpscRing(64).MemoryBytes(), 0u);
}

// Multiple producers push tagged sequences while one consumer drains
// concurrently; every accepted push must be popped exactly once and each
// producer's values must arrive in its own order.
TEST(MpscRingTest, MultiProducerNoLossNoDuplication) {
  MpscRing ring(64);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;

  std::vector<std::atomic<uint64_t>> accepted(kProducers);
  for (auto& counter : accepted) {
    counter.store(0);
  }
  std::atomic<int> done{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        // Tag: producer in the high bits, sequence in the low bits.
        const uint64_t value = (static_cast<uint64_t>(p) << 32) | i;
        if (ring.TryPush(value)) {
          accepted[p].fetch_add(1, std::memory_order_relaxed);
        }
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  // Single consumer: drain until all producers finished and the ring is dry.
  std::vector<uint64_t> popped_count(kProducers, 0);
  std::vector<uint64_t> last_seq(kProducers, 0);
  std::vector<bool> seen_any(kProducers, false);
  bool order_ok = true;
  while (true) {
    uint64_t value;
    if (ring.TryPop(&value)) {
      const int p = static_cast<int>(value >> 32);
      const uint64_t seq = value & 0xFFFFFFFFu;
      ASSERT_LT(p, kProducers);
      if (seen_any[p] && seq <= last_seq[p]) {
        order_ok = false;  // per-producer FIFO violated
      }
      seen_any[p] = true;
      last_seq[p] = seq;
      ++popped_count[p];
    } else if (done.load(std::memory_order_acquire) == kProducers) {
      if (!ring.TryPop(&value)) {
        break;
      }
      const int p = static_cast<int>(value >> 32);
      ++popped_count[p];
    }
  }
  for (auto& thread : producers) {
    thread.join();
  }
  EXPECT_TRUE(order_ok);
  uint64_t total_popped = 0;
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(popped_count[p], accepted[p].load()) << "producer " << p;
    total_popped += popped_count[p];
  }
  // On a single core a producer's whole loop can land in one timeslice with
  // the ring full (zero accepted), so only the total is guaranteed nonzero.
  EXPECT_GT(total_popped, 0u);
}

TEST(InsertBuffersTest, DrainReturnsEverythingPushed) {
  InsertBuffers buffers(/*num_rings=*/4, /*ring_capacity=*/16);
  std::unordered_map<uint64_t, int> pushed;
  for (uint64_t id = 0; id < 16; ++id) {
    if (buffers.TryPush(id)) {
      ++pushed[id];
    }
  }
  ASSERT_FALSE(pushed.empty());
  std::unordered_map<uint64_t, int> drained;
  const size_t count = buffers.Drain([&](uint64_t id) { ++drained[id]; });
  EXPECT_EQ(count, pushed.size());
  EXPECT_EQ(drained, pushed);
  EXPECT_EQ(buffers.Drain([](uint64_t) {}), 0u);
  EXPECT_GT(buffers.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace qdlp
