// Randomized differential testing of the policy zoo against model-based
// oracles (tests/oracle/). Every deterministic policy — and every concurrent
// cache driven single-threaded — must agree with its obviously-correct
// reference model request-for-request across workload shapes and cache
// sizes; adaptive policies get bounded-divergence treatment plus the
// oracle-independent self-consistency checks.
//
// The slow build of this file (oracle_differential_slow_test, ctest label
// "slow") replays 8x longer traces and one extra cache size.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_qdlp_fifo.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/locked_lru.h"
#include "src/concurrent/sharded_lru.h"
#include "src/core/policy_factory.h"
#include "src/trace/generators.h"
#include "tests/oracle/differential_runner.h"
#include "tests/oracle/reference_models.h"

namespace qdlp {
namespace {

#ifdef QDLP_ORACLE_SLOW
constexpr uint64_t kRequests = 64000;
const std::vector<size_t> kCacheSizes = {16, 101, 512, 1024};
#else
constexpr uint64_t kRequests = 8000;
const std::vector<size_t> kCacheSizes = {16, 101, 512};
#endif

const std::vector<std::string> kShapes = {"zipf", "web", "block", "kv",
                                          "phase"};

// Deterministic per-case seed: distinct per (shape, size) so different
// cases exercise different request streams.
uint64_t SeedFor(const std::string& shape, size_t cache_size) {
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (const char c : shape) {
    seed = seed * 31 + static_cast<uint64_t>(c);
  }
  return seed ^ (cache_size * 7919);
}

std::vector<ObjectId> BuildTrace(const std::string& shape, uint64_t seed) {
  if (shape == "zipf") {
    ZipfTraceConfig config;
    config.num_requests = kRequests;
    config.num_objects = 4000;
    config.skew = 1.0;
    config.seed = seed;
    return GenerateZipf(config).requests;
  }
  if (shape == "web") {
    PopularityDecayConfig config;
    config.num_requests = kRequests;
    config.initial_objects = 500;
    config.seed = seed;
    return GeneratePopularityDecay(config).requests;
  }
  if (shape == "block") {
    ScanLoopConfig config;
    config.num_requests = kRequests;
    config.hot_objects = 2000;
    config.hot_drift_objects = 500;
    config.scan_length_min = 50;
    config.scan_length_max = 400;
    config.loop_region = 80;
    config.seed = seed;
    return GenerateScanLoop(config).requests;
  }
  if (shape == "kv") {
    HighReuseKvConfig config;
    config.num_requests = kRequests;
    config.num_objects = 1500;
    config.seed = seed;
    return GenerateHighReuseKv(config).requests;
  }
  if (shape == "phase") {
    PhaseChangeConfig config;
    config.num_requests = kRequests;
    config.working_set = 800;
    config.phase_length = 1500;
    config.seed = seed;
    return GeneratePhaseChange(config).requests;
  }
  ADD_FAILURE() << "unknown shape " << shape;
  return {};
}

using DiffCase = std::tuple<std::string, std::string, size_t>;

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  const auto& [subject, shape, cache_size] = info.param;
  std::string name = subject + "_" + shape + "_c" + std::to_string(cache_size);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

// ---------------------------------------------------------------------------
// Exact lockstep: sequential policies with a deterministic spec.

class ExactDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(ExactDifferentialTest, MatchesOracleRequestForRequest) {
  const auto& [policy_name, shape, cache_size] = GetParam();
  const std::vector<ObjectId> trace =
      BuildTrace(shape, SeedFor(shape, cache_size));
  ASSERT_FALSE(trace.empty());

  const auto policy = MakePolicy(policy_name, cache_size);
  ASSERT_NE(policy, nullptr) << policy_name;
  const auto model = oracle::MakeExactOracle(policy_name, cache_size);
  ASSERT_NE(model, nullptr) << policy_name;

  oracle::PolicySubject subject(*policy);
  const oracle::DiffOutcome outcome =
      oracle::RunDifferential(subject, *model, trace);
  ASSERT_TRUE(outcome.ok) << policy_name << ": " << outcome.failure;
  EXPECT_EQ(outcome.subject_hits, outcome.oracle_hits);
  // The policy's own telemetry is pinned to the runner's external tally.
  const CacheStats stats = policy->Stats();
  EXPECT_EQ(stats.requests, outcome.requests) << policy_name;
  EXPECT_EQ(stats.hits, outcome.subject_hits) << policy_name;
  EXPECT_EQ(stats.misses, outcome.requests - outcome.subject_hits)
      << policy_name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ExactDifferentialTest,
    ::testing::Combine(
        ::testing::Values("fifo", "lru", "lfu", "fifo-reinsertion", "clock2",
                          "clock3", "sieve", "s3fifo", "qd-lp-fifo"),
        ::testing::ValuesIn(kShapes), ::testing::ValuesIn(kCacheSizes)),
    CaseName);

// ---------------------------------------------------------------------------
// Exact lockstep: concurrent caches driven from a single thread must behave
// exactly like their sequential specification.

class ConcurrentDifferentialTest : public ::testing::TestWithParam<DiffCase> {
};

TEST_P(ConcurrentDifferentialTest, MatchesOracleRequestForRequest) {
  const auto& [cache_name, shape, cache_size] = GetParam();
  const std::vector<ObjectId> trace =
      BuildTrace(shape, SeedFor(shape, cache_size));
  ASSERT_FALSE(trace.empty());

  std::unique_ptr<ConcurrentCache> cache;
  std::unique_ptr<oracle::ReferenceModel> model;
  if (cache_name == "concurrent-s3fifo") {
    cache = std::make_unique<ConcurrentS3FifoCache>(cache_size, 0.10, 0.9,
                                                    /*num_shards=*/4);
    model = std::make_unique<oracle::RefS3Fifo>(cache_size, 0.10, 0.9);
  } else if (cache_name == "concurrent-clock") {
    cache = std::make_unique<ConcurrentClockCache>(cache_size, /*bits=*/1,
                                                   /*num_shards=*/4);
    model = std::make_unique<oracle::RefClock>(cache_size, /*bits=*/1);
  } else if (cache_name == "concurrent-qdlp-fifo") {
    cache = std::make_unique<ConcurrentQdLpFifo>(cache_size, /*num_stripes=*/4);
    model = oracle::MakeExactOracle("qd-lp-fifo", cache_size);
  } else if (cache_name == "sharded-lru") {
    // One shard: sharded LRU degenerates to exact global LRU.
    cache = std::make_unique<ShardedLruCache>(cache_size, /*num_shards=*/1);
    model = std::make_unique<oracle::RefLru>(cache_size);
  } else if (cache_name == "global-lock-lru") {
    cache = std::make_unique<GlobalLockLruCache>(cache_size);
    model = std::make_unique<oracle::RefLru>(cache_size);
  }
  ASSERT_NE(cache, nullptr) << cache_name;

  oracle::ConcurrentSubject subject(*cache);
  const oracle::DiffOutcome outcome =
      oracle::RunDifferential(subject, *model, trace);
  ASSERT_TRUE(outcome.ok) << cache_name << ": " << outcome.failure;
  EXPECT_EQ(outcome.subject_hits, outcome.oracle_hits);
  // Single-threaded, the concurrent caches' telemetry is exact too.
  const CacheStats stats = cache->Stats();
  EXPECT_EQ(stats.requests, outcome.requests) << cache_name;
  EXPECT_EQ(stats.hits, outcome.subject_hits) << cache_name;
  EXPECT_EQ(stats.misses, outcome.requests - outcome.subject_hits)
      << cache_name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ConcurrentDifferentialTest,
    ::testing::Combine(::testing::Values("concurrent-s3fifo",
                                         "concurrent-clock",
                                         "concurrent-qdlp-fifo", "sharded-lru",
                                         "global-lock-lru"),
                       ::testing::ValuesIn(kShapes),
                       ::testing::ValuesIn(kCacheSizes)),
    CaseName);

// ---------------------------------------------------------------------------
// Bounded divergence: adaptive policies legitimately differ from any naive
// oracle per-request. Replaying against reference LRU still catches
// catastrophic breakage (hit-ratio collapse, always-miss bugs) while the
// oracle-independent checks — hit iff resident before, occupancy within
// capacity, structural invariants — run at full strength.

class BoundedDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(BoundedDifferentialTest, StaysWithinDivergenceBudgetOfLru) {
  const auto& [policy_name, shape, cache_size] = GetParam();
  const std::vector<ObjectId> trace =
      BuildTrace(shape, SeedFor(shape, cache_size));
  ASSERT_FALSE(trace.empty());

  const auto policy = MakePolicy(policy_name, cache_size);
  ASSERT_NE(policy, nullptr) << policy_name;
  oracle::RefLru model(cache_size);

  oracle::DiffOptions options;
  options.divergence_slack = 0.35;
  options.divergence_grace = 300;

  oracle::PolicySubject subject(*policy);
  const oracle::DiffOutcome outcome =
      oracle::RunDifferential(subject, model, trace, options);
  ASSERT_TRUE(outcome.ok) << policy_name << ": " << outcome.failure;
  // Even without per-request oracle agreement, the adaptive policies'
  // counters must match the runner's external tally of their own outcomes.
  const CacheStats stats = policy->Stats();
  EXPECT_EQ(stats.requests, outcome.requests) << policy_name;
  EXPECT_EQ(stats.hits, outcome.subject_hits) << policy_name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, BoundedDifferentialTest,
    ::testing::Combine(::testing::Values("arc", "arc-fixed", "lirs",
                                         "clockpro", "wtinylfu", "2q", "slru",
                                         "mq", "car", "lru2"),
                       ::testing::ValuesIn(kShapes),
                       ::testing::ValuesIn(kCacheSizes)),
    CaseName);

}  // namespace
}  // namespace qdlp
