// Stack-distance profiling and SHARDS sampling.

#include <gtest/gtest.h>

#include "src/policies/lru.h"
#include "src/sim/simulator.h"
#include "src/sim/stack_distance.h"
#include "src/trace/generators.h"

namespace qdlp {
namespace {

TEST(StackDistanceTest, HandComputedDistances) {
  StackDistanceProfiler profiler;
  EXPECT_EQ(profiler.Record(1), StackDistanceProfiler::kInfinite);
  EXPECT_EQ(profiler.Record(1), 1u);  // immediate repeat
  EXPECT_EQ(profiler.Record(2), StackDistanceProfiler::kInfinite);
  EXPECT_EQ(profiler.Record(1), 2u);  // one distinct object (2) in between
  EXPECT_EQ(profiler.Record(3), StackDistanceProfiler::kInfinite);
  EXPECT_EQ(profiler.Record(2), 3u);  // {1, 3} in between -> position 3
  EXPECT_EQ(profiler.cold_misses(), 3u);
}

TEST(StackDistanceTest, RepeatedAccessKeepsDistanceOne) {
  StackDistanceProfiler profiler;
  profiler.Record(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(profiler.Record(9), 1u);
  }
}

class MattsonExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MattsonExactnessTest, MatchesDirectLruSimulationAtEverySize) {
  // The whole point of the profiler: ONE pass must equal a direct LRU
  // simulation at every cache size.
  ZipfTraceConfig config;
  config.num_requests = 30000;
  config.num_objects = 2000;
  config.skew = 0.9;
  config.seed = GetParam();
  const Trace trace = GenerateZipf(config);

  StackDistanceProfiler profiler;
  for (const ObjectId id : trace.requests) {
    profiler.Record(id);
  }
  for (const uint64_t size : {1ULL, 7ULL, 50ULL, 333ULL, 1000ULL, 5000ULL}) {
    LruPolicy lru(size);
    const SimResult direct = ReplayTrace(lru, trace);
    EXPECT_NEAR(profiler.MissRatioAt(size), direct.miss_ratio(), 1e-12)
        << "size " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MattsonExactnessTest,
                         ::testing::Values(701, 702, 703));

TEST(StackDistanceTest, MrcIsMonotonicallyNonIncreasing) {
  ZipfTraceConfig config;
  config.num_requests = 20000;
  config.num_objects = 1500;
  config.seed = 705;
  const Trace trace = GenerateZipf(config);
  StackDistanceProfiler profiler;
  for (const ObjectId id : trace.requests) {
    profiler.Record(id);
  }
  double previous = 1.0;
  for (uint64_t size = 1; size <= 2000; size += 37) {
    const double mr = profiler.MissRatioAt(size);
    EXPECT_LE(mr, previous + 1e-12);
    previous = mr;
  }
}

TEST(ShardsTest, FullRateMatchesExact) {
  ZipfTraceConfig config;
  config.num_requests = 10000;
  config.num_objects = 800;
  config.seed = 707;
  const Trace trace = GenerateZipf(config);
  StackDistanceProfiler exact;
  ShardsProfiler shards(1.0);
  for (const ObjectId id : trace.requests) {
    exact.Record(id);
    shards.Record(id);
  }
  EXPECT_EQ(shards.sampled_requests(), shards.requests());
  for (const uint64_t size : {10ULL, 100ULL, 400ULL}) {
    EXPECT_NEAR(shards.MissRatioAt(size), exact.MissRatioAt(size), 1e-12);
  }
}

// Regression: the threshold used to be computed as
// static_cast<uint64_t>(sample_rate * (double)~0ULL) for every rate,
// with the rate >= 1.0 fixup applied only afterwards. (double)~0ULL
// rounds UP to 2^64, so at sample_rate 1.0 the product is exactly 2^64 —
// outside uint64_t's range, making the cast undefined behavior even
// though its result was then discarded (UBSan float-cast-overflow:
// "1.84467e+19 is outside the range of representable values"). The fix
// branches on rate >= 1.0 before any float->int cast. The ubsan presets
// enable float-cast-overflow (GCC's "undefined" group omits it) with
// recovery disabled, so pre-fix this test aborts under them.
TEST(ShardsTest, FullRateThresholdDoesNotOverflow) {
  ShardsProfiler shards(1.0);
  EXPECT_EQ(shards.sample_rate(), 1.0);
  // Rate 1.0 must sample EVERY id, including ones whose hash lands on the
  // extreme high end of the 64-bit space.
  for (ObjectId id = 0; id < 5000; ++id) {
    shards.Record(id);
  }
  EXPECT_EQ(shards.sampled_requests(), shards.requests());
  EXPECT_EQ(shards.requests(), 5000u);
}

TEST(ShardsTest, NearOneRateStaysInRange) {
  // Boundary companion to the rate-1.0 case: for any rate < 1.0 the
  // product is at most (1 - 2^-53) * 2^64 = 2^64 - 2048, which is exactly
  // representable (ulp there is 2048), so the cast stays in range — 1.0 is
  // the only UB input. This pins that the fix's clamp branch does not
  // swallow near-one rates: 1 - 1e-12 must still sample ~everything.
  ShardsProfiler shards(0.999999999999);
  for (ObjectId id = 0; id < 5000; ++id) {
    shards.Record(id);
  }
  // Effectively everything is sampled at this rate.
  EXPECT_EQ(shards.sampled_requests(), shards.requests());
}

TEST(ShardsTest, SampledEstimateCloseToExact) {
  ZipfTraceConfig config;
  config.num_requests = 200000;
  config.num_objects = 20000;
  config.skew = 0.8;
  config.seed = 709;
  const Trace trace = GenerateZipf(config);
  StackDistanceProfiler exact;
  ShardsProfiler shards(0.05);  // 5% sample
  for (const ObjectId id : trace.requests) {
    exact.Record(id);
    shards.Record(id);
  }
  // Roughly 5% of requests sampled.
  const double fraction = static_cast<double>(shards.sampled_requests()) /
                          static_cast<double>(shards.requests());
  EXPECT_NEAR(fraction, 0.05, 0.02);
  for (const uint64_t size : {200ULL, 1000ULL, 5000ULL, 15000ULL}) {
    // Small cache sizes scale down to very few sampled positions (200 x
    // 0.05 = 10), so the estimate there is granular; allow a wider band.
    const double tolerance = size <= 500 ? 0.08 : 0.05;
    EXPECT_NEAR(shards.MissRatioAt(size), exact.MissRatioAt(size), tolerance)
        << "size " << size;
  }
}

TEST(ExactLruMrcTest, CurveMatchesProfiler) {
  ZipfTraceConfig config;
  config.num_requests = 5000;
  config.num_objects = 500;
  config.seed = 711;
  const Trace trace = GenerateZipf(config);
  const auto curve = ExactLruMrc(trace, {10, 100, 400});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_GT(curve[0].second, curve[2].second);  // bigger cache, fewer misses
}

}  // namespace
}  // namespace qdlp
