file(REMOVE_RECURSE
  "CMakeFiles/qdlp_sim_cli.dir/qdlp_sim.cc.o"
  "CMakeFiles/qdlp_sim_cli.dir/qdlp_sim.cc.o.d"
  "qdlp_sim"
  "qdlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
