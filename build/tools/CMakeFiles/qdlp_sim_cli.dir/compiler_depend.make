# Empty compiler generated dependencies file for qdlp_sim_cli.
# This may be replaced when dependencies are built.
