# Empty dependencies file for block_storage_sim.
# This may be replaced when dependencies are built.
