file(REMOVE_RECURSE
  "CMakeFiles/block_storage_sim.dir/block_storage_sim.cpp.o"
  "CMakeFiles/block_storage_sim.dir/block_storage_sim.cpp.o.d"
  "block_storage_sim"
  "block_storage_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_storage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
