# Empty compiler generated dependencies file for ttl_web_cache.
# This may be replaced when dependencies are built.
