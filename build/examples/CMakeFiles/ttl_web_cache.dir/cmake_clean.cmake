file(REMOVE_RECURSE
  "CMakeFiles/ttl_web_cache.dir/ttl_web_cache.cpp.o"
  "CMakeFiles/ttl_web_cache.dir/ttl_web_cache.cpp.o.d"
  "ttl_web_cache"
  "ttl_web_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttl_web_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
