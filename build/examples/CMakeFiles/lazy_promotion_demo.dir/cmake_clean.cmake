file(REMOVE_RECURSE
  "CMakeFiles/lazy_promotion_demo.dir/lazy_promotion_demo.cpp.o"
  "CMakeFiles/lazy_promotion_demo.dir/lazy_promotion_demo.cpp.o.d"
  "lazy_promotion_demo"
  "lazy_promotion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_promotion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
