# Empty compiler generated dependencies file for lazy_promotion_demo.
# This may be replaced when dependencies are built.
