# Empty compiler generated dependencies file for social_kv_sim.
# This may be replaced when dependencies are built.
