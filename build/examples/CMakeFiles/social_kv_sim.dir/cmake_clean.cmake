file(REMOVE_RECURSE
  "CMakeFiles/social_kv_sim.dir/social_kv_sim.cpp.o"
  "CMakeFiles/social_kv_sim.dir/social_kv_sim.cpp.o.d"
  "social_kv_sim"
  "social_kv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_kv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
