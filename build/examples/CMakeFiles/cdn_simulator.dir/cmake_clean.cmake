file(REMOVE_RECURSE
  "CMakeFiles/cdn_simulator.dir/cdn_simulator.cpp.o"
  "CMakeFiles/cdn_simulator.dir/cdn_simulator.cpp.o.d"
  "cdn_simulator"
  "cdn_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
