# Empty dependencies file for cdn_simulator.
# This may be replaced when dependencies are built.
