
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cdn_simulator.cpp" "examples/CMakeFiles/cdn_simulator.dir/cdn_simulator.cpp.o" "gcc" "examples/CMakeFiles/cdn_simulator.dir/cdn_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/qdlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qdlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/qdlp_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/qdlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qdlp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
