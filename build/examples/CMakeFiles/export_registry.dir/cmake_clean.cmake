file(REMOVE_RECURSE
  "CMakeFiles/export_registry.dir/export_registry.cpp.o"
  "CMakeFiles/export_registry.dir/export_registry.cpp.o.d"
  "export_registry"
  "export_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
