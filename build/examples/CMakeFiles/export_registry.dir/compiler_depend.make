# Empty compiler generated dependencies file for export_registry.
# This may be replaced when dependencies are built.
