file(REMOVE_RECURSE
  "CMakeFiles/qdlp_sized.dir/gdsf.cc.o"
  "CMakeFiles/qdlp_sized.dir/gdsf.cc.o.d"
  "CMakeFiles/qdlp_sized.dir/sized_basic.cc.o"
  "CMakeFiles/qdlp_sized.dir/sized_basic.cc.o.d"
  "CMakeFiles/qdlp_sized.dir/sized_factory.cc.o"
  "CMakeFiles/qdlp_sized.dir/sized_factory.cc.o.d"
  "CMakeFiles/qdlp_sized.dir/sized_qdlp.cc.o"
  "CMakeFiles/qdlp_sized.dir/sized_qdlp.cc.o.d"
  "CMakeFiles/qdlp_sized.dir/sized_trace.cc.o"
  "CMakeFiles/qdlp_sized.dir/sized_trace.cc.o.d"
  "libqdlp_sized.a"
  "libqdlp_sized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_sized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
