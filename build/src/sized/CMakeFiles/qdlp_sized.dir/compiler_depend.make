# Empty compiler generated dependencies file for qdlp_sized.
# This may be replaced when dependencies are built.
