
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sized/gdsf.cc" "src/sized/CMakeFiles/qdlp_sized.dir/gdsf.cc.o" "gcc" "src/sized/CMakeFiles/qdlp_sized.dir/gdsf.cc.o.d"
  "/root/repo/src/sized/sized_basic.cc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_basic.cc.o" "gcc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_basic.cc.o.d"
  "/root/repo/src/sized/sized_factory.cc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_factory.cc.o" "gcc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_factory.cc.o.d"
  "/root/repo/src/sized/sized_qdlp.cc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_qdlp.cc.o" "gcc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_qdlp.cc.o.d"
  "/root/repo/src/sized/sized_trace.cc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_trace.cc.o" "gcc" "src/sized/CMakeFiles/qdlp_sized.dir/sized_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/qdlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qdlp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
