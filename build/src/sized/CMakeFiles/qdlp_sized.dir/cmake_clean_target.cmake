file(REMOVE_RECURSE
  "libqdlp_sized.a"
)
