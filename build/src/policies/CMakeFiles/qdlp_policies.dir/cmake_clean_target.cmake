file(REMOVE_RECURSE
  "libqdlp_policies.a"
)
