
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/arc.cc" "src/policies/CMakeFiles/qdlp_policies.dir/arc.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/arc.cc.o.d"
  "/root/repo/src/policies/belady.cc" "src/policies/CMakeFiles/qdlp_policies.dir/belady.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/belady.cc.o.d"
  "/root/repo/src/policies/cacheus.cc" "src/policies/CMakeFiles/qdlp_policies.dir/cacheus.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/cacheus.cc.o.d"
  "/root/repo/src/policies/car.cc" "src/policies/CMakeFiles/qdlp_policies.dir/car.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/car.cc.o.d"
  "/root/repo/src/policies/clock.cc" "src/policies/CMakeFiles/qdlp_policies.dir/clock.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/clock.cc.o.d"
  "/root/repo/src/policies/clockpro.cc" "src/policies/CMakeFiles/qdlp_policies.dir/clockpro.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/clockpro.cc.o.d"
  "/root/repo/src/policies/fifo.cc" "src/policies/CMakeFiles/qdlp_policies.dir/fifo.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/fifo.cc.o.d"
  "/root/repo/src/policies/hyperbolic.cc" "src/policies/CMakeFiles/qdlp_policies.dir/hyperbolic.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/hyperbolic.cc.o.d"
  "/root/repo/src/policies/lazy_lru.cc" "src/policies/CMakeFiles/qdlp_policies.dir/lazy_lru.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/lazy_lru.cc.o.d"
  "/root/repo/src/policies/lecar.cc" "src/policies/CMakeFiles/qdlp_policies.dir/lecar.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/lecar.cc.o.d"
  "/root/repo/src/policies/lfu.cc" "src/policies/CMakeFiles/qdlp_policies.dir/lfu.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/lfu.cc.o.d"
  "/root/repo/src/policies/lhd.cc" "src/policies/CMakeFiles/qdlp_policies.dir/lhd.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/lhd.cc.o.d"
  "/root/repo/src/policies/lirs.cc" "src/policies/CMakeFiles/qdlp_policies.dir/lirs.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/lirs.cc.o.d"
  "/root/repo/src/policies/lru.cc" "src/policies/CMakeFiles/qdlp_policies.dir/lru.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/lru.cc.o.d"
  "/root/repo/src/policies/lruk.cc" "src/policies/CMakeFiles/qdlp_policies.dir/lruk.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/lruk.cc.o.d"
  "/root/repo/src/policies/mq.cc" "src/policies/CMakeFiles/qdlp_policies.dir/mq.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/mq.cc.o.d"
  "/root/repo/src/policies/random_policy.cc" "src/policies/CMakeFiles/qdlp_policies.dir/random_policy.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/random_policy.cc.o.d"
  "/root/repo/src/policies/slru.cc" "src/policies/CMakeFiles/qdlp_policies.dir/slru.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/slru.cc.o.d"
  "/root/repo/src/policies/twoq.cc" "src/policies/CMakeFiles/qdlp_policies.dir/twoq.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/twoq.cc.o.d"
  "/root/repo/src/policies/wtinylfu.cc" "src/policies/CMakeFiles/qdlp_policies.dir/wtinylfu.cc.o" "gcc" "src/policies/CMakeFiles/qdlp_policies.dir/wtinylfu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/qdlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qdlp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
