# Empty dependencies file for qdlp_policies.
# This may be replaced when dependencies are built.
