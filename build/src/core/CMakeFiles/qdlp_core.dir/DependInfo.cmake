
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ghost_queue.cc" "src/core/CMakeFiles/qdlp_core.dir/ghost_queue.cc.o" "gcc" "src/core/CMakeFiles/qdlp_core.dir/ghost_queue.cc.o.d"
  "/root/repo/src/core/policy_factory.cc" "src/core/CMakeFiles/qdlp_core.dir/policy_factory.cc.o" "gcc" "src/core/CMakeFiles/qdlp_core.dir/policy_factory.cc.o.d"
  "/root/repo/src/core/qd_cache.cc" "src/core/CMakeFiles/qdlp_core.dir/qd_cache.cc.o" "gcc" "src/core/CMakeFiles/qdlp_core.dir/qd_cache.cc.o.d"
  "/root/repo/src/core/s3fifo.cc" "src/core/CMakeFiles/qdlp_core.dir/s3fifo.cc.o" "gcc" "src/core/CMakeFiles/qdlp_core.dir/s3fifo.cc.o.d"
  "/root/repo/src/core/sieve.cc" "src/core/CMakeFiles/qdlp_core.dir/sieve.cc.o" "gcc" "src/core/CMakeFiles/qdlp_core.dir/sieve.cc.o.d"
  "/root/repo/src/core/ttl_cache.cc" "src/core/CMakeFiles/qdlp_core.dir/ttl_cache.cc.o" "gcc" "src/core/CMakeFiles/qdlp_core.dir/ttl_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policies/CMakeFiles/qdlp_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/qdlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qdlp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
