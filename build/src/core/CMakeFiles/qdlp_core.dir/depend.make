# Empty dependencies file for qdlp_core.
# This may be replaced when dependencies are built.
