file(REMOVE_RECURSE
  "CMakeFiles/qdlp_core.dir/ghost_queue.cc.o"
  "CMakeFiles/qdlp_core.dir/ghost_queue.cc.o.d"
  "CMakeFiles/qdlp_core.dir/policy_factory.cc.o"
  "CMakeFiles/qdlp_core.dir/policy_factory.cc.o.d"
  "CMakeFiles/qdlp_core.dir/qd_cache.cc.o"
  "CMakeFiles/qdlp_core.dir/qd_cache.cc.o.d"
  "CMakeFiles/qdlp_core.dir/s3fifo.cc.o"
  "CMakeFiles/qdlp_core.dir/s3fifo.cc.o.d"
  "CMakeFiles/qdlp_core.dir/sieve.cc.o"
  "CMakeFiles/qdlp_core.dir/sieve.cc.o.d"
  "CMakeFiles/qdlp_core.dir/ttl_cache.cc.o"
  "CMakeFiles/qdlp_core.dir/ttl_cache.cc.o.d"
  "libqdlp_core.a"
  "libqdlp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
