file(REMOVE_RECURSE
  "libqdlp_core.a"
)
