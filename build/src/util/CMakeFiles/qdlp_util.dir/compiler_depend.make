# Empty compiler generated dependencies file for qdlp_util.
# This may be replaced when dependencies are built.
