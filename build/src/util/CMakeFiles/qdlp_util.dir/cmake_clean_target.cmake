file(REMOVE_RECURSE
  "libqdlp_util.a"
)
