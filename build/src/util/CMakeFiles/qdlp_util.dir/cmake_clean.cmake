file(REMOVE_RECURSE
  "CMakeFiles/qdlp_util.dir/bloom_filter.cc.o"
  "CMakeFiles/qdlp_util.dir/bloom_filter.cc.o.d"
  "CMakeFiles/qdlp_util.dir/count_min_sketch.cc.o"
  "CMakeFiles/qdlp_util.dir/count_min_sketch.cc.o.d"
  "CMakeFiles/qdlp_util.dir/env.cc.o"
  "CMakeFiles/qdlp_util.dir/env.cc.o.d"
  "CMakeFiles/qdlp_util.dir/random.cc.o"
  "CMakeFiles/qdlp_util.dir/random.cc.o.d"
  "CMakeFiles/qdlp_util.dir/stats.cc.o"
  "CMakeFiles/qdlp_util.dir/stats.cc.o.d"
  "CMakeFiles/qdlp_util.dir/table.cc.o"
  "CMakeFiles/qdlp_util.dir/table.cc.o.d"
  "CMakeFiles/qdlp_util.dir/thread_pool.cc.o"
  "CMakeFiles/qdlp_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/qdlp_util.dir/zipf.cc.o"
  "CMakeFiles/qdlp_util.dir/zipf.cc.o.d"
  "libqdlp_util.a"
  "libqdlp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
