file(REMOVE_RECURSE
  "libqdlp_sim.a"
)
