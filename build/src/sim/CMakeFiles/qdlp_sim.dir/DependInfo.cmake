
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/mrc.cc" "src/sim/CMakeFiles/qdlp_sim.dir/mrc.cc.o" "gcc" "src/sim/CMakeFiles/qdlp_sim.dir/mrc.cc.o.d"
  "/root/repo/src/sim/residency.cc" "src/sim/CMakeFiles/qdlp_sim.dir/residency.cc.o" "gcc" "src/sim/CMakeFiles/qdlp_sim.dir/residency.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/qdlp_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/qdlp_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/stack_distance.cc" "src/sim/CMakeFiles/qdlp_sim.dir/stack_distance.cc.o" "gcc" "src/sim/CMakeFiles/qdlp_sim.dir/stack_distance.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/sim/CMakeFiles/qdlp_sim.dir/sweep.cc.o" "gcc" "src/sim/CMakeFiles/qdlp_sim.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qdlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/qdlp_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/qdlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qdlp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
