file(REMOVE_RECURSE
  "CMakeFiles/qdlp_sim.dir/mrc.cc.o"
  "CMakeFiles/qdlp_sim.dir/mrc.cc.o.d"
  "CMakeFiles/qdlp_sim.dir/residency.cc.o"
  "CMakeFiles/qdlp_sim.dir/residency.cc.o.d"
  "CMakeFiles/qdlp_sim.dir/simulator.cc.o"
  "CMakeFiles/qdlp_sim.dir/simulator.cc.o.d"
  "CMakeFiles/qdlp_sim.dir/stack_distance.cc.o"
  "CMakeFiles/qdlp_sim.dir/stack_distance.cc.o.d"
  "CMakeFiles/qdlp_sim.dir/sweep.cc.o"
  "CMakeFiles/qdlp_sim.dir/sweep.cc.o.d"
  "libqdlp_sim.a"
  "libqdlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
