# Empty compiler generated dependencies file for qdlp_sim.
# This may be replaced when dependencies are built.
