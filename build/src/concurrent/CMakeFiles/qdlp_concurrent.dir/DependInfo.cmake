
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concurrent/concurrent_clock.cc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/concurrent_clock.cc.o" "gcc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/concurrent_clock.cc.o.d"
  "/root/repo/src/concurrent/concurrent_s3fifo.cc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/concurrent_s3fifo.cc.o" "gcc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/concurrent_s3fifo.cc.o.d"
  "/root/repo/src/concurrent/locked_lru.cc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/locked_lru.cc.o" "gcc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/locked_lru.cc.o.d"
  "/root/repo/src/concurrent/sharded_lru.cc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/sharded_lru.cc.o" "gcc" "src/concurrent/CMakeFiles/qdlp_concurrent.dir/sharded_lru.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/qdlp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qdlp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
