file(REMOVE_RECURSE
  "CMakeFiles/qdlp_concurrent.dir/concurrent_clock.cc.o"
  "CMakeFiles/qdlp_concurrent.dir/concurrent_clock.cc.o.d"
  "CMakeFiles/qdlp_concurrent.dir/concurrent_s3fifo.cc.o"
  "CMakeFiles/qdlp_concurrent.dir/concurrent_s3fifo.cc.o.d"
  "CMakeFiles/qdlp_concurrent.dir/locked_lru.cc.o"
  "CMakeFiles/qdlp_concurrent.dir/locked_lru.cc.o.d"
  "CMakeFiles/qdlp_concurrent.dir/sharded_lru.cc.o"
  "CMakeFiles/qdlp_concurrent.dir/sharded_lru.cc.o.d"
  "libqdlp_concurrent.a"
  "libqdlp_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
