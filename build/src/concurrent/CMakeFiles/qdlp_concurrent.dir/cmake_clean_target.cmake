file(REMOVE_RECURSE
  "libqdlp_concurrent.a"
)
