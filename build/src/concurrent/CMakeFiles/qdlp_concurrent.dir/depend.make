# Empty dependencies file for qdlp_concurrent.
# This may be replaced when dependencies are built.
