file(REMOVE_RECURSE
  "CMakeFiles/qdlp_trace.dir/generators.cc.o"
  "CMakeFiles/qdlp_trace.dir/generators.cc.o.d"
  "CMakeFiles/qdlp_trace.dir/registry.cc.o"
  "CMakeFiles/qdlp_trace.dir/registry.cc.o.d"
  "CMakeFiles/qdlp_trace.dir/trace.cc.o"
  "CMakeFiles/qdlp_trace.dir/trace.cc.o.d"
  "CMakeFiles/qdlp_trace.dir/trace_io.cc.o"
  "CMakeFiles/qdlp_trace.dir/trace_io.cc.o.d"
  "libqdlp_trace.a"
  "libqdlp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
