# Empty compiler generated dependencies file for qdlp_trace.
# This may be replaced when dependencies are built.
