file(REMOVE_RECURSE
  "libqdlp_trace.a"
)
