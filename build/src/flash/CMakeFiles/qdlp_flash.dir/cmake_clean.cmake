file(REMOVE_RECURSE
  "CMakeFiles/qdlp_flash.dir/flash_model.cc.o"
  "CMakeFiles/qdlp_flash.dir/flash_model.cc.o.d"
  "libqdlp_flash.a"
  "libqdlp_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdlp_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
