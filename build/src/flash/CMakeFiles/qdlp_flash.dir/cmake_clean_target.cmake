file(REMOVE_RECURSE
  "libqdlp_flash.a"
)
