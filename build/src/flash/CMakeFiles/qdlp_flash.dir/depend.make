# Empty dependencies file for qdlp_flash.
# This may be replaced when dependencies are built.
