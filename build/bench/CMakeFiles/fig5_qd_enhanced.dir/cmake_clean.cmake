file(REMOVE_RECURSE
  "CMakeFiles/fig5_qd_enhanced.dir/fig5_qd_enhanced.cc.o"
  "CMakeFiles/fig5_qd_enhanced.dir/fig5_qd_enhanced.cc.o.d"
  "fig5_qd_enhanced"
  "fig5_qd_enhanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_qd_enhanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
