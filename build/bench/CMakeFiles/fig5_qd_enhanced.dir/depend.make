# Empty dependencies file for fig5_qd_enhanced.
# This may be replaced when dependencies are built.
