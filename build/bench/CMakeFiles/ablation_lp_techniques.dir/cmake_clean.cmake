file(REMOVE_RECURSE
  "CMakeFiles/ablation_lp_techniques.dir/ablation_lp_techniques.cc.o"
  "CMakeFiles/ablation_lp_techniques.dir/ablation_lp_techniques.cc.o.d"
  "ablation_lp_techniques"
  "ablation_lp_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lp_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
