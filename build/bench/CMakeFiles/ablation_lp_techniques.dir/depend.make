# Empty dependencies file for ablation_lp_techniques.
# This may be replaced when dependencies are built.
