file(REMOVE_RECURSE
  "CMakeFiles/fig2_lp_vs_lru.dir/fig2_lp_vs_lru.cc.o"
  "CMakeFiles/fig2_lp_vs_lru.dir/fig2_lp_vs_lru.cc.o.d"
  "fig2_lp_vs_lru"
  "fig2_lp_vs_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lp_vs_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
