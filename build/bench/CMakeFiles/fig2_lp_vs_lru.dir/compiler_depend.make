# Empty compiler generated dependencies file for fig2_lp_vs_lru.
# This may be replaced when dependencies are built.
