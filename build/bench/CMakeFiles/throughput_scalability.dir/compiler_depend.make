# Empty compiler generated dependencies file for throughput_scalability.
# This may be replaced when dependencies are built.
