file(REMOVE_RECURSE
  "CMakeFiles/throughput_scalability.dir/throughput_scalability.cc.o"
  "CMakeFiles/throughput_scalability.dir/throughput_scalability.cc.o.d"
  "throughput_scalability"
  "throughput_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
