# Empty dependencies file for ablation_qd_params.
# This may be replaced when dependencies are built.
