file(REMOVE_RECURSE
  "CMakeFiles/ablation_qd_params.dir/ablation_qd_params.cc.o"
  "CMakeFiles/ablation_qd_params.dir/ablation_qd_params.cc.o.d"
  "ablation_qd_params"
  "ablation_qd_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qd_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
