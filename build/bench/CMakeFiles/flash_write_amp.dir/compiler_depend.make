# Empty compiler generated dependencies file for flash_write_amp.
# This may be replaced when dependencies are built.
