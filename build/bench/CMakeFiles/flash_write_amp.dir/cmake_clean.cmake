file(REMOVE_RECURSE
  "CMakeFiles/flash_write_amp.dir/flash_write_amp.cc.o"
  "CMakeFiles/flash_write_amp.dir/flash_write_amp.cc.o.d"
  "flash_write_amp"
  "flash_write_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_write_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
