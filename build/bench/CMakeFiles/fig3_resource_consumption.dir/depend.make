# Empty dependencies file for fig3_resource_consumption.
# This may be replaced when dependencies are built.
