file(REMOVE_RECURSE
  "CMakeFiles/fig3_resource_consumption.dir/fig3_resource_consumption.cc.o"
  "CMakeFiles/fig3_resource_consumption.dir/fig3_resource_consumption.cc.o.d"
  "fig3_resource_consumption"
  "fig3_resource_consumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_resource_consumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
