# Empty compiler generated dependencies file for sized_eviction.
# This may be replaced when dependencies are built.
