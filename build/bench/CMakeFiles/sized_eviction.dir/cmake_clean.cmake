file(REMOVE_RECURSE
  "CMakeFiles/sized_eviction.dir/sized_eviction.cc.o"
  "CMakeFiles/sized_eviction.dir/sized_eviction.cc.o.d"
  "sized_eviction"
  "sized_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sized_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
