file(REMOVE_RECURSE
  "CMakeFiles/adaptive_policies_test.dir/adaptive_policies_test.cc.o"
  "CMakeFiles/adaptive_policies_test.dir/adaptive_policies_test.cc.o.d"
  "adaptive_policies_test"
  "adaptive_policies_test.pdb"
  "adaptive_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
