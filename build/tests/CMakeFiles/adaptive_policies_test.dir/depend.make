# Empty dependencies file for adaptive_policies_test.
# This may be replaced when dependencies are built.
