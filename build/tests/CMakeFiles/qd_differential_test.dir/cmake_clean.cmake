file(REMOVE_RECURSE
  "CMakeFiles/qd_differential_test.dir/qd_differential_test.cc.o"
  "CMakeFiles/qd_differential_test.dir/qd_differential_test.cc.o.d"
  "qd_differential_test"
  "qd_differential_test.pdb"
  "qd_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
