# Empty compiler generated dependencies file for qd_differential_test.
# This may be replaced when dependencies are built.
