file(REMOVE_RECURSE
  "CMakeFiles/env_table_test.dir/env_table_test.cc.o"
  "CMakeFiles/env_table_test.dir/env_table_test.cc.o.d"
  "env_table_test"
  "env_table_test.pdb"
  "env_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
