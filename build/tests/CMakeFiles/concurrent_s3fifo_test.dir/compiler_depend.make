# Empty compiler generated dependencies file for concurrent_s3fifo_test.
# This may be replaced when dependencies are built.
