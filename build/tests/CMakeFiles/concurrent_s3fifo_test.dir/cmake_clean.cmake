file(REMOVE_RECURSE
  "CMakeFiles/concurrent_s3fifo_test.dir/concurrent_s3fifo_test.cc.o"
  "CMakeFiles/concurrent_s3fifo_test.dir/concurrent_s3fifo_test.cc.o.d"
  "concurrent_s3fifo_test"
  "concurrent_s3fifo_test.pdb"
  "concurrent_s3fifo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_s3fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
