file(REMOVE_RECURSE
  "CMakeFiles/policies_basic_test.dir/policies_basic_test.cc.o"
  "CMakeFiles/policies_basic_test.dir/policies_basic_test.cc.o.d"
  "policies_basic_test"
  "policies_basic_test.pdb"
  "policies_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policies_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
