file(REMOVE_RECURSE
  "CMakeFiles/phase_change_test.dir/phase_change_test.cc.o"
  "CMakeFiles/phase_change_test.dir/phase_change_test.cc.o.d"
  "phase_change_test"
  "phase_change_test.pdb"
  "phase_change_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_change_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
