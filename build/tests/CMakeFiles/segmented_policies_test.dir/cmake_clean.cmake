file(REMOVE_RECURSE
  "CMakeFiles/segmented_policies_test.dir/segmented_policies_test.cc.o"
  "CMakeFiles/segmented_policies_test.dir/segmented_policies_test.cc.o.d"
  "segmented_policies_test"
  "segmented_policies_test.pdb"
  "segmented_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmented_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
