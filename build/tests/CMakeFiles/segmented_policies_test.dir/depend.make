# Empty dependencies file for segmented_policies_test.
# This may be replaced when dependencies are built.
