# Empty dependencies file for clockpro_test.
# This may be replaced when dependencies are built.
