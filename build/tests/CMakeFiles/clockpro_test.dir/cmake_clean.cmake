file(REMOVE_RECURSE
  "CMakeFiles/clockpro_test.dir/clockpro_test.cc.o"
  "CMakeFiles/clockpro_test.dir/clockpro_test.cc.o.d"
  "clockpro_test"
  "clockpro_test.pdb"
  "clockpro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clockpro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
