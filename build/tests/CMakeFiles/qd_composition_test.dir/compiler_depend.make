# Empty compiler generated dependencies file for qd_composition_test.
# This may be replaced when dependencies are built.
