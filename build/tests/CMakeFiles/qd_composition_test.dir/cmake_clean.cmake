file(REMOVE_RECURSE
  "CMakeFiles/qd_composition_test.dir/qd_composition_test.cc.o"
  "CMakeFiles/qd_composition_test.dir/qd_composition_test.cc.o.d"
  "qd_composition_test"
  "qd_composition_test.pdb"
  "qd_composition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
