file(REMOVE_RECURSE
  "CMakeFiles/belady_test.dir/belady_test.cc.o"
  "CMakeFiles/belady_test.dir/belady_test.cc.o.d"
  "belady_test"
  "belady_test.pdb"
  "belady_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/belady_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
