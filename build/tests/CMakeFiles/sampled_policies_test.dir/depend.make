# Empty dependencies file for sampled_policies_test.
# This may be replaced when dependencies are built.
