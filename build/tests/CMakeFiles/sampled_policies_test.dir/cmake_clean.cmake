file(REMOVE_RECURSE
  "CMakeFiles/sampled_policies_test.dir/sampled_policies_test.cc.o"
  "CMakeFiles/sampled_policies_test.dir/sampled_policies_test.cc.o.d"
  "sampled_policies_test"
  "sampled_policies_test.pdb"
  "sampled_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
