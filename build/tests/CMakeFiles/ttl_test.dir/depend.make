# Empty dependencies file for ttl_test.
# This may be replaced when dependencies are built.
