file(REMOVE_RECURSE
  "CMakeFiles/ttl_test.dir/ttl_test.cc.o"
  "CMakeFiles/ttl_test.dir/ttl_test.cc.o.d"
  "ttl_test"
  "ttl_test.pdb"
  "ttl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
