file(REMOVE_RECURSE
  "CMakeFiles/sized_test.dir/sized_test.cc.o"
  "CMakeFiles/sized_test.dir/sized_test.cc.o.d"
  "sized_test"
  "sized_test.pdb"
  "sized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
