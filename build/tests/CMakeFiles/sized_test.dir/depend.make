# Empty dependencies file for sized_test.
# This may be replaced when dependencies are built.
