// Extension bench: size-aware eviction (the paper's §5 future work).
//
// Variable-object-size web workload (log-normal sizes, Zipf popularity,
// one-hit-wonder stream) replayed at several byte budgets. Reports both
// object miss ratio (request-count view) and byte miss ratio (bandwidth
// view) — size-aware policies trade between the two. Shapes to check:
//   * sized-qd-lp-fifo ≤ sized-lru on object miss ratio (QD still pays off
//     with sizes);
//   * gdsf wins the *object* miss ratio by preferring small objects, at the
//     cost of byte miss ratio;
//   * the FIFO-family ordering (fifo > lru > reinsertion > clock2) carries
//     over from the uniform study.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/sized/sized_factory.h"
#include "src/sized/sized_trace.h"
#include "src/util/env.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

int Run() {
  const double scale = GetEnvDouble("QDLP_SCALE", 1.0);
  SizedWebConfig config;
  config.num_requests = static_cast<uint64_t>(200000 * scale);
  config.num_objects = 20000;
  config.one_hit_wonder_fraction = 0.18;
  config.seed = 4242;
  const SizedTrace trace = GenerateSizedWeb(config);
  std::cout << "sized web workload: " << trace.requests.size() << " requests, "
            << trace.num_objects << " objects, "
            << trace.total_object_bytes / (1 << 20) << " MiB of distinct data\n";

  for (const double fraction : {0.01, 0.05, 0.20}) {
    const uint64_t capacity = static_cast<uint64_t>(
        static_cast<double>(trace.total_object_bytes) * fraction);
    std::cout << "\ncache = " << TablePrinter::FmtPercent(fraction, 0)
              << " of distinct bytes (" << capacity / (1 << 20) << " MiB)\n";
    TablePrinter table(
        {"policy", "object miss ratio", "byte miss ratio", "objects cached"});
    for (const std::string& name : KnownSizedPolicyNames()) {
      auto policy = MakeSizedPolicy(name, capacity);
      const SizedSimResult result = ReplaySizedTrace(*policy, trace);
      table.AddRow({name, TablePrinter::Fmt(result.object_miss_ratio(), 4),
                    TablePrinter::Fmt(result.byte_miss_ratio(), 4),
                    std::to_string(policy->object_count())});
    }
    table.Print(std::cout);
    table.MaybeExportCsv("sized_" + TablePrinter::Fmt(fraction, 2));
  }
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
