// Figure 3 + Table 2: cache resource consumption by object popularity.
//
// Two representative traces (MSR-like block, Twitter-like KV), four
// algorithms (LRU, ARC, LHD, Belady). For each, print the share of total
// cache space-time spent on each popularity decile (decile 1 = most popular
// 10% of objects) and the miss ratio (Table 2).
//
// Shape to reproduce: ARC and LHD spend less on unpopular objects than LRU;
// Belady spends the least and has the lowest miss ratio; the algorithms
// order LRU > LHD/ARC > Belady in tail spending, and miss ratios follow.

#include <iostream>
#include <string>
#include <vector>

#include "src/sim/residency.h"
#include "src/sim/simulator.h"
#include "src/trace/registry.h"
#include "src/util/env.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

Trace MsrLikeTrace(double scale) {
  const auto specs = Table1Datasets();
  return MakeTrace(specs[0], 0, scale);  // msr family
}

Trace TwitterLikeTrace(double scale) {
  const auto specs = Table1Datasets();
  return MakeTrace(specs[8], 0, scale);  // twitter family
}

void RunOne(const std::string& label, const Trace& trace) {
  // The paper's Fig 3/Table 2 use a fixed (large-ish) cache size; we use 10%
  // of unique objects.
  const size_t cache_size = CacheSizeForFraction(trace, 0.10);
  std::cout << "\n=== " << label << " (" << trace.requests.size()
            << " requests, " << trace.num_objects << " objects, cache "
            << cache_size << ") ===\n";

  const std::vector<std::string> policies = {"lru", "arc", "lhd", "belady"};
  std::vector<ResidencyReport> reports;
  reports.reserve(policies.size());
  for (const auto& policy : policies) {
    reports.push_back(RunResidencyExperiment(policy, trace, cache_size));
  }

  std::cout << "Figure 3: share of cache space-time by popularity decile\n";
  std::vector<std::string> header = {"decile"};
  for (const auto& policy : policies) {
    header.push_back(policy);
  }
  TablePrinter table(header);
  for (size_t decile = 0; decile < kNumDeciles; ++decile) {
    std::vector<std::string> row = {
        decile == 0 ? "1 (hot)" : decile == kNumDeciles - 1
                                      ? "10 (cold)"
                                      : std::to_string(decile + 1)};
    for (const auto& report : reports) {
      row.push_back(TablePrinter::FmtPercent(report.decile_share[decile], 1));
    }
    table.AddRow(row);
  }
  // Aggregate: resource share spent on the unpopular half.
  std::vector<std::string> tail_row = {"cold half (6-10)"};
  for (const auto& report : reports) {
    double tail = 0.0;
    for (size_t decile = 5; decile < kNumDeciles; ++decile) {
      tail += report.decile_share[decile];
    }
    tail_row.push_back(TablePrinter::FmtPercent(tail, 1));
  }
  table.AddRow(tail_row);
  table.Print(std::cout);
  table.MaybeExportCsv("fig3_deciles_" + label.substr(0, 3));

  std::cout << "Table 2: miss ratios\n";
  std::vector<std::string> t2_header = header;
  t2_header[0] = "metric";
  TablePrinter t2(t2_header);
  std::vector<std::string> mr_row = {"miss ratio"};
  for (const auto& report : reports) {
    mr_row.push_back(TablePrinter::Fmt(report.miss_ratio, 4));
  }
  t2.AddRow(mr_row);
  t2.Print(std::cout);
  t2.MaybeExportCsv("table2_" + label.substr(0, 3));
}

int Run() {
  const double scale = GetEnvDouble("QDLP_SCALE", 1.0);
  RunOne("MSR-like block trace", MsrLikeTrace(scale));
  RunOne("Twitter-like KV trace", TwitterLikeTrace(scale));
  std::cout << "\nPaper reference (Table 2): MSR LRU 0.5263 ARC 0.4899 LHD "
               "0.5131 Belady 0.4438; Twitter LRU 0.2005 ARC 0.1841 LHD "
               "0.1756 Belady 0.1309.\nOur absolute values differ (synthetic "
               "traces); the ordering and the \"efficient algorithms spend "
               "less on unpopular objects\" shape are the reproduction "
               "target.\n";
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
