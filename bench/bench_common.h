// Shared helpers for the experiment harnesses (bench/ binaries).
//
// Every harness regenerates one table or figure of the paper and prints it
// as an aligned text table. Scale knobs:
//   QDLP_SCALE    multiplies the default registry scale (default 1.0);
//                 4.0 ~= 2x more traces of 2x the length.
//   QDLP_THREADS  worker threads for sweeps (default: hardware concurrency).

#ifndef QDLP_BENCH_BENCH_COMMON_H_
#define QDLP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/trace/registry.h"
#include "src/trace/trace.h"
#include "src/util/env.h"

namespace qdlp {

// Materializes the Table-1 registry at `base_scale * QDLP_SCALE`.
inline std::vector<Trace> LoadRegistry(double base_scale) {
  const double scale = base_scale * GetEnvDouble("QDLP_SCALE", 1.0);
  std::fprintf(stderr, "[qdlp] materializing trace registry at scale %.3f...\n",
               scale);
  auto traces = MaterializeRegistry(scale);
  size_t total_requests = 0;
  for (const auto& trace : traces) {
    total_requests += trace.requests.size();
  }
  std::fprintf(stderr, "[qdlp] %zu traces, %zu total requests\n", traces.size(),
               total_requests);
  return traces;
}

inline size_t SweepThreads() {
  return static_cast<size_t>(GetEnvInt("QDLP_THREADS", 0));
}

}  // namespace qdlp

#endif  // QDLP_BENCH_BENCH_COMMON_H_
