// Google-benchmark reporter that mirrors the console output while capturing
// every iteration run into BenchJsonResult records for BENCH_throughput.json
// (see bench_json.h for the schema and output path).

#ifndef QDLP_BENCH_BENCH_JSON_REPORTER_H_
#define QDLP_BENCH_BENCH_JSON_REPORTER_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"

namespace qdlp {

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  using PolicyNamer = std::function<std::string(const std::string&)>;

  // `policy_namer` maps a full benchmark name to the policy label recorded
  // in the JSON; defaults to PolicyFromBenchmarkName.
  explicit JsonCaptureReporter(PolicyNamer policy_namer = nullptr)
      : policy_namer_(policy_namer ? std::move(policy_namer)
                                   : PolicyFromBenchmarkName) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;  // keep aggregates/errors out of the JSON
      }
      BenchJsonResult result;
      result.benchmark = run.benchmark_name();
      result.policy = policy_namer_(result.benchmark);
      result.threads = run.threads;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        result.ops_per_sec = static_cast<double>(it->second);
      }
      const auto hit_it = run.counters.find("hit_ratio");
      if (hit_it != run.counters.end()) {
        result.hit_ratio = static_cast<double>(hit_it->second);
      }
      const auto bytes_it = run.counters.find("bytes_per_object");
      if (bytes_it != run.counters.end()) {
        result.bytes_per_object = static_cast<double>(bytes_it->second);
      }
      results_.push_back(std::move(result));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<BenchJsonResult>& results() { return results_; }

 private:
  PolicyNamer policy_namer_;
  std::vector<BenchJsonResult> results_;
};

}  // namespace qdlp

#endif  // QDLP_BENCH_BENCH_JSON_REPORTER_H_
