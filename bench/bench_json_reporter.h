// Google-benchmark reporter that mirrors the console output while capturing
// every iteration run into BenchJsonResult records for BENCH_throughput.json
// (see bench_json.h for the schema and output path).

#ifndef QDLP_BENCH_BENCH_JSON_REPORTER_H_
#define QDLP_BENCH_BENCH_JSON_REPORTER_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"

namespace qdlp {

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  using PolicyNamer = std::function<std::string(const std::string&)>;

  // `policy_namer` maps a full benchmark name to the policy label recorded
  // in the JSON; defaults to PolicyFromBenchmarkName.
  explicit JsonCaptureReporter(PolicyNamer policy_namer = nullptr)
      : policy_namer_(policy_namer ? std::move(policy_namer)
                                   : PolicyFromBenchmarkName) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;  // keep aggregates/errors out of the JSON
      }
      BenchJsonResult result;
      result.benchmark = run.benchmark_name();
      result.policy = policy_namer_(result.benchmark);
      result.threads = run.threads;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        result.ops_per_sec = static_cast<double>(it->second);
      }
      const auto hit_it = run.counters.find("hit_ratio");
      if (hit_it != run.counters.end()) {
        result.hit_ratio = static_cast<double>(hit_it->second);
      }
      const auto bytes_it = run.counters.find("bytes_per_object");
      if (bytes_it != run.counters.end()) {
        result.bytes_per_object = static_cast<double>(bytes_it->second);
      }
      // Benches publish the cache's Stats() through "stats_<key>" counters
      // (one per BenchStatsFields() entry); collect them into the typed
      // stats block.
      for (const BenchStatsField& field : BenchStatsFields()) {
        const auto stat_it = run.counters.find(std::string("stats_") +
                                               field.key);
        if (stat_it != run.counters.end()) {
          result.stats.*field.member =
              static_cast<uint64_t>(static_cast<double>(stat_it->second));
          result.has_stats = true;
        }
      }
      results_.push_back(std::move(result));
    }
    // The stats_* bridge counters are JSON plumbing, not console content —
    // a dozen extra columns per row would drown the table.
    std::vector<Run> console = reports;
    for (Run& run : console) {
      for (auto it = run.counters.begin(); it != run.counters.end();) {
        it = it->first.rfind("stats_", 0) == 0 ? run.counters.erase(it)
                                               : std::next(it);
      }
    }
    ConsoleReporter::ReportRuns(console);
  }

  std::vector<BenchJsonResult>& results() { return results_; }

 private:
  PolicyNamer policy_namer_;
  std::vector<BenchJsonResult> results_;
};

}  // namespace qdlp

#endif  // QDLP_BENCH_BENCH_JSON_REPORTER_H_
