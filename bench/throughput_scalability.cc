// Throughput & scalability: the §1/§2 motivation for FIFO-based designs.
//
// Compares, under 1..N threads hammering a Zipf key space:
//   * global-lock LRU    — every hit takes the one mutex and splices;
//   * sharded LRU        — contention divided across shards, hits still
//                          exclusive;
//   * concurrent CLOCK   — lock-free hit path: one striped-index probe plus
//                          one relaxed atomic RMW, misses batched behind a
//                          single eviction mutex;
//   * concurrent S3-FIFO — same hit path over the two-queue + ghost design;
//   * concurrent QD-LP-FIFO — the paper's headline construction
//                          (probationary FIFO + ghost + 2-bit CLOCK main).
//
// Expected shape: the lock-free caches >= sharded LRU >> global LRU as
// threads grow. A skew sweep (Zipf 0.6 / 0.9 / 1.2 at a fixed thread count)
// shows throughput as a function of hit ratio: the hotter the workload, the
// more the lock-free hit path dominates.
//
// Results land in BENCH_throughput.json (QDLP_BENCH_JSON overrides the
// path) keyed by cache kind and thread count, now with measured hit_ratio,
// metadata bytes_per_object (via ApproxMetadataBytes), and
// scaling_efficiency = ops(T) / (T * ops(1)). tools/bench_compare.py diffs
// two such files and fails on regression (CI bench-smoke runs it against
// the committed BENCH_throughput_scalability.json).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_json.h"
#include "bench/bench_json_reporter.h"
#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_qdlp_fifo.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/locked_lru.h"
#include "src/concurrent/sharded_lru.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

constexpr size_t kCapacity = 1 << 16;
constexpr size_t kKeySpace = 1 << 18;  // 4x capacity: ~mixed hits/misses

// Shared driver: every thread samples the same Zipf(skew) stream shape and
// calls Get. Reports per-run hit_ratio (averaged over threads) and, from
// thread 0 at teardown, metadata bytes per cached object.
template <typename CacheT, typename... Args>
void BM_ConcurrentGet(benchmark::State& state, double skew, Args... args) {
  static std::unique_ptr<CacheT> cache;
  if (state.thread_index() == 0) {
    cache = std::make_unique<CacheT>(args...);
  }
  ZipfSampler zipf(kKeySpace, skew);
  Rng rng(9000 + static_cast<uint64_t>(state.thread_index()));
  uint64_t hits = 0;
  for (auto _ : state) {
    hits += cache->Get(zipf.Sample(rng)) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["hit_ratio"] = benchmark::Counter(
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(hits) /
                static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    state.counters["bytes_per_object"] = benchmark::Counter(
        static_cast<double>(cache->ApproxMetadataBytes()) /
        static_cast<double>(cache->capacity()));
    // Publish the cache's own Stats() through the stats_* counter bridge
    // (bench_json_reporter.h strips these from the console and emits the
    // JSON "stats" block). Thread 0 only: one snapshot per run.
    const CacheStats stats = cache->Stats();
    for (const BenchStatsField& field : BenchStatsFields()) {
      state.counters[std::string("stats_") + field.key] =
          benchmark::Counter(static_cast<double>(stats.*field.member));
    }
    cache.reset();
  }
}

// Thread-scaling sweep at the canonical skew 1.0 (family names are stable:
// bench_compare.py keys on them).
void BM_GlobalLockLru(benchmark::State& state) {
  BM_ConcurrentGet<GlobalLockLruCache>(state, 1.0, kCapacity);
}
void BM_ShardedLru(benchmark::State& state) {
  BM_ConcurrentGet<ShardedLruCache>(state, 1.0, kCapacity, size_t{16});
}
void BM_ConcurrentClock(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentClockCache>(state, 1.0, kCapacity, 1,
                                         size_t{16});
}
void BM_ConcurrentS3Fifo(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentS3FifoCache>(state, 1.0, kCapacity, 0.10, 0.9,
                                          size_t{16});
}
void BM_ConcurrentQdLpFifo(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentQdLpFifo>(state, 1.0, kCapacity, size_t{16});
}

BENCHMARK(BM_GlobalLockLru)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(BM_ShardedLru)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(BM_ConcurrentClock)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(BM_ConcurrentS3Fifo)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(BM_ConcurrentQdLpFifo)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// Hit-ratio sweep: Zipf skew as the benchmark argument (x100, so 60 = 0.6),
// at a fixed 2 threads. Lower skew -> lower hit ratio -> more miss-path
// (eviction lock) pressure; the JSON's hit_ratio column pairs each
// throughput number with the hit ratio that produced it.
void BM_ConcurrentClockSkew(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentClockCache>(
      state, static_cast<double>(state.range(0)) / 100.0, kCapacity, 1,
      size_t{16});
}
void BM_ConcurrentS3FifoSkew(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentS3FifoCache>(
      state, static_cast<double>(state.range(0)) / 100.0, kCapacity, 0.10,
      0.9, size_t{16});
}
void BM_ConcurrentQdLpFifoSkew(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentQdLpFifo>(
      state, static_cast<double>(state.range(0)) / 100.0, kCapacity,
      size_t{16});
}

BENCHMARK(BM_ConcurrentClockSkew)
    ->Arg(60)
    ->Arg(90)
    ->Arg(120)
    ->Threads(2)
    ->UseRealTime();
BENCHMARK(BM_ConcurrentS3FifoSkew)
    ->Arg(60)
    ->Arg(90)
    ->Arg(120)
    ->Threads(2)
    ->UseRealTime();
BENCHMARK(BM_ConcurrentQdLpFifoSkew)
    ->Arg(60)
    ->Arg(90)
    ->Arg(120)
    ->Threads(2)
    ->UseRealTime();

// Maps "BM_GlobalLockLru/threads:4/real_time" to a stable policy label.
// Longer prefixes are tested first so e.g. BM_ConcurrentClockSkew does not
// fall into BM_ConcurrentClock's bucket with its skew arg lost — both still
// report the same policy, and the full benchmark name disambiguates.
std::string CacheKindFromBenchmarkName(const std::string& name) {
  if (name.find("BM_GlobalLockLru") == 0) {
    return "global-lock-lru";
  }
  if (name.find("BM_ShardedLru") == 0) {
    return "sharded-lru";
  }
  if (name.find("BM_ConcurrentClock") == 0) {
    return "concurrent-clock";
  }
  if (name.find("BM_ConcurrentS3Fifo") == 0) {
    return "concurrent-s3fifo";
  }
  if (name.find("BM_ConcurrentQdLpFifo") == 0) {
    return "concurrent-qdlp-fifo";
  }
  return PolicyFromBenchmarkName(name);
}

}  // namespace
}  // namespace qdlp

int main(int argc, char** argv) {
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(stderr,
                 "[qdlp] NOTE: only one hardware core detected. Threads "
                 "timeshare, so lock contention never materializes and the "
                 "LRU-vs-CLOCK scalability separation cannot show here; run "
                 "on a multi-core machine to observe it.\n");
  }
  benchmark::Initialize(&argc, argv);
  qdlp::JsonCaptureReporter reporter(qdlp::CacheKindFromBenchmarkName);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  qdlp::FillScalingEfficiency(&reporter.results());
  const std::string json_path = qdlp::BenchJsonOutputPath();
  if (qdlp::WriteBenchJson(json_path, "throughput_scalability",
                           reporter.results())) {
    std::fprintf(stderr, "[qdlp] wrote %s (%zu results)\n", json_path.c_str(),
                 reporter.results().size());
  }
  return 0;
}
