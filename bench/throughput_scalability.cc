// Throughput & scalability: the §1/§2 motivation for FIFO-based designs.
//
// Compares, under 1..N threads hammering a Zipf key space:
//   * global-lock LRU   — every hit takes the one mutex and splices;
//   * sharded LRU       — contention divided across shards, hits still
//                         exclusive;
//   * concurrent CLOCK  — hits take a shared lock + one atomic store.
//
// Expected shape: CLOCK >= sharded LRU >> global LRU as threads grow; with a
// single hardware core the ordering still shows via lock overhead.

// Results also land in BENCH_throughput.json (QDLP_BENCH_JSON overrides the
// path) keyed by cache kind and thread count; bytes/object is reported as 0
// here — the concurrent caches are not metadata-instrumented.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_json.h"
#include "bench/bench_json_reporter.h"
#include "src/concurrent/concurrent_clock.h"
#include "src/concurrent/concurrent_s3fifo.h"
#include "src/concurrent/locked_lru.h"
#include "src/concurrent/sharded_lru.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {
namespace {

constexpr size_t kCapacity = 1 << 16;
constexpr size_t kKeySpace = 1 << 18;  // 4x capacity: ~mixed hits/misses

template <typename CacheT, typename... Args>
void BM_ConcurrentGet(benchmark::State& state, Args... args) {
  static std::unique_ptr<CacheT> cache;
  if (state.thread_index() == 0) {
    cache = std::make_unique<CacheT>(args...);
  }
  ZipfSampler zipf(kKeySpace, 1.0);
  Rng rng(9000 + static_cast<uint64_t>(state.thread_index()));
  uint64_t hits = 0;
  for (auto _ : state) {
    hits += cache->Get(zipf.Sample(rng)) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    cache.reset();
  }
}

void BM_GlobalLockLru(benchmark::State& state) {
  BM_ConcurrentGet<GlobalLockLruCache>(state, kCapacity);
}
void BM_ShardedLru(benchmark::State& state) {
  BM_ConcurrentGet<ShardedLruCache>(state, kCapacity, size_t{16});
}
void BM_ConcurrentClock(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentClockCache>(state, kCapacity, 1, size_t{16});
}
void BM_ConcurrentS3Fifo(benchmark::State& state) {
  BM_ConcurrentGet<ConcurrentS3FifoCache>(state, kCapacity, 0.10, 0.9,
                                          size_t{16});
}

BENCHMARK(BM_GlobalLockLru)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(BM_ShardedLru)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(BM_ConcurrentClock)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(BM_ConcurrentS3Fifo)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

// Maps "BM_GlobalLockLru/threads:4/real_time" to a stable policy label.
std::string CacheKindFromBenchmarkName(const std::string& name) {
  if (name.find("BM_GlobalLockLru") == 0) {
    return "global-lock-lru";
  }
  if (name.find("BM_ShardedLru") == 0) {
    return "sharded-lru";
  }
  if (name.find("BM_ConcurrentClock") == 0) {
    return "concurrent-clock";
  }
  if (name.find("BM_ConcurrentS3Fifo") == 0) {
    return "concurrent-s3fifo";
  }
  return PolicyFromBenchmarkName(name);
}

}  // namespace
}  // namespace qdlp

int main(int argc, char** argv) {
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(stderr,
                 "[qdlp] NOTE: only one hardware core detected. Threads "
                 "timeshare, so lock contention never materializes and the "
                 "LRU-vs-CLOCK scalability separation cannot show here; run "
                 "on a multi-core machine to observe it.\n");
  }
  benchmark::Initialize(&argc, argv);
  qdlp::JsonCaptureReporter reporter(qdlp::CacheKindFromBenchmarkName);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string json_path = qdlp::BenchJsonOutputPath();
  if (qdlp::WriteBenchJson(json_path, "throughput_scalability",
                           reporter.results())) {
    std::fprintf(stderr, "[qdlp] wrote %s (%zu results)\n", json_path.c_str(),
                 reporter.results().size());
  }
  return 0;
}
