// Ablation: the promotion-reduction techniques §5 lists next to strict LP.
//
// "Several other techniques are often used to reduce promotion and improve
// scalability, e.g., periodic promotion, batched promotion, promoting old
// objects only, promoting with try-lock. Although these techniques do not
// fall into our strict definition of Lazy Promotion, many of them
// effectively retain popular objects from being evicted."
//
// Measured: mean miss ratio across the registry for LRU, batched-promotion
// LRU, promote-old-only LRU, FIFO-Reinsertion (strict LP), 2-bit CLOCK, and
// FIFO — together with each policy's per-hit promotion work (from
// bench/micro_policies). The claim to check: the relaxed variants track LRU
// closely while strict LP matches or beats it.

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/sweep.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

int Run() {
  const auto traces = LoadRegistry(0.2);

  SweepConfig config;
  config.policies = {"fifo",        "lru",           "lru-batched",
                     "lru-promote-old", "fifo-reinsertion", "clock2"};
  config.size_fractions = {0.001, 0.10};
  config.num_threads = SweepThreads();
  const auto points = RunSweep(traces, config);

  for (const double fraction : config.size_fractions) {
    std::cout << "\nPromotion-technique ablation, cache = "
              << TablePrinter::FmtPercent(fraction, 1)
              << " of objects: mean miss ratio and mean reduction vs FIFO\n";
    TablePrinter table({"policy", "promotion work per hit", "mean miss ratio",
                        "mean reduction vs fifo"});
    const auto describe = [](const std::string& policy) -> std::string {
      if (policy == "fifo") {
        return "none";
      }
      if (policy == "lru") {
        return "6 pointers, every hit";
      }
      if (policy == "lru-batched") {
        return "6 pointers, 1/64 hits amortized";
      }
      if (policy == "lru-promote-old") {
        return "6 pointers, old objects only";
      }
      return "1 counter write";  // reinsertion / clock
    };
    for (const auto& policy : config.policies) {
      StreamingStats mr;
      for (const auto& point : points) {
        if (point.policy == policy && point.size_fraction == fraction) {
          mr.Add(point.miss_ratio);
        }
      }
      StreamingStats reduction;
      for (const double r :
           ReductionsVsBaseline(points, policy, "fifo", fraction)) {
        reduction.Add(r);
      }
      table.AddRow({policy, describe(policy), TablePrinter::Fmt(mr.mean(), 4),
                    TablePrinter::FmtPercent(reduction.mean(), 2)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape: lru-batched and lru-promote-old within a "
               "hair of lru; fifo-reinsertion/clock2 beat all three with "
               "less promotion work than any of them.\n";
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
