// Table 1: the dataset registry.
//
// The paper's Table 1 lists its ten trace sources with type, trace count,
// request count and object count. This harness prints the same columns for
// our synthetic registry (see DESIGN.md §2 for the substitution), plus the
// workload-shape statistics (reuse, one-hit-wonder ratio) that justify each
// family's design.

#include <iostream>
#include <unordered_map>

#include "bench/bench_common.h"
#include "src/trace/trace.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

int Run() {
  const auto traces = LoadRegistry(0.5);

  struct Row {
    int traces = 0;
    uint64_t requests = 0;
    uint64_t objects = 0;
    double one_hit = 0.0;
    double mean_freq = 0.0;
    double zipf_alpha = 0.0;
    WorkloadClass cls = WorkloadClass::kBlock;
  };
  std::vector<std::string> order;
  std::unordered_map<std::string, Row> rows;
  for (const Trace& trace : traces) {
    if (!rows.contains(trace.dataset)) {
      order.push_back(trace.dataset);
    }
    Row& row = rows[trace.dataset];
    const TraceStats stats = ComputeTraceStats(trace);
    row.traces += 1;
    row.requests += stats.num_requests;
    row.objects += stats.num_objects;
    row.one_hit += stats.one_hit_wonder_ratio;
    row.mean_freq += stats.mean_frequency;
    row.zipf_alpha += stats.zipf_alpha;
    row.cls = trace.cls;
  }

  std::cout << "Table 1: datasets (synthetic registry mirroring the paper's "
               "ten sources)\n";
  TablePrinter table({"dataset", "cache type", "#traces", "#requests(k)",
                      "#objects(k)", "mean freq", "one-hit ratio",
                      "zipf alpha"});
  for (const std::string& name : order) {
    const Row& row = rows.at(name);
    table.AddRow({name, WorkloadClassName(row.cls), std::to_string(row.traces),
                  std::to_string(row.requests / 1000),
                  std::to_string(row.objects / 1000),
                  TablePrinter::Fmt(row.mean_freq / row.traces, 1),
                  TablePrinter::FmtPercent(row.one_hit / row.traces, 1),
                  TablePrinter::Fmt(row.zipf_alpha / row.traces, 2)});
  }
  table.Print(std::cout);
  table.MaybeExportCsv("table1_datasets");
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
