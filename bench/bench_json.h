// Machine-readable throughput results: BENCH_throughput.json.
//
// Every throughput bench (micro_policies, throughput_scalability) appends
// its measurements here so the perf trajectory is tracked PR over PR; CI
// runs a short Release pass, validates the file parses, and archives it.
// Schema (see docs/PERFORMANCE.md):
//
//   {
//     "schema_version": 1,
//     "binary": "micro_policies",
//     "results": [
//       { "benchmark": "BM_Access/lru",   // full google-benchmark name
//         "policy": "lru",                // policy/cache under test
//         "threads": 1,                   // concurrent client threads
//         "ops_per_sec": 37664700.0,      // Access()/Get() calls per second
//         "bytes_per_object": 38.2,       // metadata bytes per cached
//                                         //   object (0 = uninstrumented)
//         "hit_ratio": 0.87,              // hits/requests (0 = unmeasured)
//         "scaling_efficiency": 0.93,     // ops(T) / (T * ops(1 thread));
//                                         //   0 for 1-thread/unpaired rows
//         "stats": {                      // the cache's own Stats() counters
//           "requests": 200000,           //   (integers; omitted entirely
//           "hits": 174000, ... } },      //   when the bench didn't capture)
//       ...
//     ]
//   }
//
// The output path defaults to BENCH_throughput.json in the working
// directory; QDLP_BENCH_JSON overrides it. This header has no
// google-benchmark dependency so tests can exercise the writer directly;
// the reporter glue lives in bench_json_reporter.h.

#ifndef QDLP_BENCH_BENCH_JSON_H_
#define QDLP_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/cache_stats.h"
#include "src/util/env.h"

namespace qdlp {

struct BenchJsonResult {
  std::string benchmark;
  std::string policy;
  int64_t threads = 1;
  double ops_per_sec = 0.0;
  double bytes_per_object = 0.0;
  double hit_ratio = 0.0;
  double scaling_efficiency = 0.0;
  // The cache's own telemetry (CacheObservable::Stats()), captured by the
  // bench at teardown. Emitted as the "stats" block when has_stats is set.
  CacheStats stats;
  bool has_stats = false;
};

// The stats block's field list — one source of truth for the JSON writer,
// the google-benchmark counter bridge ("stats_" + key, see
// bench_json_reporter.h), and tools/bench_compare.py --check-stats.
struct BenchStatsField {
  const char* key;
  uint64_t CacheStats::*member;
};

inline const std::vector<BenchStatsField>& BenchStatsFields() {
  static const std::vector<BenchStatsField> fields = {
      {"requests", &CacheStats::requests},
      {"hits", &CacheStats::hits},
      {"misses", &CacheStats::misses},
      {"inserts", &CacheStats::inserts},
      {"evictions", &CacheStats::evictions},
      {"promotions", &CacheStats::promotions},
      {"demotions", &CacheStats::demotions},
      {"ghost_hits", &CacheStats::ghost_hits},
      {"size", &CacheStats::size},
      {"probation_size", &CacheStats::probation_size},
      {"main_size", &CacheStats::main_size},
      {"ghost_size", &CacheStats::ghost_size},
  };
  return fields;
}

inline std::string BenchJsonOutputPath() {
  return GetEnvString("QDLP_BENCH_JSON", "BENCH_throughput.json");
}

// Extracts "lru" from "BM_Access/lru" or "BM_Access/lru/threads:4": the
// last path segment that is not a "key:value" config segment. Falls back to
// the family name itself. Note that google-benchmark's UseRealTime() suffix
// ("/real_time") is an ordinary segment and wins here — binaries that use
// it pass their own namer to JsonCaptureReporter instead.
inline std::string PolicyFromBenchmarkName(const std::string& name) {
  std::string policy;
  size_t start = 0;
  bool first = true;
  while (start <= name.size()) {
    const size_t slash = name.find('/', start);
    const size_t end = slash == std::string::npos ? name.size() : slash;
    const std::string segment = name.substr(start, end - start);
    if (first) {
      policy = segment;  // family name fallback
      first = false;
    } else if (!segment.empty() && segment.find(':') == std::string::npos) {
      policy = segment;
      break;
    }
    if (slash == std::string::npos) {
      break;
    }
    start = slash + 1;
  }
  return policy;
}

inline std::string BenchJsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string BenchJsonNumber(double value) {
  char buf[64];
  // %.17g round-trips doubles; JSON has no NaN/Inf, clamp those to 0.
  if (!(value == value) || value > 1e308 || value < -1e308) {
    value = 0.0;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  std::string out = buf;
  // Bare integers are valid JSON numbers, but keep a decimal point so
  // consumers that sniff types see a float consistently.
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos) {
    out += ".0";
  }
  return out;
}

inline std::string BenchJsonToString(
    const std::string& binary, const std::vector<BenchJsonResult>& results) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"binary\": \"" + BenchJsonEscape(binary) + "\",\n";
  out += "  \"results\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchJsonResult& r = results[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    { \"benchmark\": \"" + BenchJsonEscape(r.benchmark) + "\",\n";
    out += "      \"policy\": \"" + BenchJsonEscape(r.policy) + "\",\n";
    out += "      \"threads\": " + std::to_string(r.threads) + ",\n";
    out += "      \"ops_per_sec\": " + BenchJsonNumber(r.ops_per_sec) + ",\n";
    out += "      \"bytes_per_object\": " + BenchJsonNumber(r.bytes_per_object) +
           ",\n";
    out += "      \"hit_ratio\": " + BenchJsonNumber(r.hit_ratio) + ",\n";
    out += "      \"scaling_efficiency\": " +
           BenchJsonNumber(r.scaling_efficiency);
    if (r.has_stats) {
      // Counters are exact integers; no BenchJsonNumber float formatting.
      out += ",\n      \"stats\": { ";
      const std::vector<BenchStatsField>& fields = BenchStatsFields();
      for (size_t f = 0; f < fields.size(); ++f) {
        if (f != 0) {
          out += ", ";
        }
        out += "\"" + std::string(fields[f].key) +
               "\": " + std::to_string(r.stats.*fields[f].member);
      }
      out += " }";
    }
    out += " }";
  }
  out += "\n  ]\n}\n";
  return out;
}

// Fills scaling_efficiency = ops(T) / (T * ops(1 thread)) for every
// multi-thread result whose single-thread sibling (same benchmark name with
// the "/threads:N" segment removed) is present. 1-thread rows and rows with
// no sibling keep 0.
inline void FillScalingEfficiency(std::vector<BenchJsonResult>* results) {
  const auto base_name = [](const BenchJsonResult& r) {
    std::string base = r.benchmark;
    const size_t pos = base.find("/threads:");
    if (pos != std::string::npos) {
      const size_t end = base.find('/', pos + 1);
      base.erase(pos, end == std::string::npos ? std::string::npos
                                               : end - pos);
    }
    return base;
  };
  for (BenchJsonResult& row : *results) {
    if (row.threads <= 1 || row.ops_per_sec <= 0.0) {
      continue;
    }
    const std::string base = base_name(row);
    for (const BenchJsonResult& other : *results) {
      if (other.threads == 1 && other.ops_per_sec > 0.0 &&
          base_name(other) == base) {
        row.scaling_efficiency =
            row.ops_per_sec /
            (static_cast<double>(row.threads) * other.ops_per_sec);
        break;
      }
    }
  }
}

// Writes the report to `path`; returns false (and prints to stderr) on I/O
// failure.
inline bool WriteBenchJson(const std::string& path, const std::string& binary,
                           const std::vector<BenchJsonResult>& results) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[qdlp] cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string payload = BenchJsonToString(binary, results);
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), file);
  const bool closed = std::fclose(file) == 0;
  const bool ok = written == payload.size() && closed;
  if (!ok) {
    std::fprintf(stderr, "[qdlp] short write to %s\n", path.c_str());
  }
  return ok;
}

}  // namespace qdlp

#endif  // QDLP_BENCH_BENCH_JSON_H_
