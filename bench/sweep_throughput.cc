// Sweep engine throughput: batched single-pass replay vs per-cell replay.
//
// Runs the same Fig-2-scale grid — the paper's core LP/QD comparison set
// over the generated registry at two cache sizes — through both RunSweep
// engines, verifies the outputs are bit-identical, and reports wall-clock
// throughput for each. Output is BENCH_sweep.json (QDLP_BENCH_JSON
// overrides; schema in docs/TESTING.md):
//
//   sweep/per_cell — replayed requests/s, one full trace pass per cell
//   sweep/batched  — replayed requests/s, one dense pass drives all cells
//   sweep/speedup  — batched / per_cell ratio in ops_per_sec. Unlike the
//                    absolute rows this is machine-independent, so CI gates
//                    it with a hard floor (tools/bench_compare.py
//                    --require).
//
// The policy set is the dense-capable Fig-2/Fig-5 core (LP variants,
// SIEVE/S3-FIFO, QD-LP-FIFO): the grid the batching work targets. Adaptive
// policies (ARC/LIRS/LHD/...) spend their time in policy logic rather than
// stream + index traffic and would only dilute what this bench measures;
// their batched-vs-per-cell equivalence is covered by tests, not timed
// here.
//
// Scale knobs: QDLP_SCALE (registry size multiplier), QDLP_THREADS.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/sim/sweep.h"
#include "src/util/env.h"

namespace qdlp {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Run() {
  const auto traces = LoadRegistry(0.25);

  SweepConfig config;
  config.policies = {"lru",    "fifo",  "fifo-reinsertion", "clock2",
                     "clock3", "sieve", "s3fifo",           "qd-lp-fifo"};
  config.size_fractions = {0.001, 0.10};
  config.num_threads = SweepThreads();

  // Work per engine: every cell replays its whole trace once.
  size_t total_requests = 0;
  for (const auto& trace : traces) {
    total_requests += trace.requests.size();
  }
  const double replayed = static_cast<double>(total_requests) *
                          static_cast<double>(config.policies.size()) *
                          static_cast<double>(config.size_fractions.size());

  std::fprintf(stderr, "[qdlp] per-cell engine...\n");
  config.engine = SweepEngine::kPerCell;
  const auto per_cell_start = std::chrono::steady_clock::now();
  const auto per_cell_points = RunSweep(traces, config);
  const double per_cell_seconds = SecondsSince(per_cell_start);

  std::fprintf(stderr, "[qdlp] batched engine...\n");
  config.engine = SweepEngine::kBatched;
  const auto batched_start = std::chrono::steady_clock::now();
  const auto batched_points = RunSweep(traces, config);
  const double batched_seconds = SecondsSince(batched_start);

  // The speedup is only meaningful if both engines did the same work; the
  // equivalence is pinned in detail by tests, but re-check here so a bad
  // bench run can never publish a number for a divergent computation.
  if (batched_points.size() != per_cell_points.size()) {
    std::fprintf(stderr, "[qdlp] FAIL: engines disagree on grid size\n");
    return 1;
  }
  for (size_t i = 0; i < batched_points.size(); ++i) {
    if (batched_points[i].miss_ratio != per_cell_points[i].miss_ratio ||
        batched_points[i].policy != per_cell_points[i].policy ||
        batched_points[i].trace != per_cell_points[i].trace) {
      std::fprintf(stderr,
                   "[qdlp] FAIL: engines diverge at point %zu (%s, %s): "
                   "%.17g vs %.17g\n",
                   i, batched_points[i].trace.c_str(),
                   batched_points[i].policy.c_str(),
                   batched_points[i].miss_ratio, per_cell_points[i].miss_ratio);
      return 1;
    }
  }

  const double per_cell_ops = replayed / per_cell_seconds;
  const double batched_ops = replayed / batched_seconds;
  const double speedup = per_cell_seconds / batched_seconds;
  std::printf(
      "sweep grid: %zu traces x %zu policies x %zu sizes, %.0f replayed "
      "requests per engine\n",
      traces.size(), config.policies.size(), config.size_fractions.size(),
      replayed);
  std::printf("per-cell: %8.2f s  (%12.0f req/s)\n", per_cell_seconds,
              per_cell_ops);
  std::printf("batched:  %8.2f s  (%12.0f req/s)\n", batched_seconds,
              batched_ops);
  std::printf("speedup:  %8.2fx\n", speedup);

  std::vector<BenchJsonResult> results;
  BenchJsonResult per_cell_row;
  per_cell_row.benchmark = "sweep/per_cell";
  per_cell_row.policy = "sweep";
  per_cell_row.threads = static_cast<int64_t>(config.num_threads);
  per_cell_row.ops_per_sec = per_cell_ops;
  results.push_back(per_cell_row);
  BenchJsonResult batched_row;
  batched_row.benchmark = "sweep/batched";
  batched_row.policy = "sweep";
  batched_row.threads = static_cast<int64_t>(config.num_threads);
  batched_row.ops_per_sec = batched_ops;
  results.push_back(batched_row);
  BenchJsonResult speedup_row;
  speedup_row.benchmark = "sweep/speedup";
  speedup_row.policy = "sweep";
  speedup_row.threads = static_cast<int64_t>(config.num_threads);
  speedup_row.ops_per_sec = speedup;  // ratio, machine-independent
  results.push_back(speedup_row);

  const std::string path = GetEnvString("QDLP_BENCH_JSON", "BENCH_sweep.json");
  if (!WriteBenchJson(path, "sweep_throughput", results)) {
    return 1;
  }
  std::fprintf(stderr, "[qdlp] wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
