// Figure 2 (a–d): Lazy Promotion vs LRU.
//
// For every registry trace and both cache sizes (0.1% and 10% of unique
// objects), compare LRU against FIFO-Reinsertion (1-bit CLOCK) and 2-bit
// CLOCK. The paper's claims to reproduce:
//   * FIFO-Reinsertion beats LRU on most datasets at both sizes (9/10 small,
//     7/10 large);
//   * moving from 1 to 2 bits increases the win fraction, especially on the
//     high-reuse KV datasets (social networks) where one bit is not enough;
//   * 2-bit CLOCK beats LRU on ~all datasets.

#include <iostream>

#include "bench/bench_common.h"
#include "src/sim/sweep.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

int Run() {
  const auto traces = LoadRegistry(0.5);

  SweepConfig config;
  config.policies = {"lru", "fifo", "fifo-reinsertion", "clock2"};
  config.size_fractions = {0.001, 0.10};
  config.num_threads = SweepThreads();
  const auto points = RunSweep(traces, config);

  const auto datasets = Table1Datasets();
  for (const double fraction : config.size_fractions) {
    std::cout << "\nFigure 2, cache size = "
              << TablePrinter::FmtPercent(fraction, 1)
              << " of unique objects: fraction of traces where the LP-FIFO "
                 "algorithm has a lower miss ratio than LRU\n";
    TablePrinter table(
        {"dataset", "class", "fifo-reinsertion beats lru", "clock2 beats lru"});
    int fr_wins_datasets = 0;
    int c2_wins_datasets = 0;
    for (const auto& spec : datasets) {
      const double fr_win = WinFraction(points, "fifo-reinsertion", "lru",
                                        fraction, spec.name);
      const double c2_win =
          WinFraction(points, "clock2", "lru", fraction, spec.name);
      fr_wins_datasets += fr_win > 0.5 ? 1 : 0;
      c2_wins_datasets += c2_win > 0.5 ? 1 : 0;
      table.AddRow({spec.name, WorkloadClassName(spec.cls),
                    TablePrinter::FmtPercent(fr_win, 0),
                    TablePrinter::FmtPercent(c2_win, 0)});
    }
    for (const int cls : {0, 1}) {
      const char* label = cls == 0 ? "ALL BLOCK" : "ALL WEB";
      table.AddRow({label, "-",
                    TablePrinter::FmtPercent(
                        WinFraction(points, "fifo-reinsertion", "lru", fraction,
                                    "", cls),
                        0),
                    TablePrinter::FmtPercent(
                        WinFraction(points, "clock2", "lru", fraction, "", cls),
                        0)});
    }
    table.Print(std::cout);
    table.MaybeExportCsv("fig2_wins_" + TablePrinter::Fmt(fraction, 3));
    std::cout << "datasets favoring fifo-reinsertion: " << fr_wins_datasets
              << "/10 (paper: 9/10 small, 7/10 large); clock2: "
              << c2_wins_datasets << "/10 (paper: 10/10 small, 9/10 large)\n";
  }

  // The second-bit effect (§3): on the high-reuse KV datasets "most objects
  // are accessed more than once, and using one bit to track object access is
  // insufficient" — 2-bit CLOCK should beat FIFO-Reinsertion most clearly
  // there.
  std::cout << "\nSecond-bit effect: fraction of traces where clock2 beats "
               "fifo-reinsertion\n";
  TablePrinter bit_table({"dataset", "class", "small (0.1%)", "large (10%)"});
  for (const auto& spec : datasets) {
    bit_table.AddRow(
        {spec.name, WorkloadClassName(spec.cls),
         TablePrinter::FmtPercent(
             WinFraction(points, "clock2", "fifo-reinsertion", 0.001,
                         spec.name),
             0),
         TablePrinter::FmtPercent(
             WinFraction(points, "clock2", "fifo-reinsertion", 0.10, spec.name),
             0)});
  }
  bit_table.Print(std::cout);
  bit_table.MaybeExportCsv("fig2_second_bit");

  // Context: mean miss ratios, to show LP closes FIFO's gap to LRU.
  std::cout << "\nMean miss ratio across all traces (context)\n";
  TablePrinter means({"policy", "small (0.1%)", "large (10%)"});
  for (const std::string& policy :
       {std::string("fifo"), std::string("lru"), std::string("fifo-reinsertion"),
        std::string("clock2")}) {
    double sum_small = 0.0;
    double sum_large = 0.0;
    size_t n_small = 0;
    size_t n_large = 0;
    for (const auto& point : points) {
      if (point.policy != policy) {
        continue;
      }
      if (point.size_fraction == 0.001) {
        sum_small += point.miss_ratio;
        ++n_small;
      } else {
        sum_large += point.miss_ratio;
        ++n_large;
      }
    }
    means.AddRow({policy, TablePrinter::Fmt(sum_small / n_small, 4),
                  TablePrinter::Fmt(sum_large / n_large, 4)});
  }
  means.Print(std::cout);
  means.MaybeExportCsv("fig2_mean_miss_ratios");
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
