// Figure 5: Quick Demotion enhances state-of-the-art algorithms.
//
// All registry traces × {small 0.1%, large 10%} × {FIFO, the five SOTA
// algorithms, their QD-enhanced versions, QD-LP-FIFO}. The paper reports
// each algorithm's miss-ratio reduction *from FIFO*, as percentile curves,
// split block/web × small/large. Claims to reproduce:
//   * QD-X is at or above X on almost all percentiles;
//   * QD gains are larger at the large cache size and on web workloads;
//   * QD-LP-FIFO is competitive with (or better than) the SOTA algorithms;
//   * mean QD-vs-base reduction is a few percent, with large maxima
//     (paper: QD-ARC up to 59.8%, mean across workloads ~1.5%; QD-LIRS up to
//     49.6%, mean 2.2%; QD-LeCaR up to 58.8%, mean 4.5%).

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/sweep.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

const std::vector<std::string> kSota = {"arc", "lirs", "cacheus", "lecar",
                                        "lhd"};

int Run() {
  const auto traces = LoadRegistry(0.35);

  SweepConfig config;
  config.policies = {"fifo"};
  for (const auto& base : kSota) {
    config.policies.push_back(base);
    config.policies.push_back("qd-" + base);
  }
  config.policies.push_back("qd-lp-fifo");
  config.size_fractions = {0.001, 0.10};
  config.num_threads = SweepThreads();
  const auto points = RunSweep(traces, config);

  const auto percentile_row = [&](const std::string& policy, double fraction,
                                  int cls) {
    const auto reductions =
        ReductionsVsBaseline(points, policy, "fifo", fraction, cls);
    PercentileSummary summary;
    summary.AddAll(reductions);
    return std::vector<std::string>{
        policy,
        TablePrinter::FmtPercent(summary.Quantile(0.10), 1),
        TablePrinter::FmtPercent(summary.Quantile(0.25), 1),
        TablePrinter::FmtPercent(summary.Median(), 1),
        TablePrinter::FmtPercent(summary.Mean(), 1),
        TablePrinter::FmtPercent(summary.Quantile(0.75), 1),
        TablePrinter::FmtPercent(summary.Quantile(0.90), 1),
    };
  };

  for (const double fraction : config.size_fractions) {
    for (const int cls : {0, 1}) {
      std::cout << "\nFigure 5 — " << (cls == 0 ? "block" : "web")
                << " workloads, cache = "
                << TablePrinter::FmtPercent(fraction, 1)
                << " of objects: miss-ratio reduction from FIFO "
                   "(percentiles across traces)\n";
      TablePrinter table({"policy", "P10", "P25", "P50", "mean", "P75", "P90"});
      for (const auto& base : kSota) {
        table.AddRow(percentile_row(base, fraction, cls));
        table.AddRow(percentile_row("qd-" + base, fraction, cls));
      }
      table.AddRow(percentile_row("qd-lp-fifo", fraction, cls));
      table.Print(std::cout);
      table.MaybeExportCsv("fig5_" + std::string(cls == 0 ? "block" : "web") + "_" + TablePrinter::Fmt(fraction, 3));
    }
  }

  // Direct QD-vs-base reductions (the §4 headline numbers).
  std::cout << "\nQD-enhanced vs base algorithm: miss-ratio reduction "
               "(mr_base - mr_qd) / mr_base, across all traces and both "
               "sizes\n";
  TablePrinter headline({"pair", "mean", "max", "traces improved"});
  for (const auto& base : kSota) {
    StreamingStats stats;
    size_t improved = 0;
    size_t total = 0;
    for (const double fraction : config.size_fractions) {
      const auto reductions =
          ReductionsVsBaseline(points, "qd-" + base, base, fraction);
      for (const double r : reductions) {
        stats.Add(r);
        ++total;
        improved += r > 0.0 ? 1 : 0;
      }
    }
    headline.AddRow({"qd-" + base + " vs " + base,
                     TablePrinter::FmtPercent(stats.mean(), 2),
                     TablePrinter::FmtPercent(stats.max(), 1),
                     std::to_string(improved) + "/" + std::to_string(total)});
  }
  // QD-LP-FIFO vs the SOTA algorithms (the paper: reduces LIRS by 1.6% and
  // LeCaR by 4.3% on average).
  for (const auto& base : kSota) {
    StreamingStats stats;
    for (const double fraction : config.size_fractions) {
      const auto reductions =
          ReductionsVsBaseline(points, "qd-lp-fifo", base, fraction);
      for (const double r : reductions) {
        stats.Add(r);
      }
    }
    headline.AddRow({"qd-lp-fifo vs " + base,
                     TablePrinter::FmtPercent(stats.mean(), 2),
                     TablePrinter::FmtPercent(stats.max(), 1), "-"});
  }
  headline.Print(std::cout);
  headline.MaybeExportCsv("fig5_headline");
  std::cout << "Paper reference: QD-ARC mean 1.5% / max 59.8%; QD-LIRS 2.2% / "
               "49.6%; QD-LeCaR 4.5% / 58.8%; QD-LP-FIFO beats LIRS by 1.6% "
               "and LeCaR by 4.3% on average.\n";
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
