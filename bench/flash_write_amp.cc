// §2 flash-friendliness: miss ratio vs device write amplification.
//
// "FIFO is always the first choice when implementing a flash cache because
// it does not incur write amplification." This harness replays block- and
// web-like workloads through the log-structured flash model and prints the
// two-axis trade-off for FIFO / 1-bit CLOCK / 2-bit CLOCK / QD-LP-FIFO /
// exact LRU à la RIPQ (sequential log, retained objects rewritten per lap) /
// LRU with greedy hole-collecting GC. Expected shape: FIFO pins WA at 1.0
// with the worst miss ratio; RIPQ-LRU pays the most flash writes; the LP/QD
// designs take most of LRU's miss-ratio win at a fraction of its write
// cost. (The greedy-GC LRU is the honest nuance: with a full RAM index and
// 25% over-provisioning its WA is modest — but it gives up sequential-only
// writes, which is itself a flash-endurance cost the model does not price.)

#include <iostream>
#include <memory>
#include <vector>

#include "src/flash/flash_model.h"
#include "src/trace/registry.h"
#include "src/util/env.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

void RunOne(const std::string& label, const Trace& trace) {
  const size_t capacity = std::max<size_t>(
      100, static_cast<size_t>(trace.num_objects / 10));  // the 10% point
  const size_t segment = std::max<size_t>(10, capacity / 20);
  std::cout << "\n=== " << label << " (" << trace.requests.size()
            << " requests, " << trace.num_objects << " objects, cache "
            << capacity << ", segment " << segment << ") ===\n";

  std::vector<std::unique_ptr<FlashCache>> caches;
  caches.push_back(std::make_unique<LogFlashCache>(capacity, segment, 0));
  caches.push_back(std::make_unique<LogFlashCache>(capacity, segment, 1));
  caches.push_back(std::make_unique<LogFlashCache>(capacity, segment, 2));
  caches.push_back(std::make_unique<QdLpFlashCache>(capacity, segment));
  caches.push_back(std::make_unique<RipqLruFlashCache>(capacity, segment));
  caches.push_back(std::make_unique<LruFlashCache>(capacity, segment));

  TablePrinter table({"design", "miss ratio", "write amp", "flash writes(k)",
                      "segments erased"});
  for (auto& cache : caches) {
    for (const ObjectId id : trace.requests) {
      cache->Access(id);
    }
    const FlashStats& stats = cache->stats();
    table.AddRow({cache->name(), TablePrinter::Fmt(stats.miss_ratio(), 4),
                  TablePrinter::Fmt(stats.write_amplification(), 3),
                  std::to_string(stats.flash_writes / 1000),
                  std::to_string(stats.segments_erased)});
  }
  table.Print(std::cout);
  table.MaybeExportCsv("flash_" + label.substr(0, label.find(' ')));
}

int Run() {
  const double scale = GetEnvDouble("QDLP_SCALE", 1.0);
  const auto specs = Table1Datasets();
  RunOne("block (msr-like)", MakeTrace(specs[0], 1, scale));
  RunOne("web (cdn-like)", MakeTrace(specs[3], 1, scale));
  std::cout << "\n§2's argument quantified: LRU's eager promotion turns into "
               "GC rewrites on flash; the FIFO family's lazy promotion is "
               "(at most) one re-append per retained object, and quick "
               "demotion drops dead objects with their segment for free.\n";
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
