// Extension study: the algorithms this paper spawned.
//
// §5 envisions "future eviction algorithms designed like building a LEGO":
// S3-FIFO (three FIFO queues) and SIEVE (single queue, in-place sieving) are
// exactly that. Compare them against QD-LP-FIFO, the LP-only and QD-only
// pieces, and the strongest conventional baselines, as mean miss-ratio
// reduction from FIFO across the registry.

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/sweep.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

int Run() {
  const auto traces = LoadRegistry(0.2);

  SweepConfig config;
  config.policies = {"fifo",     "lru",  "fifo-reinsertion", "clock2",
                     "clockpro", "arc",  "lirs",             "qd-lp-fifo",
                     "s3fifo",   "sieve", "2q",              "slru",
                     "hyperbolic"};
  config.size_fractions = {0.001, 0.10};
  config.num_threads = SweepThreads();
  const auto points = RunSweep(traces, config);

  for (const double fraction : config.size_fractions) {
    std::cout << "\nMean miss-ratio reduction from FIFO, cache = "
              << TablePrinter::FmtPercent(fraction, 1)
              << " of objects (block / web / all traces)\n";
    TablePrinter table({"policy", "block", "web", "all"});
    for (const auto& policy : config.policies) {
      if (policy == "fifo") {
        continue;
      }
      const auto mean_of = [&](int cls) {
        StreamingStats stats;
        for (const double r :
             ReductionsVsBaseline(points, policy, "fifo", fraction, cls)) {
          stats.Add(r);
        }
        return stats.mean();
      };
      table.AddRow({policy, TablePrinter::FmtPercent(mean_of(0), 1),
                    TablePrinter::FmtPercent(mean_of(1), 1),
                    TablePrinter::FmtPercent(mean_of(-1), 1)});
    }
    table.Print(std::cout);
    table.MaybeExportCsv("extensions_" + TablePrinter::Fmt(fraction, 3));
  }
  std::cout << "\nShape check: qd-lp-fifo, s3fifo and sieve should land at or "
               "above the conventional baselines, with the FIFO-only designs "
               "(s3fifo, sieve, qd-lp-fifo) clustered together.\n";
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
