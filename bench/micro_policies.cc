// Microbenchmark: single-threaded cost per Access() for each policy.
//
// Quantifies §2's metadata argument: FIFO/CLOCK hits touch at most one
// counter, LRU hits splice a list node (six pointer writes), and the
// adaptive SOTA policies do strictly more work than either. Run over a Zipf
// workload sized so the cache holds ~20% of objects (mixed hits/misses).
//
// Besides the console table, results are written to BENCH_throughput.json
// (path overridable via QDLP_BENCH_JSON) with a bytes/object column
// measured by replaying the bench trace through each policy that ran; see
// docs/PERFORMANCE.md.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_json_reporter.h"
#include "src/core/policy_factory.h"
#include "src/trace/generators.h"

namespace qdlp {
namespace {

const Trace& BenchTrace() {
  static const Trace trace = [] {
    ZipfTraceConfig config;
    config.num_requests = 200000;
    config.num_objects = 50000;
    config.skew = 0.9;
    config.seed = 777;
    return GenerateZipf(config);
  }();
  return trace;
}

void BM_PolicyAccess(benchmark::State& state, const std::string& name) {
  const Trace& trace = BenchTrace();
  constexpr size_t kCapacity = 10000;  // 20% of objects
  auto policy = MakePolicy(name, kCapacity, &trace.requests);
  size_t i = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    // Belady consumes the trace in order and cannot wrap; rebuild when the
    // trace is exhausted (excluded from timing).
    if (i == trace.requests.size()) {
      state.PauseTiming();
      policy = MakePolicy(name, kCapacity, &trace.requests);
      i = 0;
      state.ResumeTiming();
    }
    hits += policy->Access(trace.requests[i++]) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void RegisterAll() {
  for (const std::string name :
       {"fifo", "fifo-reinsertion", "clock2", "lru", "slru", "2q", "arc",
        "lirs", "lecar", "cacheus", "lhd", "hyperbolic", "qd-lp-fifo",
        "s3fifo", "sieve"}) {
    benchmark::RegisterBenchmark(("BM_Access/" + name).c_str(),
                                 [name](benchmark::State& state) {
                                   BM_PolicyAccess(state, name);
                                 });
  }
}

// Steady-state instrumentation: replay the bench trace once and record the
// policy's metadata bytes per capacity slot (0 for policies that don't
// implement ApproxMetadataBytes()) plus its full Stats() telemetry.
void MeasureReplayInstrumentation(BenchJsonResult* result) {
  const Trace& trace = BenchTrace();
  constexpr size_t kCapacity = 10000;
  auto policy = MakePolicy(result->policy, kCapacity, &trace.requests);
  for (const ObjectId id : trace.requests) {
    policy->Access(id);
  }
  result->bytes_per_object =
      static_cast<double>(policy->ApproxMetadataBytes()) /
      static_cast<double>(kCapacity);
  result->stats = policy->Stats();
  result->has_stats = true;
  result->hit_ratio = result->stats.hit_ratio();
}

}  // namespace
}  // namespace qdlp

int main(int argc, char** argv) {
  qdlp::RegisterAll();
  benchmark::Initialize(&argc, argv);
  qdlp::JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  for (qdlp::BenchJsonResult& result : reporter.results()) {
    qdlp::MeasureReplayInstrumentation(&result);
  }
  const std::string json_path = qdlp::BenchJsonOutputPath();
  if (qdlp::WriteBenchJson(json_path, "micro_policies", reporter.results())) {
    std::fprintf(stderr, "[qdlp] wrote %s (%zu results)\n", json_path.c_str(),
                 reporter.results().size());
  }
  return 0;
}
