// Microbenchmark: single-threaded cost per Access() for each policy.
//
// Quantifies §2's metadata argument: FIFO/CLOCK hits touch at most one
// counter, LRU hits splice a list node (six pointer writes), and the
// adaptive SOTA policies do strictly more work than either. Run over a Zipf
// workload sized so the cache holds ~20% of objects (mixed hits/misses).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/trace/generators.h"

namespace qdlp {
namespace {

const Trace& BenchTrace() {
  static const Trace trace = [] {
    ZipfTraceConfig config;
    config.num_requests = 200000;
    config.num_objects = 50000;
    config.skew = 0.9;
    config.seed = 777;
    return GenerateZipf(config);
  }();
  return trace;
}

void BM_PolicyAccess(benchmark::State& state, const std::string& name) {
  const Trace& trace = BenchTrace();
  constexpr size_t kCapacity = 10000;  // 20% of objects
  auto policy = MakePolicy(name, kCapacity, &trace.requests);
  size_t i = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    // Belady consumes the trace in order and cannot wrap; rebuild when the
    // trace is exhausted (excluded from timing).
    if (i == trace.requests.size()) {
      state.PauseTiming();
      policy = MakePolicy(name, kCapacity, &trace.requests);
      i = 0;
      state.ResumeTiming();
    }
    hits += policy->Access(trace.requests[i++]) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void RegisterAll() {
  for (const std::string name :
       {"fifo", "fifo-reinsertion", "clock2", "lru", "slru", "2q", "arc",
        "lirs", "lecar", "cacheus", "lhd", "hyperbolic", "qd-lp-fifo",
        "s3fifo", "sieve"}) {
    benchmark::RegisterBenchmark(("BM_Access/" + name).c_str(),
                                 [name](benchmark::State& state) {
                                   BM_PolicyAccess(state, name);
                                 });
  }
}

}  // namespace
}  // namespace qdlp

int main(int argc, char** argv) {
  qdlp::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
