// Ablation: §5's "Why X is not better than QD-LP-FIFO" claims about
// adaptive algorithms.
//
//   1. "For ARC, we observe that manually limiting the queue size and
//      slowing down the queue size adjustment often reduce miss ratios."
//      -> arc vs arc-slow (0.25x adaptation) vs arc-fixed (p pinned to 10%).
//   2. "Replacing the LRU queues in ARC with FIFO-Reinsertion also reduces
//      the miss ratio." -> arc vs car (CLOCK-based ARC).
//   3. Admission-style QD (wtinylfu), frequency-history designs (mq, lru2)
//      and the QD construction, side by side.

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/sweep.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

int Run() {
  const auto traces = LoadRegistry(0.2);

  SweepConfig config;
  config.policies = {"fifo", "arc",      "arc-slow", "arc-fixed", "car",
                     "mq",   "lru2",     "wtinylfu", "qd-arc",    "qd-lp-fifo"};
  config.size_fractions = {0.001, 0.10};
  config.num_threads = SweepThreads();
  const auto points = RunSweep(traces, config);

  for (const double fraction : config.size_fractions) {
    std::cout << "\nAdaptive-algorithm ablation, cache = "
              << TablePrinter::FmtPercent(fraction, 1)
              << " of objects: mean miss-ratio reduction from FIFO "
                 "(block / web / all)\n";
    TablePrinter table({"policy", "block", "web", "all"});
    for (const auto& policy : config.policies) {
      if (policy == "fifo") {
        continue;
      }
      const auto mean_of = [&](int cls) {
        StreamingStats stats;
        for (const double r :
             ReductionsVsBaseline(points, policy, "fifo", fraction, cls)) {
          stats.Add(r);
        }
        return stats.mean();
      };
      table.AddRow({policy, TablePrinter::FmtPercent(mean_of(0), 2),
                    TablePrinter::FmtPercent(mean_of(1), 2),
                    TablePrinter::FmtPercent(mean_of(-1), 2)});
    }
    table.Print(std::cout);

    // Head-to-head win fractions for the two §5 claims.
    TablePrinter duels({"claim", "win fraction"});
    duels.AddRow({"arc-slow beats arc",
                  TablePrinter::FmtPercent(
                      WinFraction(points, "arc-slow", "arc", fraction), 0)});
    duels.AddRow({"arc-fixed beats arc",
                  TablePrinter::FmtPercent(
                      WinFraction(points, "arc-fixed", "arc", fraction), 0)});
    duels.AddRow({"car (clock-ARC) beats arc",
                  TablePrinter::FmtPercent(
                      WinFraction(points, "car", "arc", fraction), 0)});
    duels.AddRow({"qd-lp-fifo beats arc",
                  TablePrinter::FmtPercent(
                      WinFraction(points, "qd-lp-fifo", "arc", fraction), 0)});
    duels.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
