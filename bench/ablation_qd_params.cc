// Ablation: the QD design choices called out in §4/§5.
//
//  * probationary FIFO share — the paper fixes 10% and notes previous works
//    used much larger (50%) or adaptive sizes; sweep {2,5,10,20,50}%.
//  * ghost size — the paper sets it to the main cache's entry count; sweep
//    {0.25x, 0.5x, 1x, 2x}.
//  * CLOCK bits in the LP main cache — sweep {1,2,3} (the paper uses 2 after
//    observing 1 bit is not enough on high-reuse workloads).
//
// Reported as mean miss ratio across a registry subset at both paper sizes.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

double MeanMissRatio(const std::vector<Trace>& traces, double fraction,
                     const QdOptions& options, const std::string& base) {
  StreamingStats stats;
  for (const Trace& trace : traces) {
    const size_t cache_size = CacheSizeForFraction(trace, fraction);
    auto policy = MakeQdPolicy(base, cache_size, options);
    stats.Add(ReplayTrace(*policy, trace).miss_ratio());
  }
  return stats.mean();
}

int Run() {
  const auto traces = LoadRegistry(0.15);
  const std::vector<double> fractions = {0.001, 0.10};

  std::cout << "Ablation A: probationary FIFO share (QD-LP-FIFO, ghost = 1x "
               "main)\n";
  TablePrinter a({"probation share", "mean mr @0.1%", "mean mr @10%"});
  for (const double probation : {0.02, 0.05, 0.10, 0.20, 0.50}) {
    QdOptions options;
    options.probation_fraction = probation;
    a.AddRow({TablePrinter::FmtPercent(probation, 0),
              TablePrinter::Fmt(MeanMissRatio(traces, 0.001, options, "clock2"), 4),
              TablePrinter::Fmt(MeanMissRatio(traces, 0.10, options, "clock2"), 4)});
  }
  a.Print(std::cout);
  a.MaybeExportCsv("ablation_probation_share");

  std::cout << "\nAblation B: ghost queue size (QD-LP-FIFO, probation = "
               "10%)\n";
  TablePrinter b({"ghost factor", "mean mr @0.1%", "mean mr @10%"});
  for (const double ghost : {0.25, 0.5, 1.0, 2.0}) {
    QdOptions options;
    options.ghost_factor = ghost;
    b.AddRow({TablePrinter::Fmt(ghost, 2) + "x main",
              TablePrinter::Fmt(MeanMissRatio(traces, 0.001, options, "clock2"), 4),
              TablePrinter::Fmt(MeanMissRatio(traces, 0.10, options, "clock2"), 4)});
  }
  b.Print(std::cout);
  b.MaybeExportCsv("ablation_ghost_size");

  std::cout << "\nAblation C: CLOCK bits in the LP main cache (QD wrapper "
               "defaults)\n";
  TablePrinter c({"main policy", "mean mr @0.1%", "mean mr @10%"});
  for (const std::string base : {"fifo", "clock1", "clock2", "clock3"}) {
    c.AddRow({base,
              TablePrinter::Fmt(MeanMissRatio(traces, 0.001, QdOptions{}, base), 4),
              TablePrinter::Fmt(MeanMissRatio(traces, 0.10, QdOptions{}, base), 4)});
  }
  c.Print(std::cout);
  c.MaybeExportCsv("ablation_clock_bits");
  return 0;
}

}  // namespace
}  // namespace qdlp

int main() { return qdlp::Run(); }
