#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on throughput regression.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.15]
        [--require NAME:MIN ...] [--check-stats]

Both files must be schema_version 1 outputs of the bench binaries (see
bench/bench_json.h). Results are keyed by the full benchmark name (which
encodes policy, args, and thread count). For every benchmark present in
BOTH files, the candidate's ops_per_sec must not fall more than
--threshold (default 15%) below the baseline's. Benchmarks present in only
one file are reported but never fail the run — adding or retiring a
benchmark family is not a regression.

--require NAME:MIN (repeatable) additionally asserts an absolute floor:
the candidate's ops_per_sec for NAME must be >= MIN. Intended for
machine-independent rows such as sweep_throughput's "sweep/speedup" ratio,
where a hard floor is meaningful on any runner; a required name missing
from the candidate is a failure.

--check-stats validates the candidate's telemetry: every result row must
carry a "stats" block (the cache's own Stats() counters, see
docs/OBSERVABILITY.md) with all integer counter fields present,
hits + misses == requests, and a nonzero request count. This is the CI
bench-smoke guard against a bench binary silently losing its stats wiring.

Exit status: 0 = no regression, 1 = at least one regression or unmet
--require floor, 2 = bad input.
"""

import argparse
import json
import sys

# Keep in sync with BenchStatsFields() in bench/bench_json.h.
STATS_FIELDS = (
    "requests", "hits", "misses", "inserts", "evictions", "promotions",
    "demotions", "ghost_hits", "size", "probation_size", "main_size",
    "ghost_size",
)


def check_stats_block(name, row):
    """Returns a list of problems with the row's "stats" block."""
    stats = row.get("stats")
    if not isinstance(stats, dict):
        return [f"{name}: missing stats block"]
    problems = []
    for field in STATS_FIELDS:
        value = stats.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(
                f"{name}: stats.{field} is {value!r}, expected a"
                " non-negative integer")
    if problems:
        return problems
    if stats["requests"] == 0:
        problems.append(f"{name}: stats.requests is 0 (nothing measured)")
    if stats["hits"] + stats["misses"] != stats["requests"]:
        problems.append(
            f"{name}: stats.hits + stats.misses != stats.requests "
            f"({stats['hits']} + {stats['misses']} != {stats['requests']})")
    return problems


def load_results(path):
    """Returns {benchmark_name: result_dict} from a bench JSON file."""
    def bad_input(message):
        print(f"error: {message}", file=sys.stderr)
        raise SystemExit(2)

    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        bad_input(f"cannot read {path}: {err}")
    if doc.get("schema_version") != 1:
        bad_input(f"{path}: unsupported schema_version "
                  f"{doc.get('schema_version')!r} (expected 1)")
    results = {}
    for row in doc.get("results", []):
        name = row.get("benchmark")
        if not name or not isinstance(row.get("ops_per_sec"), (int, float)):
            bad_input(f"{path}: malformed result row: {row!r}")
        results[name] = row
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; fail on ops/s regression.")
    parser.add_argument("baseline", help="baseline BENCH JSON")
    parser.add_argument("candidate", help="candidate BENCH JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="max tolerated fractional ops/s drop (default 0.15 = 15%%)")
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME:MIN",
        help="absolute ops_per_sec floor for one benchmark in the candidate"
             " (repeatable)")
    parser.add_argument(
        "--check-stats", action="store_true",
        help="require a well-formed stats block on every candidate row")
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must be in [0, 1)")
    floors = {}
    for spec in args.require:
        name, sep, minimum = spec.rpartition(":")
        try:
            floors[name] = float(minimum)
        except ValueError:
            sep = ""
        if not sep or not name:
            parser.error(f"--require expects NAME:MIN, got {spec!r}")

    baseline = load_results(args.baseline)
    candidate = load_results(args.candidate)

    common = sorted(set(baseline) & set(candidate))
    only_base = sorted(set(baseline) - set(candidate))
    only_cand = sorted(set(candidate) - set(baseline))
    if not common:
        print("error: no benchmarks in common between "
              f"{args.baseline} and {args.candidate}", file=sys.stderr)
        return 2

    regressions = []
    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'baseline':>14}  {'candidate':>14}  "
          f"{'delta':>8}")
    for name in common:
        base_ops = float(baseline[name]["ops_per_sec"])
        cand_ops = float(candidate[name]["ops_per_sec"])
        if base_ops <= 0.0:
            delta_str, regressed = "n/a", False
        else:
            delta = cand_ops / base_ops - 1.0
            delta_str = f"{delta:+8.1%}"
            regressed = delta < -args.threshold
        flag = "  << REGRESSION" if regressed else ""
        print(f"{name:<{width}}  {base_ops:>14,.0f}  {cand_ops:>14,.0f}  "
              f"{delta_str}{flag}")
        if regressed:
            regressions.append(name)

    for name in only_base:
        print(f"note: {name} only in baseline (removed?)")
    for name in only_cand:
        print(f"note: {name} only in candidate (new)")

    stats_problems = []
    if args.check_stats:
        for name in sorted(candidate):
            stats_problems.extend(check_stats_block(name, candidate[name]))
        if not stats_problems:
            print(f"stats: {len(candidate)} candidate row(s) carry a "
                  "consistent stats block")

    unmet = []
    for name, minimum in sorted(floors.items()):
        if name not in candidate:
            unmet.append(f"{name}: missing from candidate (floor {minimum:g})")
            continue
        ops = float(candidate[name]["ops_per_sec"])
        status = "ok" if ops >= minimum else "UNMET"
        print(f"floor: {name} >= {minimum:g}: {ops:g} ({status})")
        if ops < minimum:
            unmet.append(f"{name}: {ops:g} < floor {minimum:g}")

    if regressions or unmet or stats_problems:
        if regressions:
            print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
                  f"than {args.threshold:.0%}:", file=sys.stderr)
            for name in regressions:
                print(f"  {name}", file=sys.stderr)
        if unmet:
            print(f"\nFAIL: {len(unmet)} --require floor(s) unmet:",
                  file=sys.stderr)
            for line in unmet:
                print(f"  {line}", file=sys.stderr)
        if stats_problems:
            print(f"\nFAIL: {len(stats_problems)} stats block problem(s):",
                  file=sys.stderr)
            for line in stats_problems:
                print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(common)} benchmark(s) within {args.threshold:.0%} of "
          "baseline"
          + (f", {len(floors)} floor(s) met." if floors else ".")
          + (" Stats blocks consistent." if args.check_stats else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
