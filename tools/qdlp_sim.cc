// qdlp_sim — command-line cache simulator.
//
// Replays a trace (file or synthetic workload) through any set of policies
// at a ladder of cache sizes and prints a miss-ratio grid.
//
//   qdlp_sim --workload zipf,objects=50000,skew=1.0,requests=500000 \
//            --policies lru,arc,qd-lp-fifo,s3fifo --sizes 0.001,0.01,0.1
//   qdlp_sim --trace prod.oracleGeneral --policies lru,sieve --sizes 0.05
//
// Options:
//   --trace FILE          .bin (qdlp), .csv, or .oracleGeneral by extension
//   --workload SPEC       zipf | web | block | kv | phase, with key=value
//                         parameters (see --help output for keys)
//   --policies LIST       comma-separated policy names (see --list-policies)
//   --sizes LIST          cache sizes as fractions of unique objects
//   --objects LIST        cache sizes as absolute object counts
//   --threads N           sweep threads (default: hardware concurrency)
//   --csv FILE            also write the result grid as CSV
//   --stats               print trace statistics and exit
//   --mrc                 one-pass exact LRU miss-ratio curve (Mattson)
//   --mrc-sample R        SHARDS-sampled MRC at rate R instead of exact
//   --sized-web SPEC      variable-object-size mode: key=value params
//                         (requests, objects, skew, wonders, seed); sizes
//                         are byte fractions and policies come from the
//                         sized registry (sized-lru, gdsf, ...)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/mrc.h"
#include "src/sim/simulator.h"
#include "src/sim/stack_distance.h"
#include "src/sim/sweep.h"
#include "src/sized/sized_factory.h"
#include "src/sized/sized_trace.h"
#include "src/trace/generators.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload_spec.h"
#include "src/util/table.h"

namespace qdlp {
namespace {

using ParamMap = std::unordered_map<std::string, std::string>;

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> parts;
  std::stringstream stream(value);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

double ParamDouble(const ParamMap& params, const std::string& key,
                   double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : std::atof(it->second.c_str());
}

uint64_t ParamInt(const ParamMap& params, const std::string& key,
                  uint64_t fallback) {
  const auto it = params.find(key);
  return it == params.end()
             ? fallback
             : static_cast<uint64_t>(std::strtoull(it->second.c_str(), nullptr, 10));
}

std::optional<Trace> LoadTrace(const std::string& path) {
  const auto ends_with = [&](const char* suffix) {
    const size_t len = std::strlen(suffix);
    return path.size() >= len && path.compare(path.size() - len, len, suffix) == 0;
  };
  if (ends_with(".bin")) {
    return ReadTraceBinary(path);
  }
  if (ends_with(".oracleGeneral")) {
    return ReadTraceOracleGeneral(path);
  }
  return ReadTraceCsv(path);
}

// Variable-size mode: its own generator, factory, and (object + byte) grid.
int RunSized(const std::string& spec, std::vector<std::string> policies,
             std::vector<double> fractions, const std::string& csv_path) {
  const auto parts = SplitCommas(spec);
  ParamMap params;
  for (const auto& part : parts) {
    const size_t eq = part.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: sized-web parameter '%s' is not key=value\n",
                   part.c_str());
      return 2;
    }
    params[part.substr(0, eq)] = part.substr(eq + 1);
  }
  SizedWebConfig config;
  config.num_requests = ParamInt(params, "requests", 200000);
  config.num_objects = ParamInt(params, "objects", 20000);
  config.skew = ParamDouble(params, "skew", 0.9);
  config.one_hit_wonder_fraction = ParamDouble(params, "wonders", 0.15);
  config.seed = ParamInt(params, "seed", 1);
  const SizedTrace trace = GenerateSizedWeb(config);
  std::printf("sized trace: %zu requests, %llu objects, %llu MiB distinct\n",
              trace.requests.size(),
              static_cast<unsigned long long>(trace.num_objects),
              static_cast<unsigned long long>(trace.total_object_bytes >> 20));
  if (policies.empty()) {
    policies = KnownSizedPolicyNames();
  }
  if (fractions.empty()) {
    fractions = {0.01, 0.05, 0.20};
  }
  TablePrinter table({"policy", "byte budget", "object miss ratio",
                      "byte miss ratio"});
  for (const double fraction : fractions) {
    const uint64_t capacity = static_cast<uint64_t>(
        static_cast<double>(trace.total_object_bytes) * fraction);
    for (const auto& name : policies) {
      auto policy = MakeSizedPolicy(name, std::max<uint64_t>(1, capacity));
      if (policy == nullptr) {
        std::fprintf(stderr, "error: unknown sized policy '%s'; known:",
                     name.c_str());
        for (const auto& known : KnownSizedPolicyNames()) {
          std::fprintf(stderr, " %s", known.c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
      const SizedSimResult result = ReplaySizedTrace(*policy, trace);
      table.AddRow({name, TablePrinter::FmtPercent(fraction, 1),
                    TablePrinter::Fmt(result.object_miss_ratio(), 4),
                    TablePrinter::Fmt(result.byte_miss_ratio(), 4)});
    }
  }
  std::ostringstream rendered;
  table.Print(rendered);
  std::fputs(rendered.str().c_str(), stdout);
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (out) {
      table.WriteCsv(out);
    }
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--trace FILE | --workload SPEC) --policies LIST\n"
      "          [--sizes FRACTIONS] [--objects COUNTS] [--threads N]\n"
      "          [--csv FILE] [--stats] [--mrc | --mrc-sample R]\n"
      "          [--list-policies]\n"
      "workload SPECs: zipf|web|block|kv|phase with key=value params, e.g.\n"
      "  --workload zipf,objects=50000,skew=1.0,requests=500000,seed=7\n"
      "  --workload web,wonders=0.25    --workload block,scan=0.004\n"
      "  --workload phase,phase=8000\n",
      argv0);
  return 2;
}

int Run(int argc, char** argv) {
  std::string trace_path;
  std::string workload_spec;
  std::vector<std::string> policies;
  std::vector<double> fractions;
  std::vector<uint64_t> object_counts;
  std::string csv_path;
  size_t threads = 0;
  bool stats_only = false;
  bool mrc_mode = false;
  double mrc_sample_rate = 1.0;
  std::string sized_spec;
  bool sized_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      trace_path = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      workload_spec = v;
    } else if (arg == "--policies") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      policies = SplitCommas(v);
    } else if (arg == "--sizes") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      for (const auto& s : SplitCommas(v)) {
        fractions.push_back(std::atof(s.c_str()));
      }
    } else if (arg == "--objects") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      for (const auto& s : SplitCommas(v)) {
        object_counts.push_back(std::strtoull(s.c_str(), nullptr, 10));
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      csv_path = v;
    } else if (arg == "--stats") {
      stats_only = true;
    } else if (arg == "--mrc") {
      mrc_mode = true;
    } else if (arg == "--mrc-sample") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      mrc_mode = true;
      mrc_sample_rate = std::atof(v);
      if (mrc_sample_rate <= 0.0 || mrc_sample_rate > 1.0) {
        std::fprintf(stderr, "error: --mrc-sample must be in (0, 1]\n");
        return 2;
      }
    } else if (arg == "--sized-web") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      sized_spec = v;
      sized_mode = true;
    } else if (arg == "--list-policies") {
      for (const auto& name : KnownPolicyNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (sized_mode) {
    return RunSized(sized_spec, policies, fractions, csv_path);
  }
  if (trace_path.empty() == workload_spec.empty()) {
    std::fprintf(stderr, "error: give exactly one of --trace / --workload\n");
    return Usage(argv[0]);
  }

  std::string workload_error;
  std::optional<Trace> trace =
      trace_path.empty() ? BuildWorkload(workload_spec, &workload_error)
                         : LoadTrace(trace_path);
  if (!trace.has_value() || trace->requests.empty()) {
    if (!workload_error.empty()) {
      std::fprintf(stderr, "error: %s\n", workload_error.c_str());
    }
    std::fprintf(stderr, "error: could not obtain a non-empty trace\n");
    return 1;
  }

  const TraceStats stats = ComputeTraceStats(*trace);
  std::printf("trace: %llu requests, %llu objects, mean freq %.2f, one-hit "
              "%.1f%%, zipf alpha %.2f\n",
              static_cast<unsigned long long>(stats.num_requests),
              static_cast<unsigned long long>(stats.num_objects),
              stats.mean_frequency, stats.one_hit_wonder_ratio * 100.0,
              stats.zipf_alpha);
  if (stats_only) {
    return 0;
  }
  if (mrc_mode) {
    // One profiling pass instead of one simulation per size.
    if (fractions.empty() && object_counts.empty()) {
      fractions = DefaultMrcFractions();
    }
    for (const uint64_t count : object_counts) {
      fractions.push_back(static_cast<double>(count) /
                          static_cast<double>(trace->num_objects));
    }
    ShardsProfiler profiler(mrc_sample_rate);
    for (const ObjectId id : trace->requests) {
      profiler.Record(id);
    }
    TablePrinter table({"cache size", "objects", "lru miss ratio"});
    for (const double fraction : fractions) {
      const uint64_t cache_size = CacheSizeForFraction(*trace, fraction);
      table.AddRow({TablePrinter::FmtPercent(fraction, 2),
                    std::to_string(cache_size),
                    TablePrinter::Fmt(profiler.MissRatioAt(cache_size), 4)});
    }
    std::printf("LRU miss-ratio curve (%s, one pass)\n",
                mrc_sample_rate >= 1.0
                    ? "exact Mattson"
                    : "SHARDS-sampled");
    std::ostringstream rendered;
    table.Print(rendered);
    std::fputs(rendered.str().c_str(), stdout);
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (out) {
        table.WriteCsv(out);
      }
    }
    return 0;
  }
  if (policies.empty()) {
    std::fprintf(stderr, "error: --policies is required\n");
    return Usage(argv[0]);
  }
  for (const auto& policy : policies) {
    // Validate early so typos fail before a long run.
    if (MakePolicy(policy, 16, &trace->requests) == nullptr) {
      std::fprintf(stderr, "error: unknown policy '%s' (see --list-policies)\n",
                   policy.c_str());
      return 2;
    }
  }
  if (fractions.empty() && object_counts.empty()) {
    fractions = {0.001, 0.01, 0.10};
  }
  for (const uint64_t count : object_counts) {
    fractions.push_back(static_cast<double>(count) /
                        static_cast<double>(trace->num_objects));
  }

  SweepConfig config;
  config.policies = policies;
  config.size_fractions = fractions;
  config.num_threads = threads;
  std::vector<Trace> traces;
  traces.push_back(std::move(*trace));
  const auto points = RunSweep(traces, config);

  std::vector<std::string> header = {"cache size", "objects"};
  for (const auto& policy : policies) {
    header.push_back(policy);
  }
  TablePrinter table(header);
  for (const double fraction : fractions) {
    std::vector<std::string> row = {TablePrinter::FmtPercent(fraction, 2), ""};
    for (const auto& point : points) {
      if (point.size_fraction == fraction) {
        row[1] = std::to_string(point.cache_size);
        break;
      }
    }
    for (const auto& policy : policies) {
      for (const auto& point : points) {
        if (point.size_fraction == fraction && point.policy == policy) {
          row.push_back(TablePrinter::Fmt(point.miss_ratio, 4));
          break;
        }
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (out) {
      table.WriteCsv(out);
      std::printf("wrote %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace qdlp

int main(int argc, char** argv) { return qdlp::Run(argc, argv); }
