#!/usr/bin/env python3
"""Render cache-flow telemetry from a BENCH_*.json stats block.

Usage:
    tools/stats_report.py BENCH.json [--policy NAME]

Reads the "stats" blocks that the bench binaries embed per result row (the
caches' own CacheObservable::Stats() counters — see docs/OBSERVABILITY.md
and bench/bench_json.h for the schema) and renders the paper's §4 flow
picture for each cache:

  * hit ratio, and how the resident population splits across the
    probation/main regions at teardown;
  * promotion rate — of the objects that left probation, the fraction with
    proven reuse that were lazily promoted into the main region (the rest
    were quick-demoted to the ghost);
  * ghost-hit rate — the fraction of misses whose id the ghost remembered,
    i.e. how often quick demotion discarded an object the workload still
    wanted.

Rows without a stats block are listed and skipped (not every bench binary
instruments every row). --policy filters to rows whose policy label
contains NAME.

Exit status: 0 = report rendered (even if some rows were skipped),
2 = unreadable input or no stats blocks at all.
"""

import argparse
import json
import sys


def fmt_count(value):
    return f"{value:,}"


def fmt_ratio(numerator, denominator):
    if denominator == 0:
        return "    n/a"
    return f"{numerator / denominator:7.2%}"


def render_row(name, stats, out):
    requests = stats.get("requests", 0)
    hits = stats.get("hits", 0)
    misses = stats.get("misses", 0)
    promotions = stats.get("promotions", 0)
    demotions = stats.get("demotions", 0)
    ghost_hits = stats.get("ghost_hits", 0)
    size = stats.get("size", 0)
    probation = stats.get("probation_size", 0)
    main = stats.get("main_size", 0)
    ghost = stats.get("ghost_size", 0)

    out.append(f"{name}")
    out.append(f"  requests {fmt_count(requests)}  "
               f"hits {fmt_count(hits)} ({fmt_ratio(hits, requests).strip()})  "
               f"misses {fmt_count(misses)}")
    out.append(f"  inserts {fmt_count(stats.get('inserts', 0))}  "
               f"evictions {fmt_count(stats.get('evictions', 0))}  "
               f"resident {fmt_count(size)}")
    if probation or main or ghost:
        out.append(f"  occupancy: probation {fmt_count(probation)}  "
                   f"main {fmt_count(main)}  ghost {fmt_count(ghost)}")
    departures = promotions + demotions
    if departures:
        out.append(
            f"  probation flow: promoted {fmt_count(promotions)} "
            f"({fmt_ratio(promotions, departures).strip()})  "
            f"quick-demoted {fmt_count(demotions)} "
            f"({fmt_ratio(demotions, departures).strip()})")
    elif promotions:
        # Policies without a probation queue still report reinsertion-style
        # promotions (CLOCK second chances, LRU move-to-front).
        out.append(f"  promotions/reinsertions: {fmt_count(promotions)}")
    if ghost_hits or ghost:
        out.append(f"  ghost: hits {fmt_count(ghost_hits)} "
                   f"({fmt_ratio(ghost_hits, misses).strip()} of misses)")
    out.append("")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Render per-queue cache flow from a BENCH_*.json file.")
    parser.add_argument("bench_json", help="BENCH_*.json written by a bench")
    parser.add_argument(
        "--policy", default="",
        help="only rows whose policy label contains this substring")
    args = parser.parse_args(argv)

    try:
        with open(args.bench_json, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.bench_json}: {err}", file=sys.stderr)
        return 2

    rows = doc.get("results", [])
    if args.policy:
        rows = [r for r in rows if args.policy in r.get("policy", "")]

    out = []
    skipped = []
    for row in rows:
        name = row.get("benchmark", "?")
        stats = row.get("stats")
        if not isinstance(stats, dict):
            skipped.append(name)
            continue
        render_row(name, stats, out)

    if not out:
        print(f"error: no stats blocks in {args.bench_json}"
              + (f" matching --policy {args.policy!r}" if args.policy else ""),
              file=sys.stderr)
        return 2

    print(f"# cache flow report — {doc.get('binary', '?')} "
          f"({args.bench_json})\n")
    print("\n".join(out).rstrip())
    if skipped:
        print(f"\n({len(skipped)} row(s) without stats skipped: "
              + ", ".join(skipped[:5])
              + (", ..." if len(skipped) > 5 else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
