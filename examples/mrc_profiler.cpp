// Scenario: cache-capacity planning with miss-ratio curves.
//
// Three ways to get an LRU MRC, from most to least expensive:
//   1. simulate LRU once per candidate size          (what Fig 2/5 sweeps do)
//   2. one Mattson stack-distance pass, exact at ALL sizes
//   3. SHARDS: profile a 5% hashed sample of objects  (production-grade)
// This example runs all three on a web workload and prints the curves plus
// timings, demonstrating the src/sim profiling substrate.

#include <chrono>
#include <cstdio>
#include <vector>

#include "src/policies/lru.h"
#include "src/sim/simulator.h"
#include "src/sim/stack_distance.h"
#include "src/trace/generators.h"

int main() {
  using namespace qdlp;
  using Clock = std::chrono::steady_clock;

  ZipfTraceConfig config;
  config.num_requests = 400000;
  config.num_objects = 50000;
  config.skew = 0.85;
  config.seed = 31337;
  const Trace trace = GenerateZipf(config);
  std::printf("workload: %zu requests, %llu objects\n\n",
              trace.requests.size(),
              static_cast<unsigned long long>(trace.num_objects));

  const std::vector<uint64_t> sizes = {100,  500,   2000,  5000,
                                       10000, 20000, 40000};

  // 1. Direct simulation, one LRU run per size.
  const auto t0 = Clock::now();
  std::vector<double> direct;
  for (const uint64_t size : sizes) {
    LruPolicy lru(size);
    direct.push_back(ReplayTrace(lru, trace).miss_ratio());
  }
  const auto t1 = Clock::now();

  // 2. One exact Mattson pass.
  StackDistanceProfiler mattson;
  for (const ObjectId id : trace.requests) {
    mattson.Record(id);
  }
  const auto t2 = Clock::now();

  // 3. SHARDS with a 5% spatial sample.
  ShardsProfiler shards(0.05);
  for (const ObjectId id : trace.requests) {
    shards.Record(id);
  }
  const auto t3 = Clock::now();

  std::printf("%12s %12s %12s %12s\n", "cache size", "simulated", "mattson",
              "shards 5%");
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%12llu %12.4f %12.4f %12.4f\n",
                static_cast<unsigned long long>(sizes[i]), direct[i],
                mattson.MissRatioAt(sizes[i]), shards.MissRatioAt(sizes[i]));
  }

  const auto ms = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
  };
  std::printf(
      "\ntimings: %lld ms for %zu simulations, %lld ms for one exact pass, "
      "%lld ms for the 5%% sample\n",
      static_cast<long long>(ms(t0, t1)), sizes.size(),
      static_cast<long long>(ms(t1, t2)), static_cast<long long>(ms(t2, t3)));
  std::printf(
      "The Mattson column is exact (it must match 'simulated' to the digit);\n"
      "SHARDS trades a little accuracy for a ~20x cheaper pass.\n");
  return 0;
}
