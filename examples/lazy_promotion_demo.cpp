// Figure 2(e): why Lazy Promotion also quickens demotion.
//
// Under LRU, a newly-inserted cold object is pushed toward eviction only by
// (1) new insertions and (2) cached objects re-requested *after* it. Under
// FIFO-Reinsertion the queue does not reorder on hits, so objects requested
// *before* the newcomer also flow past it at eviction time — the newcomer
// reaches the eviction point sooner. This demo measures exactly that: the
// number of requests a never-re-referenced object survives after insertion.

#include <cstdio>

#include "src/policies/clock.h"
#include "src/policies/eviction_policy.h"
#include "src/policies/lru.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace {

// Inserts a marked cold object into a warmed cache, then keeps requesting
// the hot set (no new insertions beyond the periodic churn) and counts how
// long the cold object stays resident.
uint64_t DemotionTime(qdlp::EvictionPolicy& cache, uint64_t seed) {
  using qdlp::ObjectId;
  constexpr ObjectId kColdObject = 1u << 30;
  constexpr uint64_t kHotObjects = 500;
  qdlp::Rng rng(seed);
  qdlp::ZipfSampler zipf(kHotObjects, 1.0);
  // Warm up with the hot set.
  for (int i = 0; i < 20000; ++i) {
    cache.Access(zipf.Sample(rng));
  }
  cache.Access(kColdObject);
  uint64_t survived = 0;
  ObjectId churn = (1u << 30) + 1;
  while (cache.Contains(kColdObject) && survived < 1000000) {
    // 95% hot traffic, 5% new objects (the demotion pressure).
    if (rng.NextBool(0.05)) {
      cache.Access(churn++);
    } else {
      cache.Access(zipf.Sample(rng));
    }
    ++survived;
  }
  return survived;
}

}  // namespace

int main() {
  constexpr size_t kCapacity = 400;
  std::printf(
      "How long does a one-hit wonder occupy cache space? (requests survived\n"
      "after insertion; cache = %zu objects, 95%% hot traffic / 5%% churn)\n\n",
      kCapacity);
  double lru_total = 0;
  double clock_total = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    qdlp::LruPolicy lru(kCapacity);
    qdlp::ClockPolicy clock(kCapacity, 1);
    lru_total += static_cast<double>(DemotionTime(lru, 100 + trial));
    clock_total += static_cast<double>(DemotionTime(clock, 100 + trial));
  }
  std::printf("LRU:               %8.0f requests (mean of %d trials)\n",
              lru_total / kTrials, kTrials);
  std::printf("FIFO-Reinsertion:  %8.0f requests (mean of %d trials)\n\n",
              clock_total / kTrials, kTrials);
  std::printf(
      "FIFO-Reinsertion demotes the dead object sooner: hot objects\n"
      "requested before it do not jump over it (no eager promotion), so its\n"
      "position decays with every eviction sweep — Lazy Promotion implies\n"
      "Quicker Demotion (Fig. 2e).\n");
  return 0;
}
