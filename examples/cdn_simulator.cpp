// Scenario: CDN edge cache (the web workloads of §4).
//
// CDN traffic mixes popular objects with masses of one-hit wonders (dynamic
// pages, versioned assets, short TTLs). This example builds a QD cache
// explicitly — probationary FIFO + ghost + a main policy of your choice —
// replays a CDN-like workload, and prints the internal QD flow counters:
// how many objects were quick-demoted after one lap, how many earned lazy
// promotion, and how many came back through the ghost.

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/policy_factory.h"
#include "src/core/qd_cache.h"
#include "src/sim/simulator.h"
#include "src/trace/generators.h"

int main() {
  using namespace qdlp;

  PopularityDecayConfig config;
  config.num_requests = 400000;
  config.one_hit_wonder_fraction = 0.25;  // aggressive dynamic content
  config.recency_skew = 0.8;
  config.initial_objects = 4000;
  config.seed = 99;
  const Trace trace = GeneratePopularityDecay(config);
  const size_t cache_size = trace.num_objects / 10;
  std::printf("CDN workload: %zu requests, %llu objects, cache %zu\n\n",
              trace.requests.size(),
              static_cast<unsigned long long>(trace.num_objects), cache_size);

  for (const std::string base : {"clock2", "arc", "lru"}) {
    auto policy = MakeQdPolicy(base, cache_size);
    auto* qd = static_cast<QdCache*>(policy.get());
    const SimResult result = ReplayTrace(*policy, trace);
    const SimResult plain = SimulatePolicy(base, trace, cache_size);
    std::printf("qd-%-8s miss ratio %.4f (plain %s: %.4f)\n", base.c_str(),
                result.miss_ratio(), base.c_str(), plain.miss_ratio());
    std::printf("  quick demotions: %llu (objects filtered after one FIFO lap)\n",
                static_cast<unsigned long long>(qd->quick_demotions()));
    std::printf("  lazy promotions: %llu (earned a slot in the main cache)\n",
                static_cast<unsigned long long>(qd->promotions()));
    std::printf("  ghost rescues:   %llu (demoted too fast, re-admitted)\n\n",
                static_cast<unsigned long long>(qd->ghost_admissions()));
  }

  std::printf(
      "The probationary FIFO absorbs the one-hit wonders: most objects are\n"
      "demoted after a single lap and never touch the main cache, which is\n"
      "exactly the \"quick demotion\" the paper shows state-of-the-art\n"
      "algorithms are missing.\n");
  return 0;
}
