// Scenario: enterprise block storage (the MSR/FIU-style workloads of §4).
//
// Block caches suffer from scans and loops: long runs of blocks touched once
// (backup jobs, table scans) that flush an LRU. This example builds a
// scan-heavy block workload and prints a miss-ratio curve for LRU, ARC,
// LIRS, and QD-LP-FIFO — showing how Quick Demotion keeps scans from
// polluting the cache at every size.

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/mrc.h"
#include "src/trace/generators.h"

int main() {
  using namespace qdlp;

  ScanLoopConfig config;
  config.num_requests = 300000;
  config.hot_objects = 20000;
  config.hot_skew = 0.9;
  config.scan_start_probability = 0.003;
  config.loop_start_probability = 0.001;
  config.seed = 7;
  const Trace trace = GenerateScanLoop(config);
  std::printf("block workload: %zu requests, %llu distinct blocks\n\n",
              trace.requests.size(),
              static_cast<unsigned long long>(trace.num_objects));

  const std::vector<double> fractions = {0.005, 0.01, 0.02, 0.05, 0.10, 0.20};
  const std::vector<std::string> policies = {"lru", "arc", "lirs",
                                             "qd-lp-fifo"};

  std::printf("%-12s", "cache size");
  for (const auto& policy : policies) {
    std::printf("%12s", policy.c_str());
  }
  std::printf("\n");
  std::vector<std::vector<MrcPoint>> curves;
  curves.reserve(policies.size());
  for (const auto& policy : policies) {
    curves.push_back(ComputeMrc(policy, trace, fractions));
  }
  for (size_t i = 0; i < fractions.size(); ++i) {
    std::printf("%10.1f%%", fractions[i] * 100.0);
    for (const auto& curve : curves) {
      std::printf("%12.4f", curve[i].miss_ratio);
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading the curve: LRU pays for every scan block traversing the\n"
      "whole queue; ARC/LIRS resist scans; QD-LP-FIFO gets the same effect\n"
      "with three FIFO queues and a 10%% probationary filter.\n");
  return 0;
}
