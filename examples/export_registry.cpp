// Tool: materialize the synthetic Table-1 registry to disk.
//
//   $ ./examples/export_registry <output_dir> [scale]
//
// Writes every registry trace in the qdlp binary format (readable by
// examples/replay_trace and trace_io.h), so external tools — or other cache
// simulators — can consume the exact workloads the benches use.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/trace/registry.h"
#include "src/trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace qdlp;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output_dir> [scale=0.25]\n", argv[0]);
    return 2;
  }
  const std::string out_dir = argv[1];
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  if (scale <= 0.0) {
    std::fprintf(stderr, "error: scale must be > 0\n");
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  size_t written = 0;
  uint64_t total_requests = 0;
  for (const DatasetSpec& spec : Table1Datasets()) {
    const int count = TraceCountAtScale(spec, scale);
    for (int i = 0; i < count; ++i) {
      const Trace trace = MakeTrace(spec, i, scale);
      char name[64];
      std::snprintf(name, sizeof(name), "%s_%03d.bin", spec.name.c_str(), i);
      const std::string path = out_dir + "/" + name;
      if (!WriteTraceBinary(trace, path)) {
        std::fprintf(stderr, "error: failed to write %s\n", path.c_str());
        return 1;
      }
      ++written;
      total_requests += trace.requests.size();
    }
  }
  std::printf("wrote %zu traces (%llu requests total) to %s\n", written,
              static_cast<unsigned long long>(total_requests), out_dir.c_str());
  return 0;
}
