// Quickstart: build caches by name, feed them requests, read hit ratios.
//
//   $ ./examples/quickstart
//
// Shows the three-line API: MakePolicy(name, capacity) -> Access(id) ->
// miss ratio, and compares FIFO, LRU, and the paper's QD-LP-FIFO on a
// Zipf-with-churn workload.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/generators.h"

int main() {
  using namespace qdlp;

  // A web-like workload: Zipf popularity with decay and one-hit wonders.
  PopularityDecayConfig config;
  config.num_requests = 200000;
  config.one_hit_wonder_fraction = 0.15;
  config.seed = 42;
  const Trace trace = GeneratePopularityDecay(config);
  std::printf("workload: %zu requests over %llu distinct objects\n",
              trace.requests.size(),
              static_cast<unsigned long long>(trace.num_objects));

  const size_t cache_size = trace.num_objects / 20;  // 5% of objects
  std::printf("cache size: %zu objects\n\n", cache_size);

  for (const std::string name :
       {"fifo", "lru", "fifo-reinsertion", "arc", "qd-lp-fifo"}) {
    auto cache = MakePolicy(name, cache_size);
    uint64_t hits = 0;
    for (const ObjectId id : trace.requests) {
      hits += cache->Access(id) ? 1 : 0;  // true = cache hit
    }
    const double miss_ratio =
        1.0 - static_cast<double>(hits) / static_cast<double>(trace.requests.size());
    std::printf("%-18s miss ratio %.4f\n", name.c_str(), miss_ratio);
  }

  std::printf(
      "\nqd-lp-fifo = probationary FIFO (10%%) + ghost FIFO + 2-bit CLOCK:\n"
      "three FIFO queues, one metadata bit per hit, no locking — and a miss\n"
      "ratio at or below the LRU-based designs.\n");
  return 0;
}
