// Scenario: social-network in-memory KV cache (§3's footnote-3 datasets).
//
// First-layer KV caches see high per-object reuse — "most objects are
// accessed more than once" — which is where the paper found one reference
// bit insufficient: FIFO-Reinsertion can only distinguish touched from
// untouched, so on a high-reuse workload nearly everything looks touched.
// The second bit separates "touched once" from "genuinely hot". This
// example sweeps CLOCK bit-widths (and LRU/QD-LP-FIFO for context) on a
// high-reuse KV workload and on a low-reuse CDN workload to show the
// contrast.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/generators.h"

namespace {

void RunOne(const char* label, const qdlp::Trace& trace) {
  using namespace qdlp;
  const TraceStats stats = ComputeTraceStats(trace);
  std::printf("\n%s: %llu requests, %llu keys, mean reuse %.1f, one-hit %.0f%%\n",
              label, static_cast<unsigned long long>(stats.num_requests),
              static_cast<unsigned long long>(stats.num_objects),
              stats.mean_frequency, stats.one_hit_wonder_ratio * 100.0);
  const size_t cache_size = CacheSizeForFraction(trace, 0.10);
  double one_bit_mr = 0.0;
  for (const std::string name : {"lru", "fifo-reinsertion", "clock2", "clock3",
                                 "qd-lp-fifo"}) {
    const SimResult result = SimulatePolicy(name, trace, cache_size);
    std::printf("  %-18s miss ratio %.4f", name.c_str(), result.miss_ratio());
    if (name == "fifo-reinsertion") {
      one_bit_mr = result.miss_ratio();
    } else if (name == "clock2" && one_bit_mr > 0.0) {
      std::printf("   (second bit buys %.2f%%)",
                  (one_bit_mr - result.miss_ratio()) / one_bit_mr * 100.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace qdlp;

  HighReuseKvConfig kv_config;
  kv_config.num_requests = 400000;
  kv_config.num_objects = 30000;
  kv_config.skew = 1.2;
  kv_config.seed = 88;
  RunOne("social-network KV (high reuse)", GenerateHighReuseKv(kv_config));

  PopularityDecayConfig cdn_config;
  cdn_config.num_requests = 400000;
  cdn_config.one_hit_wonder_fraction = 0.25;
  cdn_config.initial_objects = 8000;
  cdn_config.seed = 88;
  RunOne("CDN (low reuse, heavy one-hit wonders)",
         GeneratePopularityDecay(cdn_config));

  std::printf(
      "\nOn the high-reuse KV side nearly every object has its bit set, so\n"
      "the 1-bit CLOCK degenerates toward FIFO and the second bit matters\n"
      "(§3: \"using one bit to track object access is insufficient\"). On\n"
      "the wonder-heavy CDN side the first bit already separates live from\n"
      "dead, and quick demotion (qd-lp-fifo) is what pays.\n");
  return 0;
}
