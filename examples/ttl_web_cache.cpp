// Scenario: a web cache with TTLs (the §2 removal operation in action).
//
// Web content carries heterogeneous TTLs: API responses live seconds,
// rendered pages minutes, static assets ~forever. This example runs the
// same traffic through a TtlCache over LRU (eager expiration via Remove())
// and over ARC (lazy expiration, memcached-style), and shows how short-TTL
// traffic behaves as automatic quick demotion.

#include <cstdio>
#include <memory>

#include "src/core/policy_factory.h"
#include "src/core/ttl_cache.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

int main() {
  using namespace qdlp;

  constexpr size_t kCacheSize = 5000;
  constexpr int kRequests = 500000;

  struct Stats {
    uint64_t hits = 0;
    uint64_t requests = 0;
  };

  const auto run = [&](TtlCache& cache) {
    Rng rng(2026);
    ZipfSampler assets(20000, 0.9);   // static assets: long TTL
    ZipfSampler pages(5000, 1.0);     // rendered pages: medium TTL
    Stats stats;
    ObjectId api_id = 1u << 30;       // API responses: unique-ish, tiny TTL
    for (int i = 0; i < kRequests; ++i) {
      const double kind = rng.NextDouble();
      bool hit;
      if (kind < 0.5) {
        hit = cache.Access(assets.Sample(rng), /*ttl=*/1000000);
      } else if (kind < 0.8) {
        hit = cache.Access((1u << 29) + pages.Sample(rng), /*ttl=*/20000);
      } else {
        // 20% API churn with ~300-request TTLs; mostly never re-read.
        hit = cache.Access(api_id++, /*ttl=*/300);
      }
      stats.hits += hit ? 1 : 0;
      ++stats.requests;
    }
    return stats;
  };

  std::printf("web cache with TTL classes (%d requests, cache %zu)\n\n",
              kRequests, kCacheSize);
  {
    TtlCache eager(MakePolicy("lru", kCacheSize));
    const Stats stats = run(eager);
    std::printf("eager expiry (LRU + Remove): hit ratio %.4f, "
                "%llu objects reaped by TTL, %llu stale hits\n",
                static_cast<double>(stats.hits) / stats.requests,
                static_cast<unsigned long long>(eager.eager_expirations()),
                static_cast<unsigned long long>(eager.expired_hits()));
  }
  {
    TtlCache lazy(MakePolicy("arc", kCacheSize));
    const Stats stats = run(lazy);
    std::printf("lazy expiry (ARC, memcached-style): hit ratio %.4f, "
                "%llu stale hits re-fetched\n",
                static_cast<double>(stats.hits) / stats.requests,
                static_cast<unsigned long long>(lazy.expired_hits()));
  }
  std::printf(
      "\nEager expiration reclaims dead API responses within a few requests\n"
      "of their deadline — TTL acting as removal-driven quick demotion (§2).\n"
      "Lazy expiration leaves them holding space until evicted or touched.\n");
  return 0;
}
