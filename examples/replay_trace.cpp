// CLI: replay your own trace through any policy.
//
//   $ ./examples/replay_trace <trace.{csv,bin}> <policy>[,policy...] \
//         [cache_fraction]
//
// The trace is one object id per line (CSV) or the qdlp binary format
// (trace_io.h). cache_fraction is the cache size as a fraction of the
// trace's unique objects (default 0.10). Example:
//
//   $ ./examples/replay_trace prod.csv lru,arc,qd-lp-fifo 0.01

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace qdlp;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <trace.{csv,bin}> <policy>[,policy...] "
                 "[cache_fraction]\nknown policies:",
                 argv[0]);
    for (const auto& name : KnownPolicyNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string path = argv[1];
  std::optional<Trace> trace;
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    trace = ReadTraceBinary(path);
  } else {
    trace = ReadTraceCsv(path);
  }
  if (!trace.has_value()) {
    std::fprintf(stderr, "error: could not read trace %s\n", path.c_str());
    return 1;
  }
  const double fraction = argc > 3 ? std::atof(argv[3]) : 0.10;
  if (fraction <= 0.0) {
    std::fprintf(stderr, "error: cache_fraction must be > 0\n");
    return 2;
  }
  const size_t cache_size = CacheSizeForFraction(*trace, fraction);
  std::printf("trace: %zu requests, %llu objects; cache %zu (%.2f%%)\n",
              trace->requests.size(),
              static_cast<unsigned long long>(trace->num_objects), cache_size,
              fraction * 100.0);

  std::stringstream names(argv[2]);
  std::string name;
  while (std::getline(names, name, ',')) {
    auto policy = MakePolicy(name, cache_size, &trace->requests);
    if (policy == nullptr) {
      std::fprintf(stderr, "error: unknown policy '%s'\n", name.c_str());
      return 2;
    }
    const SimResult result = ReplayTrace(*policy, *trace);
    std::printf("%-18s miss ratio %.4f (%llu hits / %llu requests)\n",
                name.c_str(), result.miss_ratio(),
                static_cast<unsigned long long>(result.hits),
                static_cast<unsigned long long>(result.requests));
  }
  return 0;
}
