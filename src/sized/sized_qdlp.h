// Size-aware QD-LP-FIFO — the paper's stated future work ("designing
// size-aware Lazy Promotion and Quick Demotion techniques are worth
// pursuing", §5 Limitations) made concrete.
//
// The uniform-size construction generalizes per-dimension:
//   * probationary FIFO gets 10% of the *byte* budget;
//   * the ghost remembers evicted ids charged at their object size, with a
//     byte budget equal to the main cache (the natural generalization of
//     "as many entries as the main cache");
//   * the main cache is a size-aware 2-bit CLOCK.
// Flow is identical to QdCache: ghost hits admit straight to main,
// probation evictees promote if re-accessed, else ghost.

#ifndef QDLP_SRC_SIZED_SIZED_QDLP_H_
#define QDLP_SRC_SIZED_SIZED_QDLP_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/sized/sized_basic.h"
#include "src/sized/sized_policy.h"

namespace qdlp {

// Byte-budgeted ghost: entries are metadata-only but *charged* at object
// size so that the ghost covers the same byte-window of history regardless
// of object-size mix.
class SizedGhost {
 public:
  explicit SizedGhost(uint64_t byte_budget);

  void Insert(ObjectId id, uint64_t size);
  bool Consume(ObjectId id);
  bool Contains(ObjectId id) const { return live_.contains(id); }
  uint64_t charged_bytes() const { return charged_; }

 private:
  struct Record {
    ObjectId id;
    uint64_t generation;
  };
  struct Live {
    uint64_t generation;
    uint64_t size;
  };

  uint64_t byte_budget_;
  uint64_t charged_ = 0;  // bytes of live entries (invariant)
  std::deque<Record> fifo_;
  std::unordered_map<ObjectId, Live> live_;
  uint64_t next_generation_ = 0;
};

// Size-aware QD wrapper over an arbitrary main policy. The main policy must
// be constructed with the main byte budget (total minus probation); use
// MakeSizedQd below or the sized factory to get the split right.
class SizedQdCache : public SizedEvictionPolicy {
 public:
  SizedQdCache(uint64_t probation_capacity,
               std::unique_ptr<SizedEvictionPolicy> main,
               const std::string& name = "");

  uint64_t used_bytes() const override {
    return probation_bytes_ + main_->used_bytes();
  }
  size_t object_count() const override {
    return probation_index_.size() + main_->object_count();
  }
  bool Contains(ObjectId id) const override {
    return probation_index_.contains(id) || main_->Contains(id);
  }

  uint64_t probation_bytes() const { return probation_bytes_; }
  const SizedEvictionPolicy& main() const { return *main_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t quick_demotions() const { return quick_demotions_; }
  uint64_t ghost_admissions() const { return ghost_admissions_; }

 protected:
  bool OnAccess(ObjectId id, uint64_t size) override;

 private:
  struct ProbationEntry {
    uint64_t size;
    bool accessed;
  };

  void EvictFromProbation();

  uint64_t probation_capacity_;
  uint64_t probation_bytes_ = 0;
  std::unique_ptr<SizedEvictionPolicy> main_;
  SizedGhost ghost_;

  std::deque<ObjectId> probation_fifo_;
  std::unordered_map<ObjectId, ProbationEntry> probation_index_;

  uint64_t promotions_ = 0;
  uint64_t quick_demotions_ = 0;
  uint64_t ghost_admissions_ = 0;
};

// The paper's QD-LP-FIFO with byte budgets: probationary FIFO (10% of
// bytes) + byte-charged ghost + size-aware 2-bit CLOCK main.
class SizedQdLpFifo : public SizedQdCache {
 public:
  explicit SizedQdLpFifo(uint64_t byte_capacity,
                         double probation_fraction = 0.10, int clock_bits = 2);
};

// Splits `byte_capacity` and wraps `main_factory(main_bytes)`.
template <typename MainFactory>
std::unique_ptr<SizedQdCache> MakeSizedQd(uint64_t byte_capacity,
                                          double probation_fraction,
                                          MainFactory&& main_factory,
                                          const std::string& name = "") {
  QDLP_CHECK(probation_fraction > 0.0 && probation_fraction < 1.0);
  uint64_t probation = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(byte_capacity) *
                               probation_fraction));
  probation = std::min<uint64_t>(probation, byte_capacity - 1 > 0
                                                ? byte_capacity - 1
                                                : 1);
  return std::make_unique<SizedQdCache>(
      probation, main_factory(byte_capacity - probation), name);
}

}  // namespace qdlp

#endif  // QDLP_SRC_SIZED_SIZED_QDLP_H_
