#include "src/sized/sized_basic.h"

namespace qdlp {

SizedFifoPolicy::SizedFifoPolicy(uint64_t byte_capacity)
    : SizedEvictionPolicy(byte_capacity, "sized-fifo") {}

bool SizedFifoPolicy::OnAccess(ObjectId id, uint64_t size) {
  if (index_.contains(id)) {
    return true;
  }
  while (used_ + size > byte_capacity()) {
    QDLP_DCHECK(!queue_.empty());
    const ObjectId victim = queue_.front();
    queue_.pop_front();
    const auto it = index_.find(victim);
    used_ -= it->second;
    index_.erase(it);
  }
  queue_.push_back(id);
  index_[id] = size;
  used_ += size;
  return false;
}

SizedLruPolicy::SizedLruPolicy(uint64_t byte_capacity)
    : SizedEvictionPolicy(byte_capacity, "sized-lru") {}

bool SizedLruPolicy::OnAccess(ObjectId id, uint64_t size) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    mru_list_.splice(mru_list_.begin(), mru_list_, it->second.position);
    return true;
  }
  while (used_ + size > byte_capacity()) {
    QDLP_DCHECK(!mru_list_.empty());
    const ObjectId victim = mru_list_.back();
    mru_list_.pop_back();
    const auto victim_it = index_.find(victim);
    used_ -= victim_it->second.size;
    index_.erase(victim_it);
  }
  mru_list_.push_front(id);
  index_[id] = Entry{size, mru_list_.begin()};
  used_ += size;
  return false;
}

SizedClockPolicy::SizedClockPolicy(uint64_t byte_capacity, int bits)
    : SizedEvictionPolicy(byte_capacity, bits == 1 ? "sized-fifo-reinsertion"
                                                   : "sized-clock" +
                                                         std::to_string(bits)) {
  QDLP_CHECK(bits >= 1 && bits <= 8);
  max_counter_ = static_cast<uint8_t>((1u << bits) - 1);
}

void SizedClockPolicy::EvictOne() {
  while (true) {
    QDLP_DCHECK(!queue_.empty());
    const ObjectId candidate = queue_.front();
    queue_.pop_front();
    auto it = index_.find(candidate);
    QDLP_DCHECK(it != index_.end());
    if (it->second.counter > 0) {
      --it->second.counter;
      queue_.push_back(candidate);  // reinsertion
      continue;
    }
    used_ -= it->second.size;
    index_.erase(it);
    return;
  }
}

bool SizedClockPolicy::OnAccess(ObjectId id, uint64_t size) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    if (it->second.counter < max_counter_) {
      ++it->second.counter;
    }
    return true;
  }
  while (used_ + size > byte_capacity()) {
    EvictOne();
  }
  queue_.push_back(id);
  index_[id] = Entry{size, 0};
  used_ += size;
  return false;
}

}  // namespace qdlp
