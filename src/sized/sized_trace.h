// Variable-object-size trace model — the paper's "Limitations" extension.
//
// The HotOS paper deliberately studies uniform sizes; its stated future work
// is size-aware LP/QD. This module supplies the substrate: requests carry a
// byte size, web-like generators draw sizes from a log-normal (the classic
// web object-size distribution), and byte-hit/byte-miss accounting joins the
// object-level metrics.

#ifndef QDLP_SRC_SIZED_SIZED_TRACE_H_
#define QDLP_SRC_SIZED_SIZED_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace qdlp {

struct SizedRequest {
  ObjectId id = 0;
  uint64_t size = 1;  // bytes
};

struct SizedTrace {
  std::string name;
  std::vector<SizedRequest> requests;
  uint64_t num_objects = 0;
  uint64_t total_object_bytes = 0;  // sum of distinct objects' sizes

  size_t num_requests() const { return requests.size(); }
};

struct SizedWebConfig {
  uint64_t num_requests = 100000;
  // Popularity: Zipf over a fixed corpus plus a one-hit-wonder stream.
  uint64_t num_objects = 20000;
  double skew = 0.9;
  double one_hit_wonder_fraction = 0.15;
  // Log-normal size parameters (of ln bytes). Defaults give a median of
  // ~8 KiB with a heavy tail, truncated to [64 B, 64 MiB].
  double log_size_mean = 9.0;
  double log_size_sigma = 1.5;
  uint64_t min_size = 64;
  uint64_t max_size = 64ull << 20;
  uint64_t seed = 1;
};

// Sizes are per-object (stable across requests for the same id).
SizedTrace GenerateSizedWeb(const SizedWebConfig& config);

// Wraps a uniform trace with fixed-size objects (block workloads).
SizedTrace FromUniform(const Trace& trace, uint64_t object_size);

}  // namespace qdlp

#endif  // QDLP_SRC_SIZED_SIZED_TRACE_H_
