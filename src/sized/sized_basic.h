// Size-aware FIFO, LRU, and k-bit CLOCK (FIFO-Reinsertion).
//
// Straightforward byte-budget generalizations: eviction repeats until the
// incoming object fits. The CLOCK variant is queue-based (pop-head /
// reinsert-at-tail), which is the natural variable-size formulation of the
// ring sweep.

#ifndef QDLP_SRC_SIZED_SIZED_BASIC_H_
#define QDLP_SRC_SIZED_SIZED_BASIC_H_

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>

#include "src/sized/sized_policy.h"

namespace qdlp {

class SizedFifoPolicy : public SizedEvictionPolicy {
 public:
  explicit SizedFifoPolicy(uint64_t byte_capacity);

  uint64_t used_bytes() const override { return used_; }
  size_t object_count() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id, uint64_t size) override;

 private:
  uint64_t used_ = 0;
  std::deque<ObjectId> queue_;  // front = oldest
  std::unordered_map<ObjectId, uint64_t> index_;  // id -> size
};

class SizedLruPolicy : public SizedEvictionPolicy {
 public:
  explicit SizedLruPolicy(uint64_t byte_capacity);

  uint64_t used_bytes() const override { return used_; }
  size_t object_count() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id, uint64_t size) override;

 private:
  struct Entry {
    uint64_t size;
    std::list<ObjectId>::iterator position;
  };

  uint64_t used_ = 0;
  std::list<ObjectId> mru_list_;  // front = MRU
  std::unordered_map<ObjectId, Entry> index_;
};

class SizedClockPolicy : public SizedEvictionPolicy {
 public:
  SizedClockPolicy(uint64_t byte_capacity, int bits = 1);

  uint64_t used_bytes() const override { return used_; }
  size_t object_count() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id, uint64_t size) override;

 private:
  struct Entry {
    uint64_t size;
    uint8_t counter;
  };

  void EvictOne();

  uint8_t max_counter_;
  uint64_t used_ = 0;
  std::deque<ObjectId> queue_;  // front = hand position
  std::unordered_map<ObjectId, Entry> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_SIZED_SIZED_BASIC_H_
