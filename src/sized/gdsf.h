// GDSF — GreedyDual-Size-Frequency (Cherkasova '98, extending GreedyDual-
// Size of Cao & Irani, USITS'97 — cited by the paper as cost-aware caching).
//
// Priority H(obj) = L + frequency * cost / size with cost = 1 (hit-ratio
// objective). L is an inflation clock set to the priority of the last
// evicted object, which gives the algorithm recency-awareness without
// per-hit list moves. The standard size-aware baseline our size-aware
// QD-LP-FIFO is measured against.

#ifndef QDLP_SRC_SIZED_GDSF_H_
#define QDLP_SRC_SIZED_GDSF_H_

#include <cstdint>
#include <set>
#include <unordered_map>

#include "src/sized/sized_policy.h"

namespace qdlp {

class GdsfPolicy : public SizedEvictionPolicy {
 public:
  explicit GdsfPolicy(uint64_t byte_capacity);

  uint64_t used_bytes() const override { return used_; }
  size_t object_count() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

  double inflation() const { return inflation_; }

 protected:
  bool OnAccess(ObjectId id, uint64_t size) override;

 private:
  struct Entry {
    uint64_t size;
    uint64_t frequency;
    double priority;
  };

  double PriorityFor(uint64_t frequency, uint64_t size) const;
  void EvictOne();

  uint64_t used_ = 0;
  double inflation_ = 0.0;  // L
  std::unordered_map<ObjectId, Entry> index_;
  std::set<std::pair<double, ObjectId>> order_;  // min = victim
};

}  // namespace qdlp

#endif  // QDLP_SRC_SIZED_GDSF_H_
