#include "src/sized/gdsf.h"

namespace qdlp {

GdsfPolicy::GdsfPolicy(uint64_t byte_capacity)
    : SizedEvictionPolicy(byte_capacity, "gdsf") {}

double GdsfPolicy::PriorityFor(uint64_t frequency, uint64_t size) const {
  return inflation_ + static_cast<double>(frequency) / static_cast<double>(size);
}

void GdsfPolicy::EvictOne() {
  QDLP_DCHECK(!order_.empty());
  const auto victim_it = order_.begin();
  const ObjectId victim = victim_it->second;
  inflation_ = victim_it->first;  // L rises to the evicted priority
  order_.erase(victim_it);
  const auto it = index_.find(victim);
  used_ -= it->second.size;
  index_.erase(it);
}

bool GdsfPolicy::OnAccess(ObjectId id, uint64_t size) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    Entry& entry = it->second;
    order_.erase({entry.priority, id});
    ++entry.frequency;
    entry.priority = PriorityFor(entry.frequency, entry.size);
    order_.insert({entry.priority, id});
    return true;
  }
  while (used_ + size > byte_capacity()) {
    EvictOne();
  }
  Entry entry;
  entry.size = size;
  entry.frequency = 1;
  entry.priority = PriorityFor(1, size);
  index_[id] = entry;
  order_.insert({entry.priority, id});
  used_ += size;
  return false;
}

}  // namespace qdlp
