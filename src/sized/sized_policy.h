// Byte-capacity eviction-policy interface (size-aware future work, §5
// Limitations).
//
// Mirrors EvictionPolicy but objects carry sizes: capacity and occupancy are
// in bytes, a miss admits the object after freeing enough space, and objects
// larger than the whole cache are bypassed (counted as misses, never
// admitted) — the standard convention for web caches.

#ifndef QDLP_SRC_SIZED_SIZED_POLICY_H_
#define QDLP_SRC_SIZED_SIZED_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/sized/sized_trace.h"
#include "src/util/check.h"

namespace qdlp {

class SizedEvictionPolicy {
 public:
  SizedEvictionPolicy(uint64_t byte_capacity, std::string name)
      : byte_capacity_(byte_capacity), name_(std::move(name)) {
    QDLP_CHECK(byte_capacity >= 1);
  }
  virtual ~SizedEvictionPolicy() = default;

  SizedEvictionPolicy(const SizedEvictionPolicy&) = delete;
  SizedEvictionPolicy& operator=(const SizedEvictionPolicy&) = delete;

  // Returns true on hit. On miss, admits unless size > capacity.
  bool Access(ObjectId id, uint64_t size) {
    ++now_;
    QDLP_DCHECK(size >= 1);
    if (size > byte_capacity_) {
      return false;  // bypass: cannot fit even an empty cache
    }
    return OnAccess(id, size);
  }
  bool Access(const SizedRequest& request) {
    return Access(request.id, request.size);
  }

  virtual uint64_t used_bytes() const = 0;
  virtual size_t object_count() const = 0;
  virtual bool Contains(ObjectId id) const = 0;

  uint64_t byte_capacity() const { return byte_capacity_; }
  const std::string& name() const { return name_; }
  uint64_t now() const { return now_; }

 protected:
  virtual bool OnAccess(ObjectId id, uint64_t size) = 0;

 private:
  uint64_t byte_capacity_;
  std::string name_;
  uint64_t now_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_SIZED_SIZED_POLICY_H_
