#include "src/sized/sized_trace.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {

namespace {

constexpr uint64_t kOneHitBase = 1ULL << 44;

// Log-normal sampling via Box-Muller on the uniform generator.
uint64_t SampleSize(Rng& rng, const SizedWebConfig& config) {
  double u1 = rng.NextDouble();
  if (u1 < 1e-18) {
    u1 = 1e-18;
  }
  const double u2 = rng.NextDouble();
  const double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double log_size =
      config.log_size_mean + config.log_size_sigma * normal;
  const double size = std::exp(log_size);
  if (size <= static_cast<double>(config.min_size)) {
    return config.min_size;
  }
  if (size >= static_cast<double>(config.max_size)) {
    return config.max_size;
  }
  return static_cast<uint64_t>(size);
}

}  // namespace

SizedTrace GenerateSizedWeb(const SizedWebConfig& config) {
  QDLP_CHECK(config.num_objects >= 1);
  QDLP_CHECK(config.min_size >= 1 && config.min_size <= config.max_size);
  SizedTrace trace;
  trace.requests.reserve(config.num_requests);
  Rng rng(config.seed);
  ZipfSampler zipf(config.num_objects, config.skew);

  std::unordered_map<ObjectId, uint64_t> sizes;
  sizes.reserve(config.num_objects);
  uint64_t one_hit_counter = kOneHitBase;

  for (uint64_t i = 0; i < config.num_requests; ++i) {
    ObjectId id;
    if (rng.NextBool(config.one_hit_wonder_fraction)) {
      id = one_hit_counter++;
    } else {
      id = zipf.Sample(rng);
    }
    auto [it, inserted] = sizes.try_emplace(id, 0);
    if (inserted) {
      it->second = SampleSize(rng, config);
      trace.total_object_bytes += it->second;
    }
    trace.requests.push_back(SizedRequest{id, it->second});
  }
  trace.num_objects = sizes.size();
  return trace;
}

SizedTrace FromUniform(const Trace& trace, uint64_t object_size) {
  QDLP_CHECK(object_size >= 1);
  SizedTrace sized;
  sized.name = trace.name;
  sized.requests.reserve(trace.requests.size());
  for (const ObjectId id : trace.requests) {
    sized.requests.push_back(SizedRequest{id, object_size});
  }
  sized.num_objects = trace.num_objects;
  sized.total_object_bytes = trace.num_objects * object_size;
  return sized;
}

}  // namespace qdlp
