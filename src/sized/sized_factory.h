// Factory and replay for the size-aware policies.

#ifndef QDLP_SRC_SIZED_SIZED_FACTORY_H_
#define QDLP_SRC_SIZED_SIZED_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sized/sized_policy.h"
#include "src/sized/sized_trace.h"

namespace qdlp {

// Names: sized-fifo, sized-lru, sized-fifo-reinsertion, sized-clock2, gdsf,
// sized-qd-lp-fifo. Returns nullptr on unknown names.
std::unique_ptr<SizedEvictionPolicy> MakeSizedPolicy(const std::string& name,
                                                     uint64_t byte_capacity);

std::vector<std::string> KnownSizedPolicyNames();

struct SizedSimResult {
  std::string policy;
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t requested_bytes = 0;
  uint64_t hit_bytes = 0;

  double object_miss_ratio() const {
    return requests == 0
               ? 0.0
               : 1.0 - static_cast<double>(hits) / static_cast<double>(requests);
  }
  double byte_miss_ratio() const {
    return requested_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(hit_bytes) /
                           static_cast<double>(requested_bytes);
  }
};

SizedSimResult ReplaySizedTrace(SizedEvictionPolicy& policy,
                                const SizedTrace& trace);

}  // namespace qdlp

#endif  // QDLP_SRC_SIZED_SIZED_FACTORY_H_
