#include "src/sized/sized_factory.h"

#include "src/sized/gdsf.h"
#include "src/sized/sized_basic.h"
#include "src/sized/sized_qdlp.h"

namespace qdlp {

std::unique_ptr<SizedEvictionPolicy> MakeSizedPolicy(const std::string& name,
                                                     uint64_t byte_capacity) {
  if (name == "sized-fifo") {
    return std::make_unique<SizedFifoPolicy>(byte_capacity);
  }
  if (name == "sized-lru") {
    return std::make_unique<SizedLruPolicy>(byte_capacity);
  }
  if (name == "sized-fifo-reinsertion" || name == "sized-clock1") {
    return std::make_unique<SizedClockPolicy>(byte_capacity, 1);
  }
  if (name == "sized-clock2") {
    return std::make_unique<SizedClockPolicy>(byte_capacity, 2);
  }
  if (name == "gdsf") {
    return std::make_unique<GdsfPolicy>(byte_capacity);
  }
  if (name == "sized-qd-lp-fifo") {
    return std::make_unique<SizedQdLpFifo>(byte_capacity);
  }
  if (name == "sized-qd-lru") {
    return MakeSizedQd(byte_capacity, 0.10, [](uint64_t main_bytes) {
      return std::make_unique<SizedLruPolicy>(main_bytes);
    });
  }
  if (name == "sized-qd-gdsf") {
    return MakeSizedQd(byte_capacity, 0.10, [](uint64_t main_bytes) {
      return std::make_unique<GdsfPolicy>(main_bytes);
    });
  }
  return nullptr;
}

std::vector<std::string> KnownSizedPolicyNames() {
  return {"sized-fifo",       "sized-lru",    "sized-fifo-reinsertion",
          "sized-clock2",     "gdsf",         "sized-qd-lp-fifo",
          "sized-qd-lru",     "sized-qd-gdsf"};
}

SizedSimResult ReplaySizedTrace(SizedEvictionPolicy& policy,
                                const SizedTrace& trace) {
  SizedSimResult result;
  result.policy = policy.name();
  result.requests = trace.requests.size();
  for (const SizedRequest& request : trace.requests) {
    result.requested_bytes += request.size;
    if (policy.Access(request)) {
      ++result.hits;
      result.hit_bytes += request.size;
    }
  }
  return result;
}

}  // namespace qdlp
