#include "src/sized/sized_qdlp.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

SizedGhost::SizedGhost(uint64_t byte_budget) : byte_budget_(byte_budget) {
  QDLP_CHECK(byte_budget >= 1);
}

void SizedGhost::Insert(ObjectId id, uint64_t size) {
  // Invariant: charged_ is the byte sum of live_ entries. A refresh only
  // supersedes the old fifo record (which becomes stale and is skipped when
  // trimmed); the byte charge moves with the live entry.
  const uint64_t generation = next_generation_++;
  const auto [it, inserted] = live_.try_emplace(id, Live{generation, size});
  if (inserted) {
    charged_ += size;
  } else {
    charged_ += size - it->second.size;
    it->second = Live{generation, size};
  }
  fifo_.push_back(Record{id, generation});
  while (charged_ > byte_budget_ && !fifo_.empty()) {
    const Record oldest = fifo_.front();
    fifo_.pop_front();
    const auto live_it = live_.find(oldest.id);
    if (live_it != live_.end() && live_it->second.generation == oldest.generation) {
      charged_ -= live_it->second.size;
      live_.erase(live_it);
    }
  }
}

bool SizedGhost::Consume(ObjectId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) {
    return false;
  }
  charged_ -= it->second.size;
  live_.erase(it);
  // Drop leading stale records so fifo_ cannot outgrow live_ unboundedly.
  while (!fifo_.empty()) {
    const Record& front = fifo_.front();
    const auto live_it = live_.find(front.id);
    if (live_it != live_.end() && live_it->second.generation == front.generation) {
      break;
    }
    fifo_.pop_front();
  }
  return true;
}

SizedQdCache::SizedQdCache(uint64_t probation_capacity,
                           std::unique_ptr<SizedEvictionPolicy> main,
                           const std::string& name)
    : SizedEvictionPolicy(probation_capacity + main->byte_capacity(),
                          name.empty() ? "sized-qd-" + main->name() : name),
      probation_capacity_(probation_capacity),
      main_(std::move(main)),
      ghost_(main_->byte_capacity()) {
  QDLP_CHECK(probation_capacity_ >= 1);
}

namespace {

uint64_t ProbationBytesFor(uint64_t byte_capacity, double probation_fraction) {
  QDLP_CHECK(probation_fraction > 0.0 && probation_fraction < 1.0);
  uint64_t probation = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(static_cast<double>(byte_capacity) *
                                            probation_fraction)));
  if (byte_capacity > 1) {
    probation = std::min(probation, byte_capacity - 1);
  }
  return probation;
}

}  // namespace

SizedQdLpFifo::SizedQdLpFifo(uint64_t byte_capacity, double probation_fraction,
                             int clock_bits)
    : SizedQdCache(
          ProbationBytesFor(byte_capacity, probation_fraction),
          std::make_unique<SizedClockPolicy>(
              byte_capacity - ProbationBytesFor(byte_capacity,
                                                probation_fraction),
              clock_bits),
          "sized-qd-lp-fifo") {}

void SizedQdCache::EvictFromProbation() {
  QDLP_DCHECK(!probation_fifo_.empty());
  const ObjectId victim = probation_fifo_.front();
  probation_fifo_.pop_front();
  const auto it = probation_index_.find(victim);
  QDLP_DCHECK(it != probation_index_.end());
  const ProbationEntry entry = it->second;
  probation_index_.erase(it);
  probation_bytes_ -= entry.size;
  if (entry.accessed) {
    ++promotions_;
    main_->Access(victim, entry.size);  // admit into the main clock
  } else {
    ++quick_demotions_;
    ghost_.Insert(victim, entry.size);
  }
}

bool SizedQdCache::OnAccess(ObjectId id, uint64_t size) {
  const auto probation_it = probation_index_.find(id);
  if (probation_it != probation_index_.end()) {
    probation_it->second.accessed = true;
    return true;
  }
  if (main_->Contains(id)) {
    return main_->Access(id, size);
  }
  if (ghost_.Consume(id)) {
    ++ghost_admissions_;
    main_->Access(id, size);
    return false;
  }
  if (size > probation_capacity_) {
    // Oversized for probation: admit straight into main (it could never
    // survive a probation lap anyway). Keeps the capacity invariant intact.
    main_->Access(id, size);
    return false;
  }
  while (probation_bytes_ + size > probation_capacity_) {
    EvictFromProbation();
  }
  probation_fifo_.push_back(id);
  probation_index_[id] = ProbationEntry{size, false};
  probation_bytes_ += size;
  return false;
}

}  // namespace qdlp
