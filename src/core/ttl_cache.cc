#include "src/core/ttl_cache.h"

namespace qdlp {

TtlCache::TtlCache(std::unique_ptr<EvictionPolicy> inner,
                   int max_expirations_per_access)
    : inner_(std::move(inner)),
      max_expirations_per_access_(max_expirations_per_access) {
  QDLP_CHECK(inner_ != nullptr);
  QDLP_CHECK(max_expirations_per_access >= 0);
  reaper_ = std::make_unique<ExpiryReaper>(this);
  inner_->set_event_sink(reaper_.get());
}

void TtlCache::DrainExpired() {
  if (!inner_->SupportsRemoval()) {
    return;
  }
  int budget = max_expirations_per_access_;
  while (budget > 0 && !heap_.empty() && heap_.top().first <= now_) {
    const auto [expires_at, id] = heap_.top();
    heap_.pop();
    const auto it = expiry_.find(id);
    if (it == expiry_.end() || it->second != expires_at) {
      continue;  // stale heap entry (refreshed or already removed)
    }
    expiry_.erase(it);
    if (inner_->Remove(id)) {
      ++eager_expirations_;
    }
    --budget;
  }
}

bool TtlCache::ContainsFresh(ObjectId id) const {
  if (!inner_->Contains(id)) {
    return false;
  }
  const auto it = expiry_.find(id);
  return it != expiry_.end() && it->second > now_;
}

bool TtlCache::Access(ObjectId id, uint64_t ttl) {
  QDLP_DCHECK(ttl >= 1);
  ++now_;
  DrainExpired();

  const auto it = expiry_.find(id);
  const bool resident = inner_->Contains(id);
  if (resident && it != expiry_.end() && it->second > now_) {
    return inner_->Access(id);  // fresh hit
  }
  if (resident) {
    // Stale content: a real cache re-fetches and overwrites in place. The
    // inner Access keeps the slot; only the freshness clock restarts.
    ++expired_hits_;
    inner_->Access(id);
  } else {
    inner_->Access(id);  // admission (may evict)
  }
  const uint64_t expires_at = now_ + ttl;
  expiry_[id] = expires_at;
  heap_.emplace(expires_at, id);
  return false;
}

}  // namespace qdlp
