#include "src/core/policy_factory.h"

#include <algorithm>
#include <cmath>

#include "src/core/s3fifo.h"
#include "src/core/sieve.h"
#include "src/policies/arc.h"
#include "src/policies/belady.h"
#include "src/policies/cacheus.h"
#include "src/policies/car.h"
#include "src/policies/clock.h"
#include "src/policies/clockpro.h"
#include "src/policies/fifo.h"
#include "src/policies/hyperbolic.h"
#include "src/policies/lazy_lru.h"
#include "src/policies/lecar.h"
#include "src/policies/lfu.h"
#include "src/policies/lhd.h"
#include "src/policies/lirs.h"
#include "src/policies/lru.h"
#include "src/policies/lruk.h"
#include "src/policies/mq.h"
#include "src/policies/random_policy.h"
#include "src/policies/slru.h"
#include "src/policies/twoq.h"
#include "src/policies/wtinylfu.h"
#include "src/util/check.h"

namespace qdlp {

namespace {

std::unique_ptr<EvictionPolicy> MakeBase(const std::string& name,
                                         size_t capacity,
                                         const std::vector<ObjectId>* trace) {
  if (name == "fifo") {
    return std::make_unique<FifoPolicy>(capacity);
  }
  if (name == "lru") {
    return std::make_unique<LruPolicy>(capacity);
  }
  if (name == "lfu") {
    return std::make_unique<LfuPolicy>(capacity);
  }
  if (name == "random") {
    return std::make_unique<RandomPolicy>(capacity);
  }
  if (name == "slru") {
    return std::make_unique<SlruPolicy>(capacity);
  }
  if (name == "2q") {
    return std::make_unique<TwoQPolicy>(capacity);
  }
  if (name == "arc") {
    return std::make_unique<ArcPolicy>(capacity);
  }
  if (name == "arc-slow") {
    return std::make_unique<ArcPolicy>(capacity, /*adaptation_rate=*/0.25);
  }
  if (name == "arc-fixed") {
    return std::make_unique<ArcPolicy>(capacity, 1.0, /*fixed_p_fraction=*/0.1);
  }
  if (name == "car") {
    return std::make_unique<CarPolicy>(capacity);
  }
  if (name == "mq") {
    return std::make_unique<MqPolicy>(capacity);
  }
  if (name == "lru2") {
    return std::make_unique<LruKPolicy>(capacity, 2);
  }
  if (name == "wtinylfu") {
    return std::make_unique<WTinyLfuPolicy>(capacity);
  }
  if (name == "lru-batched") {
    return std::make_unique<BatchedPromotionLru>(capacity);
  }
  if (name == "lru-promote-old") {
    return std::make_unique<PromoteOldOnlyLru>(capacity);
  }
  if (name == "lirs") {
    return std::make_unique<LirsPolicy>(capacity);
  }
  if (name == "lecar") {
    return std::make_unique<LecarPolicy>(capacity);
  }
  if (name == "cacheus") {
    return std::make_unique<CacheusPolicy>(capacity);
  }
  if (name == "lhd") {
    return std::make_unique<LhdPolicy>(capacity);
  }
  if (name == "hyperbolic") {
    return std::make_unique<HyperbolicPolicy>(capacity);
  }
  if (name == "fifo-reinsertion" || name == "clock" || name == "clock1") {
    return std::make_unique<ClockPolicy>(capacity, 1);
  }
  if (name == "clock2") {
    return std::make_unique<ClockPolicy>(capacity, 2);
  }
  if (name == "clock3") {
    return std::make_unique<ClockPolicy>(capacity, 3);
  }
  if (name == "clockpro") {
    return std::make_unique<ClockProPolicy>(capacity);
  }
  if (name == "sieve") {
    return std::make_unique<SievePolicy>(capacity);
  }
  if (name == "s3fifo") {
    return std::make_unique<S3FifoPolicy>(capacity);
  }
  if (name == "belady") {
    if (trace == nullptr) {
      return nullptr;
    }
    return std::make_unique<BeladyPolicy>(capacity, *trace);
  }
  return nullptr;
}

// Probation/main split for a QD composition. Shared by the flat and dense
// builders so the two variants are behaviorally identical.
size_t QdProbationCapacity(size_t total_capacity, double probation_fraction) {
  size_t probation = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(total_capacity) *
                                          probation_fraction)));
  return std::min(probation, total_capacity - 1);
}

// Dense variants exist only for policies whose decisions depend on ids
// solely through index lookups and queue order — never on the id's value,
// hash, or hash-table iteration order — so a bijective remap to dense ids
// cannot change any eviction decision. Policies that sample the index
// (random, lhd, hyperbolic, ...) or hash ids into sketches (wtinylfu) are
// excluded even where a dense index would mechanically work.
std::unique_ptr<EvictionPolicy> MakeDenseBase(const std::string& name,
                                              size_t capacity,
                                              uint64_t universe) {
  const DenseIndexFactory factory{universe};
  if (name == "fifo") {
    return std::make_unique<DenseFifoPolicy>(capacity, factory);
  }
  if (name == "lru") {
    return std::make_unique<DenseLruPolicy>(capacity, factory);
  }
  if (name == "fifo-reinsertion" || name == "clock" || name == "clock1") {
    return std::make_unique<DenseClockPolicy>(capacity, 1, factory);
  }
  if (name == "clock2") {
    return std::make_unique<DenseClockPolicy>(capacity, 2, factory);
  }
  if (name == "clock3") {
    return std::make_unique<DenseClockPolicy>(capacity, 3, factory);
  }
  if (name == "sieve") {
    return std::make_unique<DenseSievePolicy>(capacity, factory);
  }
  if (name == "s3fifo") {
    return std::make_unique<DenseS3FifoPolicy>(capacity, 0.10, 0.9, factory);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<EvictionPolicy> MakeQdPolicy(const std::string& base_name,
                                             size_t total_capacity,
                                             const QdOptions& options,
                                             const std::vector<ObjectId>* trace) {
  QDLP_CHECK(total_capacity >= 2);
  QDLP_CHECK(options.probation_fraction > 0.0 && options.probation_fraction < 1.0);
  if (base_name == "belady") {
    // Belady consumes the trace positionally; behind a QD filter its
    // next-use bookkeeping would desynchronize from the request stream.
    return nullptr;
  }
  const size_t probation =
      QdProbationCapacity(total_capacity, options.probation_fraction);
  const size_t main_capacity = total_capacity - probation;
  auto main = MakeBase(base_name, main_capacity, trace);
  if (main == nullptr) {
    return nullptr;
  }
  return std::make_unique<QdCache>(probation, std::move(main), options);
}

bool HasDenseVariant(const std::string& name) {
  static const char* const kDense[] = {
      "fifo",   "lru",    "fifo-reinsertion", "clock",  "clock1",
      "clock2", "clock3", "sieve",            "s3fifo", "qd-lp-fifo",
  };
  for (const char* dense_name : kDense) {
    if (name == dense_name) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<EvictionPolicy> MakeDensePolicy(const std::string& name,
                                                size_t capacity,
                                                uint64_t universe) {
  if (name == "qd-lp-fifo") {
    QDLP_CHECK(capacity >= 2);
    QdOptions options;
    options.name = "qd-lp-fifo";
    const size_t probation =
        QdProbationCapacity(capacity, options.probation_fraction);
    auto main = MakeDenseBase("clock2", capacity - probation, universe);
    QDLP_DCHECK(main != nullptr);
    return std::make_unique<DenseQdCache>(probation, std::move(main), options,
                                          DenseIndexFactory{universe});
  }
  return MakeDenseBase(name, capacity, universe);
}

std::unique_ptr<EvictionPolicy> MakePolicy(const std::string& name,
                                           size_t capacity,
                                           const std::vector<ObjectId>* trace) {
  if (name == "qd-lp-fifo") {
    QdOptions options;
    options.name = "qd-lp-fifo";
    return MakeQdPolicy("clock2", capacity, options, trace);
  }
  if (name.rfind("qd-", 0) == 0) {
    return MakeQdPolicy(name.substr(3), capacity, QdOptions{}, trace);
  }
  return MakeBase(name, capacity, trace);
}

std::vector<std::string> KnownPolicyNames() {
  return {
      "fifo",        "lru",        "lfu",        "random",     "slru",
      "2q",          "arc",        "arc-slow",   "arc-fixed",  "car",
      "mq",          "lru2",       "wtinylfu",   "lru-batched",
      "lru-promote-old",           "lirs",       "lecar",      "cacheus",
      "lhd",         "hyperbolic", "belady",     "fifo-reinsertion",
      "clock2",      "clock3",     "clockpro",   "sieve",      "s3fifo",     "qd-lp-fifo",
      "qd-arc",      "qd-lirs",    "qd-lecar",   "qd-cacheus", "qd-lhd",
  };
}

}  // namespace qdlp
