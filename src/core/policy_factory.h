// Policy factory: build any eviction policy — including QD-composed ones —
// from a name and a total capacity budget. This is the public entry point
// the simulator, benches, and examples use.
//
// Recognized names:
//   fifo, lru, lfu, random, slru, 2q, arc, lirs, lecar, cacheus, lhd,
//   hyperbolic, belady (requires a trace), fifo-reinsertion (= clock1),
//   clock2, clock3, sieve, s3fifo,
//   qd-lp-fifo (probationary FIFO + ghost + 2-bit CLOCK main, the paper's
//   §4 algorithm), and qd-<base> for any non-composed base above
//   (e.g. qd-arc, qd-lirs, qd-lecar, qd-cacheus, qd-lhd).
//
// For QD-composed policies the capacity is the *total* budget: 10% goes to
// the probationary FIFO and 90% to the main policy, as in the paper.

#ifndef QDLP_SRC_CORE_POLICY_FACTORY_H_
#define QDLP_SRC_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/qd_cache.h"
#include "src/policies/eviction_policy.h"

namespace qdlp {

// Returns nullptr for unknown names or when "belady" is requested without a
// trace. Capacity must be >= 1 (>= 2 for QD compositions, checked).
std::unique_ptr<EvictionPolicy> MakePolicy(
    const std::string& name, size_t capacity,
    const std::vector<ObjectId>* trace = nullptr);

// Builds a QD wrapper with the given options around a named base policy.
std::unique_ptr<EvictionPolicy> MakeQdPolicy(
    const std::string& base_name, size_t total_capacity,
    const QdOptions& options = {},
    const std::vector<ObjectId>* trace = nullptr);

// True if `name` has a dense-index variant (MakeDensePolicy accepts it) AND
// its eviction decisions are invariant under a bijective id remap, so
// feeding it dense ids yields bit-identical miss ratios. The batched sweep
// engine uses this to pick the fast path per cell.
bool HasDenseVariant(const std::string& name);

// Builds the dense-index variant of `name`: identical eviction logic, but
// every id index is a direct-indexed slot array over [0, universe) instead
// of an open-addressing hash map. Ids fed to the returned policy must be
// dense (see trace/dense_trace.h). Returns nullptr for names without a
// dense variant. QD compositions use the exact same probation/main/ghost
// split as MakePolicy, so miss ratios match the flat variant bit for bit.
std::unique_ptr<EvictionPolicy> MakeDensePolicy(const std::string& name,
                                                size_t capacity,
                                                uint64_t universe);

// All names MakePolicy accepts (Belady included), for docs/tests/sweeps.
std::vector<std::string> KnownPolicyNames();

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_POLICY_FACTORY_H_
