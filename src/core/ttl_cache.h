// TTL layer over any eviction policy (§2: "removal can either be directly
// invoked by the user or indirectly via the use of time-to-live").
//
// Each admission carries a TTL in logical time (requests). A request to an
// expired object is a miss and re-admits it with a fresh TTL. Expiration is
//  * eager when the inner policy supports Remove(): an expiry min-heap is
//    drained a few entries per access, so dead objects free space promptly
//    (the Quick-Demotion-by-clock behaviour web caches rely on); or
//  * lazy otherwise: expired entries linger until evicted or re-accessed,
//    exactly like memcached's lazy expiration.

#ifndef QDLP_SRC_CORE_TTL_CACHE_H_
#define QDLP_SRC_CORE_TTL_CACHE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class TtlCache {
 public:
  // `max_expirations_per_access` bounds the eager-cleanup work per request.
  explicit TtlCache(std::unique_ptr<EvictionPolicy> inner,
                    int max_expirations_per_access = 4);

  // Requests `id`; on (re-)admission the object lives for `ttl` accesses.
  // Returns true only for a fresh (non-expired) hit.
  bool Access(ObjectId id, uint64_t ttl);

  // True when `id` is resident and not expired.
  bool ContainsFresh(ObjectId id) const;

  uint64_t now() const { return now_; }
  size_t resident() const { return inner_->size(); }
  uint64_t expired_hits() const { return expired_hits_; }
  uint64_t eager_expirations() const { return eager_expirations_; }
  const EvictionPolicy& inner() const { return *inner_; }

 private:
  // Erases freshness metadata when the inner policy evicts, so `expiry_`
  // tracks only resident objects.
  class ExpiryReaper : public AccessEventSink {
   public:
    explicit ExpiryReaper(TtlCache* owner) : owner_(owner) {}
    void OnEvict(ObjectId id, uint64_t) override { owner_->expiry_.erase(id); }

   private:
    TtlCache* owner_;
  };

  void DrainExpired();

  std::unique_ptr<EvictionPolicy> inner_;
  std::unique_ptr<ExpiryReaper> reaper_;
  int max_expirations_per_access_;
  uint64_t now_ = 0;
  std::unordered_map<ObjectId, uint64_t> expiry_;  // id -> expires-at time
  // Min-heap of (expires_at, id); entries may be stale (object refreshed or
  // already gone) and are skipped on pop.
  using HeapEntry = std::pair<uint64_t, ObjectId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  uint64_t expired_hits_ = 0;
  uint64_t eager_expirations_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_TTL_CACHE_H_
