// S3-FIFO (Yang et al., SOSP'23) — the eviction algorithm that grew out of
// this paper's LEGO recipe: three FIFO queues, nothing else.
//
//  * Small FIFO (default 10% of space): probation for new objects.
//  * Main FIFO (90%): holds objects with proven reuse; eviction uses lazy
//    promotion (2-bit frequency counter, reinsertion while counter > 0).
//  * Ghost FIFO: ids evicted from the small queue; a ghost hit admits the
//    object straight into the main queue.
//
// Relative to QD-LP-FIFO (QdCache over 2-bit CLOCK) the difference is
// mechanical: the main queue is a FIFO with reinsert-on-nonzero-counter
// rather than a CLOCK ring, and small-queue evictees need freq >= 1 to be
// promoted. Included as the paper's "future work made concrete" extension.
//
// Both resident FIFOs are slab-backed intrusive queues sharing one id
// index; a main-queue reinsertion is an O(1) splice within the slab rather
// than a pop + push of heap nodes. The index backing (resident index and
// ghost index alike) is a template parameter: S3FifoPolicy probes
// open-addressing FlatMaps, DenseS3FifoPolicy (batched sweep engine, dense
// traces) direct-indexed slot arrays.

#ifndef QDLP_SRC_CORE_S3FIFO_H_
#define QDLP_SRC_CORE_S3FIFO_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/core/ghost_queue.h"
#include "src/policies/eviction_policy.h"
#include "src/util/dense_index.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

template <typename IndexFactory>
class BasicS3FifoPolicy : public EvictionPolicy {
 public:
  explicit BasicS3FifoPolicy(size_t capacity, double small_fraction = 0.10,
                             double ghost_factor = 0.9,
                             IndexFactory factory = {})
      : EvictionPolicy(capacity, "s3fifo"),
        small_capacity_(std::max<size_t>(
            1, static_cast<size_t>(std::llround(
                   static_cast<double>(capacity) * small_fraction)))),
        ghost_(std::max<size_t>(
                   1, static_cast<size_t>(std::llround(
                          static_cast<double>(capacity) * ghost_factor))),
               factory),
        index_(factory.template Make<Entry>()) {
    QDLP_CHECK(small_fraction > 0.0 && small_fraction < 1.0);
    small_capacity_ = std::min(small_capacity_, capacity);
    index_.Reserve(capacity);
    small_fifo_.Reserve(small_capacity_);
    main_fifo_.Reserve(capacity);
  }

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  uint64_t AccessBatch(const uint32_t* ids, size_t n) override {
    return PrefetchPipelinedBatch(*this, index_, ids, n);
  }

  size_t small_size() const { return small_fifo_.size(); }
  size_t main_size() const { return main_fifo_.size(); }

  // Queue-size accounting (small + main partition the resident set) and
  // ghost/resident disjointness.
  void CheckInvariants() const override {
    QDLP_CHECK(index_.size() <= capacity());
    QDLP_CHECK(small_fifo_.size() + main_fifo_.size() == index_.size());
    small_fifo_.ForEach([&](uint32_t slot, ObjectId id) {
      const Entry* entry = index_.Find(id);
      QDLP_CHECK(entry != nullptr);
      QDLP_CHECK(entry->where == Where::kSmall);
      QDLP_CHECK(entry->slot == slot);
    });
    main_fifo_.ForEach([&](uint32_t slot, ObjectId id) {
      const Entry* entry = index_.Find(id);
      QDLP_CHECK(entry != nullptr);
      QDLP_CHECK(entry->where == Where::kMain);
      QDLP_CHECK(entry->slot == slot);
    });
    // Ghost entries are ids that were evicted; none may still be resident.
    ghost_.ForEachLive(
        [&](ObjectId id) { QDLP_CHECK(!index_.Contains(id)); });
    ghost_.CheckInvariants();
    small_fifo_.CheckInvariants();
    main_fifo_.CheckInvariants();
    index_.CheckInvariants();
  }

  size_t ApproxMetadataBytes() const override {
    return small_fifo_.MemoryBytes() + main_fifo_.MemoryBytes() +
           index_.MemoryBytes() + ghost_.ApproxMetadataBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override {
    Entry* entry = index_.Find(id);
    if (entry != nullptr) {
      entry->freq = std::min<uint8_t>(entry->freq + 1, kMaxFreq);
      return true;
    }
    MakeRoom();
    if (ghost_.Consume(id)) {
      NotifyGhostHit(id);
      InsertMain(id);
    } else {
      InsertSmall(id);
    }
    return false;
  }

  void FillOccupancy(CacheStats& stats) const override {
    stats.probation_size = small_fifo_.size();
    stats.main_size = main_fifo_.size();
    stats.ghost_size = ghost_.size();
  }

 private:
  static constexpr uint8_t kMaxFreq = 3;

  enum class Where : uint8_t { kSmall, kMain };
  struct Entry {
    uint32_t slot = 0;  // slot in the FIFO matching `where`
    Where where = Where::kSmall;
    uint8_t freq = 0;
  };

  void InsertSmall(ObjectId id) {
    const uint32_t slot = small_fifo_.PushBack(id);
    index_[id] = Entry{slot, Where::kSmall, 0};
    NotifyInsert(id);
  }

  void InsertMain(ObjectId id) {
    const uint32_t slot = main_fifo_.PushBack(id);
    index_[id] = Entry{slot, Where::kMain, 0};
    NotifyInsert(id);
  }

  void EvictSmall() {
    QDLP_DCHECK(!small_fifo_.empty());
    const uint32_t victim_slot = small_fifo_.front();
    const ObjectId victim = small_fifo_[victim_slot];
    small_fifo_.Erase(victim_slot);
    Entry* entry = index_.Find(victim);
    QDLP_DCHECK(entry != nullptr && entry->where == Where::kSmall);
    if (entry->freq >= 1) {
      // Re-accessed while on probation: promote into the main FIFO. This
      // does not free space; the caller keeps evicting until space appears.
      entry->slot = main_fifo_.PushBack(victim);
      entry->where = Where::kMain;
      entry->freq = 0;
      NotifyPromote(victim);
    } else {
      index_.Erase(victim);
      ghost_.Insert(victim);
      NotifyDemote(victim);
      NotifyEvict(victim);
    }
  }

  void EvictMain() {
    while (true) {
      QDLP_DCHECK(!main_fifo_.empty());
      const uint32_t candidate_slot = main_fifo_.front();
      const ObjectId candidate = main_fifo_[candidate_slot];
      Entry* entry = index_.Find(candidate);
      QDLP_DCHECK(entry != nullptr && entry->where == Where::kMain);
      if (entry->freq > 0) {
        // Lazy promotion: demonstrated reuse buys another lap at freq - 1.
        --entry->freq;
        main_fifo_.MoveToBack(candidate_slot);
        NotifyPromote(candidate);
        continue;
      }
      main_fifo_.Erase(candidate_slot);
      index_.Erase(candidate);
      NotifyEvict(candidate);
      return;
    }
  }

  // Frees space according to the S3-FIFO rule: evict from small when it is
  // over its share, otherwise from main.
  void MakeRoom() {
    while (index_.size() >= capacity()) {
      if (!small_fifo_.empty() &&
          (small_fifo_.size() >= small_capacity_ || main_fifo_.empty())) {
        EvictSmall();
      } else {
        EvictMain();
      }
    }
  }

  size_t small_capacity_;
  // Each resident id appears exactly once, in the FIFO matching its
  // Entry::where (CheckInvariants enforces this).
  IntrusiveList<ObjectId> small_fifo_;  // front = oldest
  IntrusiveList<ObjectId> main_fifo_;
  BasicGhostQueue<IndexFactory> ghost_;
  typename IndexFactory::template Index<Entry> index_;
};

using S3FifoPolicy = BasicS3FifoPolicy<FlatIndexFactory>;
using DenseS3FifoPolicy = BasicS3FifoPolicy<DenseIndexFactory>;

extern template class BasicS3FifoPolicy<FlatIndexFactory>;
extern template class BasicS3FifoPolicy<DenseIndexFactory>;

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_S3FIFO_H_
