// S3-FIFO (Yang et al., SOSP'23) — the eviction algorithm that grew out of
// this paper's LEGO recipe: three FIFO queues, nothing else.
//
//  * Small FIFO (default 10% of space): probation for new objects.
//  * Main FIFO (90%): holds objects with proven reuse; eviction uses lazy
//    promotion (2-bit frequency counter, reinsertion while counter > 0).
//  * Ghost FIFO: ids evicted from the small queue; a ghost hit admits the
//    object straight into the main queue.
//
// Relative to QD-LP-FIFO (QdCache over 2-bit CLOCK) the difference is
// mechanical: the main queue is a FIFO with reinsert-on-nonzero-counter
// rather than a CLOCK ring, and small-queue evictees need freq >= 1 to be
// promoted. Included as the paper's "future work made concrete" extension.
//
// Both resident FIFOs are slab-backed intrusive queues sharing one
// open-addressing index; a main-queue reinsertion is an O(1) splice within
// the slab rather than a pop + push of heap nodes.

#ifndef QDLP_SRC_CORE_S3FIFO_H_
#define QDLP_SRC_CORE_S3FIFO_H_

#include <cstdint>

#include "src/core/ghost_queue.h"
#include "src/policies/eviction_policy.h"
#include "src/util/flat_map.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

class S3FifoPolicy : public EvictionPolicy {
 public:
  explicit S3FifoPolicy(size_t capacity, double small_fraction = 0.10,
                        double ghost_factor = 0.9);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  size_t small_size() const { return small_fifo_.size(); }
  size_t main_size() const { return main_fifo_.size(); }

  // Queue-size accounting (small + main partition the resident set) and
  // ghost/resident disjointness.
  void CheckInvariants() const override;

  size_t ApproxMetadataBytes() const override {
    return small_fifo_.MemoryBytes() + main_fifo_.MemoryBytes() +
           index_.MemoryBytes() + ghost_.ApproxMetadataBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  static constexpr uint8_t kMaxFreq = 3;

  enum class Where : uint8_t { kSmall, kMain };
  struct Entry {
    uint32_t slot = 0;  // slot in the FIFO matching `where`
    Where where = Where::kSmall;
    uint8_t freq = 0;
  };

  void InsertSmall(ObjectId id);
  void InsertMain(ObjectId id);
  void EvictSmall();
  void EvictMain();
  // Frees space according to the S3-FIFO rule: evict from small when it is
  // over its share, otherwise from main.
  void MakeRoom();

  size_t small_capacity_;
  // Each resident id appears exactly once, in the FIFO matching its
  // Entry::where (CheckInvariants enforces this).
  IntrusiveList<ObjectId> small_fifo_;  // front = oldest
  IntrusiveList<ObjectId> main_fifo_;
  GhostQueue ghost_;
  FlatMap<Entry> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_S3FIFO_H_
