// Metadata-only ghost FIFO queue (§4, Fig 4).
//
// Remembers the ids of objects recently evicted from the probationary FIFO.
// A miss that hits the ghost is evidence the object was demoted too quickly,
// so the QD wrapper admits it straight into the main cache. Entries cost a
// few bytes each (no data), matching the paper's "ghost FIFO stores as many
// entries as the main cache".
//
// Backed by a slab intrusive FIFO plus an id index; refreshing an id is an
// O(1) splice to the queue tail and consuming one is an O(1) unlink, so
// there are no stale records to skip while trimming. The index backing is a
// template parameter so the dense-id policy variants (batched sweep engine)
// carry a direct-indexed ghost as well.

#ifndef QDLP_SRC_CORE_GHOST_QUEUE_H_
#define QDLP_SRC_CORE_GHOST_QUEUE_H_

#include <cstddef>
#include <cstdint>

#include "src/trace/trace.h"
#include "src/util/check.h"
#include "src/util/dense_index.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

template <typename IndexFactory>
class BasicGhostQueue {
 public:
  // A capacity of 0 is a valid degenerate queue: it remembers nothing, every
  // Insert is dropped and every Consume misses (QD with no history).
  explicit BasicGhostQueue(size_t capacity, IndexFactory factory = {})
      : capacity_(capacity), live_(factory.template Make<uint32_t>()) {
    fifo_.Reserve(capacity);
    live_.Reserve(capacity);
  }

  // Records an eviction. Re-recording an id refreshes its position.
  void Insert(ObjectId id) {
    if (capacity_ == 0) {
      return;
    }
    uint32_t* slot = live_.Find(id);
    if (slot != nullptr) {
      fifo_.MoveToBack(*slot);  // refresh: re-recorded ids age from now
      return;
    }
    while (live_.size() >= capacity_) {
      const uint32_t oldest_slot = fifo_.front();
      const ObjectId oldest = fifo_[oldest_slot];
      fifo_.Erase(oldest_slot);
      live_.Erase(oldest);
    }
    live_[id] = fifo_.PushBack(id);
  }

  // Tests membership and, when present, removes the entry (each ghost hit is
  // consumed, per Fig 4's "unless it is in the ghost FIFO queue").
  bool Consume(ObjectId id) {
    const uint32_t* slot = live_.Find(id);
    if (slot == nullptr) {
      return false;
    }
    fifo_.Erase(*slot);
    live_.Erase(id);
    return true;
  }

  bool Contains(ObjectId id) const { return live_.Contains(id); }
  size_t size() const { return live_.size(); }
  size_t capacity() const { return capacity_; }

  // Invokes `fn(ObjectId)` for every live ghost entry, in no particular
  // order. Used by invariant checks (ghost/resident disjointness).
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    fifo_.ForEach([&](uint32_t slot, ObjectId id) {
      (void)slot;
      fn(id);
    });
  }

  // Validates internal bookkeeping: the live set never exceeds capacity and
  // the FIFO and index hold exactly the same ids.
  void CheckInvariants() const {
    QDLP_CHECK(live_.size() <= capacity_);
    QDLP_CHECK(fifo_.size() == live_.size());
    fifo_.ForEach([&](uint32_t slot, ObjectId id) {
      const uint32_t* indexed = live_.Find(id);
      QDLP_CHECK(indexed != nullptr);
      QDLP_CHECK(*indexed == slot);
    });
    fifo_.CheckInvariants();
    live_.CheckInvariants();
  }

  size_t ApproxMetadataBytes() const {
    return fifo_.MemoryBytes() + live_.MemoryBytes();
  }

 private:
  size_t capacity_;
  IntrusiveList<ObjectId> fifo_;  // front = oldest
  typename IndexFactory::template Index<uint32_t> live_;  // id -> fifo slot
};

using GhostQueue = BasicGhostQueue<FlatIndexFactory>;
using DenseGhostQueue = BasicGhostQueue<DenseIndexFactory>;

extern template class BasicGhostQueue<FlatIndexFactory>;
extern template class BasicGhostQueue<DenseIndexFactory>;

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_GHOST_QUEUE_H_
