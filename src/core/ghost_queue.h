// Metadata-only ghost FIFO queue (§4, Fig 4).
//
// Remembers the ids of objects recently evicted from the probationary FIFO.
// A miss that hits the ghost is evidence the object was demoted too quickly,
// so the QD wrapper admits it straight into the main cache. Entries cost a
// few bytes each (no data), matching the paper's "ghost FIFO stores as many
// entries as the main cache".

#ifndef QDLP_SRC_CORE_GHOST_QUEUE_H_
#define QDLP_SRC_CORE_GHOST_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "src/trace/trace.h"
#include "src/util/check.h"

namespace qdlp {

class GhostQueue {
 public:
  // A capacity of 0 is a valid degenerate queue: it remembers nothing, every
  // Insert is dropped and every Consume misses (QD with no history).
  explicit GhostQueue(size_t capacity) : capacity_(capacity) {}

  // Records an eviction. Re-recording an id refreshes its position.
  void Insert(ObjectId id);

  // Tests membership and, when present, removes the entry (each ghost hit is
  // consumed, per Fig 4's "unless it is in the ghost FIFO queue").
  bool Consume(ObjectId id);

  bool Contains(ObjectId id) const { return live_.contains(id); }
  size_t size() const { return live_.size(); }
  size_t capacity() const { return capacity_; }

  // Invokes `fn(ObjectId)` for every live ghost entry, in no particular
  // order. Used by invariant checks (ghost/resident disjointness).
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const auto& [id, generation] : live_) {
      (void)generation;
      fn(id);
    }
  }

  // Validates internal bookkeeping: the live set never exceeds capacity and
  // every live entry has a matching (id, generation) record in the FIFO.
  void CheckInvariants() const;

 private:
  size_t capacity_;
  // FIFO of (id, generation). Entries whose generation no longer matches
  // `live_` are stale (consumed or refreshed) and skipped while trimming;
  // `live_` is the source of truth for membership.
  std::deque<std::pair<ObjectId, uint64_t>> fifo_;
  std::unordered_map<ObjectId, uint64_t> live_;
  uint64_t next_generation_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_GHOST_QUEUE_H_
