// Metadata-only ghost FIFO queue (§4, Fig 4).
//
// Remembers the ids of objects recently evicted from the probationary FIFO.
// A miss that hits the ghost is evidence the object was demoted too quickly,
// so the QD wrapper admits it straight into the main cache. Entries cost a
// few bytes each (no data), matching the paper's "ghost FIFO stores as many
// entries as the main cache".
//
// Backed by a slab intrusive FIFO plus an open-addressing index; refreshing
// an id is an O(1) splice to the queue tail and consuming one is an O(1)
// unlink, so there are no stale records to skip while trimming.

#ifndef QDLP_SRC_CORE_GHOST_QUEUE_H_
#define QDLP_SRC_CORE_GHOST_QUEUE_H_

#include <cstddef>
#include <cstdint>

#include "src/trace/trace.h"
#include "src/util/check.h"
#include "src/util/flat_map.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

class GhostQueue {
 public:
  // A capacity of 0 is a valid degenerate queue: it remembers nothing, every
  // Insert is dropped and every Consume misses (QD with no history).
  explicit GhostQueue(size_t capacity) : capacity_(capacity) {
    fifo_.Reserve(capacity);
    live_.Reserve(capacity);
  }

  // Records an eviction. Re-recording an id refreshes its position.
  void Insert(ObjectId id);

  // Tests membership and, when present, removes the entry (each ghost hit is
  // consumed, per Fig 4's "unless it is in the ghost FIFO queue").
  bool Consume(ObjectId id);

  bool Contains(ObjectId id) const { return live_.Contains(id); }
  size_t size() const { return live_.size(); }
  size_t capacity() const { return capacity_; }

  // Invokes `fn(ObjectId)` for every live ghost entry, in no particular
  // order. Used by invariant checks (ghost/resident disjointness).
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    live_.ForEach([&](ObjectId id, uint32_t slot) {
      (void)slot;
      fn(id);
    });
  }

  // Validates internal bookkeeping: the live set never exceeds capacity and
  // the FIFO and index hold exactly the same ids.
  void CheckInvariants() const;

  size_t ApproxMetadataBytes() const {
    return fifo_.MemoryBytes() + live_.MemoryBytes();
  }

 private:
  size_t capacity_;
  IntrusiveList<ObjectId> fifo_;  // front = oldest
  FlatMap<uint32_t> live_;        // id -> fifo slot
};

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_GHOST_QUEUE_H_
