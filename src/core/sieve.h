// SIEVE (Zhang et al., NSDI'24) — the single-queue lazy-promotion design
// descended from this paper: FIFO order, one visited bit per object, and a
// "hand" that sweeps from tail to head *without moving survivors*. Unlike
// CLOCK, retained objects keep their position while the hand walks past
// them, and new objects are inserted at the head, behind the hand — which
// makes the survivors act as a sieve filtering new arrivals. Lazy promotion
// and quick demotion in one mechanism.

#ifndef QDLP_SRC_CORE_SIEVE_H_
#define QDLP_SRC_CORE_SIEVE_H_

#include <list>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class SievePolicy : public EvictionPolicy {
 public:
  explicit SievePolicy(size_t capacity);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

  // Queue/index consistency and the hand pointing inside the queue.
  void CheckInvariants() const override;

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Node {
    ObjectId id;
    bool visited;
  };

  void EvictOne();

  std::list<Node> queue_;  // front = head (newest), back = tail (oldest)
  std::list<Node>::iterator hand_ = queue_.end();
  std::unordered_map<ObjectId, std::list<Node>::iterator> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_SIEVE_H_
