// SIEVE (Zhang et al., NSDI'24) — the single-queue lazy-promotion design
// descended from this paper: FIFO order, one visited bit per object, and a
// "hand" that sweeps from tail to head *without moving survivors*. Unlike
// CLOCK, retained objects keep their position while the hand walks past
// them, and new objects are inserted at the head, behind the hand — which
// makes the survivors act as a sieve filtering new arrivals. Lazy promotion
// and quick demotion in one mechanism.
//
// Storage is a slab-backed intrusive queue plus an open-addressing index;
// the hand is a stable slot id into the slab, so a hit costs one flat-table
// probe plus one bit write and eviction walks contiguous memory.

#ifndef QDLP_SRC_CORE_SIEVE_H_
#define QDLP_SRC_CORE_SIEVE_H_

#include "src/policies/eviction_policy.h"
#include "src/util/flat_map.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

class SievePolicy : public EvictionPolicy {
 public:
  explicit SievePolicy(size_t capacity);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  // Queue/index consistency and the hand pointing inside the queue.
  void CheckInvariants() const override;

  size_t ApproxMetadataBytes() const override {
    return queue_.MemoryBytes() + index_.MemoryBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Node {
    ObjectId id;
    bool visited;
  };

  void EvictOne();

  IntrusiveList<Node> queue_;  // front = head (newest), back = tail (oldest)
  uint32_t hand_ = IntrusiveList<Node>::kNullSlot;
  FlatMap<uint32_t> index_;  // id -> queue slot
};

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_SIEVE_H_
