// SIEVE (Zhang et al., NSDI'24) — the single-queue lazy-promotion design
// descended from this paper: FIFO order, one visited bit per object, and a
// "hand" that sweeps from tail to head *without moving survivors*. Unlike
// CLOCK, retained objects keep their position while the hand walks past
// them, and new objects are inserted at the head, behind the hand — which
// makes the survivors act as a sieve filtering new arrivals. Lazy promotion
// and quick demotion in one mechanism.
//
// Storage is a slab-backed intrusive queue plus an id index; the hand is a
// stable slot id into the slab, so a hit costs one index probe plus one bit
// write and eviction walks contiguous memory. The index backing is a
// template parameter: SievePolicy probes an open-addressing FlatMap,
// DenseSievePolicy (batched sweep engine, dense traces) a direct-indexed
// slot array.

#ifndef QDLP_SRC_CORE_SIEVE_H_
#define QDLP_SRC_CORE_SIEVE_H_

#include "src/policies/eviction_policy.h"
#include "src/util/dense_index.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

template <typename IndexFactory>
class BasicSievePolicy : public EvictionPolicy {
 public:
  explicit BasicSievePolicy(size_t capacity, IndexFactory factory = {})
      : EvictionPolicy(capacity, "sieve"),
        index_(factory.template Make<uint32_t>()) {
    queue_.Reserve(capacity);
    // +1: a miss emplaces the newcomer before evicting the victim, so the
    // index transiently holds capacity + 1 entries.
    index_.Reserve(capacity + 1);
  }

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  uint64_t AccessBatch(const uint32_t* ids, size_t n) override {
    return PrefetchPipelinedBatch(*this, index_, ids, n);
  }

  // Queue/index consistency and the hand pointing inside the queue.
  void CheckInvariants() const override {
    QDLP_CHECK(queue_.size() == index_.size());
    QDLP_CHECK(index_.size() <= capacity());
    bool hand_in_queue = hand_ == IntrusiveList<Node>::kNullSlot;
    queue_.ForEach([&](uint32_t slot, const Node& node) {
      const uint32_t* indexed = index_.Find(node.id);
      QDLP_CHECK(indexed != nullptr);
      QDLP_CHECK(*indexed == slot);
      if (slot == hand_) {
        hand_in_queue = true;
      }
    });
    QDLP_CHECK(hand_in_queue);
    queue_.CheckInvariants();
    index_.CheckInvariants();
  }

  size_t ApproxMetadataBytes() const override {
    return queue_.MemoryBytes() + index_.MemoryBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override {
    const auto [slot, inserted] = index_.Emplace(id);
    if (!inserted) {
      queue_[*slot].visited = true;  // the only metadata write on a hit
      return true;
    }
    // Evict after the emplace (one probe covers lookup + insert); Erase
    // never relocates live index slots, so `slot` stays valid across it.
    if (index_.size() > capacity()) {
      EvictOne();
    }
    *slot = queue_.PushFront(Node{id, false});
    NotifyInsert(id);
    return false;
  }

 private:
  struct Node {
    ObjectId id;
    bool visited;
  };

  void EvictOne() {
    QDLP_DCHECK(!queue_.empty());
    // The hand resumes where the previous eviction stopped; when it falls
    // off the head (or was never set), it restarts at the tail.
    if (hand_ == IntrusiveList<Node>::kNullSlot) {
      hand_ = queue_.back();
    }
    while (queue_[hand_].visited) {
      // Lazy promotion, SIEVE-style: the survivor keeps its position and
      // only its visited bit is cleared as the hand walks past.
      queue_[hand_].visited = false;
      NotifyPromote(queue_[hand_].id);
      if (hand_ == queue_.front()) {
        hand_ = queue_.back();  // wrap: head -> tail
      } else {
        hand_ = queue_.Prev(hand_);  // move toward the head
      }
    }
    const ObjectId victim = queue_[hand_].id;
    const uint32_t next = hand_ == queue_.front()
                              ? IntrusiveList<Node>::kNullSlot
                              : queue_.Prev(hand_);
    queue_.Erase(hand_);
    hand_ = next;
    index_.Erase(victim);
    NotifyEvict(victim);
  }

  IntrusiveList<Node> queue_;  // front = head (newest), back = tail (oldest)
  uint32_t hand_ = IntrusiveList<Node>::kNullSlot;
  typename IndexFactory::template Index<uint32_t> index_;  // id -> queue slot
};

using SievePolicy = BasicSievePolicy<FlatIndexFactory>;
using DenseSievePolicy = BasicSievePolicy<DenseIndexFactory>;

extern template class BasicSievePolicy<FlatIndexFactory>;
extern template class BasicSievePolicy<DenseIndexFactory>;

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_SIEVE_H_
