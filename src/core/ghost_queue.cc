#include "src/core/ghost_queue.h"

namespace qdlp {

// Compile both index backings once here rather than in every TU.
template class BasicGhostQueue<FlatIndexFactory>;
template class BasicGhostQueue<DenseIndexFactory>;

}  // namespace qdlp
