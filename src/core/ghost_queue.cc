#include "src/core/ghost_queue.h"

namespace qdlp {

void GhostQueue::Insert(ObjectId id) {
  if (capacity_ == 0) {
    return;
  }
  const uint64_t generation = next_generation_++;
  fifo_.emplace_back(id, generation);
  live_[id] = generation;
  while (live_.size() > capacity_ && !fifo_.empty()) {
    const auto [oldest_id, oldest_generation] = fifo_.front();
    fifo_.pop_front();
    const auto it = live_.find(oldest_id);
    if (it != live_.end() && it->second == oldest_generation) {
      live_.erase(it);
    }
  }
  // Opportunistically drop leading stale records so fifo_ cannot grow
  // unboundedly ahead of live_.
  while (!fifo_.empty()) {
    const auto [front_id, front_generation] = fifo_.front();
    const auto it = live_.find(front_id);
    if (it != live_.end() && it->second == front_generation) {
      break;
    }
    fifo_.pop_front();
  }
}

bool GhostQueue::Consume(ObjectId id) { return live_.erase(id) > 0; }

void GhostQueue::CheckInvariants() const {
  QDLP_CHECK(live_.size() <= capacity_);
  // Stale-record trimming keeps the FIFO from outgrowing the live set by
  // more than the records consumed since the last Insert.
  size_t matching = 0;
  for (const auto& [id, generation] : fifo_) {
    const auto it = live_.find(id);
    if (it != live_.end() && it->second == generation) {
      ++matching;
    }
  }
  QDLP_CHECK(matching == live_.size());
}

}  // namespace qdlp
