#include "src/core/ghost_queue.h"

namespace qdlp {

void GhostQueue::Insert(ObjectId id) {
  if (capacity_ == 0) {
    return;
  }
  uint32_t* slot = live_.Find(id);
  if (slot != nullptr) {
    fifo_.MoveToBack(*slot);  // refresh: re-recorded ids age from now
    return;
  }
  while (live_.size() >= capacity_) {
    const uint32_t oldest_slot = fifo_.front();
    const ObjectId oldest = fifo_[oldest_slot];
    fifo_.Erase(oldest_slot);
    live_.Erase(oldest);
  }
  live_[id] = fifo_.PushBack(id);
}

bool GhostQueue::Consume(ObjectId id) {
  const uint32_t* slot = live_.Find(id);
  if (slot == nullptr) {
    return false;
  }
  fifo_.Erase(*slot);
  live_.Erase(id);
  return true;
}

void GhostQueue::CheckInvariants() const {
  QDLP_CHECK(live_.size() <= capacity_);
  QDLP_CHECK(fifo_.size() == live_.size());
  fifo_.ForEach([&](uint32_t slot, ObjectId id) {
    const uint32_t* indexed = live_.Find(id);
    QDLP_CHECK(indexed != nullptr);
    QDLP_CHECK(*indexed == slot);
  });
  fifo_.CheckInvariants();
  live_.CheckInvariants();
}

}  // namespace qdlp
