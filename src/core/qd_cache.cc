#include "src/core/qd_cache.h"

#include <cmath>

namespace qdlp {

namespace {

// Forwards main-cache evictions to the wrapper's listener so that residency
// accounting spans the whole composed cache. Inserts are ignored: the
// wrapper reports an object's insertion when it first takes cache space
// (probation entry or ghost-path admission), and a promotion from probation
// into main is not a new insertion.
class MainEvictionForwarder : public EvictionListener {
 public:
  using Callback = std::function<void(ObjectId)>;
  explicit MainEvictionForwarder(Callback on_evict)
      : on_evict_(std::move(on_evict)) {}

  void OnInsert(ObjectId, uint64_t) override {}
  void OnEvict(ObjectId id, uint64_t) override { on_evict_(id); }

 private:
  Callback on_evict_;
};

}  // namespace

QdCache::QdCache(size_t probation_capacity,
                 std::unique_ptr<EvictionPolicy> main, const QdOptions& options)
    : EvictionPolicy(probation_capacity + main->capacity(),
                     options.name.empty() ? "qd-" + main->name() : options.name),
      probation_capacity_(probation_capacity),
      main_(std::move(main)),
      ghost_(std::max<size_t>(
          1, static_cast<size_t>(std::llround(
                 static_cast<double>(main_->capacity()) * options.ghost_factor)))) {
  QDLP_CHECK(probation_capacity_ >= 1);
  probation_fifo_.Reserve(probation_capacity_);
  probation_index_.Reserve(probation_capacity_);
  main_forwarder_ = std::make_unique<MainEvictionForwarder>(
      [this](ObjectId id) { NotifyEvict(id); });
  main_->set_eviction_listener(main_forwarder_.get());
}

void QdCache::CheckInvariants() const {
  QDLP_CHECK(probation_index_.size() <= probation_capacity_);
  QDLP_CHECK(probation_fifo_.size() == probation_index_.size());
  QDLP_CHECK(main_->size() <= main_->capacity());
  QDLP_CHECK(size() <= capacity());
  probation_fifo_.ForEach([&](uint32_t slot, ObjectId id) {
    const ProbationEntry* entry = probation_index_.Find(id);
    QDLP_CHECK(entry != nullptr);
    QDLP_CHECK(entry->slot == slot);
    // An object holds space in exactly one region.
    QDLP_CHECK(!main_->Contains(id));
    QDLP_CHECK(!ghost_.Contains(id));
  });
  // Ghost entries are history, never resident (in either region).
  ghost_.ForEachLive([&](ObjectId id) {
    QDLP_CHECK(!probation_index_.Contains(id));
    QDLP_CHECK(!main_->Contains(id));
  });
  probation_fifo_.CheckInvariants();
  probation_index_.CheckInvariants();
  ghost_.CheckInvariants();
  main_->CheckInvariants();
}

void QdCache::EvictFromProbation() {
  QDLP_DCHECK(!probation_fifo_.empty());
  const uint32_t victim_slot = probation_fifo_.front();
  const ObjectId victim = probation_fifo_[victim_slot];
  probation_fifo_.Erase(victim_slot);
  const ProbationEntry* entry = probation_index_.Find(victim);
  QDLP_DCHECK(entry != nullptr);
  const bool accessed = entry->accessed;
  probation_index_.Erase(victim);
  if (accessed) {
    // Lazy promotion: re-accessed while on probation -> main cache.
    ++promotions_;
    main_->Access(victim);
  } else {
    // Quick demotion: one lap through the small FIFO was its only chance.
    ++quick_demotions_;
    ghost_.Insert(victim);
    NotifyEvict(victim);
  }
}

void QdCache::AdmitToProbation(ObjectId id) {
  while (probation_index_.size() >= probation_capacity_) {
    EvictFromProbation();
  }
  const uint32_t slot = probation_fifo_.PushBack(id);
  probation_index_[id] = ProbationEntry{slot, false};
  NotifyInsert(id);
}

bool QdCache::OnAccess(ObjectId id) {
  ProbationEntry* probation_entry = probation_index_.Find(id);
  if (probation_entry != nullptr) {
    probation_entry->accessed = true;  // single metadata bit; no reordering
    return true;
  }
  if (main_->Contains(id)) {
    return main_->Access(id);
  }
  if (ghost_.Consume(id)) {
    ++ghost_admissions_;
    main_->Access(id);
    NotifyInsert(id);
    return false;
  }
  AdmitToProbation(id);
  return false;
}

}  // namespace qdlp
