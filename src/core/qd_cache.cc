#include "src/core/qd_cache.h"

#include <cmath>

namespace qdlp {

namespace {

// Forwards main-cache evictions to the wrapper's listener so that residency
// accounting spans the whole composed cache. Inserts are ignored: the
// wrapper reports an object's insertion when it first takes cache space
// (probation entry or ghost-path admission), and a promotion from probation
// into main is not a new insertion.
class MainEvictionForwarder : public EvictionListener {
 public:
  using Callback = std::function<void(ObjectId)>;
  explicit MainEvictionForwarder(Callback on_evict)
      : on_evict_(std::move(on_evict)) {}

  void OnInsert(ObjectId, uint64_t) override {}
  void OnEvict(ObjectId id, uint64_t) override { on_evict_(id); }

 private:
  Callback on_evict_;
};

}  // namespace

QdCache::QdCache(size_t probation_capacity,
                 std::unique_ptr<EvictionPolicy> main, const QdOptions& options)
    : EvictionPolicy(probation_capacity + main->capacity(),
                     options.name.empty() ? "qd-" + main->name() : options.name),
      probation_capacity_(probation_capacity),
      main_(std::move(main)),
      ghost_(std::max<size_t>(
          1, static_cast<size_t>(std::llround(
                 static_cast<double>(main_->capacity()) * options.ghost_factor)))) {
  QDLP_CHECK(probation_capacity_ >= 1);
  probation_index_.reserve(probation_capacity_);
  main_forwarder_ = std::make_unique<MainEvictionForwarder>(
      [this](ObjectId id) { NotifyEvict(id); });
  main_->set_eviction_listener(main_forwarder_.get());
}

void QdCache::CheckInvariants() const {
  QDLP_CHECK(probation_index_.size() <= probation_capacity_);
  QDLP_CHECK(probation_fifo_.size() == probation_index_.size());
  QDLP_CHECK(main_->size() <= main_->capacity());
  QDLP_CHECK(size() <= capacity());
  for (const ObjectId id : probation_fifo_) {
    QDLP_CHECK(probation_index_.contains(id));
    // An object holds space in exactly one region.
    QDLP_CHECK(!main_->Contains(id));
    QDLP_CHECK(!ghost_.Contains(id));
  }
  // Ghost entries are history, never resident (in either region).
  ghost_.ForEachLive([&](ObjectId id) {
    QDLP_CHECK(!probation_index_.contains(id));
    QDLP_CHECK(!main_->Contains(id));
  });
  ghost_.CheckInvariants();
  main_->CheckInvariants();
}

void QdCache::EvictFromProbation() {
  QDLP_DCHECK(!probation_fifo_.empty());
  const ObjectId victim = probation_fifo_.front();
  probation_fifo_.pop_front();
  const auto it = probation_index_.find(victim);
  QDLP_DCHECK(it != probation_index_.end());
  const bool accessed = it->second;
  probation_index_.erase(it);
  if (accessed) {
    // Lazy promotion: re-accessed while on probation -> main cache.
    ++promotions_;
    main_->Access(victim);
  } else {
    // Quick demotion: one lap through the small FIFO was its only chance.
    ++quick_demotions_;
    ghost_.Insert(victim);
    NotifyEvict(victim);
  }
}

void QdCache::AdmitToProbation(ObjectId id) {
  while (probation_index_.size() >= probation_capacity_) {
    EvictFromProbation();
  }
  probation_fifo_.push_back(id);
  probation_index_[id] = false;
  NotifyInsert(id);
}

bool QdCache::OnAccess(ObjectId id) {
  const auto probation_it = probation_index_.find(id);
  if (probation_it != probation_index_.end()) {
    probation_it->second = true;  // single metadata bit; no reordering
    return true;
  }
  if (main_->Contains(id)) {
    return main_->Access(id);
  }
  if (ghost_.Consume(id)) {
    ++ghost_admissions_;
    main_->Access(id);
    NotifyInsert(id);
    return false;
  }
  AdmitToProbation(id);
  return false;
}

}  // namespace qdlp
