#include "src/core/qd_cache.h"

namespace qdlp {

// Compile both index backings once here rather than in every TU.
template class BasicQdCache<FlatIndexFactory>;
template class BasicQdCache<DenseIndexFactory>;

}  // namespace qdlp
