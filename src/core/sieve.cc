#include "src/core/sieve.h"

namespace qdlp {

SievePolicy::SievePolicy(size_t capacity) : EvictionPolicy(capacity, "sieve") {
  queue_.Reserve(capacity);
  // +1: a miss emplaces the newcomer before evicting the victim, so the
  // index transiently holds capacity + 1 entries.
  index_.Reserve(capacity + 1);
}

void SievePolicy::CheckInvariants() const {
  QDLP_CHECK(queue_.size() == index_.size());
  QDLP_CHECK(index_.size() <= capacity());
  bool hand_in_queue = hand_ == IntrusiveList<Node>::kNullSlot;
  queue_.ForEach([&](uint32_t slot, const Node& node) {
    const uint32_t* indexed = index_.Find(node.id);
    QDLP_CHECK(indexed != nullptr);
    QDLP_CHECK(*indexed == slot);
    if (slot == hand_) {
      hand_in_queue = true;
    }
  });
  QDLP_CHECK(hand_in_queue);
  queue_.CheckInvariants();
  index_.CheckInvariants();
}

void SievePolicy::EvictOne() {
  QDLP_DCHECK(!queue_.empty());
  // The hand resumes where the previous eviction stopped; when it falls off
  // the head (or was never set), it restarts at the tail.
  if (hand_ == IntrusiveList<Node>::kNullSlot) {
    hand_ = queue_.back();
  }
  while (queue_[hand_].visited) {
    queue_[hand_].visited = false;
    if (hand_ == queue_.front()) {
      hand_ = queue_.back();  // wrap: head -> tail
    } else {
      hand_ = queue_.Prev(hand_);  // move toward the head
    }
  }
  const ObjectId victim = queue_[hand_].id;
  const uint32_t next = hand_ == queue_.front()
                            ? IntrusiveList<Node>::kNullSlot
                            : queue_.Prev(hand_);
  queue_.Erase(hand_);
  hand_ = next;
  index_.Erase(victim);
  NotifyEvict(victim);
}

bool SievePolicy::OnAccess(ObjectId id) {
  const auto [slot, inserted] = index_.Emplace(id);
  if (!inserted) {
    queue_[*slot].visited = true;  // the only metadata write on a hit
    return true;
  }
  // Evict after the emplace (one probe covers lookup + insert); Erase never
  // relocates live index slots, so `slot` stays valid across it.
  if (index_.size() > capacity()) {
    EvictOne();
  }
  *slot = queue_.PushFront(Node{id, false});
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
