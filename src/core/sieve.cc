#include "src/core/sieve.h"

namespace qdlp {

// Compile both index backings once here rather than in every TU.
template class BasicSievePolicy<FlatIndexFactory>;
template class BasicSievePolicy<DenseIndexFactory>;

}  // namespace qdlp
