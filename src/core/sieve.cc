#include "src/core/sieve.h"

namespace qdlp {

SievePolicy::SievePolicy(size_t capacity) : EvictionPolicy(capacity, "sieve") {
  index_.reserve(capacity);
}

void SievePolicy::CheckInvariants() const {
  QDLP_CHECK(queue_.size() == index_.size());
  QDLP_CHECK(index_.size() <= capacity());
  bool hand_in_queue = hand_ == queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const auto entry = index_.find(it->id);
    QDLP_CHECK(entry != index_.end());
    QDLP_CHECK(entry->second == it);
    if (it == hand_) {
      hand_in_queue = true;
    }
  }
  QDLP_CHECK(hand_in_queue);
}

void SievePolicy::EvictOne() {
  QDLP_DCHECK(!queue_.empty());
  // The hand resumes where the previous eviction stopped; when it falls off
  // the head (or was never set), it restarts at the tail.
  if (hand_ == queue_.end()) {
    hand_ = std::prev(queue_.end());
  }
  while (hand_->visited) {
    hand_->visited = false;
    if (hand_ == queue_.begin()) {
      hand_ = std::prev(queue_.end());  // wrap: head -> tail
    } else {
      --hand_;  // move toward the head
    }
  }
  const ObjectId victim = hand_->id;
  const auto next = hand_ == queue_.begin() ? queue_.end() : std::prev(hand_);
  queue_.erase(hand_);
  hand_ = next;
  index_.erase(victim);
  NotifyEvict(victim);
}

bool SievePolicy::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->visited = true;  // the only metadata write on a hit
    return true;
  }
  if (index_.size() == capacity()) {
    EvictOne();
  }
  queue_.push_front(Node{id, false});
  index_[id] = queue_.begin();
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
