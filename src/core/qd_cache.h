// Quick Demotion wrapper — the paper's main construction (§4, Fig 4).
//
// Splits the cache budget into a small probationary FIFO (default 10%) and a
// main cache (90%) running any eviction policy, plus a metadata-only ghost
// FIFO holding as many entries as the main cache. The flow:
//
//   miss, id in ghost      -> admit into the MAIN cache (it was demoted too
//                             fast once; don't make it re-prove itself)
//   miss, id not in ghost  -> admit into the probationary FIFO
//   probationary FIFO full -> if the evictee was re-accessed since insertion,
//                             promote it into the main cache (lazy
//                             promotion); otherwise evict it and record the
//                             id in the ghost FIFO
//
// Hits anywhere only set a bit (probation) or forward to the main policy.
// Composing this over ARC/LIRS/CACHEUS/LeCaR/LHD yields the paper's
// QD-enhanced algorithms; composing it over 2-bit CLOCK yields QD-LP-FIFO.
//
// The probation/ghost index backing is a template parameter: QdCache probes
// open-addressing FlatMaps, DenseQdCache (batched sweep engine, dense
// traces, composed over a dense main policy) direct-indexed slot arrays.

#ifndef QDLP_SRC_CORE_QD_CACHE_H_
#define QDLP_SRC_CORE_QD_CACHE_H_

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/core/ghost_queue.h"
#include "src/policies/eviction_policy.h"
#include "src/util/dense_index.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

struct QdOptions {
  // Fraction of total capacity given to the probationary FIFO.
  double probation_fraction = 0.10;
  // Ghost capacity as a multiple of the main cache's object capacity.
  double ghost_factor = 1.0;
  // Reported policy name; defaults to "qd-<main policy name>".
  std::string name;
};

namespace internal {

// Forwards main-cache evictions to the wrapper so that eviction counting
// and residency accounting span the whole composed cache. Every other main
// event is swallowed: the wrapper reports an object's insertion when it
// first takes cache space (probation entry or ghost-path admission), a
// promotion from probation into main is not a new insertion, and the main
// policy's internal promotions (e.g. CLOCK reinsertion) are visible in its
// own Stats(), not the wrapper's probation->main flow.
class MainEvictionForwarder : public AccessEventSink {
 public:
  using Callback = std::function<void(ObjectId)>;
  explicit MainEvictionForwarder(Callback on_evict)
      : on_evict_(std::move(on_evict)) {}

  void OnEvict(ObjectId id, uint64_t) override { on_evict_(id); }

 private:
  Callback on_evict_;
};

}  // namespace internal

template <typename IndexFactory>
class BasicQdCache : public EvictionPolicy {
 public:
  // `main` must have capacity equal to the intended main-cache size; the
  // total capacity reported by this wrapper is probation + main. Use
  // MakeQdPolicy (policy_factory.h) to build one by name with a total
  // budget.
  BasicQdCache(size_t probation_capacity, std::unique_ptr<EvictionPolicy> main,
               const QdOptions& options = {}, IndexFactory factory = {})
      : EvictionPolicy(
            probation_capacity + main->capacity(),
            options.name.empty() ? "qd-" + std::string(main->name())
                                 : options.name),
        probation_capacity_(probation_capacity),
        main_(std::move(main)),
        ghost_(std::max<size_t>(
                   1, static_cast<size_t>(std::llround(
                          static_cast<double>(main_->capacity()) *
                          options.ghost_factor))),
               factory),
        probation_index_(factory.template Make<ProbationEntry>()) {
    QDLP_CHECK(probation_capacity_ >= 1);
    probation_fifo_.Reserve(probation_capacity_);
    probation_index_.Reserve(probation_capacity_);
    main_forwarder_ = std::make_unique<internal::MainEvictionForwarder>(
        [this](ObjectId id) { NotifyEvict(id); });
    main_->set_event_sink(main_forwarder_.get());
  }

  size_t size() const override {
    return probation_index_.size() + main_->size();
  }
  bool Contains(ObjectId id) const override {
    return probation_index_.Contains(id) || main_->Contains(id);
  }

  uint64_t AccessBatch(const uint32_t* ids, size_t n) override {
    // The probation index is the first probe of every access; the main
    // policy's own index is probed only after a probation miss, so its
    // latency is already partly hidden behind that first probe.
    return PrefetchPipelinedBatch(*this, probation_index_, ids, n);
  }

  size_t probation_size() const { return probation_index_.size(); }
  size_t probation_capacity() const { return probation_capacity_; }
  const EvictionPolicy& main() const { return *main_; }
  const BasicGhostQueue<IndexFactory>& ghost() const { return ghost_; }

  // Flow counters for analysis/ablation, aliasing the Stats() snapshot:
  // probation->main lazy promotions, probation->ghost quick demotions, and
  // ghost-hit readmissions into main.
  uint64_t promotions() const { return counters().promotions; }
  uint64_t quick_demotions() const { return counters().demotions; }
  uint64_t ghost_admissions() const { return counters().ghost_hits; }

  // Probation FIFO/index consistency, probation/main/ghost disjointness,
  // and capacity accounting for all three regions. Recurses into the main
  // policy's own CheckInvariants().
  void CheckInvariants() const override {
    QDLP_CHECK(probation_index_.size() <= probation_capacity_);
    QDLP_CHECK(probation_fifo_.size() == probation_index_.size());
    QDLP_CHECK(main_->size() <= main_->capacity());
    QDLP_CHECK(size() <= capacity());
    probation_fifo_.ForEach([&](uint32_t slot, ObjectId id) {
      const ProbationEntry* entry = probation_index_.Find(id);
      QDLP_CHECK(entry != nullptr);
      QDLP_CHECK(entry->slot == slot);
      // An object holds space in exactly one region.
      QDLP_CHECK(!main_->Contains(id));
      QDLP_CHECK(!ghost_.Contains(id));
    });
    // Ghost entries are history, never resident (in either region).
    ghost_.ForEachLive([&](ObjectId id) {
      QDLP_CHECK(!probation_index_.Contains(id));
      QDLP_CHECK(!main_->Contains(id));
    });
    probation_fifo_.CheckInvariants();
    probation_index_.CheckInvariants();
    ghost_.CheckInvariants();
    main_->CheckInvariants();
  }

  size_t ApproxMetadataBytes() const override {
    return probation_fifo_.MemoryBytes() + probation_index_.MemoryBytes() +
           ghost_.ApproxMetadataBytes() + main_->ApproxMetadataBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override {
    ProbationEntry* probation_entry = probation_index_.Find(id);
    if (probation_entry != nullptr) {
      probation_entry->accessed = true;  // single metadata bit; no reordering
      return true;
    }
    if (main_->Contains(id)) {
      return main_->Access(id);
    }
    if (ghost_.Consume(id)) {
      NotifyGhostHit(id);
      main_->Access(id);
      NotifyInsert(id);
      return false;
    }
    AdmitToProbation(id);
    return false;
  }

  void FillOccupancy(CacheStats& stats) const override {
    stats.probation_size = probation_index_.size();
    stats.main_size = main_->size();
    stats.ghost_size = ghost_.size();
  }

 private:
  struct ProbationEntry {
    uint32_t slot = 0;      // slot in probation_fifo_
    bool accessed = false;  // re-accessed while on probation
  };

  // Pushes `id` into the probationary FIFO, making room first.
  void AdmitToProbation(ObjectId id) {
    while (probation_index_.size() >= probation_capacity_) {
      EvictFromProbation();
    }
    const uint32_t slot = probation_fifo_.PushBack(id);
    probation_index_[id] = ProbationEntry{slot, false};
    NotifyInsert(id);
  }

  // Evicts the oldest probationary object, promoting or ghosting it.
  void EvictFromProbation() {
    QDLP_DCHECK(!probation_fifo_.empty());
    const uint32_t victim_slot = probation_fifo_.front();
    const ObjectId victim = probation_fifo_[victim_slot];
    probation_fifo_.Erase(victim_slot);
    const ProbationEntry* entry = probation_index_.Find(victim);
    QDLP_DCHECK(entry != nullptr);
    const bool accessed = entry->accessed;
    probation_index_.Erase(victim);
    if (accessed) {
      // Lazy promotion: re-accessed while on probation -> main cache.
      NotifyPromote(victim);
      main_->Access(victim);
    } else {
      // Quick demotion: one lap through the small FIFO was its only chance.
      NotifyDemote(victim);
      ghost_.Insert(victim);
      NotifyEvict(victim);
    }
  }

  size_t probation_capacity_;
  std::unique_ptr<EvictionPolicy> main_;
  BasicGhostQueue<IndexFactory> ghost_;
  // Forwards main-cache evictions into this wrapper's counters/sink.
  std::unique_ptr<AccessEventSink> main_forwarder_;

  IntrusiveList<ObjectId> probation_fifo_;  // front = oldest
  typename IndexFactory::template Index<ProbationEntry> probation_index_;
};

using QdCache = BasicQdCache<FlatIndexFactory>;
using DenseQdCache = BasicQdCache<DenseIndexFactory>;

extern template class BasicQdCache<FlatIndexFactory>;
extern template class BasicQdCache<DenseIndexFactory>;

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_QD_CACHE_H_
