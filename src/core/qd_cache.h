// Quick Demotion wrapper — the paper's main construction (§4, Fig 4).
//
// Splits the cache budget into a small probationary FIFO (default 10%) and a
// main cache (90%) running any eviction policy, plus a metadata-only ghost
// FIFO holding as many entries as the main cache. The flow:
//
//   miss, id in ghost      -> admit into the MAIN cache (it was demoted too
//                             fast once; don't make it re-prove itself)
//   miss, id not in ghost  -> admit into the probationary FIFO
//   probationary FIFO full -> if the evictee was re-accessed since insertion,
//                             promote it into the main cache (lazy
//                             promotion); otherwise evict it and record the
//                             id in the ghost FIFO
//
// Hits anywhere only set a bit (probation) or forward to the main policy.
// Composing this over ARC/LIRS/CACHEUS/LeCaR/LHD yields the paper's
// QD-enhanced algorithms; composing it over 2-bit CLOCK yields QD-LP-FIFO.

#ifndef QDLP_SRC_CORE_QD_CACHE_H_
#define QDLP_SRC_CORE_QD_CACHE_H_

#include <functional>
#include <memory>

#include "src/core/ghost_queue.h"
#include "src/policies/eviction_policy.h"
#include "src/util/flat_map.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

struct QdOptions {
  // Fraction of total capacity given to the probationary FIFO.
  double probation_fraction = 0.10;
  // Ghost capacity as a multiple of the main cache's object capacity.
  double ghost_factor = 1.0;
  // Reported policy name; defaults to "qd-<main policy name>".
  std::string name;
};

class QdCache : public EvictionPolicy {
 public:
  // `main` must have capacity equal to the intended main-cache size; the
  // total capacity reported by this wrapper is probation + main. Use
  // MakeQdCache (policy_factory.h) to build one by name with a total budget.
  QdCache(size_t probation_capacity, std::unique_ptr<EvictionPolicy> main,
          const QdOptions& options = {});

  size_t size() const override { return probation_index_.size() + main_->size(); }
  bool Contains(ObjectId id) const override {
    return probation_index_.Contains(id) || main_->Contains(id);
  }

  size_t probation_size() const { return probation_index_.size(); }
  size_t probation_capacity() const { return probation_capacity_; }
  const EvictionPolicy& main() const { return *main_; }
  const GhostQueue& ghost() const { return ghost_; }

  // Counters for analysis/ablation.
  uint64_t promotions() const { return promotions_; }
  uint64_t quick_demotions() const { return quick_demotions_; }
  uint64_t ghost_admissions() const { return ghost_admissions_; }

  // Probation FIFO/index consistency, probation/main/ghost disjointness,
  // and capacity accounting for all three regions. Recurses into the main
  // policy's own CheckInvariants().
  void CheckInvariants() const override;

  size_t ApproxMetadataBytes() const override {
    return probation_fifo_.MemoryBytes() + probation_index_.MemoryBytes() +
           ghost_.ApproxMetadataBytes() + main_->ApproxMetadataBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  // Pushes `id` into the probationary FIFO, making room first.
  void AdmitToProbation(ObjectId id);
  // Evicts the oldest probationary object, promoting or ghosting it.
  void EvictFromProbation();

  size_t probation_capacity_;
  std::unique_ptr<EvictionPolicy> main_;
  GhostQueue ghost_;
  // Forwards main-cache evictions into this wrapper's listener.
  std::unique_ptr<EvictionListener> main_forwarder_;

  struct ProbationEntry {
    uint32_t slot = 0;      // slot in probation_fifo_
    bool accessed = false;  // re-accessed while on probation
  };

  IntrusiveList<ObjectId> probation_fifo_;  // front = oldest
  FlatMap<ProbationEntry> probation_index_;

  uint64_t promotions_ = 0;
  uint64_t quick_demotions_ = 0;
  uint64_t ghost_admissions_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CORE_QD_CACHE_H_
