#include "src/core/s3fifo.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

S3FifoPolicy::S3FifoPolicy(size_t capacity, double small_fraction,
                           double ghost_factor)
    : EvictionPolicy(capacity, "s3fifo"),
      small_capacity_(std::max<size_t>(
          1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                              small_fraction)))),
      ghost_(std::max<size_t>(
          1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                              ghost_factor)))) {
  QDLP_CHECK(small_fraction > 0.0 && small_fraction < 1.0);
  small_capacity_ = std::min(small_capacity_, capacity);
  index_.reserve(capacity);
}

void S3FifoPolicy::CheckInvariants() const {
  QDLP_CHECK(index_.size() <= capacity());
  QDLP_CHECK(small_count_ + main_count_ == index_.size());
  QDLP_CHECK(small_fifo_.size() == small_count_);
  QDLP_CHECK(main_fifo_.size() == main_count_);
  for (const ObjectId id : small_fifo_) {
    const auto it = index_.find(id);
    QDLP_CHECK(it != index_.end());
    QDLP_CHECK(it->second.where == Where::kSmall);
  }
  for (const ObjectId id : main_fifo_) {
    const auto it = index_.find(id);
    QDLP_CHECK(it != index_.end());
    QDLP_CHECK(it->second.where == Where::kMain);
  }
  // Ghost entries are ids that were evicted; none may still be resident.
  ghost_.ForEachLive(
      [&](ObjectId id) { QDLP_CHECK(!index_.contains(id)); });
  ghost_.CheckInvariants();
}

void S3FifoPolicy::InsertSmall(ObjectId id) {
  small_fifo_.push_back(id);
  index_[id] = Entry{Where::kSmall, 0};
  ++small_count_;
  NotifyInsert(id);
}

void S3FifoPolicy::InsertMain(ObjectId id) {
  main_fifo_.push_back(id);
  index_[id] = Entry{Where::kMain, 0};
  ++main_count_;
  NotifyInsert(id);
}

void S3FifoPolicy::EvictSmall() {
  QDLP_DCHECK(!small_fifo_.empty());
  const ObjectId victim = small_fifo_.front();
  small_fifo_.pop_front();
  --small_count_;
  auto it = index_.find(victim);
  QDLP_DCHECK(it != index_.end() && it->second.where == Where::kSmall);
  if (it->second.freq >= 1) {
    // Re-accessed while on probation: promote into the main FIFO. This does
    // not free space; the caller keeps evicting until space appears.
    it->second.where = Where::kMain;
    it->second.freq = 0;
    main_fifo_.push_back(victim);
    ++main_count_;
  } else {
    index_.erase(it);
    ghost_.Insert(victim);
    NotifyEvict(victim);
  }
}

void S3FifoPolicy::EvictMain() {
  while (true) {
    QDLP_DCHECK(!main_fifo_.empty());
    const ObjectId candidate = main_fifo_.front();
    main_fifo_.pop_front();
    auto it = index_.find(candidate);
    QDLP_DCHECK(it != index_.end() && it->second.where == Where::kMain);
    if (it->second.freq > 0) {
      // Lazy promotion: demonstrated reuse buys another lap at freq - 1.
      --it->second.freq;
      main_fifo_.push_back(candidate);
      continue;
    }
    --main_count_;
    index_.erase(it);
    NotifyEvict(candidate);
    return;
  }
}

void S3FifoPolicy::MakeRoom() {
  while (index_.size() >= capacity()) {
    if (small_count_ > 0 && (small_count_ >= small_capacity_ || main_count_ == 0)) {
      EvictSmall();
    } else {
      EvictMain();
    }
  }
}

bool S3FifoPolicy::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    it->second.freq = std::min<uint8_t>(it->second.freq + 1, kMaxFreq);
    return true;
  }
  MakeRoom();
  if (ghost_.Consume(id)) {
    InsertMain(id);
  } else {
    InsertSmall(id);
  }
  return false;
}

}  // namespace qdlp
