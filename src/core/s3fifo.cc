#include "src/core/s3fifo.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

S3FifoPolicy::S3FifoPolicy(size_t capacity, double small_fraction,
                           double ghost_factor)
    : EvictionPolicy(capacity, "s3fifo"),
      small_capacity_(std::max<size_t>(
          1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                              small_fraction)))),
      ghost_(std::max<size_t>(
          1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                              ghost_factor)))) {
  QDLP_CHECK(small_fraction > 0.0 && small_fraction < 1.0);
  small_capacity_ = std::min(small_capacity_, capacity);
  index_.Reserve(capacity);
  small_fifo_.Reserve(small_capacity_);
  main_fifo_.Reserve(capacity);
}

void S3FifoPolicy::CheckInvariants() const {
  QDLP_CHECK(index_.size() <= capacity());
  QDLP_CHECK(small_fifo_.size() + main_fifo_.size() == index_.size());
  small_fifo_.ForEach([&](uint32_t slot, ObjectId id) {
    const Entry* entry = index_.Find(id);
    QDLP_CHECK(entry != nullptr);
    QDLP_CHECK(entry->where == Where::kSmall);
    QDLP_CHECK(entry->slot == slot);
  });
  main_fifo_.ForEach([&](uint32_t slot, ObjectId id) {
    const Entry* entry = index_.Find(id);
    QDLP_CHECK(entry != nullptr);
    QDLP_CHECK(entry->where == Where::kMain);
    QDLP_CHECK(entry->slot == slot);
  });
  // Ghost entries are ids that were evicted; none may still be resident.
  ghost_.ForEachLive(
      [&](ObjectId id) { QDLP_CHECK(!index_.Contains(id)); });
  ghost_.CheckInvariants();
  small_fifo_.CheckInvariants();
  main_fifo_.CheckInvariants();
  index_.CheckInvariants();
}

void S3FifoPolicy::InsertSmall(ObjectId id) {
  const uint32_t slot = small_fifo_.PushBack(id);
  index_[id] = Entry{slot, Where::kSmall, 0};
  NotifyInsert(id);
}

void S3FifoPolicy::InsertMain(ObjectId id) {
  const uint32_t slot = main_fifo_.PushBack(id);
  index_[id] = Entry{slot, Where::kMain, 0};
  NotifyInsert(id);
}

void S3FifoPolicy::EvictSmall() {
  QDLP_DCHECK(!small_fifo_.empty());
  const uint32_t victim_slot = small_fifo_.front();
  const ObjectId victim = small_fifo_[victim_slot];
  small_fifo_.Erase(victim_slot);
  Entry* entry = index_.Find(victim);
  QDLP_DCHECK(entry != nullptr && entry->where == Where::kSmall);
  if (entry->freq >= 1) {
    // Re-accessed while on probation: promote into the main FIFO. This does
    // not free space; the caller keeps evicting until space appears.
    entry->slot = main_fifo_.PushBack(victim);
    entry->where = Where::kMain;
    entry->freq = 0;
  } else {
    index_.Erase(victim);
    ghost_.Insert(victim);
    NotifyEvict(victim);
  }
}

void S3FifoPolicy::EvictMain() {
  while (true) {
    QDLP_DCHECK(!main_fifo_.empty());
    const uint32_t candidate_slot = main_fifo_.front();
    const ObjectId candidate = main_fifo_[candidate_slot];
    Entry* entry = index_.Find(candidate);
    QDLP_DCHECK(entry != nullptr && entry->where == Where::kMain);
    if (entry->freq > 0) {
      // Lazy promotion: demonstrated reuse buys another lap at freq - 1.
      --entry->freq;
      main_fifo_.MoveToBack(candidate_slot);
      continue;
    }
    main_fifo_.Erase(candidate_slot);
    index_.Erase(candidate);
    NotifyEvict(candidate);
    return;
  }
}

void S3FifoPolicy::MakeRoom() {
  while (index_.size() >= capacity()) {
    if (!small_fifo_.empty() &&
        (small_fifo_.size() >= small_capacity_ || main_fifo_.empty())) {
      EvictSmall();
    } else {
      EvictMain();
    }
  }
}

bool S3FifoPolicy::OnAccess(ObjectId id) {
  Entry* entry = index_.Find(id);
  if (entry != nullptr) {
    entry->freq = std::min<uint8_t>(entry->freq + 1, kMaxFreq);
    return true;
  }
  MakeRoom();
  if (ghost_.Consume(id)) {
    InsertMain(id);
  } else {
    InsertSmall(id);
  }
  return false;
}

}  // namespace qdlp
