#include "src/core/s3fifo.h"

namespace qdlp {

// Compile both index backings once here rather than in every TU.
template class BasicS3FifoPolicy<FlatIndexFactory>;
template class BasicS3FifoPolicy<DenseIndexFactory>;

}  // namespace qdlp
