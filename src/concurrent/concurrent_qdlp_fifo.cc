#include "src/concurrent/concurrent_qdlp_fifo.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace qdlp {

namespace {

// MakePolicy("qd-lp-fifo")'s split: probation 10% (rounded, at least 1,
// at most capacity - 1), main the remainder.
size_t ProbationCapacity(size_t capacity) {
  size_t probation = std::max<size_t>(
      1,
      static_cast<size_t>(std::llround(static_cast<double>(capacity) * 0.10)));
  return std::min(probation, capacity - 1);
}

}  // namespace

ConcurrentQdLpFifo::ConcurrentQdLpFifo(size_t capacity, size_t num_stripes)
    : capacity_(capacity),
      probation_capacity_(ProbationCapacity(capacity)),
      main_capacity_(capacity - probation_capacity_),
      ghost_capacity_(main_capacity_),  // ghost_factor = 1.0
      index_(capacity, num_stripes),
      probation_(probation_capacity_),
      main_(main_capacity_),
      ghost_(ghost_capacity_) {
  QDLP_CHECK(capacity >= 2);  // need at least one slot in each region
  QDLP_CHECK(capacity <= 0x7FFFFFFFu);  // index values carry a 1-bit tag
}

void ConcurrentQdLpFifo::CheckInvariants() {
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  DrainLocked();
  QDLP_CHECK(probation_count_ <= probation_capacity_);
  QDLP_CHECK(probation_head_ < probation_capacity_);
  QDLP_CHECK(main_used_ <= main_capacity_);
  QDLP_CHECK(main_hand_ < main_capacity_);
  // Probation ring entries are indexed at their physical position.
  for (size_t i = 0; i < probation_count_; ++i) {
    const size_t pos = (probation_head_ + i) % probation_capacity_;
    uint32_t value;
    QDLP_CHECK(index_.Find(probation_[pos].id, &value));
    QDLP_CHECK(value == static_cast<uint32_t>(pos));
  }
  // Main ring occupancy matches the bump allocator and the index.
  size_t main_occupied = 0;
  for (size_t slot = 0; slot < main_capacity_; ++slot) {
    if (slot >= main_used_) {
      QDLP_CHECK(!main_[slot].occupied);
      continue;
    }
    if (!main_[slot].occupied) {
      continue;
    }
    ++main_occupied;
    QDLP_CHECK(main_[slot].counter.load(std::memory_order_relaxed) <=
               kMaxCounter);
    uint32_t value;
    QDLP_CHECK(index_.Find(main_[slot].id, &value));
    QDLP_CHECK(value == (kMainBit | static_cast<uint32_t>(slot)));
  }
  const size_t resident = resident_.load(std::memory_order_relaxed);
  QDLP_CHECK(resident == probation_count_ + main_occupied);
  QDLP_CHECK(resident <= capacity_);
  QDLP_CHECK(index_.size() == resident);
  // An object holds space in exactly one region; the tags above prove
  // probation/main disjointness (one index entry per id). Ghost entries
  // are history, never resident.
  ghost_.ForEachLive(
      [&](ObjectId id) { QDLP_CHECK(!index_.Contains(id)); });
  QDLP_CHECK(ghost_.live_size() <= ghost_capacity_);
  ghost_.CheckInvariants();
  index_.CheckInvariants();
}

size_t ConcurrentQdLpFifo::ApproxMetadataBytes() const {
  return index_.MemoryBytes() +
         probation_.capacity() * sizeof(ProbationSlot) +
         main_.capacity() * sizeof(MainSlot) + ghost_.ApproxMetadataBytes() +
         buffers_.MemoryBytes() + counters_.MemoryBytes();
}

CacheStats ConcurrentQdLpFifo::Stats() const {
  CacheStats stats = counters_.Snapshot();
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  const size_t resident = resident_.load(std::memory_order_relaxed);
  stats.size = resident;
  stats.probation_size = probation_count_;
  stats.main_size = resident - probation_count_;
  stats.ghost_size = ghost_.live_size();
  return stats;
}

bool ConcurrentQdLpFifo::Get(ObjectId id) {
  // Hit path: one lock-free probe, then a single relaxed store (probation
  // accessed bit) or relaxed saturating bump (main CLOCK counter).
  uint32_t value;
  if (index_.Find(id, &value)) {
    if (value & kMainBit) {
      std::atomic<uint8_t>& counter = main_[value & ~kMainBit].counter;
      const uint8_t current = counter.load(std::memory_order_relaxed);
      if (current < kMaxCounter) {
        counter.store(current + 1, std::memory_order_relaxed);
      }
    } else {
      // Racing with a quick demotion that recycles this probation slot,
      // the bit can land on the slot's next occupant — one spurious
      // promotion candidate, never a correctness issue.
      probation_[value].accessed.store(1, std::memory_order_relaxed);
    }
    counters_.Add(ConcurrentStatsCounters::kHits);
    return true;
  }
  // Miss path: batched BP-Wrapper admission, identical to concurrent_clock.
  // Counted where the outcome is known: the locked re-probe can find the
  // object already admitted by another thread (or an earlier buffered copy
  // of this miss), and that Get is a hit to its caller.
  if (eviction_mu_.try_lock()) {
    std::lock_guard<std::mutex> eviction_lock(eviction_mu_, std::adopt_lock);
    DrainLocked();
    const bool hit = MissLocked(id);
    counters_.Add(hit ? ConcurrentStatsCounters::kHits
                      : ConcurrentStatsCounters::kMisses);
    return hit;
  }
  counters_.Add(ConcurrentStatsCounters::kMisses);
  if (buffers_.TryPush(id)) {
    return false;
  }
  // Buffers full while the lock is held elsewhere (typically a preempted
  // holder): drop the admission rather than convoy on the mutex. Admission
  // is best-effort under overload; Get() never blocks.
  return false;
}

void ConcurrentQdLpFifo::DrainLocked() {
  buffers_.Drain([this](uint64_t id) { MissLocked(id); });
}

bool ConcurrentQdLpFifo::MissLocked(ObjectId id) {
  if (index_.Contains(id)) {
    return true;  // another thread (or an earlier buffered copy) admitted it
  }
  if (ghost_.Consume(id)) {
    // Quick-demoted once already: admit straight into the main cache.
    counters_.Add(ConcurrentStatsCounters::kGhostHits);
    MainInsert(id);
    resident_.fetch_add(1, std::memory_order_relaxed);
    counters_.Add(ConcurrentStatsCounters::kInserts);
    return false;
  }
  AdmitToProbation(id);
  resident_.fetch_add(1, std::memory_order_relaxed);
  counters_.Add(ConcurrentStatsCounters::kInserts);
  return false;
}

void ConcurrentQdLpFifo::AdmitToProbation(ObjectId id) {
  while (probation_count_ >= probation_capacity_) {
    EvictFromProbation();
  }
  const size_t pos =
      (probation_head_ + probation_count_) % probation_capacity_;
  ProbationSlot& slot = probation_[pos];
  slot.id = id;
  slot.accessed.store(0, std::memory_order_relaxed);
  ++probation_count_;
  index_.Insert(id, static_cast<uint32_t>(pos));
}

void ConcurrentQdLpFifo::EvictFromProbation() {
  QDLP_DCHECK(probation_count_ > 0);
  ProbationSlot& slot = probation_[probation_head_];
  probation_head_ = (probation_head_ + 1) % probation_capacity_;
  --probation_count_;
  const ObjectId victim = slot.id;
  const bool accessed =
      slot.accessed.load(std::memory_order_relaxed) != 0;
  // Erase before the slot can be recycled: readers stop finding the victim
  // first (a racing reader at worst sets the next occupant's accessed bit).
  index_.Erase(victim);
  if (accessed) {
    // Lazy promotion: re-accessed while on probation -> main cache.
    counters_.Add(ConcurrentStatsCounters::kPromotions);
    MainInsert(victim);
  } else {
    // Quick demotion: one lap through the small FIFO was its only chance.
    ghost_.Insert(victim);
    resident_.fetch_sub(1, std::memory_order_relaxed);
    counters_.Add(ConcurrentStatsCounters::kDemotions);
    counters_.Add(ConcurrentStatsCounters::kEvictions);
  }
}

void ConcurrentQdLpFifo::MainInsert(ObjectId id) {
  size_t slot_index;
  if (main_used_ < main_capacity_) {
    slot_index = main_used_++;
  } else {
    slot_index = MainEvictOneLocked();
  }
  MainSlot& slot = main_[slot_index];
  slot.id = id;
  slot.counter.store(0, std::memory_order_relaxed);
  slot.occupied = true;
  index_.Insert(id, kMainBit | static_cast<uint32_t>(slot_index));
}

size_t ConcurrentQdLpFifo::MainEvictOneLocked() {
  while (true) {
    MainSlot& slot = main_[main_hand_];
    const size_t current = main_hand_;
    main_hand_ = (main_hand_ + 1) % main_capacity_;
    if (!slot.occupied) {
      return current;
    }
    const uint8_t counter = slot.counter.load(std::memory_order_relaxed);
    if (counter > 0) {
      slot.counter.store(counter - 1, std::memory_order_relaxed);
      continue;
    }
    // Main evictions are final: no ghost record (only quick demotions from
    // probation feed the ghost), matching the sequential QdCache.
    index_.Erase(slot.id);
    slot.occupied = false;
    resident_.fetch_sub(1, std::memory_order_relaxed);
    counters_.Add(ConcurrentStatsCounters::kEvictions);
    return current;
  }
}

}  // namespace qdlp
