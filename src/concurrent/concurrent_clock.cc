#include "src/concurrent/concurrent_clock.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace qdlp {

ConcurrentClockCache::ConcurrentClockCache(size_t capacity, int bits,
                                           size_t num_shards)
    : capacity_(capacity),
      max_counter_(static_cast<uint8_t>((1u << bits) - 1)),
      slots_(capacity) {
  QDLP_CHECK(bits >= 1 && bits <= 8);
  QDLP_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ConcurrentClockCache::CheckInvariants() {
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  const size_t used = used_.load(std::memory_order_relaxed);
  QDLP_CHECK(used <= capacity_);
  QDLP_CHECK(hand_ < capacity_ || capacity_ == 0);
  size_t occupied = 0;
  for (size_t slot = 0; slot < capacity_; ++slot) {
    if (slot >= used) {
      // Never-admitted slots beyond the bump allocator are unoccupied.
      QDLP_CHECK(!slots_[slot].occupied.load(std::memory_order_acquire));
      continue;
    }
    if (slots_[slot].occupied.load(std::memory_order_acquire)) {
      ++occupied;
      QDLP_CHECK(slots_[slot].counter.load(std::memory_order_relaxed) <=
                 max_counter_);
    }
  }
  // Each shard-index entry points at an occupied slot holding that id; the
  // union of shards covers every occupied slot exactly once.
  size_t indexed = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    for (const auto& [id, slot] : shard->index) {
      QDLP_CHECK(slot < capacity_);
      QDLP_CHECK(slots_[slot].occupied.load(std::memory_order_acquire));
      QDLP_CHECK(slots_[slot].id.load(std::memory_order_relaxed) == id);
      ++indexed;
    }
  }
  QDLP_CHECK(indexed == occupied);
}

ConcurrentClockCache::Shard& ConcurrentClockCache::ShardFor(ObjectId id) {
  return *shards_[SplitMix64(id) % shards_.size()];
}

bool ConcurrentClockCache::Get(ObjectId id) {
  Shard& shard = ShardFor(id);
  {
    // Hit path: shared (read) lock + one relaxed atomic store. No pointer
    // updates, no exclusive locking — the Lazy Promotion property.
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.index.find(id);
    if (it != shard.index.end()) {
      Slot& slot = slots_[it->second];
      const uint8_t current = slot.counter.load(std::memory_order_relaxed);
      if (current < max_counter_) {
        slot.counter.store(current + 1, std::memory_order_relaxed);
      }
      return true;
    }
  }

  // Miss path: serialized by the eviction mutex.
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  {
    // Another thread may have admitted `id` while we waited.
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    if (shard.index.contains(id)) {
      return true;
    }
  }
  size_t slot_index;
  if (used_.load(std::memory_order_relaxed) < capacity_) {
    slot_index = used_.fetch_add(1, std::memory_order_relaxed);
  } else {
    slot_index = EvictOne();
  }
  Slot& slot = slots_[slot_index];
  slot.id.store(id, std::memory_order_relaxed);
  slot.counter.store(0, std::memory_order_relaxed);
  slot.occupied.store(true, std::memory_order_release);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.index[id] = slot_index;
  }
  return false;
}

size_t ConcurrentClockCache::EvictOne() {
  while (true) {
    Slot& slot = slots_[hand_];
    const size_t current = hand_;
    hand_ = (hand_ + 1) % capacity_;
    if (!slot.occupied.load(std::memory_order_acquire)) {
      return current;
    }
    const uint8_t counter = slot.counter.load(std::memory_order_relaxed);
    if (counter > 0) {
      slot.counter.store(counter - 1, std::memory_order_relaxed);
      continue;
    }
    const ObjectId victim = slot.id.load(std::memory_order_relaxed);
    Shard& shard = ShardFor(victim);
    {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      shard.index.erase(victim);
    }
    slot.occupied.store(false, std::memory_order_release);
    return current;
  }
}

}  // namespace qdlp
