#include "src/concurrent/concurrent_clock.h"

#include "src/util/check.h"

namespace qdlp {

ConcurrentClockCache::ConcurrentClockCache(size_t capacity, int bits,
                                           size_t num_stripes)
    : capacity_(capacity),
      max_counter_(static_cast<uint8_t>((1u << bits) - 1)),
      index_(capacity, num_stripes),
      slots_(capacity) {
  QDLP_CHECK(capacity >= 1);
  QDLP_CHECK(capacity <= 0x7FFFFFFFu);  // index values are 32-bit slot ids
  QDLP_CHECK(bits >= 1 && bits <= 8);
}

void ConcurrentClockCache::CheckInvariants() {
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  DrainLocked();
  const size_t used = used_.load(std::memory_order_relaxed);
  QDLP_CHECK(used <= capacity_);
  QDLP_CHECK(hand_ < capacity_);
  size_t occupied = 0;
  for (size_t slot = 0; slot < capacity_; ++slot) {
    if (slot >= used) {
      // Never-admitted slots beyond the bump allocator are unoccupied.
      QDLP_CHECK(!slots_[slot].occupied);
      continue;
    }
    if (slots_[slot].occupied) {
      ++occupied;
      QDLP_CHECK(slots_[slot].counter.load(std::memory_order_relaxed) <=
                 max_counter_);
    }
  }
  // Each index entry points at an occupied slot holding that id, and the
  // index covers every occupied slot exactly once.
  size_t indexed = 0;
  index_.ForEach([&](ObjectId id, uint32_t slot) {
    QDLP_CHECK(slot < capacity_);
    QDLP_CHECK(slots_[slot].occupied);
    QDLP_CHECK(slots_[slot].id == id);
    ++indexed;
  });
  QDLP_CHECK(indexed == occupied);
  QDLP_CHECK(index_.size() == occupied);
  index_.CheckInvariants();
}

size_t ConcurrentClockCache::ApproxMetadataBytes() const {
  return index_.MemoryBytes() + slots_.capacity() * sizeof(Slot) +
         buffers_.MemoryBytes() + counters_.MemoryBytes();
}

CacheStats ConcurrentClockCache::Stats() const {
  CacheStats stats = counters_.Snapshot();
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  stats.size = index_.size();
  return stats;
}

bool ConcurrentClockCache::Get(ObjectId id) {
  // Hit path: one probe plus one relaxed RMW — no locking of any kind.
  uint32_t slot_index;
  if (index_.Find(id, &slot_index)) {
    std::atomic<uint8_t>& counter = slots_[slot_index].counter;
    const uint8_t current = counter.load(std::memory_order_relaxed);
    if (current < max_counter_) {
      // Racy saturating bump: a lost increment under contention only costs
      // a reference bit, never correctness.
      counter.store(current + 1, std::memory_order_relaxed);
    }
    counters_.Add(ConcurrentStatsCounters::kHits);
    return true;
  }
  // Miss path. Uncontended (and always, single-threaded): take the lock,
  // drain any buffered misses, admit. Contended: buffer the id for the
  // current lock holder to admit and return without blocking; only when
  // the buffer is full do we wait on the mutex. Hit/miss is counted where
  // the outcome is known: the locked re-probe can discover the object was
  // admitted by another thread (or an earlier buffered copy of this miss)
  // after the lock-free probe above failed, and that Get is a hit to its
  // caller.
  if (eviction_mu_.try_lock()) {
    std::lock_guard<std::mutex> eviction_lock(eviction_mu_, std::adopt_lock);
    DrainLocked();
    const bool hit = !AdmitLocked(id);
    counters_.Add(hit ? ConcurrentStatsCounters::kHits
                      : ConcurrentStatsCounters::kMisses);
    return hit;
  }
  counters_.Add(ConcurrentStatsCounters::kMisses);
  if (buffers_.TryPush(id)) {
    return false;
  }
  // Buffers full while the lock is held elsewhere — on an oversubscribed
  // machine that usually means the lock holder was preempted mid-drain.
  // Blocking here would convoy every missing thread behind the sleeping
  // holder, so admission is best-effort instead: drop this one (the object
  // is buffered or admitted on its next miss) and keep Get() non-blocking.
  return false;
}

void ConcurrentClockCache::DrainLocked() {
  buffers_.Drain([this](uint64_t id) { AdmitLocked(id); });
}

bool ConcurrentClockCache::AdmitLocked(ObjectId id) {
  if (index_.Contains(id)) {
    return false;  // another thread (or an earlier buffered copy) admitted it
  }
  size_t slot_index;
  if (used_.load(std::memory_order_relaxed) < capacity_) {
    slot_index = used_.fetch_add(1, std::memory_order_relaxed);
  } else {
    slot_index = EvictOneLocked();
  }
  Slot& slot = slots_[slot_index];
  slot.id = id;
  slot.counter.store(0, std::memory_order_relaxed);
  slot.occupied = true;
  index_.Insert(id, static_cast<uint32_t>(slot_index));
  counters_.Add(ConcurrentStatsCounters::kInserts);
  return true;
}

size_t ConcurrentClockCache::EvictOneLocked() {
  while (true) {
    Slot& slot = slots_[hand_];
    const size_t current = hand_;
    hand_ = (hand_ + 1) % capacity_;
    if (!slot.occupied) {
      return current;
    }
    const uint8_t counter = slot.counter.load(std::memory_order_relaxed);
    if (counter > 0) {
      // Lazy promotion: the reinsertion lap, counted like sequential CLOCK.
      slot.counter.store(counter - 1, std::memory_order_relaxed);
      counters_.Add(ConcurrentStatsCounters::kPromotions);
      continue;
    }
    // Erase from the index first: readers stop finding the victim before
    // its slot is recycled. A reader that raced and already fetched the
    // slot id at worst bumps the successor's counter once — benign.
    index_.Erase(slot.id);
    slot.occupied = false;
    counters_.Add(ConcurrentStatsCounters::kEvictions);
    return current;
  }
}

}  // namespace qdlp
