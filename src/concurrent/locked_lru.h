// LRU behind a single global mutex: the baseline whose hit-path lock
// contention the paper's FIFO argument targets.

#ifndef QDLP_SRC_CONCURRENT_LOCKED_LRU_H_
#define QDLP_SRC_CONCURRENT_LOCKED_LRU_H_

#include <list>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "src/concurrent/concurrent_cache.h"

namespace qdlp {

class GlobalLockLruCache : public ConcurrentCache {
 public:
  explicit GlobalLockLruCache(size_t capacity);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  std::string_view name() const override { return "global-lock-lru"; }

  bool Remove(ObjectId id) override;
  bool SupportsRemoval() const override { return true; }

  // Every operation already runs under the global lock, so telemetry is
  // plain counters guarded by it; Stats() takes the same lock and is
  // therefore exact (no torn cross-counter relations).
  CacheStats Stats() const override;

  // List/index agreement and capacity accounting under the global lock.
  void CheckInvariants() override;

  size_t ApproxMetadataBytes() const override;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<ObjectId> mru_list_;
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index_;
  CacheStats counters_;  // flow counters only; guarded by mu_
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_LOCKED_LRU_H_
