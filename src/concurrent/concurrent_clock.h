// CLOCK with a lock-free hit path.
//
// The index is sharded and protected by std::shared_mutex: hits take the
// *shared* side (many readers in parallel) and then perform a single relaxed
// atomic store to the object's reference counter — this is the "at most one
// metadata update, no locking" property of Lazy Promotion (§3, §4). Misses
// take an eviction mutex plus the affected shards' exclusive locks; with a
// cache-shaped workload (hit ratio near 1) the hot path is contention-free.

#ifndef QDLP_SRC_CONCURRENT_CONCURRENT_CLOCK_H_
#define QDLP_SRC_CONCURRENT_CONCURRENT_CLOCK_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/concurrent/concurrent_cache.h"

namespace qdlp {

class ConcurrentClockCache : public ConcurrentCache {
 public:
  ConcurrentClockCache(size_t capacity, int bits = 1, size_t num_shards = 16);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  const char* name() const override { return "concurrent-clock"; }

  // Slot/shard-index agreement and occupancy accounting under eviction_mu_
  // + the shard locks.
  void CheckInvariants() override;

 private:
  struct Slot {
    std::atomic<ObjectId> id{0};
    std::atomic<uint8_t> counter{0};
    std::atomic<bool> occupied{false};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<ObjectId, size_t> index;  // id -> slot
  };

  Shard& ShardFor(ObjectId id);
  // Finds the victim slot (holds eviction_mu_); erases the victim from its
  // shard. Returns the freed slot.
  size_t EvictOne();

  const size_t capacity_;
  const uint8_t max_counter_;
  std::vector<Slot> slots_;
  std::atomic<size_t> used_{0};
  size_t hand_ = 0;  // guarded by eviction_mu_
  std::mutex eviction_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_CONCURRENT_CLOCK_H_
