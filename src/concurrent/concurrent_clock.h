// CLOCK with a truly lock-free hit path.
//
// The index is a striped open-addressing table of atomic id slots
// (striped_index.h): a hit is one hash, a short probe, and a single
// relaxed atomic RMW on the object's reference counter — no mutex, no
// shared_mutex, no reader registration. This is the "at most one metadata
// update, no locking" property of Lazy Promotion (§3, §4) made literal.
//
// Misses serialize behind one eviction mutex, BP-Wrapper style: a thread
// that fails the try_lock buffers the missed id in an MPSC ring and
// returns; the next lock holder drains all rings and performs the batched
// admissions (and their evictions) under the single acquisition. With a
// cache-shaped workload (hit ratio near 1) the hot path never touches a
// lock, and the miss path amortizes its one lock over a batch.
//
// Driven from a single thread the behavior is exactly the sequential
// CLOCK spec (the try_lock always succeeds, so admissions are never
// deferred); the oracle differential tests pin this against RefClock.

#ifndef QDLP_SRC_CONCURRENT_CONCURRENT_CLOCK_H_
#define QDLP_SRC_CONCURRENT_CONCURRENT_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/mpsc_ring.h"
#include "src/concurrent/striped_index.h"
#include "src/obs/concurrent_counters.h"

namespace qdlp {

class ConcurrentClockCache : public ConcurrentCache {
 public:
  ConcurrentClockCache(size_t capacity, int bits = 1, size_t num_stripes = 16);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  std::string_view name() const override { return "concurrent-clock"; }

  // Flow counters come from striped thread-exclusive cells (lock-free to
  // read); the occupancy field reads the index size under eviction_mu_, the
  // only way to observe it race-free. Safe concurrently with Get().
  CacheStats Stats() const override;

  // Slot/index agreement and occupancy accounting under eviction_mu_.
  void CheckInvariants() override;

  size_t ApproxMetadataBytes() const override;

 private:
  // Ring slot. Only `counter` is touched by concurrent readers (the
  // lock-free hit path); id/occupied are written solely under
  // eviction_mu_, and readers never look at them.
  struct Slot {
    ObjectId id = 0;
    std::atomic<uint8_t> counter{0};
    bool occupied = false;
  };

  // Admits `id` (evicting if needed). Runs under eviction_mu_. Returns
  // false if the id turned out to be already resident (raced admission).
  bool AdmitLocked(ObjectId id);
  // Drains the insert buffers under eviction_mu_.
  void DrainLocked();
  // Finds the victim slot via the clock hand; erases it from the index.
  size_t EvictOneLocked();

  const size_t capacity_;
  const uint8_t max_counter_;

  StripedAtomicIndex index_;  // id -> ring slot
  std::vector<Slot> slots_;   // the clock ring

  // Miss-path state, each mutable field on its own cache line so the
  // eviction hand's churn never invalidates the hit path's lines.
  alignas(64) std::atomic<size_t> used_{0};  // bump allocator over slots_
  alignas(64) size_t hand_ = 0;              // guarded by eviction_mu_
  alignas(64) mutable std::mutex eviction_mu_;
  InsertBuffers buffers_;
  ConcurrentStatsCounters counters_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_CONCURRENT_CLOCK_H_
