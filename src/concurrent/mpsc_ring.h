// Bounded multi-producer ring buffers for batched (BP-Wrapper-style)
// insert buffering on the miss path.
//
// The concurrent caches serialize all structural mutation behind one
// eviction mutex. Without buffering, every missing thread queues on that
// mutex and the miss path convoys. With buffering, a thread that fails a
// try_lock instead pushes the missed id into a small per-thread-striped
// MPSC ring and returns immediately; whichever thread next holds the mutex
// drains all rings and performs the batched admissions/evictions under the
// single acquisition. Lock hold time is amortized over the whole batch and
// Get() never blocks: when the rings are full AND the lock is held (which
// on an oversubscribed machine means the holder was preempted mid-drain),
// the admission is dropped rather than queued behind the sleeping holder —
// admission is best-effort under overload.
//
// MpscRing is the classic bounded sequence-number queue (Vyukov): each
// cell carries a sequence counter that encodes whether it is free for the
// producer at position `pos` (seq == pos) or holds a value for the
// consumer (seq == pos + 1). Producers claim positions with a CAS loop;
// the consumer — the eviction-lock holder, externally serialized — pops
// with plain loads plus a release store of the next-lap sequence.

#ifndef QDLP_SRC_CONCURRENT_MPSC_RING_H_
#define QDLP_SRC_CONCURRENT_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/thread_ordinal.h"

#include "src/util/check.h"

namespace qdlp {

class MpscRing {
 public:
  // Capacity is rounded up to a power of two, minimum 4.
  explicit MpscRing(size_t capacity) {
    size_t slots = 4;
    while (slots < capacity) {
      slots *= 2;
    }
    mask_ = slots - 1;
    cells_ = std::make_unique<Cell[]>(slots);
    for (size_t i = 0; i < slots; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  // Multi-producer. Returns false when the ring is full.
  bool TryPush(uint64_t value) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // pos was refreshed by the failed CAS; retry.
      } else if (dif < 0) {
        return false;  // full (consumer has not freed this lap yet)
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single-consumer (callers must serialize, e.g. under the eviction
  // mutex). Returns false when empty.
  bool TryPop(uint64_t* value) {
    Cell& cell = cells_[head_ & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(head_ + 1) < 0) {
      return false;  // empty (or a producer has claimed but not published)
    }
    *value = cell.value;
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  size_t slot_count() const { return mask_ + 1; }
  size_t MemoryBytes() const { return slot_count() * sizeof(Cell); }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    uint64_t value = 0;
  };

  std::unique_ptr<Cell[]> cells_;
  uint64_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> tail_{0};  // producers
  alignas(64) uint64_t head_ = 0;              // consumer (serialized)
};

// A bank of MPSC rings, one per thread stripe, padded apart by the rings'
// own alignas(64) head/tail fields.
class InsertBuffers {
 public:
  // Ring capacity is sized so a lock-holder preempted for a scheduler
  // timeslice does not overflow the buffers and force everyone else onto
  // the blocking-lock fallback: 8 x 256 absorbs ~2k misses.
  explicit InsertBuffers(size_t num_rings = 8, size_t ring_capacity = 256) {
    QDLP_CHECK(num_rings >= 1);
    rings_.reserve(num_rings);
    for (size_t i = 0; i < num_rings; ++i) {
      rings_.push_back(std::make_unique<MpscRing>(ring_capacity));
    }
  }

  // Producer side: buffer a missed id. False when the stripe ring is full
  // (caller should fall back to a blocking drain).
  bool TryPush(uint64_t id) {
    return rings_[ThreadOrdinal() % rings_.size()]->TryPush(id);
  }

  // Consumer side (under the eviction mutex): drain every ring, invoking
  // fn(id) per buffered miss. Returns the number drained.
  template <typename Fn>
  size_t Drain(Fn&& fn) {
    size_t drained = 0;
    for (auto& ring : rings_) {
      uint64_t id;
      while (ring->TryPop(&id)) {
        fn(id);
        ++drained;
      }
    }
    return drained;
  }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& ring : rings_) {
      bytes += ring->MemoryBytes();
    }
    return bytes;
  }

 private:
  std::vector<std::unique_ptr<MpscRing>> rings_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_MPSC_RING_H_
