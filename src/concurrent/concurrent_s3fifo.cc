#include "src/concurrent/concurrent_s3fifo.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/random.h"

namespace qdlp {

ConcurrentS3FifoCache::ConcurrentS3FifoCache(size_t capacity,
                                             double small_fraction,
                                             double ghost_factor,
                                             size_t num_shards)
    : capacity_(capacity) {
  QDLP_CHECK(capacity >= 1);
  QDLP_CHECK(small_fraction > 0.0 && small_fraction < 1.0);
  QDLP_CHECK(num_shards >= 1);
  small_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                          small_fraction)));
  small_capacity_ = std::min(small_capacity_, capacity);
  ghost_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                          ghost_factor)));
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ConcurrentS3FifoCache::CheckInvariants() {
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  QDLP_CHECK(owner_.size() <= capacity_);
  QDLP_CHECK(small_count_ + main_count_ == owner_.size());
  QDLP_CHECK(resident_.load(std::memory_order_relaxed) == owner_.size());
  QDLP_CHECK(small_fifo_.size() == small_count_);
  QDLP_CHECK(main_fifo_.size() == main_count_);
  for (const Node* node : small_fifo_) {
    QDLP_CHECK(node->where == Where::kSmall);
    const auto it = owner_.find(node->id);
    QDLP_CHECK(it != owner_.end());
    QDLP_CHECK(it->second.get() == node);
  }
  for (const Node* node : main_fifo_) {
    QDLP_CHECK(node->where == Where::kMain);
    const auto it = owner_.find(node->id);
    QDLP_CHECK(it != owner_.end());
    QDLP_CHECK(it->second.get() == node);
  }
  // Ghost entries are evicted history; none may still be resident.
  for (const auto& [id, generation] : ghost_live_) {
    (void)generation;
    QDLP_CHECK(!owner_.contains(id));
  }
  QDLP_CHECK(ghost_live_.size() <= ghost_capacity_);
  // The shard indexes, unioned, are exactly the owned nodes.
  size_t indexed = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    for (const auto& [id, node] : shard->index) {
      const auto it = owner_.find(id);
      QDLP_CHECK(it != owner_.end());
      QDLP_CHECK(it->second.get() == node);
      ++indexed;
    }
  }
  QDLP_CHECK(indexed == owner_.size());
}

ConcurrentS3FifoCache::Shard& ConcurrentS3FifoCache::ShardFor(ObjectId id) {
  return *shards_[SplitMix64(id) % shards_.size()];
}

void ConcurrentS3FifoCache::IndexInsert(ObjectId id, Node* node) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  shard.index[id] = node;
}

void ConcurrentS3FifoCache::IndexErase(ObjectId id) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  shard.index.erase(id);
}

void ConcurrentS3FifoCache::GhostInsert(ObjectId id) {
  const uint64_t generation = ghost_generation_++;
  ghost_fifo_.emplace_back(id, generation);
  ghost_live_[id] = generation;
  while (ghost_live_.size() > ghost_capacity_ && !ghost_fifo_.empty()) {
    const auto [oldest_id, oldest_generation] = ghost_fifo_.front();
    ghost_fifo_.pop_front();
    const auto it = ghost_live_.find(oldest_id);
    if (it != ghost_live_.end() && it->second == oldest_generation) {
      ghost_live_.erase(it);
    }
  }
}

bool ConcurrentS3FifoCache::GhostConsume(ObjectId id) {
  return ghost_live_.erase(id) > 0;
}

void ConcurrentS3FifoCache::EvictSmall() {
  QDLP_DCHECK(!small_fifo_.empty());
  Node* node = small_fifo_.front();
  small_fifo_.pop_front();
  --small_count_;
  if (node->freq.load(std::memory_order_relaxed) >= 1) {
    node->where = Where::kMain;
    node->freq.store(0, std::memory_order_relaxed);
    main_fifo_.push_back(node);
    ++main_count_;
    return;
  }
  const ObjectId victim = node->id;
  IndexErase(victim);
  GhostInsert(victim);
  owner_.erase(victim);
  resident_.fetch_sub(1, std::memory_order_relaxed);
}

void ConcurrentS3FifoCache::EvictMain() {
  while (true) {
    QDLP_DCHECK(!main_fifo_.empty());
    Node* node = main_fifo_.front();
    main_fifo_.pop_front();
    const uint8_t freq = node->freq.load(std::memory_order_relaxed);
    if (freq > 0) {
      node->freq.store(freq - 1, std::memory_order_relaxed);
      main_fifo_.push_back(node);
      continue;
    }
    const ObjectId victim = node->id;
    --main_count_;
    IndexErase(victim);
    owner_.erase(victim);
    resident_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
}

void ConcurrentS3FifoCache::MakeRoom() {
  while (owner_.size() >= capacity_) {
    if (small_count_ > 0 &&
        (small_count_ >= small_capacity_ || main_count_ == 0)) {
      EvictSmall();
    } else {
      EvictMain();
    }
  }
}

bool ConcurrentS3FifoCache::Get(ObjectId id) {
  Shard& shard = ShardFor(id);
  {
    // Hit path: shared lock + one relaxed saturating increment.
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.index.find(id);
    if (it != shard.index.end()) {
      Node* node = it->second;
      const uint8_t freq = node->freq.load(std::memory_order_relaxed);
      if (freq < kMaxFreq) {
        node->freq.store(freq + 1, std::memory_order_relaxed);
      }
      return true;
    }
  }

  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  {
    // Re-check: another thread may have admitted it meanwhile.
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    if (shard.index.contains(id)) {
      return true;
    }
  }
  MakeRoom();
  auto node = std::make_unique<Node>();
  node->id = id;
  Node* raw = node.get();
  if (GhostConsume(id)) {
    raw->where = Where::kMain;
    main_fifo_.push_back(raw);
    ++main_count_;
  } else {
    raw->where = Where::kSmall;
    small_fifo_.push_back(raw);
    ++small_count_;
  }
  owner_[id] = std::move(node);
  resident_.fetch_add(1, std::memory_order_relaxed);
  IndexInsert(id, raw);
  return false;
}

}  // namespace qdlp
