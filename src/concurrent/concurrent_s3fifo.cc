#include "src/concurrent/concurrent_s3fifo.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace qdlp {

ConcurrentS3FifoCache::ConcurrentS3FifoCache(size_t capacity,
                                             double small_fraction,
                                             double ghost_factor,
                                             size_t num_shards)
    : capacity_(capacity),
      index_(capacity, num_shards),
      slab_(capacity),
      ghost_(/*capacity=*/std::max<size_t>(
          1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                              ghost_factor)))) {
  QDLP_CHECK(capacity >= 1);
  QDLP_CHECK(capacity <= 0x7FFFFFFFu);  // index values are 32-bit slab slots
  QDLP_CHECK(small_fraction > 0.0 && small_fraction < 1.0);
  QDLP_CHECK(num_shards >= 1);
  small_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                          small_fraction)));
  small_capacity_ = std::min(small_capacity_, capacity);
  ghost_capacity_ = ghost_.capacity();
}

void ConcurrentS3FifoCache::CheckInvariants() {
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  DrainLocked();
  const size_t resident = resident_.load(std::memory_order_relaxed);
  QDLP_CHECK(resident <= capacity_);
  QDLP_CHECK(small_fifo_.count + main_fifo_.count == resident);
  QDLP_CHECK(slab_used_ <= capacity_);
  // Walk both FIFOs: link structure must be consistent with the counts,
  // tags, and the index.
  size_t walked = 0;
  for (const Fifo* fifo : {&small_fifo_, &main_fifo_}) {
    const Where expect =
        fifo == &small_fifo_ ? Where::kSmall : Where::kMain;
    size_t count = 0;
    uint32_t slot = fifo->head;
    uint32_t last = kNil;
    while (slot != kNil) {
      QDLP_CHECK(slot < slab_used_);
      const Node& node = slab_[slot];
      QDLP_CHECK(node.where == expect);
      QDLP_CHECK(node.freq.load(std::memory_order_relaxed) <= kMaxFreq);
      uint32_t indexed_slot;
      QDLP_CHECK(index_.Find(node.id, &indexed_slot));
      QDLP_CHECK(indexed_slot == slot);
      last = slot;
      slot = node.next;
      ++count;
      QDLP_CHECK(count <= resident);  // cycle guard
    }
    QDLP_CHECK(last == fifo->tail);
    QDLP_CHECK(count == fifo->count);
    walked += count;
  }
  QDLP_CHECK(walked == resident);
  QDLP_CHECK(index_.size() == resident);
  // Ghost entries are evicted history; none may still be resident.
  ghost_.ForEachLive(
      [&](ObjectId id) { QDLP_CHECK(!index_.Contains(id)); });
  QDLP_CHECK(ghost_.live_size() <= ghost_capacity_);
  ghost_.CheckInvariants();
  index_.CheckInvariants();
}

size_t ConcurrentS3FifoCache::ApproxMetadataBytes() const {
  return index_.MemoryBytes() + slab_.capacity() * sizeof(Node) +
         ghost_.ApproxMetadataBytes() + buffers_.MemoryBytes() +
         counters_.MemoryBytes();
}

CacheStats ConcurrentS3FifoCache::Stats() const {
  CacheStats stats = counters_.Snapshot();
  std::lock_guard<std::mutex> eviction_lock(eviction_mu_);
  stats.probation_size = small_fifo_.count;
  stats.main_size = main_fifo_.count;
  stats.ghost_size = ghost_.live_size();
  stats.size = small_fifo_.count + main_fifo_.count;
  return stats;
}

void ConcurrentS3FifoCache::PushBack(Fifo& fifo, uint32_t slot) {
  slab_[slot].next = kNil;
  if (fifo.tail == kNil) {
    fifo.head = slot;
  } else {
    slab_[fifo.tail].next = slot;
  }
  fifo.tail = slot;
  ++fifo.count;
}

uint32_t ConcurrentS3FifoCache::PopFront(Fifo& fifo) {
  QDLP_DCHECK(fifo.head != kNil);
  const uint32_t slot = fifo.head;
  fifo.head = slab_[slot].next;
  if (fifo.head == kNil) {
    fifo.tail = kNil;
  }
  --fifo.count;
  return slot;
}

uint32_t ConcurrentS3FifoCache::AllocSlot() {
  if (free_head_ != kNil) {
    const uint32_t slot = free_head_;
    free_head_ = slab_[slot].next;
    return slot;
  }
  QDLP_DCHECK(slab_used_ < capacity_);
  return static_cast<uint32_t>(slab_used_++);
}

void ConcurrentS3FifoCache::FreeSlot(uint32_t slot) {
  slab_[slot].next = free_head_;
  free_head_ = slot;
}

void ConcurrentS3FifoCache::EvictSmall() {
  const uint32_t slot = PopFront(small_fifo_);
  Node& node = slab_[slot];
  if (node.freq.load(std::memory_order_relaxed) >= 1) {
    // Quick-demotion survivor: promote to main with frequency reset. The
    // index maps id -> slab slot, which does not change — no index write.
    node.where = Where::kMain;
    node.freq.store(0, std::memory_order_relaxed);
    PushBack(main_fifo_, slot);
    counters_.Add(ConcurrentStatsCounters::kPromotions);
    return;
  }
  const ObjectId victim = node.id;
  // Erase from the index before recycling the slot: readers stop finding
  // the victim first. A racing reader that already fetched the slot at
  // worst bumps the successor's frequency once — benign.
  index_.Erase(victim);
  ghost_.Insert(victim);
  FreeSlot(slot);
  resident_.fetch_sub(1, std::memory_order_relaxed);
  counters_.Add(ConcurrentStatsCounters::kDemotions);
  counters_.Add(ConcurrentStatsCounters::kEvictions);
}

void ConcurrentS3FifoCache::EvictMain() {
  while (true) {
    const uint32_t slot = PopFront(main_fifo_);
    Node& node = slab_[slot];
    const uint8_t freq = node.freq.load(std::memory_order_relaxed);
    if (freq > 0) {
      node.freq.store(freq - 1, std::memory_order_relaxed);
      PushBack(main_fifo_, slot);
      counters_.Add(ConcurrentStatsCounters::kPromotions);
      continue;
    }
    index_.Erase(node.id);
    FreeSlot(slot);
    resident_.fetch_sub(1, std::memory_order_relaxed);
    counters_.Add(ConcurrentStatsCounters::kEvictions);
    return;
  }
}

void ConcurrentS3FifoCache::MakeRoom() {
  while (resident_.load(std::memory_order_relaxed) >= capacity_) {
    if (small_fifo_.count > 0 &&
        (small_fifo_.count >= small_capacity_ || main_fifo_.count == 0)) {
      EvictSmall();
    } else {
      EvictMain();
    }
  }
}

bool ConcurrentS3FifoCache::MissLocked(ObjectId id) {
  if (index_.Contains(id)) {
    return true;  // another thread (or an earlier buffered copy) admitted it
  }
  MakeRoom();
  const uint32_t slot = AllocSlot();
  Node& node = slab_[slot];
  node.id = id;
  node.freq.store(0, std::memory_order_relaxed);
  if (ghost_.Consume(id)) {
    node.where = Where::kMain;
    PushBack(main_fifo_, slot);
    counters_.Add(ConcurrentStatsCounters::kGhostHits);
  } else {
    node.where = Where::kSmall;
    PushBack(small_fifo_, slot);
  }
  resident_.fetch_add(1, std::memory_order_relaxed);
  index_.Insert(id, slot);
  counters_.Add(ConcurrentStatsCounters::kInserts);
  return false;
}

void ConcurrentS3FifoCache::DrainLocked() {
  buffers_.Drain([this](uint64_t id) { MissLocked(id); });
}

bool ConcurrentS3FifoCache::Get(ObjectId id) {
  // Hit path: one probe plus one relaxed saturating increment — lock-free.
  uint32_t slot;
  if (index_.Find(id, &slot)) {
    std::atomic<uint8_t>& freq = slab_[slot].freq;
    const uint8_t current = freq.load(std::memory_order_relaxed);
    if (current < kMaxFreq) {
      freq.store(current + 1, std::memory_order_relaxed);
    }
    counters_.Add(ConcurrentStatsCounters::kHits);
    return true;
  }
  // Miss path: batched BP-Wrapper admission, identical to concurrent_clock.
  // Counted where the outcome is known: the locked re-probe can find the
  // object already admitted by another thread (or an earlier buffered copy
  // of this miss), and that Get is a hit to its caller.
  if (eviction_mu_.try_lock()) {
    std::lock_guard<std::mutex> eviction_lock(eviction_mu_, std::adopt_lock);
    DrainLocked();
    const bool hit = MissLocked(id);
    counters_.Add(hit ? ConcurrentStatsCounters::kHits
                      : ConcurrentStatsCounters::kMisses);
    return hit;
  }
  counters_.Add(ConcurrentStatsCounters::kMisses);
  if (buffers_.TryPush(id)) {
    return false;
  }
  // Buffers full while the lock is held elsewhere (typically a preempted
  // holder): drop the admission rather than convoy on the mutex. Admission
  // is best-effort under overload; Get() never blocks.
  return false;
}

}  // namespace qdlp
