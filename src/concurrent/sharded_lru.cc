#include "src/concurrent/sharded_lru.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace qdlp {

ShardedLruCache::ShardedLruCache(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  QDLP_CHECK(num_shards >= 1);
  num_shards = std::min(num_shards, capacity);
  shards_.reserve(num_shards);
  const size_t base = capacity / num_shards;
  size_t remainder = capacity % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) {
      --remainder;
    }
    shard->index.reserve(shard->capacity);
    shards_.push_back(std::move(shard));
  }
}

void ShardedLruCache::CheckInvariants() {
  size_t total_capacity = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total_capacity += shard->capacity;
    QDLP_CHECK(shard->index.size() <= shard->capacity);
    QDLP_CHECK(shard->index.size() == shard->mru_list.size());
    for (auto it = shard->mru_list.begin(); it != shard->mru_list.end();
         ++it) {
      const auto entry = shard->index.find(*it);
      QDLP_CHECK(entry != shard->index.end());
      QDLP_CHECK(entry->second == it);
      // Ids hash to the shard that stores them.
      QDLP_CHECK(&ShardFor(*it) == shard.get());
    }
    const CacheStats& c = shard->counters;
    QDLP_CHECK(c.inserts <= c.misses);
    QDLP_CHECK(c.inserts >= c.evictions);
    QDLP_CHECK(c.inserts - c.evictions == shard->index.size());
  }
  QDLP_CHECK(total_capacity == capacity_);
}

size_t ShardedLruCache::ApproxMetadataBytes() const {
  // std::list node: prev/next pointers + value; unordered_map node:
  // bucket-chain pointer + key + iterator. Approximate, like the design
  // they stand in for (pointer-chased memcached-style LRU).
  size_t bytes = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes += shard->mru_list.size() *
             (2 * sizeof(void*) + sizeof(ObjectId));
    bytes += shard->index.size() *
             (sizeof(void*) + sizeof(ObjectId) +
              sizeof(std::list<ObjectId>::iterator));
    bytes += shard->index.bucket_count() * sizeof(void*);
  }
  return bytes;
}

CacheStats ShardedLruCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const CacheStats& c = shard->counters;
    stats.hits += c.hits;
    stats.misses += c.misses;
    stats.inserts += c.inserts;
    stats.evictions += c.evictions;
    stats.size += shard->index.size();
  }
  stats.requests = stats.hits + stats.misses;
  stats.promotions = stats.hits;
  return stats;
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(ObjectId id) {
  return *shards_[SplitMix64(id) % shards_.size()];
}

const ShardedLruCache::Shard& ShardedLruCache::ShardFor(ObjectId id) const {
  return *shards_[SplitMix64(id) % shards_.size()];
}

bool ShardedLruCache::Get(ObjectId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  // requests == hits + misses and promotions == hits (eager promotion) are
  // identities, derived in Stats() rather than stored per Get.
  const auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    shard.mru_list.splice(shard.mru_list.begin(), shard.mru_list, it->second);
    ++shard.counters.hits;
    return true;
  }
  ++shard.counters.misses;
  if (shard.index.size() >= shard.capacity) {
    const ObjectId victim = shard.mru_list.back();
    shard.mru_list.pop_back();
    shard.index.erase(victim);
    ++shard.counters.evictions;
  }
  shard.mru_list.push_front(id);
  shard.index[id] = shard.mru_list.begin();
  ++shard.counters.inserts;
  return false;
}

bool ShardedLruCache::Remove(ObjectId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    return false;
  }
  shard.mru_list.erase(it->second);
  shard.index.erase(it);
  ++shard.counters.evictions;
  return true;
}

}  // namespace qdlp
