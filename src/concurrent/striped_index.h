// Lock-free striped open-addressing index: ObjectId -> 32-bit value.
//
// This is the concurrent counterpart of util/flat_map.h and the heart of
// the Lazy Promotion hit path (§3): a lookup is one hash, a short linear
// probe over atomic key slots, and two loads of a stripe version word — no
// mutex, no reader registration, no retries in steady state. The caches
// built on it (concurrent CLOCK / S3-FIFO / QD-LP-FIFO) therefore serve a
// hit with a single relaxed atomic RMW on the object's frequency bits and
// nothing else, which is the property that lets FIFO designs scale where
// LRU's lock-and-splice hit path cannot.
//
// Concurrency contract:
//  * Readers (Find) are wait-free in the common case and never block.
//  * Mutations (Insert/Update/Erase) must be serialized by the caller —
//    in the caches that is the one eviction mutex, so there is exactly one
//    writer at a time. This "single writer, many lock-free readers" shape
//    is what makes the slot protocol simple enough to be obviously right:
//      - Insert writes the value first, then publishes the key with a
//        release store; a reader that observes the key (acquire) therefore
//        observes a valid value.
//      - Erase overwrites the key with the tombstone sentinel; a reader
//        that raced and already matched the key linearizes before the
//        erase.
//  * Stripe rebuilds (tombstone cleanup / growth) swap in a fresh slot
//    array under a seqlock: readers validate the stripe version around the
//    probe and retry on change. Old slot arrays are retired, not freed —
//    a stale reader probes stale-but-valid memory and then notices the
//    version bump (no use-after-free, no hazard pointers, no epochs).
//    Retired arrays of the current size are recycled into later rebuilds
//    (reset + refilled inside the odd-version window), so steady-state
//    churn ping-pongs between two arrays per stripe instead of retiring
//    one per rebuild; only outgrown sizes stay resident until destruction.
//
// Keys are ObjectIds; the two top values (~0 and ~0-1) are reserved as
// empty/tombstone sentinels and checked via QDLP_DCHECK.
//
// Striping bounds probe runs, keeps rebuilds O(stripe) instead of
// O(table), and gives each stripe's mutable header its own cache line so
// readers of different stripes never false-share.

#ifndef QDLP_SRC_CONCURRENT_STRIPED_INDEX_H_
#define QDLP_SRC_CONCURRENT_STRIPED_INDEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/check.h"
#include "src/util/flat_map.h"

namespace qdlp {

class StripedAtomicIndex {
 public:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};
  static constexpr uint64_t kTombstoneKey = ~uint64_t{0} - 1;

  // `max_entries` sizes each stripe so the whole table holds that many live
  // entries at <= 50% load under a perfectly uniform hash; stripes still
  // grow individually if the hash is unkind. `num_stripes` is rounded up to
  // a power of two.
  explicit StripedAtomicIndex(size_t max_entries, size_t num_stripes = 8) {
    size_t stripes = 1;
    while (stripes < num_stripes && stripes < 256) {
      stripes *= 2;
    }
    stripe_mask_ = stripes - 1;
    const size_t per_stripe = (max_entries + stripes - 1) / stripes;
    size_t slots = kMinStripeSlots;
    while (slots < 2 * per_stripe) {
      slots *= 2;
    }
    stripes_ = std::vector<Stripe>(stripes);
    for (Stripe& stripe : stripes_) {
      stripe.InstallFresh(slots);
    }
  }

  // Lock-free. Returns true and stores the mapped value on success.
  bool Find(ObjectId key, uint32_t* value) const {
    QDLP_DCHECK(key < kTombstoneKey);
    const uint64_t hash = FlatMapHash(key);
    const Stripe& stripe = stripes_[(hash >> 32) & stripe_mask_];
    while (true) {
      const uint64_t v1 = stripe.version.load(std::memory_order_acquire);
      const Slot* slots = stripe.slots.load(std::memory_order_acquire);
      const uint64_t mask = stripe.mask.load(std::memory_order_acquire);
      size_t index = hash & mask;
      bool found = false;
      uint32_t found_value = 0;
      while (true) {
        const uint64_t slot_key =
            slots[index].key.load(std::memory_order_acquire);
        if (slot_key == key) {
          // Acquire on the value so the key re-check below cannot hoist
          // above it; the re-check closes the slot-reuse window (erase of
          // this key + insert of another key into the same slot between
          // our two loads would otherwise pair our key with its value).
          found_value = slots[index].value.load(std::memory_order_acquire);
          found =
              slots[index].key.load(std::memory_order_relaxed) == slot_key;
          if (found) {
            break;
          }
          continue;  // slot churned under us; re-probe from this slot
        }
        if (slot_key == kEmptyKey) {
          break;
        }
        index = (index + 1) & mask;
      }
      // Seqlock validation: an odd version means a rebuild is in flight; a
      // changed version means the probe may have straddled one (and, since
      // retired arrays are recycled into later rebuilds, may have read a
      // slab mid-rewrite). The fence orders every probe load before the
      // re-read, Boehm-style. Either way the probe re-runs against the
      // (new) current array. Rebuilds are rare — steady state pays only
      // these two version loads.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (v1 == stripe.version.load(std::memory_order_acquire) &&
          (v1 & 1) == 0) {
        if (found) {
          *value = found_value;
        }
        return found;
      }
    }
  }

  bool Contains(ObjectId key) const {
    uint32_t value;
    return Find(key, &value);
  }

  // Writer-side (externally serialized). Key must be absent.
  void Insert(ObjectId key, uint32_t value) {
    QDLP_DCHECK(key < kTombstoneKey);
    const uint64_t hash = FlatMapHash(key);
    Stripe& stripe = stripes_[(hash >> 32) & stripe_mask_];
    MaybeRebuild(stripe);
    Slot* slots = stripe.slots.load(std::memory_order_relaxed);
    const uint64_t mask = stripe.mask.load(std::memory_order_relaxed);
    size_t index = hash & mask;
    size_t first_tombstone = kNpos;
    while (true) {
      const uint64_t slot_key =
          slots[index].key.load(std::memory_order_relaxed);
      QDLP_DCHECK(slot_key != key);
      if (slot_key == kEmptyKey) {
        size_t target = index;
        if (first_tombstone != kNpos) {
          target = first_tombstone;
          --stripe.tombstones;
        } else {
          ++stripe.used;
        }
        // Publish order: value first, key last with release, so a reader
        // that acquires the key sees the value.
        slots[target].value.store(value, std::memory_order_relaxed);
        slots[target].key.store(key, std::memory_order_release);
        ++stripe.size;
        ++size_;
        return;
      }
      if (slot_key == kTombstoneKey && first_tombstone == kNpos) {
        first_tombstone = index;
      }
      index = (index + 1) & mask;
    }
  }

  // Writer-side. Returns false if the key is absent.
  bool Update(ObjectId key, uint32_t value) {
    Slot* slot = FindSlotMutable(key);
    if (slot == nullptr) {
      return false;
    }
    slot->value.store(value, std::memory_order_release);
    return true;
  }

  // Writer-side. Returns true if the key was present and is now removed.
  bool Erase(ObjectId key) {
    QDLP_DCHECK(key < kTombstoneKey);
    const uint64_t hash = FlatMapHash(key);
    Stripe& stripe = stripes_[(hash >> 32) & stripe_mask_];
    Slot* slots = stripe.slots.load(std::memory_order_relaxed);
    const uint64_t mask = stripe.mask.load(std::memory_order_relaxed);
    size_t index = hash & mask;
    while (true) {
      const uint64_t slot_key =
          slots[index].key.load(std::memory_order_relaxed);
      if (slot_key == key) {
        break;
      }
      if (slot_key == kEmptyKey) {
        return false;
      }
      index = (index + 1) & mask;
    }
    slots[index].key.store(kTombstoneKey, std::memory_order_release);
    --stripe.size;
    --size_;
    ++stripe.tombstones;
    // Prune: a tombstone run that borders an empty slot terminates no live
    // key's probe path (any such path would cross the empty slot too), so
    // the run can revert to empty — safe against concurrent readers, who
    // at worst stop one slot earlier with the same not-found answer.
    if (slots[(index + 1) & mask].key.load(std::memory_order_relaxed) ==
        kEmptyKey) {
      size_t runner = index;
      while (slots[runner].key.load(std::memory_order_relaxed) ==
             kTombstoneKey) {
        slots[runner].key.store(kEmptyKey, std::memory_order_release);
        --stripe.used;
        --stripe.tombstones;
        runner = (runner - 1) & mask;
      }
    }
    return true;
  }

  size_t size() const { return size_; }

  // Writer-quiescent iteration (used by invariant checks under the caches'
  // eviction lock): fn(ObjectId, uint32_t).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Stripe& stripe : stripes_) {
      const Slot* slots = stripe.slots.load(std::memory_order_acquire);
      const uint64_t mask = stripe.mask.load(std::memory_order_relaxed);
      for (size_t i = 0; i <= mask; ++i) {
        const uint64_t key = slots[i].key.load(std::memory_order_acquire);
        if (key < kTombstoneKey) {
          fn(key, slots[i].value.load(std::memory_order_relaxed));
        }
      }
    }
  }

  // Writer-quiescent structural self-check.
  void CheckInvariants() const {
    size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      QDLP_CHECK((stripe.version.load(std::memory_order_acquire) & 1) == 0);
      const Slot* slots = stripe.slots.load(std::memory_order_acquire);
      const uint64_t mask = stripe.mask.load(std::memory_order_relaxed);
      QDLP_CHECK(((mask + 1) & mask) == 0);
      size_t live = 0;
      size_t tombstones = 0;
      for (size_t i = 0; i <= mask; ++i) {
        const uint64_t key = slots[i].key.load(std::memory_order_acquire);
        if (key == kTombstoneKey) {
          ++tombstones;
        } else if (key != kEmptyKey) {
          ++live;
          // Reachability: the probe path from the key's home slot to its
          // position crosses no empty slot.
          uint32_t value;
          QDLP_CHECK(Find(key, &value));
        }
      }
      QDLP_CHECK(live == stripe.size);
      QDLP_CHECK(tombstones == stripe.tombstones);
      QDLP_CHECK(live + tombstones == stripe.used);
      QDLP_CHECK(stripe.used * kMaxLoadDen <= (mask + 1) * kMaxLoadNum);
      total += live;
    }
    QDLP_CHECK(total == size_);
  }

  // Bytes held by the live slot arrays plus retired ones (resident until
  // recycled by a same-size rebuild or destruction), for bytes/object
  // accounting.
  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const Stripe& stripe : stripes_) {
      bytes += (stripe.mask.load(std::memory_order_relaxed) + 1) *
               sizeof(Slot);
      for (const auto& retired : stripe.retired) {
        bytes += retired.slot_count * sizeof(Slot);
      }
    }
    return bytes;
  }

  size_t num_stripes() const { return stripes_.size(); }

 private:
  struct Slot {
    std::atomic<uint64_t> key{kEmptyKey};
    std::atomic<uint32_t> value{0};
  };

  struct RetiredSlab {
    std::unique_ptr<Slot[]> slots;
    size_t slot_count = 0;
  };

  // Mutable per-stripe header on its own cache line: readers of one stripe
  // never invalidate another stripe's header line.
  struct alignas(64) Stripe {
    std::atomic<uint64_t> version{0};
    std::atomic<Slot*> slots{nullptr};
    std::atomic<uint64_t> mask{0};
    // Writer-only bookkeeping (guarded by the external writer lock).
    size_t size = 0;
    size_t used = 0;  // live + tombstones
    size_t tombstones = 0;
    std::unique_ptr<Slot[]> current;
    std::vector<RetiredSlab> retired;

    void InstallFresh(size_t slot_count) {
      current = std::make_unique<Slot[]>(slot_count);
      slots.store(current.get(), std::memory_order_release);
      mask.store(slot_count - 1, std::memory_order_release);
    }
  };

  static constexpr size_t kMinStripeSlots = 16;
  static constexpr size_t kNpos = ~size_t{0};
  // Rebuild when used (live + tombstone) exceeds 7/10 of the stripe;
  // doubling only when live entries alone exceed 5/9 (flat_map's scheme).
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 10;
  static constexpr size_t kSameSizeNum = 5;
  static constexpr size_t kSameSizeDen = 9;

  Slot* FindSlotMutable(ObjectId key) {
    QDLP_DCHECK(key < kTombstoneKey);
    const uint64_t hash = FlatMapHash(key);
    Stripe& stripe = stripes_[(hash >> 32) & stripe_mask_];
    Slot* slots = stripe.slots.load(std::memory_order_relaxed);
    const uint64_t mask = stripe.mask.load(std::memory_order_relaxed);
    size_t index = hash & mask;
    while (true) {
      const uint64_t slot_key =
          slots[index].key.load(std::memory_order_relaxed);
      if (slot_key == key) {
        return &slots[index];
      }
      if (slot_key == kEmptyKey) {
        return nullptr;
      }
      index = (index + 1) & mask;
    }
  }

  void MaybeRebuild(Stripe& stripe) {
    const uint64_t mask = stripe.mask.load(std::memory_order_relaxed);
    const size_t capacity = mask + 1;
    if ((stripe.used + 1) * kMaxLoadDen <= capacity * kMaxLoadNum) {
      return;
    }
    size_t new_capacity = capacity;
    if ((stripe.size + 1) * kSameSizeDen > capacity * kSameSizeNum) {
      new_capacity *= 2;
    }
    // Seqlock write section: readers retry probes that overlap this.
    stripe.version.fetch_add(1, std::memory_order_acq_rel);  // -> odd
    // Recycle a retired slab of the right size if one exists (same-size
    // tombstone-cleanup rebuilds dominate, so steady-state churn ping-pongs
    // between two arrays instead of leaking one per rebuild). Mutating a
    // recycled slab while a stale reader probes it is safe: every probe
    // access is atomic and the reader's version re-check rejects the probe.
    // Clearing must happen inside the odd-version window for that reason.
    std::unique_ptr<Slot[]> fresh;
    for (auto it = stripe.retired.begin(); it != stripe.retired.end(); ++it) {
      if (it->slot_count == new_capacity) {
        fresh = std::move(it->slots);
        stripe.retired.erase(it);
        break;
      }
    }
    if (fresh != nullptr) {
      for (size_t i = 0; i < new_capacity; ++i) {
        fresh[i].key.store(kEmptyKey, std::memory_order_relaxed);
      }
    } else {
      fresh = std::make_unique<Slot[]>(new_capacity);
    }
    const uint64_t new_mask = new_capacity - 1;
    Slot* old = stripe.slots.load(std::memory_order_relaxed);
    for (size_t i = 0; i < capacity; ++i) {
      const uint64_t key = old[i].key.load(std::memory_order_relaxed);
      if (key >= kTombstoneKey) {
        continue;
      }
      size_t index = FlatMapHash(key) & new_mask;
      while (fresh[index].key.load(std::memory_order_relaxed) != kEmptyKey) {
        index = (index + 1) & new_mask;
      }
      fresh[index].value.store(
          old[i].value.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      fresh[index].key.store(key, std::memory_order_relaxed);
    }
    // Retire the old array (kept alive for stale readers), publish the new
    // one, close the seqlock.
    stripe.retired.push_back(RetiredSlab{std::move(stripe.current), capacity});
    stripe.current = std::move(fresh);
    stripe.slots.store(stripe.current.get(), std::memory_order_release);
    stripe.mask.store(new_mask, std::memory_order_release);
    stripe.used = stripe.size;
    stripe.tombstones = 0;
    stripe.version.fetch_add(1, std::memory_order_release);  // -> even
  }

  std::vector<Stripe> stripes_;
  uint64_t stripe_mask_ = 0;
  size_t size_ = 0;  // writer-only
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_STRIPED_INDEX_H_
