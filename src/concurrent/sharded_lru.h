// LRU sharded across N independently-locked segments — the standard
// mitigation for LRU lock contention. Hits still take an exclusive lock, but
// only 1/N threads collide per shard.

#ifndef QDLP_SRC_CONCURRENT_SHARDED_LRU_H_
#define QDLP_SRC_CONCURRENT_SHARDED_LRU_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/concurrent/concurrent_cache.h"

namespace qdlp {

class ShardedLruCache : public ConcurrentCache {
 public:
  ShardedLruCache(size_t capacity, size_t num_shards = 16);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  const char* name() const override { return "sharded-lru"; }

  // Per-shard list/index agreement and capacity accounting.
  void CheckInvariants() override;

  size_t ApproxMetadataBytes() const override;

 private:
  struct Shard {
    std::mutex mu;
    size_t capacity = 0;
    std::list<ObjectId> mru_list;
    std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index;
  };

  Shard& ShardFor(ObjectId id);

  const size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_SHARDED_LRU_H_
