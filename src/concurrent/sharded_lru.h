// LRU sharded across N independently-locked segments — the standard
// mitigation for LRU lock contention. Hits still take an exclusive lock, but
// only 1/N threads collide per shard.

#ifndef QDLP_SRC_CONCURRENT_SHARDED_LRU_H_
#define QDLP_SRC_CONCURRENT_SHARDED_LRU_H_

#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/concurrent/concurrent_cache.h"

namespace qdlp {

class ShardedLruCache : public ConcurrentCache {
 public:
  ShardedLruCache(size_t capacity, size_t num_shards = 16);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  std::string_view name() const override { return "sharded-lru"; }

  // Removal locks only the owning shard, like Get().
  bool Remove(ObjectId id) override;
  bool SupportsRemoval() const override { return true; }

  // Telemetry is per-shard counters guarded by the shard locks the
  // operations already hold (no cross-shard contention added); Stats()
  // sums them shard by shard, so cross-counter relations are exact only at
  // quiescent points.
  CacheStats Stats() const override;

  // Per-shard list/index agreement and capacity accounting.
  void CheckInvariants() override;

  size_t ApproxMetadataBytes() const override;

 private:
  struct Shard {
    std::mutex mu;
    size_t capacity = 0;
    std::list<ObjectId> mru_list;
    std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index;
    CacheStats counters;  // flow counters only; guarded by mu
  };

  Shard& ShardFor(ObjectId id);
  const Shard& ShardFor(ObjectId id) const;

  const size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_SHARDED_LRU_H_
