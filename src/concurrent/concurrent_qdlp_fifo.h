// QD-LP-FIFO — the paper's headline construction (§4, Fig 4) — as a
// thread-safe cache with a truly lock-free hit path.
//
// Layout mirrors the sequential QdCache over a 2-bit CLOCK:
//
//   probation  — a small circular FIFO (default 10% of capacity); a hit
//                sets one per-entry accessed bit
//   main       — a 2-bit CLOCK ring over the remaining 90%
//   ghost      — metadata-only memory of quick-demoted ids, as large as
//                the main region (sharded_ghost.h)
//
// One striped atomic index (striped_index.h) maps id -> tagged location
// (probation slot or main slot); a hit is one lock-free probe plus a single
// relaxed store (the accessed bit) or relaxed RMW (the CLOCK counter) —
// lazy promotion's "at most one metadata update, no locking" made literal.
// Misses — admission, quick demotion, ghost resurrection, CLOCK eviction —
// serialize behind one mutex with BP-Wrapper-style MPSC buffering exactly
// as in concurrent_clock.h.
//
// Driven from a single thread this class is request-for-request identical
// to MakePolicy("qd-lp-fifo") — the oracle differential tests pin it
// against the sequential reference model.

#ifndef QDLP_SRC_CONCURRENT_CONCURRENT_QDLP_FIFO_H_
#define QDLP_SRC_CONCURRENT_CONCURRENT_QDLP_FIFO_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/mpsc_ring.h"
#include "src/concurrent/sharded_ghost.h"
#include "src/concurrent/striped_index.h"
#include "src/obs/concurrent_counters.h"

namespace qdlp {

class ConcurrentQdLpFifo : public ConcurrentCache {
 public:
  // Capacity is split exactly as MakePolicy("qd-lp-fifo") splits it:
  // probation = clamp(round(0.10 * capacity), 1, capacity - 1), main the
  // rest, ghost as large as main. Requires capacity >= 2.
  explicit ConcurrentQdLpFifo(size_t capacity, size_t num_stripes = 16);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  std::string_view name() const override { return "concurrent-qdlp-fifo"; }

  // Resident object count (approximate under concurrency).
  size_t size() const { return resident_.load(std::memory_order_relaxed); }

  // Flow counters from striped thread-exclusive cells; per-region occupancy
  // (probation/main/ghost) read under eviction_mu_. promotions counts
  // probation->main lazy promotions and demotions probation->ghost quick
  // demotions (main CLOCK laps are internal, as in the sequential QdCache).
  CacheStats Stats() const override;

  size_t probation_capacity() const { return probation_capacity_; }
  size_t main_capacity() const { return main_capacity_; }

  // Region accounting, index/region agreement, probation/main/ghost
  // disjointness, under eviction_mu_ (buffered misses drained first).
  void CheckInvariants() override;

  size_t ApproxMetadataBytes() const override;

 private:
  static constexpr uint8_t kMaxCounter = 3;  // 2-bit CLOCK
  // Index value tag: high bit = main region, low 31 bits = slot.
  static constexpr uint32_t kMainBit = 0x80000000u;

  // Probation ring entry. Only `accessed` is touched by concurrent readers
  // (the lock-free hit path); `id` is written solely under eviction_mu_.
  struct ProbationSlot {
    ObjectId id = 0;
    std::atomic<uint8_t> accessed{0};
  };

  // Main CLOCK ring slot, identical to concurrent_clock.h's.
  struct MainSlot {
    ObjectId id = 0;
    std::atomic<uint8_t> counter{0};
    bool occupied = false;
  };

  // All of the below run under eviction_mu_.
  // Admits `id` unless already resident; returns true on (raced) hit.
  bool MissLocked(ObjectId id);
  void DrainLocked();
  // Pushes `id` into probation, quick-demoting / lazily promoting the
  // oldest entries as needed to make room.
  void AdmitToProbation(ObjectId id);
  // Evicts the oldest probationary entry: accessed -> main (lazy
  // promotion), untouched -> ghost (quick demotion).
  void EvictFromProbation();
  // Inserts `id` into the main CLOCK ring, evicting if full. Main
  // evictions leave no ghost trace (only probation demotions do).
  void MainInsert(ObjectId id);
  size_t MainEvictOneLocked();

  const size_t capacity_;
  size_t probation_capacity_;
  size_t main_capacity_;
  size_t ghost_capacity_;

  StripedAtomicIndex index_;  // id -> kMainBit-tagged slot
  std::vector<ProbationSlot> probation_;  // circular FIFO storage
  std::vector<MainSlot> main_;            // CLOCK ring storage

  // Miss-path state, padded off the hit path's cache lines.
  alignas(64) std::atomic<size_t> resident_{0};
  alignas(64) mutable std::mutex eviction_mu_;
  size_t probation_head_ = 0;   // oldest entry's ring position
  size_t probation_count_ = 0;
  size_t main_used_ = 0;        // bump allocator over main_
  size_t main_hand_ = 0;
  ShardedGhost ghost_;
  InsertBuffers buffers_;
  ConcurrentStatsCounters counters_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_CONCURRENT_QDLP_FIFO_H_
