// Thread-safe cache interface for the throughput/scalability experiments.
//
// The paper's motivation (§1, §2): each LRU hit updates six pointers under a
// lock, while FIFO/CLOCK hits touch at most one small counter and need no
// exclusive lock, so FIFO-family caches are faster and scale with cores.
// These implementations make that concrete:
//
//  * GlobalLockLruCache   — one mutex around an LRU (the naive
//                           memcached-style design the paper argues against)
//  * ShardedLruCache      — N LRU shards, each with its own mutex (the
//                           common mitigation)
//  * ConcurrentClockCache — lock-free hit path (striped atomic index + one
//                           relaxed RMW on a reference counter); misses
//                           batch behind one eviction mutex
//  * ConcurrentS3FifoCache— same hit path over S3-FIFO's two queues + ghost
//  * ConcurrentQdLpFifo   — QD-LP-FIFO (probationary FIFO + ghost + 2-bit
//                           CLOCK main) as a concurrent cache
//
// Get() is get-or-admit: returns true on hit, and on miss admits the id
// (evicting if needed), mirroring EvictionPolicy::Access.

#ifndef QDLP_SRC_CONCURRENT_CONCURRENT_CACHE_H_
#define QDLP_SRC_CONCURRENT_CONCURRENT_CACHE_H_

#include <cstddef>

#include "src/trace/trace.h"

namespace qdlp {

class ConcurrentCache {
 public:
  virtual ~ConcurrentCache() = default;
  // Returns true on hit; admits on miss. Thread-safe.
  virtual bool Get(ObjectId id) = 0;
  virtual size_t capacity() const = 0;
  virtual const char* name() const = 0;

  // Validates internal invariants (index/queue consistency, occupancy
  // accounting, ghost/resident disjointness) with QDLP_CHECK, aborting on
  // violation. Takes the cache's locks, so it is safe to call concurrently
  // with Get(), but it is O(size) and intended for tests — call it at
  // quiescent points (e.g. after joining worker threads). Non-const because
  // it acquires the same mutexes the operational paths use.
  virtual void CheckInvariants() {}

  // Bytes of metadata held (indexes, ring slots, ghost entries, insert
  // buffers) — the numerator for bytes/object in the bench JSON. 0 when a
  // cache does not account for itself.
  virtual size_t ApproxMetadataBytes() const { return 0; }
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_CONCURRENT_CACHE_H_
