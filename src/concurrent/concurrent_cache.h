// Thread-safe cache interface for the throughput/scalability experiments.
//
// The paper's motivation (§1, §2): each LRU hit updates six pointers under a
// lock, while FIFO/CLOCK hits touch at most one small counter and need no
// exclusive lock, so FIFO-family caches are faster and scale with cores.
// These implementations make that concrete:
//
//  * GlobalLockLruCache   — one mutex around an LRU (the naive
//                           memcached-style design the paper argues against)
//  * ShardedLruCache      — N LRU shards, each with its own mutex (the
//                           common mitigation)
//  * ConcurrentClockCache — lock-free hit path (striped atomic index + one
//                           relaxed RMW on a reference counter); misses
//                           batch behind one eviction mutex
//  * ConcurrentS3FifoCache— same hit path over S3-FIFO's two queues + ghost
//  * ConcurrentQdLpFifo   — QD-LP-FIFO (probationary FIFO + ghost + 2-bit
//                           CLOCK main) as a concurrent cache
//
// Get() is get-or-admit: returns true on hit, and on miss admits the id
// (evicting if needed), mirroring EvictionPolicy::Access.
//
// ConcurrentCache shares the CacheObservable surface (name/capacity/Stats/
// ApproxMetadataBytes/CheckInvariants) with the sequential EvictionPolicy
// hierarchy, so the bench JSON writer and the stats report consume one type.
// Telemetry in the lock-free caches is kept in striped, cache-line-exclusive
// relaxed atomics (src/obs/concurrent_counters.h); lock-based caches count
// under the locks they already hold. There is deliberately NO AccessEventSink
// on this hierarchy: a virtual call per event would poison the lock-free hit
// path the paper's throughput argument rests on — Stats() snapshots are the
// concurrent observability surface.

#ifndef QDLP_SRC_CONCURRENT_CONCURRENT_CACHE_H_
#define QDLP_SRC_CONCURRENT_CONCURRENT_CACHE_H_

#include <cstddef>

#include "src/obs/cache_observable.h"
#include "src/trace/trace.h"

namespace qdlp {

class ConcurrentCache : public CacheObservable {
 public:
  // Returns true on hit; admits on miss. Thread-safe.
  virtual bool Get(ObjectId id) = 0;

  // User-controlled removal (§2, Fig 1). Returns true if the object was
  // resident and has been removed; thread-safe where supported. The default
  // does nothing and returns false — check SupportsRemoval() and fall back
  // to lazy invalidation for caches whose lock-free structures cannot
  // reclaim slots mid-flight. Removals count as evictions in Stats().
  virtual bool Remove(ObjectId id) {
    (void)id;
    return false;
  }
  virtual bool SupportsRemoval() const { return false; }

  // CacheObservable reminders (see src/obs/cache_observable.h):
  //  * Stats() must be safe to call concurrently with Get() — sum striped
  //    atomics, take only cold locks for occupancy fields.
  //  * CheckInvariants() takes the cache's locks, so it is safe to call
  //    concurrently with Get(), but it is O(size) and intended for tests —
  //    call it at quiescent points (e.g. after joining worker threads).
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_CONCURRENT_CACHE_H_
