// Sharded ghost FIFO: metadata-only memory of recently evicted ids (§4).
//
// The live-id set is sharded across independently-locked FlatMaps so
// membership lookups for different ids never contend; global FIFO age
// order is kept in one generation-stamped ring that only the eviction-lock
// holder touches. A re-inserted id simply gets a new generation — the old
// ring entry goes stale and is skipped (not counted) when the trim loop
// pops it, which reproduces exactly the "refresh on re-insert, evict
// oldest" semantics of the sequential GhostQueue.
//
// Concurrency contract: Insert / Consume / trim are serialized by the
// caller (the cache's eviction mutex) because they touch the shared order
// ring; Contains and the invariant checks take only the shard locks and
// may run concurrently with them.

#ifndef QDLP_SRC_CONCURRENT_SHARDED_GHOST_H_
#define QDLP_SRC_CONCURRENT_SHARDED_GHOST_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/check.h"
#include "src/util/flat_map.h"

namespace qdlp {

class ShardedGhost {
 public:
  // A capacity of 0 is a valid degenerate ghost: remembers nothing.
  explicit ShardedGhost(size_t capacity, size_t num_shards = 8)
      : capacity_(capacity) {
    QDLP_CHECK(num_shards >= 1);
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->live.Reserve(capacity / num_shards + 1);
      shards_.push_back(std::move(shard));
    }
  }

  // Records an eviction; re-recording refreshes the id's age. Trims the
  // oldest entries beyond capacity. Caller-serialized.
  void Insert(ObjectId id) {
    const uint64_t generation = ++generation_;
    order_.emplace_back(id, generation);
    {
      Shard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto [slot, inserted] = shard.live.Emplace(id);
      *slot = generation;
      if (inserted) {
        ++live_count_;
      }
    }
    while (live_count_ > capacity_ && !order_.empty()) {
      const auto [oldest_id, oldest_generation] = order_.front();
      order_.pop_front();
      Shard& shard = ShardFor(oldest_id);
      std::lock_guard<std::mutex> lock(shard.mu);
      const uint64_t* live_generation = shard.live.Find(oldest_id);
      if (live_generation != nullptr &&
          *live_generation == oldest_generation) {
        shard.live.Erase(oldest_id);
        --live_count_;
      }
    }
  }

  // Membership test + removal (each ghost hit is consumed, per Fig 4).
  // Caller-serialized with Insert.
  bool Consume(ObjectId id) {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.live.Erase(id)) {
      --live_count_;
      return true;
    }
    return false;
  }

  bool Contains(ObjectId id) const {
    const Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.live.Contains(id);
  }

  size_t live_size() const { return live_count_; }
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  // fn(ObjectId) over live entries, in no particular order. Takes the
  // shard locks one at a time.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->live.ForEach([&](ObjectId id, uint64_t generation) {
        (void)generation;
        fn(id);
      });
    }
  }

  void CheckInvariants() const {
    QDLP_CHECK(live_count_ <= capacity_);
    size_t live = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      live += shard->live.size();
      shard->live.CheckInvariants();
    }
    QDLP_CHECK(live == live_count_);
    // Every stale order entry is outnumbered: the ring never holds more
    // than one live generation per id.
    QDLP_CHECK(order_.size() >= live);
  }

  size_t ApproxMetadataBytes() const {
    size_t bytes = order_.size() * sizeof(std::pair<ObjectId, uint64_t>);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      bytes += shard->live.MemoryBytes();
    }
    return bytes;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    FlatMap<uint64_t> live;  // id -> newest generation
  };

  Shard& ShardFor(ObjectId id) {
    return *shards_[(FlatMapHash(id) >> 32) % shards_.size()];
  }
  const Shard& ShardFor(ObjectId id) const {
    return *shards_[(FlatMapHash(id) >> 32) % shards_.size()];
  }

  const size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Global age order; guarded by the caller's eviction mutex.
  std::deque<std::pair<ObjectId, uint64_t>> order_;
  uint64_t generation_ = 0;
  size_t live_count_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_SHARDED_GHOST_H_
