#include "src/concurrent/locked_lru.h"

#include "src/util/check.h"

namespace qdlp {

void GlobalLockLruCache::CheckInvariants() {
  std::lock_guard<std::mutex> lock(mu_);
  QDLP_CHECK(index_.size() <= capacity_);
  QDLP_CHECK(index_.size() == mru_list_.size());
  for (auto it = mru_list_.begin(); it != mru_list_.end(); ++it) {
    const auto entry = index_.find(*it);
    QDLP_CHECK(entry != index_.end());
    QDLP_CHECK(entry->second == it);
  }
  QDLP_CHECK(counters_.inserts <= counters_.misses);
  QDLP_CHECK(counters_.inserts >= counters_.evictions);
  QDLP_CHECK(counters_.inserts - counters_.evictions == index_.size());
}

GlobalLockLruCache::GlobalLockLruCache(size_t capacity) : capacity_(capacity) {
  index_.reserve(capacity);
}

size_t GlobalLockLruCache::ApproxMetadataBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  // List node (prev/next + id) plus map node (chain pointer + key +
  // iterator) plus the bucket array. Approximate by construction.
  return mru_list_.size() * (2 * sizeof(void*) + sizeof(ObjectId)) +
         index_.size() * (sizeof(void*) + sizeof(ObjectId) +
                          sizeof(std::list<ObjectId>::iterator)) +
         index_.bucket_count() * sizeof(void*);
}

CacheStats GlobalLockLruCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats = counters_;
  stats.requests = counters_.hits + counters_.misses;
  stats.promotions = counters_.hits;
  stats.size = index_.size();
  return stats;
}

bool GlobalLockLruCache::Get(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  // requests == hits + misses and promotions == hits (eager promotion) are
  // identities, derived in Stats() rather than stored per Get.
  const auto it = index_.find(id);
  if (it != index_.end()) {
    // Eager promotion: the six-pointer splice the paper counts against LRU.
    mru_list_.splice(mru_list_.begin(), mru_list_, it->second);
    ++counters_.hits;
    return true;
  }
  ++counters_.misses;
  if (index_.size() == capacity_) {
    const ObjectId victim = mru_list_.back();
    mru_list_.pop_back();
    index_.erase(victim);
    ++counters_.evictions;
  }
  mru_list_.push_front(id);
  index_[id] = mru_list_.begin();
  ++counters_.inserts;
  return false;
}

bool GlobalLockLruCache::Remove(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  mru_list_.erase(it->second);
  index_.erase(it);
  ++counters_.evictions;
  return true;
}

}  // namespace qdlp
