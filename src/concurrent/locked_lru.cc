#include "src/concurrent/locked_lru.h"

#include "src/util/check.h"

namespace qdlp {

void GlobalLockLruCache::CheckInvariants() {
  std::lock_guard<std::mutex> lock(mu_);
  QDLP_CHECK(index_.size() <= capacity_);
  QDLP_CHECK(index_.size() == mru_list_.size());
  for (auto it = mru_list_.begin(); it != mru_list_.end(); ++it) {
    const auto entry = index_.find(*it);
    QDLP_CHECK(entry != index_.end());
    QDLP_CHECK(entry->second == it);
  }
}

GlobalLockLruCache::GlobalLockLruCache(size_t capacity) : capacity_(capacity) {
  index_.reserve(capacity);
}

size_t GlobalLockLruCache::ApproxMetadataBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  // List node (prev/next + id) plus map node (chain pointer + key +
  // iterator) plus the bucket array. Approximate by construction.
  return mru_list_.size() * (2 * sizeof(void*) + sizeof(ObjectId)) +
         index_.size() * (sizeof(void*) + sizeof(ObjectId) +
                          sizeof(std::list<ObjectId>::iterator)) +
         index_.bucket_count() * sizeof(void*);
}

bool GlobalLockLruCache::Get(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(id);
  if (it != index_.end()) {
    // Eager promotion: the six-pointer splice the paper counts against LRU.
    mru_list_.splice(mru_list_.begin(), mru_list_, it->second);
    return true;
  }
  if (index_.size() == capacity_) {
    const ObjectId victim = mru_list_.back();
    mru_list_.pop_back();
    index_.erase(victim);
  }
  mru_list_.push_front(id);
  index_[id] = mru_list_.begin();
  return false;
}

}  // namespace qdlp
