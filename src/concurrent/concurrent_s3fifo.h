// Thread-safe S3-FIFO with a lock-free hit path.
//
// S3-FIFO was designed for exactly this: hits touch only a per-object
// atomic frequency counter (no queue reordering ever), so the hot path
// needs just a shared-mode index lock plus one relaxed atomic RMW. All
// queue surgery (admission, small->main promotion, ghost bookkeeping)
// happens on the miss path under one eviction mutex.
//
// Single-threaded, this class is semantically identical to S3FifoPolicy
// (same queues, same ghost, same frequency rules) — the unit tests replay
// traces through both and require identical hit/miss sequences.

#ifndef QDLP_SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
#define QDLP_SRC_CONCURRENT_CONCURRENT_S3FIFO_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/concurrent/concurrent_cache.h"

namespace qdlp {

class ConcurrentS3FifoCache : public ConcurrentCache {
 public:
  ConcurrentS3FifoCache(size_t capacity, double small_fraction = 0.10,
                        double ghost_factor = 0.9, size_t num_shards = 16);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  const char* name() const override { return "concurrent-s3fifo"; }

  // Resident object count (approximate under concurrency).
  size_t size() const { return resident_.load(std::memory_order_relaxed); }

  // Queue-size accounting, shard-index/owner agreement, and ghost/resident
  // disjointness, all under eviction_mu_ + the shard locks.
  void CheckInvariants() override;

 private:
  static constexpr uint8_t kMaxFreq = 3;

  enum class Where : uint8_t { kSmall, kMain };
  struct Node {
    ObjectId id = 0;
    std::atomic<uint8_t> freq{0};
    Where where = Where::kSmall;  // guarded by eviction_mu_
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<ObjectId, Node*> index;
  };

  Shard& ShardFor(ObjectId id);
  // All of the below run under eviction_mu_.
  void EvictSmall();
  void EvictMain();
  void MakeRoom();
  void GhostInsert(ObjectId id);
  bool GhostConsume(ObjectId id);
  void IndexInsert(ObjectId id, Node* node);
  void IndexErase(ObjectId id);

  const size_t capacity_;
  size_t small_capacity_;
  size_t ghost_capacity_;

  std::mutex eviction_mu_;
  // Owned nodes; queue structures hold raw pointers. Guarded by
  // eviction_mu_; the hit path only dereferences nodes it found via a
  // shard index under that shard's shared lock.
  std::unordered_map<ObjectId, std::unique_ptr<Node>> owner_;
  std::deque<Node*> small_fifo_;
  std::deque<Node*> main_fifo_;
  size_t small_count_ = 0;
  size_t main_count_ = 0;
  std::atomic<size_t> resident_{0};

  // Ghost FIFO (metadata only), guarded by eviction_mu_.
  std::deque<std::pair<ObjectId, uint64_t>> ghost_fifo_;
  std::unordered_map<ObjectId, uint64_t> ghost_live_;
  uint64_t ghost_generation_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
