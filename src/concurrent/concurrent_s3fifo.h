// Thread-safe S3-FIFO with a truly lock-free hit path.
//
// S3-FIFO was designed for exactly this: hits touch only a per-object
// atomic frequency counter (no queue reordering ever), so the hot path is
// one probe of the striped atomic index (striped_index.h) plus one relaxed
// RMW — no shared_mutex, no reader registration. All queue surgery
// (admission, small->main promotion, ghost bookkeeping) happens on the
// miss path under one eviction mutex, BP-Wrapper style: contended misses
// buffer their id into an MPSC ring and return; the next lock holder
// drains the batch under its single acquisition.
//
// Storage is a fixed slab of nodes (no per-object allocation): the two
// FIFOs are intrusive singly-linked lists threaded through slab slots, and
// the index maps id -> slab slot, which is stable across queue movement —
// promotion and main-queue reinsertion never touch the index at all.
//
// Single-threaded, this class is semantically identical to S3FifoPolicy
// (same queues, same ghost, same frequency rules) — the unit tests replay
// traces through both and require identical hit/miss sequences.

#ifndef QDLP_SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
#define QDLP_SRC_CONCURRENT_CONCURRENT_S3FIFO_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/concurrent/concurrent_cache.h"
#include "src/concurrent/mpsc_ring.h"
#include "src/concurrent/sharded_ghost.h"
#include "src/concurrent/striped_index.h"
#include "src/obs/concurrent_counters.h"

namespace qdlp {

class ConcurrentS3FifoCache : public ConcurrentCache {
 public:
  ConcurrentS3FifoCache(size_t capacity, double small_fraction = 0.10,
                        double ghost_factor = 0.9, size_t num_shards = 16);

  bool Get(ObjectId id) override;
  size_t capacity() const override { return capacity_; }
  std::string_view name() const override { return "concurrent-s3fifo"; }

  // Resident object count (approximate under concurrency).
  size_t size() const { return resident_.load(std::memory_order_relaxed); }

  // Flow counters from striped thread-exclusive cells; per-queue occupancy
  // (small/main/ghost) read under eviction_mu_. Safe concurrently with
  // Get().
  CacheStats Stats() const override;

  // Queue accounting, index/slab agreement, and ghost/resident
  // disjointness, under eviction_mu_ (buffered misses drained first).
  void CheckInvariants() override;

  size_t ApproxMetadataBytes() const override;

 private:
  static constexpr uint8_t kMaxFreq = 3;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  enum class Where : uint8_t { kSmall, kMain };

  // Slab slot. Only `freq` is touched by concurrent readers (the lock-free
  // hit path); everything else is written solely under eviction_mu_.
  struct Node {
    ObjectId id = 0;
    std::atomic<uint8_t> freq{0};
    Where where = Where::kSmall;
    uint32_t next = kNil;  // intrusive FIFO / freelist link
  };

  // Intrusive FIFO over slab slots.
  struct Fifo {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    size_t count = 0;
  };

  void PushBack(Fifo& fifo, uint32_t slot);
  uint32_t PopFront(Fifo& fifo);

  // All of the below run under eviction_mu_.
  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  void EvictSmall();
  void EvictMain();
  void MakeRoom();
  // Admits `id` unless already resident; returns true on (raced) hit.
  bool MissLocked(ObjectId id);
  void DrainLocked();

  const size_t capacity_;
  size_t small_capacity_;
  size_t ghost_capacity_;

  StripedAtomicIndex index_;  // id -> slab slot
  std::vector<Node> slab_;    // fixed node storage, one per resident object

  // Miss-path state, padded off the hit path's cache lines.
  alignas(64) std::atomic<size_t> resident_{0};
  alignas(64) mutable std::mutex eviction_mu_;
  Fifo small_fifo_;
  Fifo main_fifo_;
  uint32_t free_head_ = kNil;   // freelist of recycled slab slots
  size_t slab_used_ = 0;        // bump allocator high-water mark
  ShardedGhost ghost_;
  InsertBuffers buffers_;
  ConcurrentStatsCounters counters_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_CONCURRENT_CONCURRENT_S3FIFO_H_
