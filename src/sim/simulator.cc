#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/core/policy_factory.h"
#include "src/util/check.h"

namespace qdlp {

SimResult ReplayTrace(EvictionPolicy& policy, const Trace& trace) {
  SimResult result;
  result.policy = policy.name();
  result.trace = trace.name;
  result.cache_size = policy.capacity();
  result.requests = trace.requests.size();
  uint64_t hits = 0;
  for (const ObjectId id : trace.requests) {
    hits += policy.Access(id) ? 1 : 0;
  }
  result.hits = hits;
  return result;
}

SimResult SimulatePolicy(const std::string& policy_name, const Trace& trace,
                         size_t cache_size) {
  auto policy = MakePolicy(policy_name, cache_size, &trace.requests);
  QDLP_CHECK_MSG(policy != nullptr, policy_name.c_str());
  return ReplayTrace(*policy, trace);
}

size_t CacheSizeForFraction(const Trace& trace, double fraction) {
  QDLP_CHECK(fraction > 0.0);
  const double raw = static_cast<double>(trace.num_objects) * fraction;
  return std::max<size_t>(10, static_cast<size_t>(std::llround(raw)));
}

CacheSizes CacheSizesFor(const Trace& trace) {
  CacheSizes sizes;
  sizes.small = CacheSizeForFraction(trace, 0.001);
  sizes.large = CacheSizeForFraction(trace, 0.10);
  return sizes;
}

}  // namespace qdlp
