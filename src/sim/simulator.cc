#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/core/policy_factory.h"
#include "src/util/check.h"

namespace qdlp {

SimResult ReplayTrace(EvictionPolicy& policy, const Trace& trace) {
  SimResult result;
  result.policy = policy.name();
  result.trace = trace.name;
  result.cache_size = policy.capacity();
  result.requests = trace.requests.size();
  // The policy counts its own hits; the replay loop only drives accesses.
  // A delta keeps the result correct even for a pre-warmed policy.
  const CacheStats before = policy.Stats();
  for (const ObjectId id : trace.requests) {
    policy.Access(id);
  }
  result.stats = policy.Stats().DeltaSince(before);
  result.hits = result.stats.hits;
  QDLP_CHECK(result.stats.requests == result.requests);
  return result;
}

std::unique_ptr<EvictionPolicy> MakePolicyOrDie(
    const std::string& policy_name, size_t cache_size,
    const std::vector<ObjectId>* trace) {
  auto policy = MakePolicy(policy_name, cache_size, trace);
  if (policy != nullptr) {
    return policy;
  }
  if (policy_name == "belady" && trace == nullptr) {
    std::fprintf(stderr,
                 "MakePolicyOrDie: policy \"belady\" requires the request "
                 "stream (pass the trace)\n");
    std::abort();
  }
  std::string known;
  for (const std::string& name : KnownPolicyNames()) {
    known += known.empty() ? name : ", " + name;
  }
  std::fprintf(stderr, "MakePolicyOrDie: unknown policy \"%s\"; known: %s\n",
               policy_name.c_str(), known.c_str());
  std::abort();
}

SimResult SimulatePolicy(const std::string& policy_name, const Trace& trace,
                         size_t cache_size) {
  auto policy = MakePolicyOrDie(policy_name, cache_size, &trace.requests);
  return ReplayTrace(*policy, trace);
}

size_t CacheSizeForFraction(const Trace& trace, double fraction) {
  QDLP_CHECK(fraction > 0.0);
  const double raw = static_cast<double>(trace.num_objects) * fraction;
  return std::max<size_t>(10, static_cast<size_t>(std::llround(raw)));
}

CacheSizes CacheSizesFor(const Trace& trace) {
  CacheSizes sizes;
  sizes.small = CacheSizeForFraction(trace, 0.001);
  sizes.large = CacheSizeForFraction(trace, 0.10);
  return sizes;
}

}  // namespace qdlp
