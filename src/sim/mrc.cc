#include "src/sim/mrc.h"

#include "src/sim/simulator.h"

namespace qdlp {

std::vector<MrcPoint> ComputeMrc(const std::string& policy_name,
                                 const Trace& trace,
                                 const std::vector<double>& fractions) {
  std::vector<MrcPoint> curve;
  curve.reserve(fractions.size());
  for (const double fraction : fractions) {
    MrcPoint point;
    point.size_fraction = fraction;
    point.cache_size = CacheSizeForFraction(trace, fraction);
    point.miss_ratio =
        SimulatePolicy(policy_name, trace, point.cache_size).miss_ratio();
    curve.push_back(point);
  }
  return curve;
}

std::vector<double> DefaultMrcFractions() {
  return {0.001, 0.003, 0.01, 0.03, 0.10, 0.30};
}

}  // namespace qdlp
