// Per-object cache resource accounting (Fig. 3).
//
// The paper measures how much cache resource each algorithm spends on
// objects of different popularity: R_obj = Σ residencies (t_evicted -
// t_inserted) / cache_size. Efficient algorithms spend little on unpopular
// objects. ResidencyAccountant is an AccessEventSink observing insert/evict
// events during replay (the other events are left at their no-op defaults);
// ResourceByPopularityDecile then groups objects into popularity deciles
// (decile 0 = most requested) and reports each decile's share of the total
// spent space-time.

#ifndef QDLP_SRC_SIM_RESIDENCY_H_
#define QDLP_SRC_SIM_RESIDENCY_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/policies/eviction_policy.h"
#include "src/trace/trace.h"

namespace qdlp {

class ResidencyAccountant : public AccessEventSink {
 public:
  void OnInsert(ObjectId id, uint64_t time) override;
  void OnEvict(ObjectId id, uint64_t time) override;

  // Closes every still-open residency at `end_time` (end of trace).
  void FinalizeAt(uint64_t end_time);

  // Total space-time (in request ticks) object `id` occupied.
  uint64_t ResidencyOf(ObjectId id) const;
  double TotalResidency() const { return total_; }
  const std::unordered_map<ObjectId, uint64_t>& residency() const {
    return residency_;
  }

 private:
  std::unordered_map<ObjectId, uint64_t> open_;      // id -> insert time
  std::unordered_map<ObjectId, uint64_t> residency_; // id -> accumulated time
  double total_ = 0.0;
};

constexpr size_t kNumDeciles = 10;

// Shares sum to 1 (unless nothing was ever cached). Deciles partition the
// trace's distinct objects by descending request count; decile 0 holds the
// most popular 10% of objects.
std::array<double, kNumDeciles> ResourceByPopularityDecile(
    const Trace& trace, const ResidencyAccountant& accountant);

// Convenience: replays `policy_name` over `trace` at `cache_size` with
// accounting attached and returns {decile shares, miss ratio}.
struct ResidencyReport {
  std::array<double, kNumDeciles> decile_share{};
  double miss_ratio = 0.0;
};
ResidencyReport RunResidencyExperiment(const std::string& policy_name,
                                       const Trace& trace, size_t cache_size);

}  // namespace qdlp

#endif  // QDLP_SRC_SIM_RESIDENCY_H_
