// Parallel experiment sweeps: (trace × cache-size fraction × policy) grids
// replayed across a thread pool. This is the workhorse behind the Fig 2 and
// Fig 5 harnesses.

#ifndef QDLP_SRC_SIM_SWEEP_H_
#define QDLP_SRC_SIM_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace qdlp {

struct SweepPoint {
  std::string trace;      // trace name
  std::string dataset;    // dataset family
  WorkloadClass cls = WorkloadClass::kBlock;
  double size_fraction = 0.0;  // cache size / unique objects
  size_t cache_size = 0;
  std::string policy;
  double miss_ratio = 0.0;
};

// How the grid is executed. Both engines produce the same SweepPoints in
// the same order with bit-identical miss ratios (pinned by tests); they
// differ only in speed.
enum class SweepEngine {
  // One pass over each trace's dense-id stream drives all of its
  // (fraction x policy) cells in interleaved batches (batch_replay.h).
  // Pays one remap per trace, then reads the halved-width stream once.
  kBatched,
  // One full replay of the original trace per cell (simulator.h). Kept as
  // the differential reference and the bench baseline.
  kPerCell,
};

struct SweepConfig {
  std::vector<std::string> policies;
  // Cache sizes as fractions of each trace's unique-object count.
  std::vector<double> size_fractions = {0.001, 0.10};
  // 0 = hardware concurrency.
  size_t num_threads = 0;
  SweepEngine engine = SweepEngine::kBatched;
  // Batched engine tuning; see BatchReplayOptions for semantics.
  size_t batch_size = 1024;
  uint64_t max_dense_universe = uint64_t{1} << 26;
};

// Runs the full grid. Results are in deterministic order (trace-major,
// fraction, policy) regardless of thread scheduling or engine choice.
std::vector<SweepPoint> RunSweep(const std::vector<Trace>& traces,
                                 const SweepConfig& config);

// Helpers for digesting sweep output.
//
// Fraction of traces (optionally filtered by dataset/class) where
// `challenger` achieves a strictly lower miss ratio than `incumbent` at the
// given size fraction. Ties count as 0.5 per the usual convention of
// "which algorithm do you prefer" plots.
double WinFraction(const std::vector<SweepPoint>& points,
                   const std::string& challenger, const std::string& incumbent,
                   double size_fraction, const std::string& dataset_filter = "",
                   int class_filter = -1);

// Miss-ratio reduction of `policy` relative to `baseline` on each matching
// trace: (mr_baseline - mr_policy) / mr_baseline. Traces where the baseline
// has a zero miss ratio are skipped.
std::vector<double> ReductionsVsBaseline(const std::vector<SweepPoint>& points,
                                         const std::string& policy,
                                         const std::string& baseline,
                                         double size_fraction,
                                         int class_filter = -1);

}  // namespace qdlp

#endif  // QDLP_SRC_SIM_SWEEP_H_
