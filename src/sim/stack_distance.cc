#include "src/sim/stack_distance.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/random.h"

namespace qdlp {

void StackDistanceProfiler::GrowTo(size_t position) {
  size_t new_size = tree_.empty() ? 1024 : tree_.size();
  while (position >= new_size) {
    new_size *= 2;
  }
  values_.resize(new_size, 0);
  // O(n) Fenwick rebuild: start from point values, push each node's sum
  // into its parent.
  tree_ = values_;
  for (size_t i = 1; i < new_size; ++i) {
    const size_t parent = i + (i & (~i + 1));
    if (parent < new_size) {
      tree_[parent] += tree_[i];
    }
  }
}

void StackDistanceProfiler::FenwickAdd(size_t position, int delta) {
  if (position >= tree_.size()) {
    GrowTo(position);
  }
  values_[position] += delta;
  for (size_t i = position; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

int64_t StackDistanceProfiler::FenwickPrefixSum(size_t position) const {
  int64_t sum = 0;
  position = std::min(position, tree_.empty() ? 0 : tree_.size() - 1);
  for (size_t i = position; i > 0; i -= i & (~i + 1)) {
    sum += tree_[i];
  }
  return sum;
}

uint64_t StackDistanceProfiler::Record(ObjectId id) {
  const uint64_t timestamp = ++now_;  // 1-based
  const auto it = last_access_.find(id);
  uint64_t distance = kInfinite;
  if (it == last_access_.end()) {
    ++cold_misses_;
  } else {
    const uint64_t previous = it->second;
    // Each distinct object keeps one marker at its latest access position;
    // the sum over (previous, timestamp-1] counts the distinct objects
    // touched since this object's last access, excluding the object itself
    // (its marker sits at `previous`). +1 converts to the 1-based LRU stack
    // position: a hit needs a cache of at least `distance` objects.
    distance = static_cast<uint64_t>(FenwickPrefixSum(timestamp - 1) -
                                     FenwickPrefixSum(previous)) +
               1;
    FenwickAdd(previous, -1);
    ++histogram_[distance];
  }
  FenwickAdd(timestamp, +1);
  last_access_[id] = timestamp;
  return distance;
}

uint64_t StackDistanceProfiler::HitsAt(uint64_t cache_size) const {
  uint64_t hits = 0;
  for (const auto& [distance, count] : histogram_) {
    if (distance <= cache_size) {
      hits += count;
    } else {
      break;  // std::map is ordered
    }
  }
  return hits;
}

double StackDistanceProfiler::MissRatioAt(uint64_t cache_size) const {
  if (now_ == 0) {
    return 0.0;
  }
  return 1.0 -
         static_cast<double>(HitsAt(cache_size)) / static_cast<double>(now_);
}

ShardsProfiler::ShardsProfiler(double sample_rate) : sample_rate_(sample_rate) {
  QDLP_CHECK(sample_rate > 0.0 && sample_rate <= 1.0);
  // Branch before the cast: (double)~0ULL rounds up to exactly 2^64, so at
  // sample_rate 1.0 the product is 2^64 — one past uint64_t's range — and a
  // float -> uint64_t cast of an out-of-range value is UB. (Scaling by 2^64
  // only shifts the exponent, so the product is exact and rates below 1.0
  // always stay in range; 1.0 is the single overflowing input.)
  const double scaled = sample_rate * static_cast<double>(~0ULL);
  if (scaled >= static_cast<double>(~0ULL)) {
    threshold_ = ~0ULL;
  } else {
    threshold_ = static_cast<uint64_t>(scaled);
  }
}

void ShardsProfiler::Record(ObjectId id) {
  ++requests_;
  if (SplitMix64(id) <= threshold_) {
    ++sampled_requests_;
    inner_.Record(id);
  }
}

double ShardsProfiler::MissRatioAt(uint64_t cache_size) const {
  if (requests_ == 0) {
    return 0.0;
  }
  // Distances within the sample under-count by a factor of R (only sampled
  // objects interpose), so the full-stream distance is d / R; equivalently,
  // evaluate the sampled histogram at cache_size * R.
  const uint64_t scaled = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(static_cast<double>(cache_size) * sample_rate_)));
  // SHARDS-adj (Waldspurger et al.): popular objects are requested more
  // often than the spatial rate alone predicts, biasing the raw estimate
  // upward. Credit the difference between the expected and the actual
  // sampled-request count to the smallest-distance bucket.
  const double expected =
      static_cast<double>(requests_) * sample_rate_;
  const double adjustment =
      expected - static_cast<double>(sampled_requests_);
  const double hits = static_cast<double>(inner_.HitsAt(scaled)) + adjustment;
  const double total = expected;
  if (total <= 0.0) {
    return 0.0;
  }
  const double mr = 1.0 - hits / total;
  return std::clamp(mr, 0.0, 1.0);
}

std::vector<std::pair<uint64_t, double>> ExactLruMrc(
    const Trace& trace, const std::vector<uint64_t>& cache_sizes) {
  StackDistanceProfiler profiler;
  for (const ObjectId id : trace.requests) {
    profiler.Record(id);
  }
  std::vector<std::pair<uint64_t, double>> curve;
  curve.reserve(cache_sizes.size());
  for (const uint64_t size : cache_sizes) {
    curve.emplace_back(size, profiler.MissRatioAt(size));
  }
  return curve;
}

}  // namespace qdlp
