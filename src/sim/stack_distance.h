// LRU stack-distance profiling and sampled MRC construction.
//
// Mattson's observation: LRU has the inclusion property, so one pass that
// records each request's *reuse (stack) distance* — the number of distinct
// objects touched since the previous access to the same object — yields the
// LRU miss ratio at every cache size simultaneously:
//     mr(s) = 1 - |{requests with distance <= s}| / |requests|.
// Distances are computed in O(log n) per request with a Fenwick tree over
// access timestamps.
//
// ShardsProfiler implements SHARDS (Waldspurger et al., FAST'15 — cited by
// the paper): spatially sample ids with rate R via hashing, profile only the
// sample, then scale distances by 1/R. Orders of magnitude cheaper with
// small error, which is how production systems profile MRCs online.

#ifndef QDLP_SRC_SIM_STACK_DISTANCE_H_
#define QDLP_SRC_SIM_STACK_DISTANCE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/trace/trace.h"

namespace qdlp {

class StackDistanceProfiler {
 public:
  static constexpr uint64_t kInfinite = ~0ULL;  // first access (cold miss)

  StackDistanceProfiler() = default;

  // Records one request; returns its stack distance (1 = re-accessed with
  // nothing else in between), or kInfinite on first access.
  uint64_t Record(ObjectId id);

  uint64_t requests() const { return now_; }
  uint64_t cold_misses() const { return cold_misses_; }
  // distance -> count of requests with that distance (finite only).
  const std::map<uint64_t, uint64_t>& histogram() const { return histogram_; }

  // Number of requests whose stack distance is <= cache_size (i.e., LRU
  // hits at that size).
  uint64_t HitsAt(uint64_t cache_size) const;
  // LRU miss ratio at the given cache size (in objects).
  double MissRatioAt(uint64_t cache_size) const;

 private:
  void FenwickAdd(size_t position, int delta);
  int64_t FenwickPrefixSum(size_t position) const;
  // Doubles the tree and rebuilds it from the point values (a Fenwick tree
  // cannot be grown by zero-padding: high nodes must cover old mass).
  void GrowTo(size_t position);

  uint64_t now_ = 0;  // requests processed; also the next timestamp
  uint64_t cold_misses_ = 0;
  std::unordered_map<ObjectId, uint64_t> last_access_;  // id -> timestamp
  std::vector<int32_t> values_;  // point values, 1-based
  std::vector<int32_t> tree_;    // Fenwick over timestamps (1-based)
  std::map<uint64_t, uint64_t> histogram_;
};

// SHARDS: profile a hashed sample of the id space at `sample_rate` and
// scale distances/counts back up.
class ShardsProfiler {
 public:
  explicit ShardsProfiler(double sample_rate);

  void Record(ObjectId id);

  uint64_t requests() const { return requests_; }
  uint64_t sampled_requests() const { return sampled_requests_; }
  double sample_rate() const { return sample_rate_; }

  // Estimated LRU miss ratio of the FULL stream at `cache_size` objects.
  double MissRatioAt(uint64_t cache_size) const;

 private:
  double sample_rate_;
  uint64_t threshold_;  // sample when hash(id) < threshold_
  uint64_t requests_ = 0;
  uint64_t sampled_requests_ = 0;
  StackDistanceProfiler inner_;
};

// Convenience: full MRC for a trace at the given sizes.
std::vector<std::pair<uint64_t, double>> ExactLruMrc(
    const Trace& trace, const std::vector<uint64_t>& cache_sizes);

}  // namespace qdlp

#endif  // QDLP_SRC_SIM_STACK_DISTANCE_H_
