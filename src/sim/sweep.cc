#include "src/sim/sweep.h"

#include <cmath>
#include <unordered_map>

#include "src/sim/batch_replay.h"
#include "src/sim/simulator.h"
#include "src/trace/dense_trace.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace qdlp {

namespace {

// Per-cell engine: one task per (trace, size fraction), each cell a full
// replay of the original trace. A whole-trace task would make the longest
// trace times the whole fraction sweep the critical path; per-(trace,
// fraction) tasks keep every core busy through the tail.
void RunSweepPerCell(const std::vector<Trace>& traces,
                     const SweepConfig& config, ThreadPool& pool,
                     std::vector<SweepPoint>& points) {
  const size_t per_trace = config.size_fractions.size() * config.policies.size();
  for (size_t t = 0; t < traces.size(); ++t) {
    for (size_t f = 0; f < config.size_fractions.size(); ++f) {
      // per_trace by value: this helper returns before pool.Wait(), so its
      // frame is gone by the time workers run; traces/config/points are the
      // caller's and outlive the pool.
      pool.Submit([&, t, f, per_trace] {
        const Trace& trace = traces[t];
        const double fraction = config.size_fractions[f];
        const size_t cache_size = CacheSizeForFraction(trace, fraction);
        size_t slot = t * per_trace + f * config.policies.size();
        for (const std::string& policy : config.policies) {
          const SimResult result = SimulatePolicy(policy, trace, cache_size);
          SweepPoint& point = points[slot++];
          point.trace = trace.name;
          point.dataset = trace.dataset;
          point.cls = trace.cls;
          point.size_fraction = fraction;
          point.cache_size = cache_size;
          point.policy = policy;
          point.miss_ratio = result.miss_ratio();
        }
      });
    }
  }
}

// Batched engine: one task per trace. The task densifies the trace once,
// then a single interleaved pass drives every (fraction x policy) cell
// (batch_replay.h). Coarser tasks than per-cell, but each task does its
// work in one stream pass instead of cells-many, so the critical path
// shrinks rather than grows.
void RunSweepBatched(const std::vector<Trace>& traces,
                     const SweepConfig& config, ThreadPool& pool,
                     std::vector<SweepPoint>& points) {
  const size_t per_trace = config.size_fractions.size() * config.policies.size();
  for (size_t t = 0; t < traces.size(); ++t) {
    // Same lifetime rule as RunSweepPerCell: per_trace by value.
    pool.Submit([&, t, per_trace] {
      const Trace& trace = traces[t];
      const DenseTrace dense = DensifyTrace(trace);
      // Cells in (fraction, policy) nesting — the exact slot order.
      std::vector<BatchCellSpec> cells;
      cells.reserve(per_trace);
      for (const double fraction : config.size_fractions) {
        const size_t cache_size = CacheSizeForFraction(trace, fraction);
        for (const std::string& policy : config.policies) {
          cells.push_back(BatchCellSpec{policy, cache_size});
        }
      }
      BatchReplayOptions options;
      options.batch_size = config.batch_size;
      options.max_dense_universe = config.max_dense_universe;
      const std::vector<SimResult> results =
          BatchReplayTrace(dense, cells, options, &trace.requests);
      size_t slot = t * per_trace;
      size_t cell = 0;
      for (size_t f = 0; f < config.size_fractions.size(); ++f) {
        for (const std::string& policy : config.policies) {
          const SimResult& result = results[cell];
          SweepPoint& point = points[slot];
          point.trace = trace.name;
          point.dataset = trace.dataset;
          point.cls = trace.cls;
          point.size_fraction = config.size_fractions[f];
          point.cache_size = cells[cell].cache_size;
          point.policy = policy;
          point.miss_ratio = result.miss_ratio();
          ++slot;
          ++cell;
        }
      }
    });
  }
}

}  // namespace

std::vector<SweepPoint> RunSweep(const std::vector<Trace>& traces,
                                 const SweepConfig& config) {
  QDLP_CHECK(!config.policies.empty());
  QDLP_CHECK(!config.size_fractions.empty());

  const size_t per_trace = config.size_fractions.size() * config.policies.size();
  std::vector<SweepPoint> points(traces.size() * per_trace);

  // Output slots are preassigned so ordering is identical to the
  // sequential nesting (trace-major, then fraction, then policy) no matter
  // which engine ran or how its tasks were scheduled.
  ThreadPool pool(config.num_threads);
  if (config.engine == SweepEngine::kBatched) {
    RunSweepBatched(traces, config, pool, points);
  } else {
    RunSweepPerCell(traces, config, pool, points);
  }
  pool.Wait();
  return points;
}

namespace {

bool MatchesFilters(const SweepPoint& point, double size_fraction,
                    const std::string& dataset_filter, int class_filter) {
  if (std::abs(point.size_fraction - size_fraction) > 1e-12) {
    return false;
  }
  if (!dataset_filter.empty() && point.dataset != dataset_filter) {
    return false;
  }
  if (class_filter >= 0 &&
      static_cast<int>(point.cls) != class_filter) {
    return false;
  }
  return true;
}

}  // namespace

double WinFraction(const std::vector<SweepPoint>& points,
                   const std::string& challenger, const std::string& incumbent,
                   double size_fraction, const std::string& dataset_filter,
                   int class_filter) {
  std::unordered_map<std::string, double> challenger_mr;
  std::unordered_map<std::string, double> incumbent_mr;
  for (const SweepPoint& point : points) {
    if (!MatchesFilters(point, size_fraction, dataset_filter, class_filter)) {
      continue;
    }
    if (point.policy == challenger) {
      challenger_mr[point.trace] = point.miss_ratio;
    } else if (point.policy == incumbent) {
      incumbent_mr[point.trace] = point.miss_ratio;
    }
  }
  double wins = 0.0;
  size_t total = 0;
  for (const auto& [trace, challenger_value] : challenger_mr) {
    const auto it = incumbent_mr.find(trace);
    if (it == incumbent_mr.end()) {
      continue;
    }
    ++total;
    // Miss ratios land in [0, 1]; policies that agree can still differ in
    // the last few ulps when their hit counts were accumulated through
    // different float paths, so ties are epsilon-based rather than exact.
    constexpr double kTieEpsilon = 1e-9;
    if (std::abs(challenger_value - it->second) <= kTieEpsilon) {
      wins += 0.5;
    } else if (challenger_value < it->second) {
      wins += 1.0;
    }
  }
  return total == 0 ? 0.0 : wins / static_cast<double>(total);
}

std::vector<double> ReductionsVsBaseline(const std::vector<SweepPoint>& points,
                                         const std::string& policy,
                                         const std::string& baseline,
                                         double size_fraction,
                                         int class_filter) {
  std::unordered_map<std::string, double> policy_mr;
  std::unordered_map<std::string, double> baseline_mr;
  for (const SweepPoint& point : points) {
    if (!MatchesFilters(point, size_fraction, "", class_filter)) {
      continue;
    }
    if (point.policy == policy) {
      policy_mr[point.trace] = point.miss_ratio;
    } else if (point.policy == baseline) {
      baseline_mr[point.trace] = point.miss_ratio;
    }
  }
  std::vector<double> reductions;
  reductions.reserve(policy_mr.size());
  for (const auto& [trace, policy_value] : policy_mr) {
    const auto it = baseline_mr.find(trace);
    if (it == baseline_mr.end() || it->second <= 0.0) {
      continue;
    }
    reductions.push_back((it->second - policy_value) / it->second);
  }
  return reductions;
}

}  // namespace qdlp
