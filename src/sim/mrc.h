// Miss-ratio curves: one policy evaluated at a ladder of cache sizes.
// Used by the ablation benches and the mrc example.

#ifndef QDLP_SRC_SIM_MRC_H_
#define QDLP_SRC_SIM_MRC_H_

#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace qdlp {

struct MrcPoint {
  double size_fraction = 0.0;
  size_t cache_size = 0;
  double miss_ratio = 0.0;
};

// Replays `policy_name` over `trace` once per fraction. Fractions are
// relative to the trace's unique-object count.
std::vector<MrcPoint> ComputeMrc(const std::string& policy_name,
                                 const Trace& trace,
                                 const std::vector<double>& fractions);

// A convenient default ladder: 0.1%, 0.3%, 1%, 3%, 10%, 30%.
std::vector<double> DefaultMrcFractions();

}  // namespace qdlp

#endif  // QDLP_SRC_SIM_MRC_H_
