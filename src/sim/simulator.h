// Trace-replay simulation: feed a trace through a policy and collect
// hit/miss statistics. The paper's entire evaluation is this loop, repeated
// 5307 × policies × 2 cache sizes.

#ifndef QDLP_SRC_SIM_SIMULATOR_H_
#define QDLP_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/obs/cache_stats.h"
#include "src/policies/eviction_policy.h"
#include "src/trace/trace.h"

namespace qdlp {

struct SimResult {
  std::string policy;
  std::string trace;
  uint64_t requests = 0;
  uint64_t hits = 0;
  size_t cache_size = 0;
  // The policy's own telemetry over this replay (delta of Stats() across
  // the run; occupancy fields are the end-of-replay snapshot).
  CacheStats stats;

  uint64_t misses() const { return requests - hits; }
  double miss_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(misses()) /
                               static_cast<double>(requests);
  }
  double hit_ratio() const { return requests == 0 ? 0.0 : 1.0 - miss_ratio(); }
};

// Replays `trace` through `policy` (which must be freshly constructed).
SimResult ReplayTrace(EvictionPolicy& policy, const Trace& trace);

// Builds `policy_name` via the factory, aborting with a diagnostic instead
// of returning nullptr: an unknown name dies listing every known policy
// name, and "belady" without a trace dies explaining that it needs one.
std::unique_ptr<EvictionPolicy> MakePolicyOrDie(
    const std::string& policy_name, size_t cache_size,
    const std::vector<ObjectId>* trace = nullptr);

// Convenience: builds `policy_name` via the factory at `cache_size` and
// replays. Aborts on unknown policy names (programmer error in harnesses).
SimResult SimulatePolicy(const std::string& policy_name, const Trace& trace,
                         size_t cache_size);

// The paper's two operating points: small = 0.1% and large = 10% of the
// trace's unique objects (floors keep tiny traces meaningful).
struct CacheSizes {
  size_t small = 0;
  size_t large = 0;
};
CacheSizes CacheSizesFor(const Trace& trace);

// A fractional cache size relative to the trace's unique objects.
size_t CacheSizeForFraction(const Trace& trace, double fraction);

}  // namespace qdlp

#endif  // QDLP_SRC_SIM_SIMULATOR_H_
