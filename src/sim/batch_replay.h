// Batched multi-configuration replay: one pass over a dense-id request
// stream drives every (policy x cache size) cell of a sweep at once.
//
// The per-cell replay (simulator.h) re-reads the trace from DRAM once per
// cell; a Fig-2 grid touches each trace policies x fractions times. Here
// the cells advance through the stream together in request batches, so a
// batch is fetched once and stays cache-hot while every cell consumes it:
//
//   for each batch of ~1024 requests:
//     translate the batch to original ids once (shared by original-id cells)
//     for each cell: cell.policy consumes the batch
//
// Cells fall into three lanes, chosen per policy:
//  * dense index + dense ids — remap-invariant policy, universe small
//    enough: direct-indexed slot arrays, u32 stream, prefetch pipeline.
//  * flat index + dense ids — remap-invariant policy, universe above
//    `max_dense_universe`: still reads the halved-width stream, skips the
//    translation, keeps the prefetch pipeline over the hash index.
//  * flat index + original ids — policies whose decisions depend on id
//    values/hash order (random sampling, sketches) and Belady: fed the
//    exact original sequence so results match the per-cell replay bit for
//    bit.
//
// All three lanes produce miss ratios byte-identical to ReplayTrace on the
// original trace (the differential test in tests/batch_replay_test.cc pins
// this across every serial policy).

#ifndef QDLP_SRC_SIM_BATCH_REPLAY_H_
#define QDLP_SRC_SIM_BATCH_REPLAY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/trace/dense_trace.h"
#include "src/trace/trace.h"

namespace qdlp {

// One (policy, cache size) configuration to replay.
struct BatchCellSpec {
  std::string policy;
  size_t cache_size = 0;
};

struct BatchReplayOptions {
  // Requests per interleaved batch. The default keeps a u32 batch (4 KiB)
  // comfortably inside L1 while amortizing the per-cell loop overhead.
  size_t batch_size = 1024;
  // A DenseIndex spends O(universe) slots per cell; above this many
  // distinct objects, remap-invariant policies fall back to the flat index
  // (still fed dense ids). 2^26 slots is ~0.5 GiB/cell at 8-byte values.
  uint64_t max_dense_universe = uint64_t{1} << 26;
};

// Replays every cell over `dense` in one interleaved pass. Results are in
// cell order, with SimResult::trace taken from `dense.name`. Cells whose
// policy needs the original request stream at construction (Belady) use
// `original_requests`; passing nullptr aborts for such cells. Aborts on
// unknown policy names with a message listing the known ones.
std::vector<SimResult> BatchReplayTrace(
    const DenseTrace& dense, const std::vector<BatchCellSpec>& cells,
    const BatchReplayOptions& options = {},
    const std::vector<ObjectId>* original_requests = nullptr);

}  // namespace qdlp

#endif  // QDLP_SRC_SIM_BATCH_REPLAY_H_
