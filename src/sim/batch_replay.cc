#include "src/sim/batch_replay.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/core/policy_factory.h"
#include "src/util/check.h"

namespace qdlp {

namespace {

struct Cell {
  std::unique_ptr<EvictionPolicy> policy;
  bool dense_ids = false;  // consumes the u32 stream; else translated ids
};

}  // namespace

std::vector<SimResult> BatchReplayTrace(
    const DenseTrace& dense, const std::vector<BatchCellSpec>& cells,
    const BatchReplayOptions& options,
    const std::vector<ObjectId>* original_requests) {
  QDLP_CHECK(options.batch_size >= 1);
  const uint64_t universe = dense.num_objects();
  const bool dense_index_ok = universe <= options.max_dense_universe;

  std::vector<Cell> live;
  live.reserve(cells.size());
  bool any_original_ids = false;
  for (const BatchCellSpec& spec : cells) {
    Cell cell;
    // Remap-invariant policies read the dense stream directly — over a
    // direct-indexed slot array when the universe is small enough to
    // afford one, over the usual flat hash index otherwise. Everything
    // else gets the original ids its decisions depend on.
    if (HasDenseVariant(spec.policy)) {
      cell.dense_ids = true;
      cell.policy = dense_index_ok
                        ? MakeDensePolicy(spec.policy, spec.cache_size, universe)
                        : MakePolicy(spec.policy, spec.cache_size);
    } else {
      cell.policy =
          MakePolicy(spec.policy, spec.cache_size, original_requests);
      any_original_ids = true;
    }
    if (cell.policy == nullptr) {
      MakePolicyOrDie(spec.policy, spec.cache_size, original_requests);
    }
    live.push_back(std::move(cell));
  }

  const uint32_t* stream = dense.requests.data();
  const size_t num_requests = dense.requests.size();
  // Original-id cells share one translation of the current batch.
  std::vector<ObjectId> scratch;
  if (any_original_ids) {
    scratch.resize(std::min(options.batch_size, num_requests));
  }

  for (size_t pos = 0; pos < num_requests; pos += options.batch_size) {
    const size_t len = std::min(options.batch_size, num_requests - pos);
    if (any_original_ids) {
      for (size_t i = 0; i < len; ++i) {
        scratch[i] = dense.to_original[stream[pos + i]];
      }
    }
    for (Cell& cell : live) {
      // The policies count their own hits (Stats(), read below); the replay
      // loop only drives accesses.
      if (cell.dense_ids) {
        cell.policy->AccessBatch(stream + pos, len);
      } else {
        for (size_t i = 0; i < len; ++i) {
          cell.policy->Access(scratch[i]);
        }
      }
    }
  }

  std::vector<SimResult> results;
  results.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    SimResult result;
    result.policy = live[i].policy->name();
    result.trace = dense.name;
    result.cache_size = live[i].policy->capacity();
    result.requests = num_requests;
    result.stats = live[i].policy->Stats();
    result.hits = result.stats.hits;
    QDLP_CHECK(result.stats.requests == num_requests);
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace qdlp
