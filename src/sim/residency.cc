#include "src/sim/residency.h"

#include <algorithm>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"

namespace qdlp {

void ResidencyAccountant::OnInsert(ObjectId id, uint64_t time) {
  // A second insert without an evict would indicate a policy bug; keep the
  // earliest open time in release builds.
  open_.emplace(id, time);
}

void ResidencyAccountant::OnEvict(ObjectId id, uint64_t time) {
  const auto it = open_.find(id);
  if (it == open_.end()) {
    return;  // eviction without insert: composed policies may skip notify
  }
  const uint64_t duration = time >= it->second ? time - it->second : 0;
  residency_[id] += duration;
  total_ += static_cast<double>(duration);
  open_.erase(it);
}

void ResidencyAccountant::FinalizeAt(uint64_t end_time) {
  for (const auto& [id, start] : open_) {
    const uint64_t duration = end_time >= start ? end_time - start : 0;
    residency_[id] += duration;
    total_ += static_cast<double>(duration);
  }
  open_.clear();
}

uint64_t ResidencyAccountant::ResidencyOf(ObjectId id) const {
  const auto it = residency_.find(id);
  return it == residency_.end() ? 0 : it->second;
}

std::array<double, kNumDeciles> ResourceByPopularityDecile(
    const Trace& trace, const ResidencyAccountant& accountant) {
  // Rank objects by request count, descending.
  std::unordered_map<ObjectId, uint64_t> freq;
  freq.reserve(trace.requests.size() / 2);
  for (const ObjectId id : trace.requests) {
    ++freq[id];
  }
  std::vector<std::pair<uint64_t, ObjectId>> ranked;
  ranked.reserve(freq.size());
  for (const auto& [id, count] : freq) {
    ranked.emplace_back(count, id);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a > b; });

  std::array<double, kNumDeciles> shares{};
  if (ranked.empty() || accountant.TotalResidency() <= 0.0) {
    return shares;
  }
  const size_t n = ranked.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t decile = std::min(kNumDeciles - 1, i * kNumDeciles / n);
    shares[decile] +=
        static_cast<double>(accountant.ResidencyOf(ranked[i].second));
  }
  for (double& share : shares) {
    share /= accountant.TotalResidency();
  }
  return shares;
}

ResidencyReport RunResidencyExperiment(const std::string& policy_name,
                                       const Trace& trace, size_t cache_size) {
  auto policy = MakePolicy(policy_name, cache_size, &trace.requests);
  QDLP_CHECK_MSG(policy != nullptr, policy_name.c_str());
  ResidencyAccountant accountant;
  policy->set_event_sink(&accountant);
  const SimResult result = ReplayTrace(*policy, trace);
  accountant.FinalizeAt(policy->now());
  ResidencyReport report;
  report.decile_share = ResourceByPopularityDecile(trace, accountant);
  report.miss_ratio = result.miss_ratio();
  return report;
}

}  // namespace qdlp
