// FIFO eviction: evict in insertion order, no promotion of any kind.
//
// The paper's base algorithm. Zero metadata updates on a hit, which is what
// gives FIFO its throughput/scalability/flash-friendliness advantages (§2);
// the miss-ratio gap to LRU is what LP and QD close.
//
// Supports user removal (for TTL): removed ids leave the index immediately;
// their queue records go stale and are skipped during eviction
// (generation-tagged, so a re-admitted id is not hurt by its old record).

#ifndef QDLP_SRC_POLICIES_FIFO_H_
#define QDLP_SRC_POLICIES_FIFO_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class FifoPolicy : public EvictionPolicy {
 public:
  explicit FifoPolicy(size_t capacity);

  size_t size() const override { return live_.size(); }
  bool Contains(ObjectId id) const override { return live_.contains(id); }

  bool Remove(ObjectId id) override;
  bool SupportsRemoval() const override { return true; }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  void EvictOldest();

  // front = oldest. Records whose generation no longer matches live_ are
  // stale (removed or superseded) and skipped.
  std::deque<std::pair<ObjectId, uint64_t>> queue_;
  std::unordered_map<ObjectId, uint64_t> live_;  // id -> generation
  uint64_t next_generation_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_FIFO_H_
