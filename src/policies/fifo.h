// FIFO eviction: evict in insertion order, no promotion of any kind.
//
// The paper's base algorithm. Zero metadata updates on a hit, which is what
// gives FIFO its throughput/scalability/flash-friendliness advantages (§2);
// the miss-ratio gap to LRU is what LP and QD close.
//
// Storage is a slab-backed intrusive queue plus an id index with no
// per-object allocation. The index backing is a template parameter: the
// general-purpose FifoPolicy probes an open-addressing FlatMap, while
// DenseFifoPolicy (used by the batched sweep engine on dense-remapped
// traces) replaces the probe with a direct-indexed slot array. User removal
// (for TTL) unlinks the queue record in O(1), so eviction never sees stale
// entries.

#ifndef QDLP_SRC_POLICIES_FIFO_H_
#define QDLP_SRC_POLICIES_FIFO_H_

#include "src/policies/eviction_policy.h"
#include "src/util/dense_index.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

template <typename IndexFactory>
class BasicFifoPolicy : public EvictionPolicy {
 public:
  explicit BasicFifoPolicy(size_t capacity, IndexFactory factory = {})
      : EvictionPolicy(capacity, "fifo"),
        index_(factory.template Make<uint32_t>()) {
    queue_.Reserve(capacity);
    // +1: a miss emplaces the newcomer before evicting the victim, so the
    // index transiently holds capacity + 1 entries.
    index_.Reserve(capacity + 1);
  }

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  uint64_t AccessBatch(const uint32_t* ids, size_t n) override {
    return PrefetchPipelinedBatch(*this, index_, ids, n);
  }

  bool Remove(ObjectId id) override {
    const uint32_t* slot = index_.Find(id);
    if (slot == nullptr) {
      return false;
    }
    queue_.Erase(*slot);
    index_.Erase(id);
    NotifyEvict(id);
    return true;
  }
  bool SupportsRemoval() const override { return true; }

  // Queue/index consistency: the queue and index hold exactly the same ids.
  void CheckInvariants() const override {
    QDLP_CHECK(index_.size() <= capacity());
    QDLP_CHECK(queue_.size() == index_.size());
    queue_.ForEach([&](uint32_t slot, ObjectId id) {
      const uint32_t* indexed = index_.Find(id);
      QDLP_CHECK(indexed != nullptr);
      QDLP_CHECK(*indexed == slot);
    });
    queue_.CheckInvariants();
    index_.CheckInvariants();
  }

  // Slab + table bytes currently held (bench bytes/object accounting).
  size_t ApproxMetadataBytes() const override {
    return queue_.MemoryBytes() + index_.MemoryBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override {
    const auto [slot, inserted] = index_.Emplace(id);
    if (!inserted) {
      return true;
    }
    // Evict after the emplace (one probe covers lookup + insert); Erase
    // never relocates live index slots, so `slot` stays valid across it.
    if (index_.size() > capacity()) {
      EvictOldest();
    }
    *slot = queue_.PushBack(id);
    NotifyInsert(id);
    return false;
  }

 private:
  void EvictOldest() {
    QDLP_CHECK(!queue_.empty());
    const uint32_t slot = queue_.front();
    const ObjectId victim = queue_[slot];
    queue_.Erase(slot);
    index_.Erase(victim);
    NotifyEvict(victim);
  }

  IntrusiveList<ObjectId> queue_;  // front = oldest
  typename IndexFactory::template Index<uint32_t> index_;  // id -> queue slot
};

using FifoPolicy = BasicFifoPolicy<FlatIndexFactory>;
using DenseFifoPolicy = BasicFifoPolicy<DenseIndexFactory>;

extern template class BasicFifoPolicy<FlatIndexFactory>;
extern template class BasicFifoPolicy<DenseIndexFactory>;

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_FIFO_H_
