// FIFO eviction: evict in insertion order, no promotion of any kind.
//
// The paper's base algorithm. Zero metadata updates on a hit, which is what
// gives FIFO its throughput/scalability/flash-friendliness advantages (§2);
// the miss-ratio gap to LRU is what LP and QD close.
//
// Storage is a slab-backed intrusive queue plus an open-addressing index
// (no per-object allocation). User removal (for TTL) unlinks the queue
// record in O(1), so eviction never sees stale entries.

#ifndef QDLP_SRC_POLICIES_FIFO_H_
#define QDLP_SRC_POLICIES_FIFO_H_

#include "src/policies/eviction_policy.h"
#include "src/util/flat_map.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

class FifoPolicy : public EvictionPolicy {
 public:
  explicit FifoPolicy(size_t capacity);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  bool Remove(ObjectId id) override;
  bool SupportsRemoval() const override { return true; }

  // Queue/index consistency: the queue and index hold exactly the same ids.
  void CheckInvariants() const override;

  // Slab + table bytes currently held (bench bytes/object accounting).
  size_t ApproxMetadataBytes() const override {
    return queue_.MemoryBytes() + index_.MemoryBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  void EvictOldest();

  IntrusiveList<ObjectId> queue_;  // front = oldest
  FlatMap<uint32_t> index_;        // id -> queue slot
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_FIFO_H_
