// CACHEUS (Rodriguez et al., FAST'21) — adaptive variant of LeCaR.
//
// CACHEUS's central improvements over LeCaR are (1) a *learned* learning
// rate instead of LeCaR's fixed 0.45, adapted by hill climbing on the
// windowed hit rate, and (2) scan-resistant/churn-resistant experts (SR-LRU,
// CR-LFU).
//
// Simplifications in this implementation (documented per DESIGN.md §6):
//  * CR-LFU is realized as LFU with last-access tie-breaking (the CR part);
//  * SR-LRU is approximated by plain LRU — scan resistance in our
//    configuration comes mostly from the LFU expert taking over weight
//    during scans, which the adaptive learning rate accelerates;
//  * the learning-rate hill climber uses multiplicative steps with direction
//    reversal on regression, with a random restart when the rate collapses.

#ifndef QDLP_SRC_POLICIES_CACHEUS_H_
#define QDLP_SRC_POLICIES_CACHEUS_H_

#include <cstdint>
#include <deque>
#include <list>
#include <set>
#include <unordered_map>

#include "src/policies/eviction_policy.h"
#include "src/util/random.h"

namespace qdlp {

class CacheusPolicy : public EvictionPolicy {
 public:
  explicit CacheusPolicy(size_t capacity, uint64_t seed = 11);

  size_t size() const override { return entries_.size(); }
  bool Contains(ObjectId id) const override { return entries_.contains(id); }

  double learning_rate() const { return learning_rate_; }
  double lru_weight() const { return w_lru_; }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Entry {
    uint64_t frequency = 0;
    uint64_t last_access = 0;
    std::list<ObjectId>::iterator lru_position;
  };
  using LfuKey = std::pair<uint64_t, uint64_t>;

  struct History {
    std::deque<std::pair<ObjectId, uint64_t>> fifo;
    std::unordered_map<ObjectId, uint64_t> index;
    void Push(ObjectId id, uint64_t time, size_t max_size);
  };

  void EvictOne();
  void UpdateWeights(double& wrong, double& other, uint64_t evicted_at);
  void MaybeAdaptLearningRate();

  double learning_rate_ = 0.45;
  double rate_direction_ = 1.0;
  double discount_;
  double w_lru_ = 0.5;
  double w_lfu_ = 0.5;
  Rng rng_;

  // Windowed hit-rate bookkeeping for the learning-rate hill climber.
  uint64_t window_length_;
  uint64_t window_requests_ = 0;
  uint64_t window_hits_ = 0;
  double previous_window_hit_rate_ = -1.0;

  std::unordered_map<ObjectId, Entry> entries_;
  std::list<ObjectId> lru_list_;
  std::set<std::pair<LfuKey, ObjectId>> lfu_order_;
  History lru_history_;
  History lfu_history_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_CACHEUS_H_
