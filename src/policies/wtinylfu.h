// W-TinyLFU (Einziger, Friedman & Manes, ACM TOS'17) — frequency-sketch
// admission in front of a segmented main cache.
//
// Structure: a small LRU window (default 1% of capacity) absorbs new
// objects; the main SLRU (99%, 80% protected) only admits a window evictee
// if the TinyLFU sketch estimates its frequency above the main cache's
// probation victim ("candidate vs victim duel"). A doorkeeper Bloom filter
// absorbs first touches before they reach the sketch.
//
// §5 of the HotOS paper classifies admission policies like TinyLFU as a form
// of Quick Demotion ("albeit some of them are too aggressive at demotion");
// this implementation lets the benches test that classification.

#ifndef QDLP_SRC_POLICIES_WTINYLFU_H_
#define QDLP_SRC_POLICIES_WTINYLFU_H_

#include <list>
#include <unordered_map>

#include "src/policies/eviction_policy.h"
#include "src/util/bloom_filter.h"
#include "src/util/count_min_sketch.h"

namespace qdlp {

class WTinyLfuPolicy : public EvictionPolicy {
 public:
  WTinyLfuPolicy(size_t capacity, double window_fraction = 0.01,
                 double protected_fraction = 0.8);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

  size_t window_size() const { return window_.size(); }
  uint64_t admissions() const { return admissions_; }
  uint64_t rejections() const { return rejections_; }

  // Segment-size accounting (window/probation/protected partition the
  // resident set; window and protected respect their allocations) and
  // index/list consistency.
  void CheckInvariants() const override;

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  enum class Segment { kWindow, kProbation, kProtected };
  struct Entry {
    Segment segment;
    std::list<ObjectId>::iterator position;
  };

  void RecordFrequency(ObjectId id);
  uint32_t EstimateFrequency(ObjectId id) const;
  // Moves a window evictee through the admission duel.
  void CycleWindowEvictee(ObjectId id);
  void InsertProbation(ObjectId id);
  void PromoteToProtected(ObjectId id, Entry& entry);

  size_t window_capacity_;
  size_t protected_capacity_;
  size_t main_capacity_;

  std::list<ObjectId> window_;     // front = MRU
  std::list<ObjectId> probation_;  // front = MRU
  std::list<ObjectId> protected_;  // front = MRU
  std::unordered_map<ObjectId, Entry> index_;

  CountMinSketch sketch_;
  BloomFilter doorkeeper_;
  uint64_t admissions_ = 0;
  uint64_t rejections_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_WTINYLFU_H_
