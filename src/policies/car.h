// CAR — CLOCK with Adaptive Replacement (Bansal & Modha, FAST'04).
//
// ARC's adaptive recency/frequency split with the two LRU lists replaced by
// CLOCKs: hits only set a reference bit (lazy promotion), evictions sweep
// the clocks demoting referenced pages from T1 into T2. This is precisely
// the §5 observation "replacing the LRU queues in ARC with FIFO-Reinsertion
// also reduces the miss ratio", published as a full algorithm a year after
// ARC. Implementation follows Fig. 2 of the FAST'04 paper.

#ifndef QDLP_SRC_POLICIES_CAR_H_
#define QDLP_SRC_POLICIES_CAR_H_

#include <list>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class CarPolicy : public EvictionPolicy {
 public:
  explicit CarPolicy(size_t capacity);

  size_t size() const override { return t1_.size() + t2_.size(); }
  bool Contains(ObjectId id) const override;

  size_t t1_size() const { return t1_.size(); }
  size_t t2_size() const { return t2_.size(); }
  size_t b1_size() const { return b1_.size(); }
  size_t b2_size() const { return b2_.size(); }
  double target_p() const { return p_; }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  enum class ListId { kT1, kT2, kB1, kB2 };
  struct Entry {
    ListId list;
    bool reference = false;
    std::list<ObjectId>::iterator position;
  };

  // The clocks are modeled as lists with the hand at the front: "advance the
  // hand past x" = splice x to the back. Ghosts are plain LRU lists
  // (front = MRU).
  std::list<ObjectId>& ListFor(ListId list);
  void Replace();
  void RemoveFrom(ObjectId id);
  void PushBack(ObjectId id, ListId target, bool reference);
  void PushGhostMru(ObjectId id, ListId target);

  double p_ = 0.0;
  std::list<ObjectId> t1_, t2_;  // front = clock hand position
  std::list<ObjectId> b1_, b2_;  // front = MRU, back = LRU
  std::unordered_map<ObjectId, Entry> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_CAR_H_
