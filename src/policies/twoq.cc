#include "src/policies/twoq.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

TwoQPolicy::TwoQPolicy(size_t capacity, double kin_fraction,
                       double kout_fraction)
    : EvictionPolicy(capacity, "2q") {
  QDLP_CHECK(kin_fraction > 0.0 && kin_fraction < 1.0);
  QDLP_CHECK(kout_fraction > 0.0);
  kin_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::lround(static_cast<double>(capacity) *
                                         kin_fraction)));
  kin_capacity_ = std::min(kin_capacity_, capacity);
  kout_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::lround(static_cast<double>(capacity) *
                                         kout_fraction)));
}

void TwoQPolicy::PushGhost(ObjectId id) {
  a1out_.push_back(id);
  a1out_index_.insert(id);
  // The deque may hold stale entries for ids promoted out of the ghost; pop
  // until the *live* ghost population is back within bounds.
  while (a1out_index_.size() > kout_capacity_ && !a1out_.empty()) {
    const ObjectId oldest = a1out_.front();
    a1out_.pop_front();
    a1out_index_.erase(oldest);
  }
}

void TwoQPolicy::Reclaim() {
  if (a1in_index_.size() > kin_capacity_ ||
      (am_index_.empty() && !a1in_.empty())) {
    const ObjectId victim = a1in_.front();
    a1in_.pop_front();
    a1in_index_.erase(victim);
    NotifyDemote(victim);
    NotifyEvict(victim);
    PushGhost(victim);
    return;
  }
  QDLP_DCHECK(!am_.empty());
  const ObjectId victim = am_.back();
  am_.pop_back();
  am_index_.erase(victim);
  NotifyEvict(victim);
  // Am evictions are not remembered in A1out (per the paper).
}

bool TwoQPolicy::OnAccess(ObjectId id) {
  const auto am_it = am_index_.find(id);
  if (am_it != am_index_.end()) {
    am_.splice(am_.begin(), am_, am_it->second);
    NotifyPromote(id);
    return true;
  }
  if (a1in_index_.contains(id)) {
    // Hit in A1in: leave it in place; 2Q treats quick re-references as
    // correlated and not evidence of long-term popularity.
    return true;
  }
  if (size() == capacity()) {
    Reclaim();
  }
  if (a1out_index_.contains(id)) {
    // Second chance proven: admit directly into Am.
    NotifyGhostHit(id);
    a1out_index_.erase(id);
    // Lazily remove from the a1out_ deque: entries are skipped when popped.
    am_.push_front(id);
    am_index_[id] = am_.begin();
    NotifyInsert(id);
    return false;
  }
  a1in_.push_back(id);
  a1in_index_.insert(id);
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
