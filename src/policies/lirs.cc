#include "src/policies/lirs.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

LirsPolicy::LirsPolicy(size_t capacity, double hir_fraction,
                       double max_nonresident_factor)
    : EvictionPolicy(capacity, "lirs") {
  QDLP_CHECK(hir_fraction > 0.0 && hir_fraction < 1.0);
  QDLP_CHECK(max_nonresident_factor >= 1.0);
  hir_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::lround(static_cast<double>(capacity) *
                                         hir_fraction)));
  hir_capacity_ = std::min(hir_capacity_, capacity - 1 > 0 ? capacity - 1 : 1);
  lir_capacity_ = capacity > hir_capacity_ ? capacity - hir_capacity_ : 1;
  max_nonresident_ = static_cast<size_t>(
      std::lround(static_cast<double>(capacity) * max_nonresident_factor));
  index_.reserve(capacity * 2);
}

bool LirsPolicy::Contains(ObjectId id) const {
  const auto it = index_.find(id);
  return it != index_.end() && it->second.state != State::kHirNonResident;
}

bool LirsPolicy::StackBottomIsLir() const {
  if (stack_.empty()) {
    return true;
  }
  return index_.at(stack_.back()).state == State::kLir;
}

void LirsPolicy::CheckInvariants() const {
  QDLP_CHECK(resident_count_ <= capacity());
  QDLP_CHECK(lir_count_ <= lir_capacity_);
  QDLP_CHECK(nonresident_count_ <= max_nonresident_);
  QDLP_CHECK(StackBottomIsLir());
  // Recount states from the index and cross-check the cached tallies.
  size_t lir = 0;
  size_t hir_resident = 0;
  size_t hir_nonresident = 0;
  for (const auto& [id, entry] : index_) {
    switch (entry.state) {
      case State::kLir:
        ++lir;
        // LIR blocks are always on the stack and never in Q.
        QDLP_CHECK(entry.in_stack);
        QDLP_CHECK(!entry.in_queue);
        break;
      case State::kHirResident:
        ++hir_resident;
        QDLP_CHECK(entry.in_queue);
        break;
      case State::kHirNonResident:
        ++hir_nonresident;
        // Non-resident metadata only exists while it can still matter: the
        // id must sit in stack S (otherwise it should have been dropped).
        QDLP_CHECK(entry.in_stack);
        QDLP_CHECK(!entry.in_queue);
        break;
    }
  }
  QDLP_CHECK(lir == lir_count_);
  QDLP_CHECK(lir + hir_resident == resident_count_);
  QDLP_CHECK(hir_nonresident == nonresident_count_);
  // Q is exactly the resident HIR set.
  QDLP_CHECK(queue_.size() == hir_resident);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const auto entry = index_.find(*it);
    QDLP_CHECK(entry != index_.end());
    QDLP_CHECK(entry->second.state == State::kHirResident);
    QDLP_CHECK(entry->second.in_queue);
    QDLP_CHECK(entry->second.queue_position == it);
  }
  // Stack membership flags match the actual stack contents.
  size_t on_stack = 0;
  for (auto it = stack_.begin(); it != stack_.end(); ++it) {
    const auto entry = index_.find(*it);
    QDLP_CHECK(entry != index_.end());
    QDLP_CHECK(entry->second.in_stack);
    QDLP_CHECK(entry->second.stack_position == it);
    ++on_stack;
  }
  size_t flagged_in_stack = 0;
  for (const auto& [id, entry] : index_) {
    if (entry.in_stack) {
      ++flagged_in_stack;
    }
  }
  QDLP_CHECK(on_stack == flagged_in_stack);
}

void LirsPolicy::PushStackTop(ObjectId id, Entry& entry) {
  if (entry.in_stack) {
    stack_.erase(entry.stack_position);
  }
  stack_.push_front(id);
  entry.in_stack = true;
  entry.stack_position = stack_.begin();
}

void LirsPolicy::PushQueueBack(ObjectId id, Entry& entry) {
  if (entry.in_queue) {
    queue_.erase(entry.queue_position);
  }
  queue_.push_back(id);
  entry.in_queue = true;
  entry.queue_position = std::prev(queue_.end());
}

void LirsPolicy::RemoveFromQueue(ObjectId id, Entry& entry) {
  (void)id;
  if (entry.in_queue) {
    queue_.erase(entry.queue_position);
    entry.in_queue = false;
  }
}

void LirsPolicy::PruneStack() {
  while (!stack_.empty()) {
    const ObjectId bottom = stack_.back();
    auto it = index_.find(bottom);
    QDLP_DCHECK(it != index_.end());
    Entry& entry = it->second;
    if (entry.state == State::kLir) {
      return;
    }
    stack_.pop_back();
    entry.in_stack = false;
    if (entry.state == State::kHirNonResident) {
      --nonresident_count_;
      index_.erase(it);
    }
    // kHirResident entries stay in Q; only their stack presence ends.
  }
}

void LirsPolicy::EvictFromQueue() {
  QDLP_CHECK(!queue_.empty());
  const ObjectId victim = queue_.front();
  Entry& entry = index_.at(victim);
  queue_.pop_front();
  entry.in_queue = false;
  --resident_count_;
  NotifyEvict(victim);
  if (entry.in_stack) {
    entry.state = State::kHirNonResident;
    ++nonresident_count_;
    nonresident_fifo_.push_back(victim);
    LimitNonResident();
  } else {
    index_.erase(victim);
  }
}

void LirsPolicy::DemoteStackBottom() {
  QDLP_CHECK(!stack_.empty());
  const ObjectId bottom = stack_.back();
  Entry& entry = index_.at(bottom);
  QDLP_DCHECK(entry.state == State::kLir);
  stack_.pop_back();
  entry.in_stack = false;
  entry.state = State::kHirResident;
  --lir_count_;
  NotifyDemote(bottom);
  PushQueueBack(bottom, entry);
  PruneStack();
}

void LirsPolicy::LimitNonResident() {
  while (nonresident_count_ > max_nonresident_ && !nonresident_fifo_.empty()) {
    const ObjectId oldest = nonresident_fifo_.front();
    nonresident_fifo_.pop_front();
    auto it = index_.find(oldest);
    if (it == index_.end() || it->second.state != State::kHirNonResident) {
      continue;  // stale: the object was re-referenced or already pruned
    }
    Entry& entry = it->second;
    if (entry.in_stack) {
      stack_.erase(entry.stack_position);
    }
    --nonresident_count_;
    index_.erase(it);
    PruneStack();
  }
}

bool LirsPolicy::OnAccess(ObjectId id) {
  auto it = index_.find(id);
  if (it != index_.end() && it->second.state == State::kLir) {
    Entry& entry = it->second;
    const bool was_bottom = entry.stack_position == std::prev(stack_.end());
    PushStackTop(id, entry);
    if (was_bottom) {
      PruneStack();
    }
    return true;
  }
  if (it != index_.end() && it->second.state == State::kHirResident) {
    Entry& entry = it->second;
    if (entry.in_stack) {
      // Reuse distance beats the coldest LIR block: upgrade to LIR.
      PushStackTop(id, entry);
      entry.state = State::kLir;
      ++lir_count_;
      NotifyPromote(id);
      RemoveFromQueue(id, entry);
      if (lir_count_ > lir_capacity_) {
        DemoteStackBottom();
      }
    } else {
      // Only in Q: refresh both recency orders, stays HIR.
      PushStackTop(id, entry);
      PushQueueBack(id, entry);
    }
    return true;
  }

  // Miss (possibly with non-resident history).
  if (resident_count_ == capacity()) {
    EvictFromQueue();
    // EvictFromQueue may have erased and re-hashed; re-find.
    it = index_.find(id);
  }

  if (lir_count_ < lir_capacity_ && (it == index_.end() || !it->second.in_stack)) {
    // Warmup: the LIR set is not yet full; admit directly as LIR.
    Entry& entry = index_[id];
    entry.state = State::kLir;
    entry.in_queue = false;
    PushStackTop(id, entry);
    ++lir_count_;
    ++resident_count_;
    NotifyInsert(id);
    return false;
  }

  if (it != index_.end() && it->second.state == State::kHirNonResident) {
    // The block's reuse distance beats the coldest LIR block: admit as LIR.
    NotifyGhostHit(id);
    Entry& entry = it->second;
    entry.state = State::kLir;
    --nonresident_count_;
    ++lir_count_;
    ++resident_count_;
    PushStackTop(id, entry);
    NotifyInsert(id);
    if (lir_count_ > lir_capacity_) {
      DemoteStackBottom();
    }
    return false;
  }

  // Cold miss: admit as resident HIR.
  Entry& entry = index_[id];
  entry.state = State::kHirResident;
  PushStackTop(id, entry);
  PushQueueBack(id, entry);
  ++resident_count_;
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
