// k-bit CLOCK, the paper's Lazy Promotion instance (§3).
//
// bits == 1 is FIFO-Reinsertion / Second Chance / 1-bit CLOCK — the paper
// notes these are the same algorithm. A hit increments the object's counter
// (saturating at 2^bits - 1) without moving anything; at eviction time the
// hand sweeps the ring, decrementing non-zero counters ("reinsertion") and
// evicting the first zero-counter object. Hits touch one small counter and
// need no locking — LP keeps FIFO's throughput profile.
//
// The id index backing is a template parameter: ClockPolicy probes an
// open-addressing FlatMap, DenseClockPolicy (batched sweep engine, dense
// traces) a direct-indexed slot array.

#ifndef QDLP_SRC_POLICIES_CLOCK_H_
#define QDLP_SRC_POLICIES_CLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/policies/eviction_policy.h"
#include "src/util/dense_index.h"

namespace qdlp {

namespace internal {
inline std::string ClockName(int bits) {
  if (bits == 1) {
    return "fifo-reinsertion";
  }
  return "clock" + std::to_string(bits);
}
}  // namespace internal

template <typename IndexFactory>
class BasicClockPolicy : public EvictionPolicy {
 public:
  // `bits` in [1, 8]: reference-counter width. New objects start at 0.
  explicit BasicClockPolicy(size_t capacity, int bits = 1,
                            IndexFactory factory = {})
      : EvictionPolicy(capacity, internal::ClockName(bits)),
        bits_(bits),
        index_(factory.template Make<uint32_t>()) {
    QDLP_CHECK(bits >= 1 && bits <= 8);
    QDLP_CHECK(capacity <= 0xFFFFFFFFu);  // ring slots are indexed by uint32
    max_counter_ = static_cast<uint8_t>((1u << bits) - 1);
    ring_.reserve(capacity);
    index_.Reserve(capacity);
  }

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  uint64_t AccessBatch(const uint32_t* ids, size_t n) override {
    return PrefetchPipelinedBatch(*this, index_, ids, n);
  }

  // Removal (for TTL): the slot is freed and reused by the next admission.
  // Reusing a freed slot places the newcomer at the removed object's ring
  // position — an approximation inherent to ring CLOCKs.
  bool Remove(ObjectId id) override {
    const uint32_t* indexed = index_.Find(id);
    if (indexed == nullptr) {
      return false;
    }
    const size_t slot_index = *indexed;
    ring_[slot_index].occupied = false;
    free_slots_.push_back(slot_index);
    index_.Erase(id);
    NotifyEvict(id);
    return true;
  }
  bool SupportsRemoval() const override { return true; }

  int bits() const { return bits_; }

  // Ring/index consistency: occupied slots are exactly the indexed ids,
  // freed slots are tracked, counters respect the bit width.
  void CheckInvariants() const override {
    QDLP_CHECK(ring_.size() <= capacity());
    QDLP_CHECK(index_.size() <= capacity());
    size_t occupied = 0;
    for (size_t slot = 0; slot < ring_.size(); ++slot) {
      if (!ring_[slot].occupied) {
        continue;
      }
      ++occupied;
      QDLP_CHECK(ring_[slot].counter <= max_counter_);
      const uint32_t* indexed = index_.Find(ring_[slot].id);
      QDLP_CHECK(indexed != nullptr);
      QDLP_CHECK(*indexed == slot);
    }
    QDLP_CHECK(occupied == index_.size());
    for (const size_t slot : free_slots_) {
      QDLP_CHECK(slot < ring_.size());
      QDLP_CHECK(!ring_[slot].occupied);
    }
    index_.CheckInvariants();
  }

  size_t ApproxMetadataBytes() const override {
    return ring_.capacity() * sizeof(Slot) + index_.MemoryBytes() +
           free_slots_.capacity() * sizeof(size_t);
  }

 protected:
  bool OnAccess(ObjectId id) override {
    const uint32_t* indexed = index_.Find(id);
    if (indexed != nullptr) {
      Slot& slot = ring_[*indexed];
      if (slot.counter < max_counter_) {
        ++slot.counter;
      }
      return true;
    }
    if (!free_slots_.empty()) {
      // Reuse a slot vacated by Remove().
      const size_t slot_index = free_slots_.back();
      free_slots_.pop_back();
      ring_[slot_index] = Slot{id, 0, true};
      index_[id] = static_cast<uint32_t>(slot_index);
      NotifyInsert(id);
      return false;
    }
    if (ring_.size() < capacity()) {
      // Still filling: append in FIFO order.
      index_[id] = static_cast<uint32_t>(ring_.size());
      ring_.push_back(Slot{id, 0, true});
      NotifyInsert(id);
      return false;
    }
    const size_t slot_index = EvictOne();
    ring_[slot_index] = Slot{id, 0, true};
    index_[id] = static_cast<uint32_t>(slot_index);
    NotifyInsert(id);
    // Advance past the slot we just filled so the new object gets a full
    // lap before it is considered for eviction, matching FIFO insertion
    // order.
    hand_ = (slot_index + 1) % ring_.size();
    return false;
  }

 private:
  struct Slot {
    ObjectId id = 0;
    uint8_t counter = 0;
    bool occupied = false;
  };

  // Advances the hand to a victim slot (decrementing counters), evicts its
  // occupant, and returns the slot index for reuse.
  size_t EvictOne() {
    while (true) {
      Slot& slot = ring_[hand_];
      if (!slot.occupied) {
        hand_ = (hand_ + 1) % ring_.size();
        continue;
      }
      if (slot.counter == 0) {
        index_.Erase(slot.id);
        slot.occupied = false;
        NotifyEvict(slot.id);
        return hand_;
      }
      // Lazy promotion: a non-zero counter buys another lap (reinsertion);
      // promotions in Stats() counts these hand skips, not hits.
      --slot.counter;
      NotifyPromote(slot.id);
      hand_ = (hand_ + 1) % ring_.size();
    }
  }

  int bits_;
  uint8_t max_counter_;
  std::vector<Slot> ring_;
  size_t hand_ = 0;
  typename IndexFactory::template Index<uint32_t> index_;  // id -> ring slot
  std::vector<size_t> free_slots_;  // slots vacated by Remove()
};

using ClockPolicy = BasicClockPolicy<FlatIndexFactory>;
using DenseClockPolicy = BasicClockPolicy<DenseIndexFactory>;

extern template class BasicClockPolicy<FlatIndexFactory>;
extern template class BasicClockPolicy<DenseIndexFactory>;

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_CLOCK_H_
