// k-bit CLOCK, the paper's Lazy Promotion instance (§3).
//
// bits == 1 is FIFO-Reinsertion / Second Chance / 1-bit CLOCK — the paper
// notes these are the same algorithm. A hit increments the object's counter
// (saturating at 2^bits - 1) without moving anything; at eviction time the
// hand sweeps the ring, decrementing non-zero counters ("reinsertion") and
// evicting the first zero-counter object. Hits touch one small counter and
// need no locking — LP keeps FIFO's throughput profile.

#ifndef QDLP_SRC_POLICIES_CLOCK_H_
#define QDLP_SRC_POLICIES_CLOCK_H_

#include <cstdint>
#include <vector>

#include "src/policies/eviction_policy.h"
#include "src/util/flat_map.h"

namespace qdlp {

class ClockPolicy : public EvictionPolicy {
 public:
  // `bits` in [1, 8]: reference-counter width. New objects start at 0.
  ClockPolicy(size_t capacity, int bits = 1);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  // Removal (for TTL): the slot is freed and reused by the next admission.
  // Reusing a freed slot places the newcomer at the removed object's ring
  // position — an approximation inherent to ring CLOCKs.
  bool Remove(ObjectId id) override;
  bool SupportsRemoval() const override { return true; }

  int bits() const { return bits_; }

  // Ring/index consistency: occupied slots are exactly the indexed ids,
  // freed slots are tracked, counters respect the bit width.
  void CheckInvariants() const override;

  size_t ApproxMetadataBytes() const override {
    return ring_.capacity() * sizeof(Slot) + index_.MemoryBytes() +
           free_slots_.capacity() * sizeof(size_t);
  }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Slot {
    ObjectId id = 0;
    uint8_t counter = 0;
    bool occupied = false;
  };

  // Advances the hand to a victim slot (decrementing counters), evicts its
  // occupant, and returns the slot index for reuse.
  size_t EvictOne();

  int bits_;
  uint8_t max_counter_;
  std::vector<Slot> ring_;
  size_t hand_ = 0;
  FlatMap<uint32_t> index_;  // id -> ring slot
  std::vector<size_t> free_slots_;  // slots vacated by Remove()
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_CLOCK_H_
