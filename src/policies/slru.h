// Segmented LRU (Karedla, Love & Wherry 1994).
//
// Two LRU segments: new objects enter the probationary segment; a hit there
// promotes to the protected segment; protected overflow demotes back to the
// probationary MRU end; evictions come from the probationary LRU end. An
// early form of quick demotion — unpopular objects never reach protected —
// though demotion is slower than the paper's probationary-FIFO QD.

#ifndef QDLP_SRC_POLICIES_SLRU_H_
#define QDLP_SRC_POLICIES_SLRU_H_

#include <list>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class SlruPolicy : public EvictionPolicy {
 public:
  // protected_fraction of the capacity is reserved for the protected
  // segment (classic deployments use 0.5–0.8).
  SlruPolicy(size_t capacity, double protected_fraction = 0.8);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

  size_t protected_size() const;
  size_t probation_size() const;

 protected:
  bool OnAccess(ObjectId id) override;
  void FillOccupancy(CacheStats& stats) const override {
    stats.probation_size = probation_.size();
    stats.main_size = protected_.size();
  }

 private:
  enum class Segment { kProbation, kProtected };
  struct Entry {
    Segment segment;
    std::list<ObjectId>::iterator position;
  };

  void EvictFromProbation();

  size_t protected_capacity_;
  std::list<ObjectId> probation_;  // front = MRU
  std::list<ObjectId> protected_;  // front = MRU
  std::unordered_map<ObjectId, Entry> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_SLRU_H_
