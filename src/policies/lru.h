// LRU eviction: promote to head on every hit (eager promotion), evict the
// tail. The incumbent the paper argues against; also the building block of
// ARC/SLRU/2Q segments.
//
// Storage is a slab-backed intrusive recency list plus an id index, so a
// hit splices within one contiguous slab (no per-node heap traffic). The
// index backing is a template parameter: LruPolicy probes an
// open-addressing FlatMap, DenseLruPolicy (batched sweep engine, dense
// traces) a direct-indexed slot array.

#ifndef QDLP_SRC_POLICIES_LRU_H_
#define QDLP_SRC_POLICIES_LRU_H_

#include "src/policies/eviction_policy.h"
#include "src/util/dense_index.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

template <typename IndexFactory>
class BasicLruPolicy : public EvictionPolicy {
 public:
  explicit BasicLruPolicy(size_t capacity, IndexFactory factory = {})
      : EvictionPolicy(capacity, "lru"),
        index_(factory.template Make<uint32_t>()) {
    mru_list_.Reserve(capacity);
    // +1: a miss emplaces the newcomer before evicting the victim, so the
    // index transiently holds capacity + 1 entries.
    index_.Reserve(capacity + 1);
  }

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  uint64_t AccessBatch(const uint32_t* ids, size_t n) override {
    return PrefetchPipelinedBatch(*this, index_, ids, n);
  }

  bool Remove(ObjectId id) override {
    const uint32_t* slot = index_.Find(id);
    if (slot == nullptr) {
      return false;
    }
    mru_list_.Erase(*slot);
    index_.Erase(id);
    NotifyEvict(id);
    return true;
  }
  bool SupportsRemoval() const override { return true; }

  // Recency-list/index consistency.
  void CheckInvariants() const override {
    QDLP_CHECK(index_.size() <= capacity());
    QDLP_CHECK(mru_list_.size() == index_.size());
    mru_list_.ForEach([&](uint32_t slot, ObjectId id) {
      const uint32_t* indexed = index_.Find(id);
      QDLP_CHECK(indexed != nullptr);
      QDLP_CHECK(*indexed == slot);
    });
    mru_list_.CheckInvariants();
    index_.CheckInvariants();
  }

  size_t ApproxMetadataBytes() const override {
    return mru_list_.MemoryBytes() + index_.MemoryBytes();
  }

 protected:
  void FillOccupancy(CacheStats& stats) const override {
    // promotions == hits (eager promotion); see the OnAccess hit path.
    stats.promotions = stats.hits;
  }

  bool OnAccess(ObjectId id) override {
    const auto [slot, inserted] = index_.Emplace(id);
    if (!inserted) {
      // Eager promotion: every hit pays a list splice (the cost the paper's
      // lazy-promotion designs avoid), so promotions == hits for LRU. The
      // promotions counter is derived from that identity in FillOccupancy
      // rather than stored per hit — the extra store is measurable (~5%) on
      // this, the tightest hit path in the repo.
      mru_list_.MoveToFront(*slot);
      if (AccessEventSink* sink = event_sink(); sink != nullptr) {
        sink->OnPromote(id, now());
      }
      return true;
    }
    // Evict after the emplace (one probe covers lookup + insert); Erase
    // never relocates live index slots, so `slot` stays valid across it.
    if (index_.size() > capacity()) {
      const uint32_t victim_slot = mru_list_.back();
      const ObjectId victim = mru_list_[victim_slot];
      mru_list_.Erase(victim_slot);
      index_.Erase(victim);
      NotifyEvict(victim);
    }
    *slot = mru_list_.PushFront(id);
    NotifyInsert(id);
    return false;
  }

 private:
  IntrusiveList<ObjectId> mru_list_;  // front = most recent
  typename IndexFactory::template Index<uint32_t> index_;  // id -> list slot
};

using LruPolicy = BasicLruPolicy<FlatIndexFactory>;
using DenseLruPolicy = BasicLruPolicy<DenseIndexFactory>;

extern template class BasicLruPolicy<FlatIndexFactory>;
extern template class BasicLruPolicy<DenseIndexFactory>;

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LRU_H_
