// LRU eviction: promote to head on every hit (eager promotion), evict the
// tail. The incumbent the paper argues against; also the building block of
// ARC/SLRU/2Q segments.
//
// Storage is a slab-backed intrusive recency list plus an open-addressing
// index, so a hit splices within one contiguous slab (no per-node heap
// traffic) and a lookup probes one flat table.

#ifndef QDLP_SRC_POLICIES_LRU_H_
#define QDLP_SRC_POLICIES_LRU_H_

#include "src/policies/eviction_policy.h"
#include "src/util/flat_map.h"
#include "src/util/intrusive_list.h"

namespace qdlp {

class LruPolicy : public EvictionPolicy {
 public:
  explicit LruPolicy(size_t capacity);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.Contains(id); }

  bool Remove(ObjectId id) override;
  bool SupportsRemoval() const override { return true; }

  // Recency-list/index consistency.
  void CheckInvariants() const override;

  size_t ApproxMetadataBytes() const override {
    return mru_list_.MemoryBytes() + index_.MemoryBytes();
  }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  IntrusiveList<ObjectId> mru_list_;  // front = most recent
  FlatMap<uint32_t> index_;           // id -> list slot
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LRU_H_
