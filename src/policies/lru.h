// LRU eviction: promote to head on every hit (eager promotion), evict the
// tail. The incumbent the paper argues against; also the building block of
// ARC/SLRU/2Q segments.

#ifndef QDLP_SRC_POLICIES_LRU_H_
#define QDLP_SRC_POLICIES_LRU_H_

#include <list>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class LruPolicy : public EvictionPolicy {
 public:
  explicit LruPolicy(size_t capacity);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

  bool Remove(ObjectId id) override;
  bool SupportsRemoval() const override { return true; }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  std::list<ObjectId> mru_list_;  // front = most recent
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LRU_H_
