// Exact LFU with LRU tie-breaking, O(1) per operation (frequency buckets).
// Baseline and the "frequency expert" inside LeCaR/CACHEUS.

#ifndef QDLP_SRC_POLICIES_LFU_H_
#define QDLP_SRC_POLICIES_LFU_H_

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class LfuPolicy : public EvictionPolicy {
 public:
  explicit LfuPolicy(size_t capacity);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

  // Frequency of a resident object; 0 if not resident. Exposed for tests.
  uint64_t FrequencyOf(ObjectId id) const;

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  // Bucket per frequency; within a bucket, front = most recently used, so the
  // victim is the back of the lowest-frequency bucket.
  using Bucket = std::list<ObjectId>;
  struct Entry {
    uint64_t frequency;
    Bucket::iterator position;
  };

  void PromoteToNextBucket(ObjectId id, Entry& entry);

  std::map<uint64_t, Bucket> buckets_;  // ordered by frequency
  std::unordered_map<ObjectId, Entry> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LFU_H_
