#include "src/policies/random_policy.h"

namespace qdlp {

RandomPolicy::RandomPolicy(size_t capacity, uint64_t seed)
    : EvictionPolicy(capacity, "random"), rng_(seed) {
  entries_.reserve(capacity);
  index_.reserve(capacity);
}

bool RandomPolicy::OnAccess(ObjectId id) {
  if (index_.contains(id)) {
    return true;
  }
  if (entries_.size() == capacity()) {
    const size_t victim_pos = rng_.NextBounded(entries_.size());
    const ObjectId victim = entries_[victim_pos];
    entries_[victim_pos] = entries_.back();
    index_[entries_[victim_pos]] = victim_pos;
    entries_.pop_back();
    index_.erase(victim);
    NotifyEvict(victim);
  }
  index_[id] = entries_.size();
  entries_.push_back(id);
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
