// LRU-K (O'Neil, O'Neil & Weikum, SIGMOD'93), default K = 2.
//
// Evicts the object with the oldest K-th most recent reference (maximum
// "backward K-distance"); objects with fewer than K references are treated
// as infinitely distant and evicted first, LRU-ordered among themselves.
// Reference history is retained for recently evicted objects (the paper's
// Retained Information Period), so an object's second access after a quick
// eviction still counts — an early frequency-over-recency design.

#ifndef QDLP_SRC_POLICIES_LRUK_H_
#define QDLP_SRC_POLICIES_LRUK_H_

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class LruKPolicy : public EvictionPolicy {
 public:
  // history_factor: retained-history entries as a multiple of capacity.
  LruKPolicy(size_t capacity, int k = 2, double history_factor = 1.0);

  size_t size() const override { return resident_.size(); }
  bool Contains(ObjectId id) const override { return resident_.contains(id); }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  // Eviction key: (kth-most-recent access time, most recent access time).
  // Objects with < k references use kth time 0, so they order before any
  // fully-seen object and break ties by plain recency.
  using Priority = std::pair<uint64_t, uint64_t>;

  struct History {
    std::vector<uint64_t> times;  // ring of last <= k access times
    size_t next = 0;
    size_t count = 0;
  };

  Priority PriorityOf(const History& history) const;
  void Touch(History& history);
  void TrimRetained();

  int k_;
  size_t history_capacity_;

  std::unordered_map<ObjectId, History> resident_;
  std::set<std::pair<Priority, ObjectId>> order_;  // min = victim

  // Retained (non-resident) history, FIFO-bounded.
  std::unordered_map<ObjectId, History> retained_;
  std::deque<ObjectId> retained_fifo_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LRUK_H_
