// Belady's MIN — the offline optimal for uniform-size objects (IBM Systems
// Journal, 1966). Evicts the resident object whose next use is farthest in
// the future. Used in Fig. 3 / Table 2 as the efficiency upper bound and in
// property tests as an oracle (no online policy may beat it).
//
// Belady needs the future: construct it with the full trace; Access() must
// then be called exactly in trace order. The simulator handles this
// transparently via MakePolicy(..., trace).

#ifndef QDLP_SRC_POLICIES_BELADY_H_
#define QDLP_SRC_POLICIES_BELADY_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class BeladyPolicy : public EvictionPolicy {
 public:
  BeladyPolicy(size_t capacity, const std::vector<ObjectId>& trace);

  size_t size() const override { return resident_.size(); }
  bool Contains(ObjectId id) const override { return resident_.contains(id); }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  static constexpr uint64_t kNever = ~0ULL;

  // next_use_[i] = position of the next request for trace[i]'s object after
  // position i, or kNever.
  std::vector<uint64_t> next_use_;
  uint64_t position_ = 0;

  // Resident objects keyed by their next-use position (kNever entries are
  // disambiguated by id in the ordered set).
  std::unordered_map<ObjectId, uint64_t> resident_;  // id -> next use
  std::set<std::pair<uint64_t, ObjectId>> by_next_use_;  // max = victim
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_BELADY_H_
