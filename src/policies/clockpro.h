// CLOCK-Pro (Jiang, Chen & Zhang, USENIX ATC'05) — LIRS's reuse-distance
// idea re-cast as a CLOCK, cited by the paper as one of the CLOCK-family
// designs ([38]).
//
// Implementation note: the paper describes one circular list with three
// hands (hand_cold, hand_hot, hand_test). We use the equivalent three-queue
// formulation, where each queue's head is one hand:
//
//   * cold queue  — resident cold pages in their test period. hand_cold
//                   pops the head: referenced -> promoted to hot (the test
//                   succeeded); unreferenced -> demoted to non-resident
//                   test metadata.
//   * hot queue   — hot pages. When hot exceeds its allocation, hand_hot
//                   pops the head: referenced -> reinserted (second
//                   chance); unreferenced -> demoted to the cold queue.
//   * test queue  — non-resident metadata, FIFO-bounded by the cache size
//                   (hand_test). A miss that hits it is admitted as HOT:
//                   its reuse distance beat the coldest hot page.
//
// The cold allocation m_c adapts exactly as in the paper: +1 when a test
// succeeds (cold pages are proving useful), -1 when a test period expires
// unreferenced. Hits only set a reference bit (lazy promotion).

#ifndef QDLP_SRC_POLICIES_CLOCKPRO_H_
#define QDLP_SRC_POLICIES_CLOCKPRO_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class ClockProPolicy : public EvictionPolicy {
 public:
  explicit ClockProPolicy(size_t capacity);

  size_t size() const override { return hot_count_ + cold_count_; }
  bool Contains(ObjectId id) const override;

  size_t hot_count() const { return hot_count_; }
  size_t cold_count() const { return cold_count_; }
  size_t cold_target() const { return cold_target_; }
  size_t nonresident_count() const { return test_live_.size(); }

  // Queue-size accounting, resident/non-resident disjointness, and the
  // ATC'05 bounds: hot+cold <= capacity, test metadata <= capacity,
  // cold_target in [1, capacity].
  void CheckInvariants() const override;

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  enum class State : uint8_t { kHot, kCold };
  struct Entry {
    State state;
    bool reference;
  };

  // hand_cold: frees one resident slot (promoting or demoting the head).
  void RunHandCold();
  // hand_hot: enforces the hot allocation.
  void RunHandHot();
  void AdmitHot(ObjectId id);
  void AdmitCold(ObjectId id);
  void TestInsert(ObjectId id);
  void GrowColdTarget();
  void ShrinkColdTarget();

  size_t cold_target_;
  size_t hot_count_ = 0;
  size_t cold_count_ = 0;

  // Queues hold ids; stale records (state changed since push) are skipped
  // via the generation in entries_. Simpler: each id lives in exactly one
  // queue at a time, re-pushed whenever its state changes.
  std::deque<ObjectId> hot_queue_;   // front = hand_hot
  std::deque<ObjectId> cold_queue_;  // front = hand_cold
  std::unordered_map<ObjectId, Entry> entries_;  // resident pages only

  // Non-resident test metadata (hand_test), FIFO-bounded.
  std::deque<ObjectId> test_fifo_;
  std::unordered_map<ObjectId, uint64_t> test_live_;  // id -> generation
  uint64_t test_generation_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_CLOCKPRO_H_
