#include "src/policies/cacheus.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

CacheusPolicy::CacheusPolicy(size_t capacity, uint64_t seed)
    : EvictionPolicy(capacity, "cacheus"), rng_(seed) {
  discount_ = std::pow(0.005, 1.0 / static_cast<double>(capacity));
  window_length_ = std::max<uint64_t>(100, capacity);
  entries_.reserve(capacity);
}

void CacheusPolicy::History::Push(ObjectId id, uint64_t time, size_t max_size) {
  fifo.emplace_back(id, time);
  index[id] = time;
  while (index.size() > max_size && !fifo.empty()) {
    const auto [oldest_id, oldest_time] = fifo.front();
    fifo.pop_front();
    const auto it = index.find(oldest_id);
    if (it != index.end() && it->second == oldest_time) {
      index.erase(it);
    }
  }
}

void CacheusPolicy::UpdateWeights(double& wrong, double& other,
                                  uint64_t evicted_at) {
  const double age = static_cast<double>(now() - evicted_at);
  const double reward = std::pow(discount_, age);
  other *= std::exp(learning_rate_ * reward);
  const double total = wrong + other;
  wrong /= total;
  other /= total;
}

void CacheusPolicy::MaybeAdaptLearningRate() {
  if (window_requests_ < window_length_) {
    return;
  }
  const double hit_rate =
      static_cast<double>(window_hits_) / static_cast<double>(window_requests_);
  if (previous_window_hit_rate_ >= 0.0) {
    if (hit_rate < previous_window_hit_rate_) {
      // Regressed: reverse the search direction and shrink the step.
      rate_direction_ = -rate_direction_;
      learning_rate_ *= (rate_direction_ > 0 ? 1.05 : 0.95);
    } else {
      // Improved (or flat): keep climbing in the same direction.
      learning_rate_ *= (rate_direction_ > 0 ? 1.10 : 0.90);
    }
    learning_rate_ = std::clamp(learning_rate_, 1e-3, 1.0);
    if (learning_rate_ <= 1e-3) {
      // Random restart, as in the CACHEUS reference implementation.
      learning_rate_ = rng_.NextRange(0.05, 0.5);
      rate_direction_ = 1.0;
    }
  }
  previous_window_hit_rate_ = hit_rate;
  window_requests_ = 0;
  window_hits_ = 0;
}

void CacheusPolicy::EvictOne() {
  QDLP_DCHECK(!entries_.empty());
  const bool use_lru = rng_.NextDouble() < w_lru_;
  ObjectId victim;
  if (use_lru) {
    victim = lru_list_.back();
  } else {
    victim = lfu_order_.begin()->second;
  }
  const Entry& entry = entries_.at(victim);
  lru_list_.erase(entry.lru_position);
  lfu_order_.erase({{entry.frequency, entry.last_access}, victim});
  entries_.erase(victim);
  NotifyEvict(victim);
  if (use_lru) {
    lru_history_.Push(victim, now(), capacity());
  } else {
    lfu_history_.Push(victim, now(), capacity());
  }
}

bool CacheusPolicy::OnAccess(ObjectId id) {
  ++window_requests_;
  MaybeAdaptLearningRate();
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    ++window_hits_;
    Entry& entry = it->second;
    lru_list_.splice(lru_list_.begin(), lru_list_, entry.lru_position);
    lfu_order_.erase({{entry.frequency, entry.last_access}, id});
    ++entry.frequency;
    entry.last_access = now();
    lfu_order_.insert({{entry.frequency, entry.last_access}, id});
    return true;
  }

  const auto lru_hist = lru_history_.index.find(id);
  if (lru_hist != lru_history_.index.end()) {
    const uint64_t evicted_at = lru_hist->second;
    lru_history_.index.erase(lru_hist);
    NotifyGhostHit(id);
    UpdateWeights(w_lru_, w_lfu_, evicted_at);
  } else {
    const auto lfu_hist = lfu_history_.index.find(id);
    if (lfu_hist != lfu_history_.index.end()) {
      const uint64_t evicted_at = lfu_hist->second;
      lfu_history_.index.erase(lfu_hist);
      NotifyGhostHit(id);
      UpdateWeights(w_lfu_, w_lru_, evicted_at);
    }
  }

  if (entries_.size() == capacity()) {
    EvictOne();
  }
  Entry entry;
  entry.frequency = 1;
  entry.last_access = now();
  lru_list_.push_front(id);
  entry.lru_position = lru_list_.begin();
  lfu_order_.insert({{entry.frequency, entry.last_access}, id});
  entries_[id] = entry;
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
