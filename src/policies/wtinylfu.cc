#include "src/policies/wtinylfu.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

WTinyLfuPolicy::WTinyLfuPolicy(size_t capacity, double window_fraction,
                               double protected_fraction)
    : EvictionPolicy(capacity, "wtinylfu"),
      sketch_(capacity),
      doorkeeper_(std::max<size_t>(64, capacity)) {
  QDLP_CHECK(window_fraction > 0.0 && window_fraction < 1.0);
  QDLP_CHECK(protected_fraction > 0.0 && protected_fraction < 1.0);
  window_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                          window_fraction)));
  window_capacity_ = std::min(window_capacity_, capacity - 1);
  main_capacity_ = capacity - window_capacity_;
  protected_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(main_capacity_) *
                                          protected_fraction)));
  protected_capacity_ = std::min(protected_capacity_, main_capacity_ - 1 > 0
                                                          ? main_capacity_ - 1
                                                          : 1);
  index_.reserve(capacity);
}

void WTinyLfuPolicy::CheckInvariants() const {
  QDLP_CHECK(window_.size() <= window_capacity_);
  QDLP_CHECK(protected_.size() <= protected_capacity_);
  QDLP_CHECK(probation_.size() + protected_.size() <= main_capacity_);
  QDLP_CHECK(window_.size() + probation_.size() + protected_.size() ==
             index_.size());
  QDLP_CHECK(index_.size() <= capacity());
  const auto check_segment = [&](const std::list<ObjectId>& list,
                                 Segment segment) {
    for (auto it = list.begin(); it != list.end(); ++it) {
      const auto entry = index_.find(*it);
      QDLP_CHECK(entry != index_.end());
      QDLP_CHECK(entry->second.segment == segment);
      QDLP_CHECK(entry->second.position == it);
    }
  };
  check_segment(window_, Segment::kWindow);
  check_segment(probation_, Segment::kProbation);
  check_segment(protected_, Segment::kProtected);
}

void WTinyLfuPolicy::RecordFrequency(ObjectId id) {
  // Doorkeeper: the first touch in each aging window sets a bit; only
  // repeat touches reach the sketch.
  if (!doorkeeper_.MayContain(id)) {
    doorkeeper_.Insert(id);
    if (doorkeeper_.inserted() > doorkeeper_.bit_count() / 16) {
      doorkeeper_.Clear();  // keep the FPR bounded
    }
    return;
  }
  sketch_.Increment(id);
}

uint32_t WTinyLfuPolicy::EstimateFrequency(ObjectId id) const {
  return sketch_.Estimate(id) + (doorkeeper_.MayContain(id) ? 1 : 0);
}

void WTinyLfuPolicy::InsertProbation(ObjectId id) {
  probation_.push_front(id);
  index_[id] = Entry{Segment::kProbation, probation_.begin()};
}

void WTinyLfuPolicy::PromoteToProtected(ObjectId id, Entry& entry) {
  probation_.erase(entry.position);
  protected_.push_front(id);
  entry.segment = Segment::kProtected;
  entry.position = protected_.begin();
  NotifyPromote(id);
  if (protected_.size() > protected_capacity_) {
    const ObjectId demoted = protected_.back();
    protected_.pop_back();
    probation_.push_front(demoted);
    Entry& demoted_entry = index_.at(demoted);
    demoted_entry.segment = Segment::kProbation;
    demoted_entry.position = probation_.begin();
    NotifyDemote(demoted);
  }
}

void WTinyLfuPolicy::CycleWindowEvictee(ObjectId id) {
  // Admission duel: candidate (window evictee) vs the main probation victim.
  if (probation_.size() + protected_.size() < main_capacity_) {
    ++admissions_;
    InsertProbation(id);
    return;
  }
  QDLP_DCHECK(!probation_.empty() || !protected_.empty());
  if (probation_.empty()) {
    // Degenerate: everything is protected; demote its LRU into probation.
    const ObjectId demoted = protected_.back();
    protected_.pop_back();
    probation_.push_front(demoted);
    Entry& demoted_entry = index_.at(demoted);
    demoted_entry.segment = Segment::kProbation;
    demoted_entry.position = probation_.begin();
    NotifyDemote(demoted);
  }
  const ObjectId victim = probation_.back();
  if (EstimateFrequency(id) > EstimateFrequency(victim)) {
    ++admissions_;
    probation_.pop_back();
    index_.erase(victim);
    NotifyEvict(victim);
    InsertProbation(id);
  } else {
    ++rejections_;
    NotifyEvict(id);  // the candidate itself is dropped
  }
}

bool WTinyLfuPolicy::OnAccess(ObjectId id) {
  RecordFrequency(id);
  const auto it = index_.find(id);
  if (it != index_.end()) {
    Entry& entry = it->second;
    switch (entry.segment) {
      case Segment::kWindow:
        window_.splice(window_.begin(), window_, entry.position);
        break;
      case Segment::kProbation:
        PromoteToProtected(id, entry);
        break;
      case Segment::kProtected:
        protected_.splice(protected_.begin(), protected_, entry.position);
        break;
    }
    return true;
  }
  // Miss: enter the window.
  window_.push_front(id);
  index_[id] = Entry{Segment::kWindow, window_.begin()};
  NotifyInsert(id);
  if (window_.size() > window_capacity_) {
    const ObjectId evictee = window_.back();
    window_.pop_back();
    index_.erase(evictee);
    CycleWindowEvictee(evictee);
  }
  return false;
}

}  // namespace qdlp
