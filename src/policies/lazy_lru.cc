#include "src/policies/lazy_lru.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

BatchedPromotionLru::BatchedPromotionLru(size_t capacity, size_t batch_size)
    : EvictionPolicy(capacity, "lru-batched"), batch_size_(batch_size) {
  QDLP_CHECK(batch_size >= 1);
  pending_.reserve(batch_size);
  index_.reserve(capacity);
}

void BatchedPromotionLru::FlushBatch() {
  // Apply promotions in hit order; later hits end up closer to the head,
  // matching what eager promotion would have produced for the batch tail.
  for (const ObjectId id : pending_) {
    const auto it = index_.find(id);
    if (it != index_.end()) {  // may have been evicted while pending
      mru_list_.splice(mru_list_.begin(), mru_list_, it->second);
    }
  }
  pending_.clear();
}

bool BatchedPromotionLru::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    pending_.push_back(id);
    if (pending_.size() >= batch_size_) {
      FlushBatch();
    }
    return true;
  }
  if (index_.size() == capacity()) {
    const ObjectId victim = mru_list_.back();
    mru_list_.pop_back();
    index_.erase(victim);
    NotifyEvict(victim);
  }
  mru_list_.push_front(id);
  index_[id] = mru_list_.begin();
  NotifyInsert(id);
  return false;
}

PromoteOldOnlyLru::PromoteOldOnlyLru(size_t capacity, double threshold)
    : EvictionPolicy(capacity, "lru-promote-old") {
  QDLP_CHECK(threshold >= 0.0 && threshold <= 1.0);
  min_age_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(static_cast<double>(capacity) *
                                            threshold)));
  index_.reserve(capacity);
}

bool PromoteOldOnlyLru::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    Entry& entry = it->second;
    if (now() - entry.promoted_at >= min_age_) {
      mru_list_.splice(mru_list_.begin(), mru_list_, entry.position);
      entry.promoted_at = now();
      ++promotions_;
    } else {
      ++skipped_;  // still fresh: skip the pointer updates entirely
    }
    return true;
  }
  if (index_.size() == capacity()) {
    const ObjectId victim = mru_list_.back();
    mru_list_.pop_back();
    index_.erase(victim);
    NotifyEvict(victim);
  }
  mru_list_.push_front(id);
  index_[id] = Entry{mru_list_.begin(), now()};
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
