#include "src/policies/lru.h"

namespace qdlp {

LruPolicy::LruPolicy(size_t capacity) : EvictionPolicy(capacity, "lru") {
  mru_list_.Reserve(capacity);
  // +1: a miss emplaces the newcomer before evicting the victim, so the
  // index transiently holds capacity + 1 entries.
  index_.Reserve(capacity + 1);
}

void LruPolicy::CheckInvariants() const {
  QDLP_CHECK(index_.size() <= capacity());
  QDLP_CHECK(mru_list_.size() == index_.size());
  mru_list_.ForEach([&](uint32_t slot, ObjectId id) {
    const uint32_t* indexed = index_.Find(id);
    QDLP_CHECK(indexed != nullptr);
    QDLP_CHECK(*indexed == slot);
  });
  mru_list_.CheckInvariants();
  index_.CheckInvariants();
}

bool LruPolicy::Remove(ObjectId id) {
  const uint32_t* slot = index_.Find(id);
  if (slot == nullptr) {
    return false;
  }
  mru_list_.Erase(*slot);
  index_.Erase(id);
  NotifyEvict(id);
  return true;
}

bool LruPolicy::OnAccess(ObjectId id) {
  const auto [slot, inserted] = index_.Emplace(id);
  if (!inserted) {
    mru_list_.MoveToFront(*slot);
    return true;
  }
  // Evict after the emplace (one probe covers lookup + insert); Erase never
  // relocates live index slots, so `slot` stays valid across it.
  if (index_.size() > capacity()) {
    const uint32_t victim_slot = mru_list_.back();
    const ObjectId victim = mru_list_[victim_slot];
    mru_list_.Erase(victim_slot);
    index_.Erase(victim);
    NotifyEvict(victim);
  }
  *slot = mru_list_.PushFront(id);
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
