#include "src/policies/lru.h"

namespace qdlp {

LruPolicy::LruPolicy(size_t capacity) : EvictionPolicy(capacity, "lru") {
  index_.reserve(capacity);
}

bool LruPolicy::Remove(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  mru_list_.erase(it->second);
  index_.erase(it);
  NotifyEvict(id);
  return true;
}

bool LruPolicy::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    mru_list_.splice(mru_list_.begin(), mru_list_, it->second);
    return true;
  }
  if (index_.size() == capacity()) {
    const ObjectId victim = mru_list_.back();
    mru_list_.pop_back();
    index_.erase(victim);
    NotifyEvict(victim);
  }
  mru_list_.push_front(id);
  index_[id] = mru_list_.begin();
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
