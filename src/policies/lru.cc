#include "src/policies/lru.h"

namespace qdlp {

// Compile both index backings once here rather than in every TU.
template class BasicLruPolicy<FlatIndexFactory>;
template class BasicLruPolicy<DenseIndexFactory>;

}  // namespace qdlp
