#include "src/policies/lruk.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

LruKPolicy::LruKPolicy(size_t capacity, int k, double history_factor)
    : EvictionPolicy(capacity, "lru" + std::to_string(k)), k_(k) {
  QDLP_CHECK(k >= 1 && k <= 16);
  history_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                          history_factor)));
  resident_.reserve(capacity);
}

LruKPolicy::Priority LruKPolicy::PriorityOf(const History& history) const {
  const uint64_t last =
      history.count == 0
          ? 0
          : history.times[(history.next + history.times.size() - 1) %
                          history.times.size()];
  if (history.count < static_cast<size_t>(k_)) {
    return {0, last};  // infinite backward K-distance class
  }
  // Oldest retained slot is the k-th most recent access.
  const uint64_t kth = history.times[history.next];
  return {kth, last};
}

void LruKPolicy::Touch(History& history) {
  if (history.times.empty()) {
    history.times.assign(static_cast<size_t>(k_), 0);
  }
  history.times[history.next] = now();
  history.next = (history.next + 1) % history.times.size();
  history.count = std::min(history.count + 1, static_cast<size_t>(k_));
}

void LruKPolicy::TrimRetained() {
  while (retained_.size() > history_capacity_ && !retained_fifo_.empty()) {
    const ObjectId oldest = retained_fifo_.front();
    retained_fifo_.pop_front();
    retained_.erase(oldest);  // may be stale (revived) — then a no-op
  }
}

bool LruKPolicy::OnAccess(ObjectId id) {
  const auto it = resident_.find(id);
  if (it != resident_.end()) {
    order_.erase({PriorityOf(it->second), id});
    Touch(it->second);
    order_.insert({PriorityOf(it->second), id});
    return true;
  }
  if (resident_.size() == capacity()) {
    const auto victim_it = order_.begin();
    const ObjectId victim = victim_it->second;
    order_.erase(victim_it);
    auto resident_it = resident_.find(victim);
    // Retain the victim's reference history.
    retained_[victim] = std::move(resident_it->second);
    retained_fifo_.push_back(victim);
    resident_.erase(resident_it);
    TrimRetained();
    NotifyEvict(victim);
  }
  History history;
  const auto retained_it = retained_.find(id);
  if (retained_it != retained_.end()) {
    history = std::move(retained_it->second);
    retained_.erase(retained_it);
  }
  Touch(history);
  auto [slot, inserted] = resident_.emplace(id, std::move(history));
  QDLP_DCHECK(inserted);
  order_.insert({PriorityOf(slot->second), id});
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
