// ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//
// Four LRU lists: T1 (recent, resident), T2 (frequent, resident), and their
// ghost extensions B1/B2 (metadata only). The adaptation target p shifts
// capacity between recency and frequency based on which ghost list takes
// hits. This is the strongest conventional baseline in the paper ("the best
// state-of-the-art algorithm, ARC, can only reduce the miss ratio of LRU 6.2%
// on average") and the first candidate for QD enhancement.
//
// Implementation follows Fig. 4 of the FAST'03 paper exactly.

#ifndef QDLP_SRC_POLICIES_ARC_H_
#define QDLP_SRC_POLICIES_ARC_H_

#include <list>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class ArcPolicy : public EvictionPolicy {
 public:
  // `adaptation_rate` scales the ghost-hit delta applied to the target p;
  // §5 observes that "slowing down the queue size adjustment often reduces
  // miss ratios" — rate < 1 tests that. `fixed_p_fraction` >= 0 pins p to
  // that fraction of capacity and disables adaptation entirely (§5's
  // "manually limiting the queue size").
  explicit ArcPolicy(size_t capacity, double adaptation_rate = 1.0,
                     double fixed_p_fraction = -1.0);

  size_t size() const override { return t1_.size() + t2_.size(); }
  bool Contains(ObjectId id) const override;

  // Invariant accessors used by tests.
  size_t t1_size() const { return t1_.size(); }
  size_t t2_size() const { return t2_.size(); }
  size_t b1_size() const { return b1_.size(); }
  size_t b2_size() const { return b2_.size(); }
  double target_p() const { return p_; }

  // FAST'03 §I.B invariants: |T1|+|T2| <= c, |T1|+|B1| <= c,
  // |T1|+|T2|+|B1|+|B2| <= 2c, p in [0, c], plus index/list consistency.
  void CheckInvariants() const override;

 protected:
  bool OnAccess(ObjectId id) override;
  void FillOccupancy(CacheStats& stats) const override {
    stats.probation_size = t1_.size();
    stats.main_size = t2_.size();
    stats.ghost_size = b1_.size() + b2_.size();
  }

 private:
  enum class ListId { kT1, kT2, kB1, kB2 };
  struct Entry {
    ListId list;
    std::list<ObjectId>::iterator position;
  };

  std::list<ObjectId>& ListFor(ListId list);

  // REPLACE(x, p): evicts the LRU of T1 or T2 into the matching ghost list.
  void Replace(bool requested_in_b2);
  void MoveTo(ObjectId id, ListId target);
  void RemoveFrom(ObjectId id);

  double p_ = 0.0;  // target size of T1
  double adaptation_rate_ = 1.0;
  bool adaptive_ = true;
  std::list<ObjectId> t1_, t2_, b1_, b2_;  // front = MRU
  std::unordered_map<ObjectId, Entry> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_ARC_H_
