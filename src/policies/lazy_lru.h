// Relaxed-promotion LRU variants from the paper's §5 technique list:
// "several other techniques are often used to reduce promotion and improve
// scalability, e.g., periodic promotion [62], batched promotion [76],
// promoting old objects only [15]".
//
//  * BatchedPromotionLru — hits are recorded in a buffer and applied to the
//    LRU list in batches of `batch_size` (FrozenHot/memcached-style: the
//    common lock is taken once per batch instead of once per hit).
//  * PromoteOldOnlyLru — a hit promotes only when the object has sat
//    unpromoted for at least `threshold` × capacity requests (CacheLib's
//    LRU refresh-ratio knob): hot objects near the head skip the splice.
//
// Both approximate LRU's ordering with strictly less promotion work; the
// ablation bench checks the paper's implied claim that they cost little to
// no miss ratio.

#ifndef QDLP_SRC_POLICIES_LAZY_LRU_H_
#define QDLP_SRC_POLICIES_LAZY_LRU_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class BatchedPromotionLru : public EvictionPolicy {
 public:
  BatchedPromotionLru(size_t capacity, size_t batch_size = 64);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  void FlushBatch();

  size_t batch_size_;
  std::vector<ObjectId> pending_;  // hit ids awaiting promotion, in order
  std::list<ObjectId> mru_list_;   // front = MRU
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index_;
};

class PromoteOldOnlyLru : public EvictionPolicy {
 public:
  PromoteOldOnlyLru(size_t capacity, double threshold = 0.3);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

  uint64_t promotions_performed() const { return promotions_; }
  uint64_t promotions_skipped() const { return skipped_; }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Entry {
    std::list<ObjectId>::iterator position;
    uint64_t promoted_at = 0;  // logical time of last head placement
  };

  uint64_t min_age_;  // promote only when now - promoted_at >= min_age_
  std::list<ObjectId> mru_list_;
  std::unordered_map<ObjectId, Entry> index_;
  uint64_t promotions_ = 0;
  uint64_t skipped_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LAZY_LRU_H_
