#include "src/policies/clockpro.h"

#include <algorithm>
#include <unordered_set>

namespace qdlp {

ClockProPolicy::ClockProPolicy(size_t capacity)
    : EvictionPolicy(capacity, "clockpro") {
  // Start with the whole cache cold, as the ATC'05 paper does; the first
  // successful test periods grow the hot set by shrinking cold_target_.
  cold_target_ = capacity;
  entries_.reserve(capacity);
}

bool ClockProPolicy::Contains(ObjectId id) const {
  return entries_.contains(id);
}

void ClockProPolicy::CheckInvariants() const {
  QDLP_CHECK(hot_count_ + cold_count_ <= capacity());
  QDLP_CHECK(hot_count_ + cold_count_ == entries_.size());
  QDLP_CHECK(cold_target_ >= 1 && cold_target_ <= capacity());
  QDLP_CHECK(test_live_.size() <= capacity());
  std::unordered_set<ObjectId> in_hot_queue(hot_queue_.begin(),
                                            hot_queue_.end());
  std::unordered_set<ObjectId> in_cold_queue(cold_queue_.begin(),
                                             cold_queue_.end());
  size_t hot = 0;
  size_t cold = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.state == State::kHot) {
      ++hot;
      // A resident page must be reachable by its hand, or it can never be
      // evicted (a space leak). Stale records in the other queue are fine.
      QDLP_CHECK(in_hot_queue.contains(id));
    } else {
      ++cold;
      QDLP_CHECK(in_cold_queue.contains(id));
    }
    // A resident page must not simultaneously be non-resident test metadata.
    QDLP_CHECK(!test_live_.contains(id));
  }
  QDLP_CHECK(hot == hot_count_);
  QDLP_CHECK(cold == cold_count_);
  // Every live test entry's generation record is still queued (hand_test
  // trimming drops the live entry together with its record).
  size_t matching = 0;
  std::unordered_map<ObjectId, size_t> pending;
  for (const ObjectId id : test_fifo_) {
    ++pending[id];
  }
  for (const auto& [id, generation] : test_live_) {
    (void)generation;
    QDLP_CHECK(pending.contains(id));
    ++matching;
  }
  QDLP_CHECK(matching == test_live_.size());
}

void ClockProPolicy::GrowColdTarget() {
  cold_target_ = std::min(cold_target_ + 1, capacity());
}

void ClockProPolicy::ShrinkColdTarget() {
  if (cold_target_ > 1) {
    --cold_target_;
  }
}

void ClockProPolicy::TestInsert(ObjectId id) {
  const uint64_t generation = test_generation_++;
  test_fifo_.push_back(id);
  test_live_[id] = generation;
  // hand_test: the metadata window is bounded by the cache size.
  while (test_live_.size() > capacity() && !test_fifo_.empty()) {
    const ObjectId oldest = test_fifo_.front();
    test_fifo_.pop_front();
    // An expired, never re-accessed test page: cold pages are not earning
    // their keep at this window size.
    if (test_live_.erase(oldest) > 0) {
      ShrinkColdTarget();
    }
  }
}

void ClockProPolicy::AdmitHot(ObjectId id) {
  entries_[id] = Entry{State::kHot, false};
  hot_queue_.push_back(id);
  ++hot_count_;
}

void ClockProPolicy::AdmitCold(ObjectId id) {
  entries_[id] = Entry{State::kCold, false};
  cold_queue_.push_back(id);
  ++cold_count_;
}

void ClockProPolicy::RunHandHot() {
  // Demote hot pages while the hot allocation is exceeded.
  while (hot_count_ > 0 &&
         hot_count_ > capacity() - std::min(cold_target_, capacity() - 1)) {
    QDLP_DCHECK(!hot_queue_.empty());
    const ObjectId head = hot_queue_.front();
    hot_queue_.pop_front();
    auto it = entries_.find(head);
    if (it == entries_.end() || it->second.state != State::kHot) {
      continue;  // stale record
    }
    if (it->second.reference) {
      it->second.reference = false;  // second chance
      hot_queue_.push_back(head);
      NotifyPromote(head);
      continue;
    }
    // Demote to cold; it starts a fresh test period at the cold tail.
    it->second.state = State::kCold;
    --hot_count_;
    ++cold_count_;
    cold_queue_.push_back(head);
    NotifyDemote(head);
  }
}

void ClockProPolicy::RunHandCold() {
  while (true) {
    if (cold_count_ == 0) {
      // Everything is hot: force a demotion so the cold hand has material.
      QDLP_DCHECK(hot_count_ > 0);
      const ObjectId head = hot_queue_.front();
      hot_queue_.pop_front();
      auto it = entries_.find(head);
      if (it == entries_.end() || it->second.state != State::kHot) {
        continue;
      }
      if (it->second.reference) {
        it->second.reference = false;
        hot_queue_.push_back(head);
        NotifyPromote(head);
        continue;
      }
      it->second.state = State::kCold;
      --hot_count_;
      ++cold_count_;
      cold_queue_.push_back(head);
      NotifyDemote(head);
      continue;
    }
    QDLP_DCHECK(!cold_queue_.empty());
    const ObjectId head = cold_queue_.front();
    cold_queue_.pop_front();
    auto it = entries_.find(head);
    if (it == entries_.end() || it->second.state != State::kCold) {
      continue;  // stale record
    }
    if (it->second.reference) {
      // Test succeeded while resident: the page is hot, and cold pages in
      // general deserve a longer test window.
      it->second.state = State::kHot;
      it->second.reference = false;
      --cold_count_;
      ++hot_count_;
      hot_queue_.push_back(head);
      NotifyPromote(head);
      GrowColdTarget();
      RunHandHot();
      continue;
    }
    // Test failed while resident: evict the data, keep test metadata.
    entries_.erase(it);
    --cold_count_;
    NotifyEvict(head);
    TestInsert(head);
    return;
  }
}

bool ClockProPolicy::OnAccess(ObjectId id) {
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.reference = true;  // the only hit-path write
    return true;
  }
  // Consult the test window before making room: this access must not be
  // judged against metadata trimmed by its own eviction.
  const bool test_hit = test_live_.erase(id) > 0;
  if (size() == capacity()) {
    RunHandCold();
    RunHandHot();
  }
  if (test_hit) {
    // Re-accessed during its (non-resident) test period: reuse distance
    // beats the coldest hot page — admit hot, and reward cold pages.
    NotifyGhostHit(id);
    GrowColdTarget();
    AdmitHot(id);
    RunHandHot();
  } else {
    AdmitCold(id);
  }
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
