#include "src/policies/belady.h"

namespace qdlp {

BeladyPolicy::BeladyPolicy(size_t capacity, const std::vector<ObjectId>& trace)
    : EvictionPolicy(capacity, "belady") {
  next_use_.resize(trace.size());
  std::unordered_map<ObjectId, uint64_t> upcoming;
  upcoming.reserve(trace.size() / 2);
  for (size_t i = trace.size(); i-- > 0;) {
    const auto it = upcoming.find(trace[i]);
    next_use_[i] = it == upcoming.end() ? kNever : it->second;
    upcoming[trace[i]] = i;
  }
  resident_.reserve(capacity);
}

bool BeladyPolicy::OnAccess(ObjectId id) {
  QDLP_CHECK_MSG(position_ < next_use_.size(),
                 "Belady accessed past the end of its trace");
  const uint64_t next = next_use_[position_];
  ++position_;

  const auto it = resident_.find(id);
  if (it != resident_.end()) {
    by_next_use_.erase({it->second, id});
    it->second = next;
    by_next_use_.insert({next, id});
    return true;
  }
  if (next == kNever) {
    // Optimal never caches an object without a future use; admitting it can
    // only displace useful data. Count the miss and bypass the cache.
    return false;
  }
  if (resident_.size() == capacity()) {
    // MIN considers the incoming object as an eviction candidate too: if its
    // next use is farther than every resident's, admitting it would be the
    // mistake, so bypass instead.
    const auto victim_it = std::prev(by_next_use_.end());
    if (victim_it->first <= next) {
      return false;
    }
    const ObjectId victim = victim_it->second;
    by_next_use_.erase(victim_it);
    resident_.erase(victim);
    NotifyEvict(victim);
  }
  resident_[id] = next;
  by_next_use_.insert({next, id});
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
