#include "src/policies/lhd.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

LhdPolicy::LhdPolicy(size_t capacity, uint64_t seed)
    : EvictionPolicy(capacity, "lhd"), rng_(seed) {
  // Coarsen ages so that ~8 cache-fills of time span the histogram.
  const double target_span = 8.0 * static_cast<double>(capacity);
  age_shift_ = 0;
  while ((target_span / static_cast<double>(1ULL << age_shift_)) >
         static_cast<double>(kNumAgeBuckets)) {
    ++age_shift_;
  }
  reconfigure_interval_ = std::max<uint64_t>(1000, capacity);
  index_.reserve(capacity);
  objects_.reserve(capacity);
}

size_t LhdPolicy::AgeBucket(uint64_t last_access) const {
  const uint64_t age = (now() - last_access) >> age_shift_;
  return std::min<uint64_t>(age, kNumAgeBuckets - 1);
}

size_t LhdPolicy::ClassOf(uint32_t refs) {
  return std::min<size_t>(refs, kNumClasses - 1);
}

void LhdPolicy::Reconfigure() {
  for (ClassStats& cls : classes_) {
    // Hit density at age a: expected hits after reaching age a divided by
    // the expected remaining space-time after age a.
    double hits_above = 0.0;
    double events_above = 0.0;
    double lifetime_above = 0.0;
    for (size_t a = kNumAgeBuckets; a-- > 0;) {
      hits_above += cls.hits[a];
      events_above += cls.hits[a] + cls.evictions[a];
      lifetime_above += events_above;  // integral of survival over age
      cls.density[a] =
          lifetime_above > 0.0 ? hits_above / lifetime_above : 1e-3;
    }
    for (size_t a = 0; a < kNumAgeBuckets; ++a) {
      cls.hits[a] *= kEwmaDecay;
      cls.evictions[a] *= kEwmaDecay;
    }
  }
}

void LhdPolicy::EvictOne() {
  QDLP_DCHECK(!objects_.empty());
  size_t victim_pos = 0;
  double victim_density = 0.0;
  bool have_victim = false;
  const size_t samples = std::min(kSampleSize, objects_.size());
  for (size_t i = 0; i < samples; ++i) {
    const size_t pos = rng_.NextBounded(objects_.size());
    const Object& object = objects_[pos];
    const double density =
        classes_[ClassOf(object.refs)].density[AgeBucket(object.last_access)];
    if (!have_victim || density < victim_density) {
      have_victim = true;
      victim_density = density;
      victim_pos = pos;
    }
  }
  Object& victim = objects_[victim_pos];
  classes_[ClassOf(victim.refs)].evictions[AgeBucket(victim.last_access)] += 1.0;
  const ObjectId victim_id = victim.id;
  objects_[victim_pos] = objects_.back();
  index_[objects_[victim_pos].id] = victim_pos;
  objects_.pop_back();
  index_.erase(victim_id);
  NotifyEvict(victim_id);
}

bool LhdPolicy::OnAccess(ObjectId id) {
  if (++accesses_since_reconfigure_ >= reconfigure_interval_) {
    accesses_since_reconfigure_ = 0;
    Reconfigure();
  }
  const auto it = index_.find(id);
  if (it != index_.end()) {
    Object& object = objects_[it->second];
    classes_[ClassOf(object.refs)].hits[AgeBucket(object.last_access)] += 1.0;
    object.last_access = now();
    ++object.refs;
    return true;
  }
  if (objects_.size() == capacity()) {
    EvictOne();
  }
  index_[id] = objects_.size();
  objects_.push_back(Object{id, now(), 0});
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
