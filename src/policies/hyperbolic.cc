#include "src/policies/hyperbolic.h"

#include <algorithm>

namespace qdlp {

HyperbolicPolicy::HyperbolicPolicy(size_t capacity, uint64_t seed,
                                   size_t sample_size)
    : EvictionPolicy(capacity, "hyperbolic"),
      rng_(seed),
      sample_size_(sample_size) {
  QDLP_CHECK(sample_size >= 1);
  index_.reserve(capacity);
  objects_.reserve(capacity);
}

void HyperbolicPolicy::EvictOne() {
  QDLP_DCHECK(!objects_.empty());
  size_t victim_pos = 0;
  double victim_priority = 0.0;
  bool have_victim = false;
  const size_t samples = std::min(sample_size_, objects_.size());
  for (size_t i = 0; i < samples; ++i) {
    const size_t pos = rng_.NextBounded(objects_.size());
    const Object& object = objects_[pos];
    const double lifetime =
        static_cast<double>(now() - object.inserted_at) + 1.0;
    const double priority = static_cast<double>(object.frequency) / lifetime;
    if (!have_victim || priority < victim_priority) {
      have_victim = true;
      victim_priority = priority;
      victim_pos = pos;
    }
  }
  const ObjectId victim_id = objects_[victim_pos].id;
  objects_[victim_pos] = objects_.back();
  index_[objects_[victim_pos].id] = victim_pos;
  objects_.pop_back();
  index_.erase(victim_id);
  NotifyEvict(victim_id);
}

bool HyperbolicPolicy::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    ++objects_[it->second].frequency;
    return true;
  }
  if (objects_.size() == capacity()) {
    EvictOne();
  }
  index_[id] = objects_.size();
  objects_.push_back(Object{id, now(), 1});
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
