// LeCaR — Learning Cache Replacement (Vietri et al., HotStorage'18).
//
// One cache, two expert policies (LRU and LFU) and two ghost histories.
// Eviction draws an expert according to regret-minimizing weights; the victim
// is remembered in the expert's history. A miss that hits a history means the
// corresponding expert made a mistake, so the weights shift toward the other
// expert, discounted by how long ago the mistake happened.
//
// Parameters follow the paper: learning rate 0.45, discount 0.005^(1/N)
// where N is the cache size; each history holds N entries.

#ifndef QDLP_SRC_POLICIES_LECAR_H_
#define QDLP_SRC_POLICIES_LECAR_H_

#include <cstdint>
#include <deque>
#include <list>
#include <set>
#include <unordered_map>

#include "src/policies/eviction_policy.h"
#include "src/util/random.h"

namespace qdlp {

class LecarPolicy : public EvictionPolicy {
 public:
  explicit LecarPolicy(size_t capacity, uint64_t seed = 7,
                       double learning_rate = 0.45);

  size_t size() const override { return entries_.size(); }
  bool Contains(ObjectId id) const override { return entries_.contains(id); }

  double lru_weight() const { return w_lru_; }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Entry {
    uint64_t frequency = 0;
    uint64_t last_access = 0;
    std::list<ObjectId>::iterator lru_position;
  };
  // LFU order: (frequency, last_access) ascending; the minimum is the victim.
  using LfuKey = std::pair<uint64_t, uint64_t>;

  struct History {
    std::deque<std::pair<ObjectId, uint64_t>> fifo;  // (id, eviction time)
    std::unordered_map<ObjectId, uint64_t> index;    // id -> eviction time
    void Push(ObjectId id, uint64_t time, size_t max_size);
    bool Erase(ObjectId id);
  };

  void EvictOne();
  void UpdateWeights(double& wrong, double& other, uint64_t evicted_at);

  double learning_rate_;
  double discount_;
  double w_lru_ = 0.5;
  double w_lfu_ = 0.5;
  Rng rng_;

  std::unordered_map<ObjectId, Entry> entries_;
  std::list<ObjectId> lru_list_;  // front = MRU
  std::set<std::pair<LfuKey, ObjectId>> lfu_order_;
  History lru_history_;
  History lfu_history_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LECAR_H_
