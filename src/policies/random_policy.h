// Random eviction: evict a uniformly random resident object. Sanity baseline
// for the benchmark harnesses and for property tests.

#ifndef QDLP_SRC_POLICIES_RANDOM_POLICY_H_
#define QDLP_SRC_POLICIES_RANDOM_POLICY_H_

#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"
#include "src/util/random.h"

namespace qdlp {

class RandomPolicy : public EvictionPolicy {
 public:
  explicit RandomPolicy(size_t capacity, uint64_t seed = 42);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  Rng rng_;
  std::vector<ObjectId> entries_;  // dense, order-free; swap-remove
  std::unordered_map<ObjectId, size_t> index_;  // id -> position in entries_
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_RANDOM_POLICY_H_
