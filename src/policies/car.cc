#include "src/policies/car.h"

#include <algorithm>

namespace qdlp {

CarPolicy::CarPolicy(size_t capacity) : EvictionPolicy(capacity, "car") {
  index_.reserve(capacity * 2);
}

bool CarPolicy::Contains(ObjectId id) const {
  const auto it = index_.find(id);
  return it != index_.end() &&
         (it->second.list == ListId::kT1 || it->second.list == ListId::kT2);
}

std::list<ObjectId>& CarPolicy::ListFor(ListId list) {
  switch (list) {
    case ListId::kT1:
      return t1_;
    case ListId::kT2:
      return t2_;
    case ListId::kB1:
      return b1_;
    case ListId::kB2:
      return b2_;
  }
  QDLP_CHECK(false);
  return t1_;
}

void CarPolicy::RemoveFrom(ObjectId id) {
  auto it = index_.find(id);
  QDLP_DCHECK(it != index_.end());
  ListFor(it->second.list).erase(it->second.position);
  index_.erase(it);
}

void CarPolicy::PushBack(ObjectId id, ListId target, bool reference) {
  auto& entry = index_[id];
  auto& dest = ListFor(target);
  dest.push_back(id);
  entry.list = target;
  entry.reference = reference;
  entry.position = std::prev(dest.end());
}

void CarPolicy::PushGhostMru(ObjectId id, ListId target) {
  auto& entry = index_.at(id);
  ListFor(entry.list).erase(entry.position);
  auto& dest = ListFor(target);
  dest.push_front(id);
  entry.list = target;
  entry.reference = false;
  entry.position = dest.begin();
}

void CarPolicy::Replace() {
  while (true) {
    if (static_cast<double>(t1_.size()) >= std::max(1.0, p_) && !t1_.empty()) {
      const ObjectId head = t1_.front();
      Entry& entry = index_.at(head);
      if (!entry.reference) {
        NotifyEvict(head);
        PushGhostMru(head, ListId::kB1);
        return;
      }
      // Referenced in T1: clear the bit and graduate to the tail of T2.
      t1_.pop_front();
      t2_.push_back(head);
      entry.list = ListId::kT2;
      entry.reference = false;
      entry.position = std::prev(t2_.end());
    } else {
      QDLP_DCHECK(!t2_.empty());
      const ObjectId head = t2_.front();
      Entry& entry = index_.at(head);
      if (!entry.reference) {
        NotifyEvict(head);
        PushGhostMru(head, ListId::kB2);
        return;
      }
      // Second chance within T2.
      t2_.splice(t2_.end(), t2_, entry.position);
      entry.reference = false;
      entry.position = std::prev(t2_.end());
    }
  }
}

bool CarPolicy::OnAccess(ObjectId id) {
  const size_t c = capacity();
  auto it = index_.find(id);
  if (it != index_.end() &&
      (it->second.list == ListId::kT1 || it->second.list == ListId::kT2)) {
    it->second.reference = true;  // the only hit-path metadata write
    return true;
  }
  const bool in_b1 = it != index_.end() && it->second.list == ListId::kB1;
  const bool in_b2 = it != index_.end() && it->second.list == ListId::kB2;

  if (t1_.size() + t2_.size() == c) {
    Replace();
    if (!in_b1 && !in_b2) {
      if (t1_.size() + b1_.size() == c && !b1_.empty()) {
        RemoveFrom(b1_.back());
      } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() == 2 * c &&
                 !b2_.empty()) {
        RemoveFrom(b2_.back());
      }
    }
  }

  if (!in_b1 && !in_b2) {
    PushBack(id, ListId::kT1, false);
  } else if (in_b1) {
    const double delta = std::max(
        1.0, static_cast<double>(b2_.size()) / static_cast<double>(b1_.size()));
    p_ = std::min(p_ + delta, static_cast<double>(c));
    ListFor(ListId::kB1).erase(it->second.position);
    index_.erase(it);
    PushBack(id, ListId::kT2, false);
  } else {
    const double delta = std::max(
        1.0, static_cast<double>(b1_.size()) / static_cast<double>(b2_.size()));
    p_ = std::max(p_ - delta, 0.0);
    ListFor(ListId::kB2).erase(it->second.position);
    index_.erase(it);
    PushBack(id, ListId::kT2, false);
  }
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
