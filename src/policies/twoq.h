// 2Q (Johnson & Shasha, VLDB'94), the "full version".
//
// Three structures: A1in, a FIFO holding recently-admitted resident objects
// (default 25% of capacity); A1out, a ghost FIFO of ids recently evicted from
// A1in (default holds ids for 50% of capacity worth of objects); and Am, an
// LRU holding the established hot objects. A miss that hits A1out is promoted
// straight into Am; hits inside A1in do not move the object (correlated
// references are deliberately ignored). A precursor of the paper's
// probationary-FIFO + ghost QD construction.

#ifndef QDLP_SRC_POLICIES_TWOQ_H_
#define QDLP_SRC_POLICIES_TWOQ_H_

#include <deque>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class TwoQPolicy : public EvictionPolicy {
 public:
  TwoQPolicy(size_t capacity, double kin_fraction = 0.25,
             double kout_fraction = 0.5);

  size_t size() const override { return a1in_index_.size() + am_index_.size(); }
  bool Contains(ObjectId id) const override {
    return a1in_index_.contains(id) || am_index_.contains(id);
  }

  size_t a1in_size() const { return a1in_index_.size(); }
  size_t a1out_size() const { return a1out_index_.size(); }
  size_t am_size() const { return am_index_.size(); }
  bool InGhost(ObjectId id) const { return a1out_index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id) override;
  void FillOccupancy(CacheStats& stats) const override {
    stats.probation_size = a1in_index_.size();
    stats.main_size = am_index_.size();
    stats.ghost_size = a1out_index_.size();
  }

 private:
  // Frees one slot of cache space following the 2Q "reclaimfor" rule.
  void Reclaim();
  void PushGhost(ObjectId id);

  size_t kin_capacity_;
  size_t kout_capacity_;

  std::deque<ObjectId> a1in_;  // front = oldest
  std::unordered_set<ObjectId> a1in_index_;

  std::deque<ObjectId> a1out_;  // ghost ids, front = oldest
  std::unordered_set<ObjectId> a1out_index_;

  std::list<ObjectId> am_;  // front = MRU
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> am_index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_TWOQ_H_
