#include "src/policies/slru.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

SlruPolicy::SlruPolicy(size_t capacity, double protected_fraction)
    : EvictionPolicy(capacity, "slru") {
  QDLP_CHECK(protected_fraction >= 0.0 && protected_fraction < 1.0);
  protected_capacity_ = static_cast<size_t>(
      std::floor(static_cast<double>(capacity) * protected_fraction));
  protected_capacity_ = std::min(protected_capacity_, capacity - 1);
  index_.reserve(capacity);
}

size_t SlruPolicy::protected_size() const { return protected_.size(); }
size_t SlruPolicy::probation_size() const { return probation_.size(); }

void SlruPolicy::EvictFromProbation() {
  QDLP_DCHECK(!probation_.empty());
  const ObjectId victim = probation_.back();
  probation_.pop_back();
  index_.erase(victim);
  NotifyEvict(victim);
}

bool SlruPolicy::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    Entry& entry = it->second;
    if (entry.segment == Segment::kProtected) {
      protected_.splice(protected_.begin(), protected_, entry.position);
      return true;
    }
    // Promote probation -> protected; demote protected overflow back to the
    // probationary MRU end.
    probation_.erase(entry.position);
    protected_.push_front(id);
    entry.segment = Segment::kProtected;
    entry.position = protected_.begin();
    NotifyPromote(id);
    if (protected_.size() > protected_capacity_) {
      const ObjectId demoted = protected_.back();
      protected_.pop_back();
      probation_.push_front(demoted);
      Entry& demoted_entry = index_.at(demoted);
      demoted_entry.segment = Segment::kProbation;
      demoted_entry.position = probation_.begin();
      NotifyDemote(demoted);
    }
    return true;
  }
  if (index_.size() == capacity()) {
    // The probationary segment can only be empty if everything sits in
    // protected; demote its LRU first in that (degenerate) case.
    if (probation_.empty()) {
      const ObjectId demoted = protected_.back();
      protected_.pop_back();
      probation_.push_front(demoted);
      Entry& demoted_entry = index_.at(demoted);
      demoted_entry.segment = Segment::kProbation;
      demoted_entry.position = probation_.begin();
      NotifyDemote(demoted);
    }
    EvictFromProbation();
  }
  probation_.push_front(id);
  index_[id] = Entry{Segment::kProbation, probation_.begin()};
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
