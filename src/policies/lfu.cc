#include "src/policies/lfu.h"

namespace qdlp {

LfuPolicy::LfuPolicy(size_t capacity) : EvictionPolicy(capacity, "lfu") {
  index_.reserve(capacity);
}

uint64_t LfuPolicy::FrequencyOf(ObjectId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0 : it->second.frequency;
}

void LfuPolicy::PromoteToNextBucket(ObjectId id, Entry& entry) {
  const uint64_t old_freq = entry.frequency;
  auto bucket_it = buckets_.find(old_freq);
  bucket_it->second.erase(entry.position);
  if (bucket_it->second.empty()) {
    buckets_.erase(bucket_it);
  }
  Bucket& next = buckets_[old_freq + 1];
  next.push_front(id);
  entry.frequency = old_freq + 1;
  entry.position = next.begin();
}

bool LfuPolicy::OnAccess(ObjectId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    PromoteToNextBucket(id, it->second);
    return true;
  }
  if (index_.size() == capacity()) {
    auto lowest = buckets_.begin();
    Bucket& bucket = lowest->second;
    const ObjectId victim = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) {
      buckets_.erase(lowest);
    }
    index_.erase(victim);
    NotifyEvict(victim);
  }
  Bucket& first = buckets_[1];
  first.push_front(id);
  index_[id] = Entry{1, first.begin()};
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
