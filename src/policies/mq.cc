#include "src/policies/mq.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

MqPolicy::MqPolicy(size_t capacity, int num_queues, uint64_t lifetime,
                   double ghost_factor)
    : EvictionPolicy(capacity, "mq"),
      num_queues_(num_queues),
      lifetime_(lifetime == 0 ? 2 * capacity : lifetime),
      ghost_capacity_(std::max<size_t>(
          1, static_cast<size_t>(std::llround(static_cast<double>(capacity) *
                                              ghost_factor)))) {
  QDLP_CHECK(num_queues >= 1 && num_queues <= 32);
  queues_.resize(static_cast<size_t>(num_queues));
  index_.reserve(capacity);
}

bool MqPolicy::Contains(ObjectId id) const { return index_.contains(id); }

int MqPolicy::LevelForFrequency(uint64_t frequency, int num_queues) {
  // Queue k holds frequencies in [2^k, 2^(k+1)).
  int level = 0;
  while (frequency >= (2ULL << level) && level < num_queues - 1) {
    ++level;
  }
  return level;
}

void MqPolicy::PlaceInQueue(ObjectId id, Entry& entry) {
  const int level = LevelForFrequency(entry.frequency, num_queues_);
  entry.level = level;
  entry.expire_at = now() + lifetime_;
  auto& queue = queues_[static_cast<size_t>(level)];
  queue.push_back(id);  // back = MRU end
  entry.position = std::prev(queue.end());
}

void MqPolicy::AdjustExpired() {
  // Check the LRU head of every non-empty queue above level 0; demote at
  // most one block per access (the ATC'01 amortization).
  for (int level = num_queues_ - 1; level >= 1; --level) {
    auto& queue = queues_[static_cast<size_t>(level)];
    if (queue.empty()) {
      continue;
    }
    const ObjectId head = queue.front();
    Entry& entry = index_.at(head);
    if (entry.expire_at < now()) {
      queue.pop_front();
      entry.level = level - 1;
      entry.expire_at = now() + lifetime_;
      auto& lower = queues_[static_cast<size_t>(level - 1)];
      lower.push_back(head);
      entry.position = std::prev(lower.end());
      return;
    }
  }
}

void MqPolicy::GhostInsert(ObjectId id, uint64_t frequency) {
  ghost_fifo_.push_back(id);
  ghost_index_[id] = frequency;
  while (ghost_index_.size() > ghost_capacity_ && !ghost_fifo_.empty()) {
    const ObjectId oldest = ghost_fifo_.front();
    ghost_fifo_.pop_front();
    ghost_index_.erase(oldest);
  }
}

void MqPolicy::EvictOne() {
  for (auto& queue : queues_) {  // lowest level first
    if (queue.empty()) {
      continue;
    }
    const ObjectId victim = queue.front();
    queue.pop_front();
    const auto it = index_.find(victim);
    QDLP_DCHECK(it != index_.end());
    GhostInsert(victim, it->second.frequency);
    index_.erase(it);
    --resident_count_;
    NotifyEvict(victim);
    return;
  }
  QDLP_CHECK(false);  // eviction requested from an empty cache
}

bool MqPolicy::OnAccess(ObjectId id) {
  AdjustExpired();
  const auto it = index_.find(id);
  if (it != index_.end()) {
    Entry& entry = it->second;
    queues_[static_cast<size_t>(entry.level)].erase(entry.position);
    ++entry.frequency;
    PlaceInQueue(id, entry);
    return true;
  }
  if (resident_count_ == capacity()) {
    EvictOne();
  }
  Entry entry;
  const auto ghost_it = ghost_index_.find(id);
  if (ghost_it != ghost_index_.end()) {
    // Remembered frequency: the block rejoins at its old level + this access.
    NotifyGhostHit(id);
    entry.frequency = ghost_it->second + 1;
    ghost_index_.erase(ghost_it);
  } else {
    entry.frequency = 1;
  }
  auto [slot, inserted] = index_.emplace(id, entry);
  QDLP_DCHECK(inserted);
  PlaceInQueue(id, slot->second);
  ++resident_count_;
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
