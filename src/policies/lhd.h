// LHD — Least Hit Density (Beckmann, Chen & Cidon, NSDI'18).
//
// Evicts the object with the lowest *hit density*: the expected number of
// future hits per unit of cache space-time the object will consume. Hit
// density is estimated online from coarsened age distributions of hits and
// evictions, per object class (classes here are formed from reference
// counts). Eviction draws a random sample of resident objects and removes
// the lowest-density one, which is how the authors' implementation avoids a
// priority queue.
//
// Follows the authors' open-source implementation in structure: EWMA-aged
// per-class hit/eviction age histograms, periodic reconfiguration, and
// sampled eviction. Age coarsening is static per cache size rather than
// dynamically re-tuned.

#ifndef QDLP_SRC_POLICIES_LHD_H_
#define QDLP_SRC_POLICIES_LHD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"
#include "src/util/random.h"

namespace qdlp {

class LhdPolicy : public EvictionPolicy {
 public:
  explicit LhdPolicy(size_t capacity, uint64_t seed = 13);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  static constexpr size_t kNumClasses = 16;
  static constexpr size_t kNumAgeBuckets = 64;
  static constexpr size_t kSampleSize = 32;
  static constexpr double kEwmaDecay = 0.9;

  struct Object {
    ObjectId id = 0;
    uint64_t last_access = 0;
    uint32_t refs = 0;  // hits since admission
  };

  struct ClassStats {
    std::vector<double> hits = std::vector<double>(kNumAgeBuckets, 0.0);
    std::vector<double> evictions = std::vector<double>(kNumAgeBuckets, 0.0);
    std::vector<double> density = std::vector<double>(kNumAgeBuckets, 1e-3);
  };

  size_t AgeBucket(uint64_t last_access) const;
  static size_t ClassOf(uint32_t refs);
  void Reconfigure();
  void EvictOne();

  Rng rng_;
  uint64_t age_shift_ = 0;
  uint64_t accesses_since_reconfigure_ = 0;
  uint64_t reconfigure_interval_;
  std::vector<ClassStats> classes_ = std::vector<ClassStats>(kNumClasses);
  std::vector<Object> objects_;  // dense, swap-remove on eviction
  std::unordered_map<ObjectId, size_t> index_;  // id -> position in objects_
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LHD_H_
