// Eviction-policy interface.
//
// This is the paper's cache abstraction (§2, Fig 1): a cache is a logically
// total-ordered set of uniform-size objects with insertion, removal,
// promotion, and demotion; the eviction algorithm decides the ordering. A
// policy consumes a request stream one object id at a time and reports
// hit/miss; everything else (ordering, ghosts, adaptation) is internal.
//
// Policies advance a logical clock by one per access. An optional
// EvictionListener observes admissions and evictions with their timestamps;
// the simulator uses it to compute the per-object resource consumption of
// Fig. 3 ((t_evicted - t_inserted) / cache_size per residency).

#ifndef QDLP_SRC_POLICIES_EVICTION_POLICY_H_
#define QDLP_SRC_POLICIES_EVICTION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/trace/trace.h"
#include "src/util/check.h"
#include "src/util/prefetch.h"

namespace qdlp {

class EvictionListener {
 public:
  virtual ~EvictionListener() = default;
  // `id` was admitted into cache space at logical time `time`.
  virtual void OnInsert(ObjectId id, uint64_t time) = 0;
  // `id` left cache space at logical time `time`.
  virtual void OnEvict(ObjectId id, uint64_t time) = 0;
};

class EvictionPolicy {
 public:
  EvictionPolicy(size_t capacity, std::string name)
      : capacity_(capacity), name_(std::move(name)) {
    QDLP_CHECK(capacity >= 1);
  }
  virtual ~EvictionPolicy() = default;

  EvictionPolicy(const EvictionPolicy&) = delete;
  EvictionPolicy& operator=(const EvictionPolicy&) = delete;

  // Requests `id`. Returns true on a cache hit. On a miss the object is
  // admitted (possibly evicting), so a policy is also an admission point.
  //
  // When the build defines QDLP_CHECK_INVARIANTS (CMake option of the same
  // name; on in the debug/sanitizer presets, off in Release so benchmark
  // numbers are unaffected), every access re-validates the policy's
  // structural invariants via CheckInvariants() and aborts on violation.
  bool Access(ObjectId id) {
    ++now_;
    const bool hit = OnAccess(id);
#ifdef QDLP_CHECK_INVARIANTS
    CheckInvariants();
#endif
    return hit;
  }

  // Replays a batch of requests from a dense u32 id stream (see
  // src/trace/dense_trace.h); returns the number of hits. Semantically
  // identical to calling Access per id — this exists so the batched sweep
  // engine (src/sim/batch_replay.h) has a virtual seam the index-backed
  // policies override with a software-prefetch pipeline: the index slot of
  // request i + kBatchPrefetchDepth is prefetched while request i is
  // processed, overlapping probe latency with policy work.
  virtual uint64_t AccessBatch(const uint32_t* ids, size_t n) {
    uint64_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      hits += Access(ids[i]) ? 1 : 0;
    }
    return hits;
  }

  // Validates the policy's internal invariants (queue-size accounting,
  // ghost/resident disjointness, index consistency, ...) with QDLP_CHECK,
  // aborting on violation. O(size) — test/debug machinery, not a hot-path
  // operation. The default is a no-op; policies with nontrivial internal
  // state override it. Always compiled (the correctness harness calls it
  // explicitly in every build mode); only the per-access hook above is
  // gated behind QDLP_CHECK_INVARIANTS.
  virtual void CheckInvariants() const {}

  // Number of objects currently holding cache space.
  virtual size_t size() const = 0;
  // True when `id` currently holds cache space (ghost entries don't count).
  virtual bool Contains(ObjectId id) const = 0;

  // Approximate bytes of eviction metadata currently held (slabs, index
  // tables, ghost entries — not cached data). Purely observational: the
  // throughput benches divide it by capacity for the bytes/object column in
  // BENCH_throughput.json (see docs/PERFORMANCE.md). 0 = not instrumented.
  virtual size_t ApproxMetadataBytes() const { return 0; }

  // User-controlled removal (§2, Fig 1: removal is one of the four cache
  // operations — invoked directly or via TTL). Returns true if the object
  // was resident and has been removed. Policies that don't implement
  // removal return false without touching state; callers can check
  // SupportsRemoval() and fall back to lazy invalidation.
  virtual bool Remove(ObjectId id) {
    (void)id;
    return false;
  }
  virtual bool SupportsRemoval() const { return false; }

  size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }
  uint64_t now() const { return now_; }

  void set_eviction_listener(EvictionListener* listener) { listener_ = listener; }

 protected:
  virtual bool OnAccess(ObjectId id) = 0;

  void NotifyInsert(ObjectId id) {
    if (listener_ != nullptr) {
      listener_->OnInsert(id, now_);
    }
  }
  void NotifyEvict(ObjectId id) {
    if (listener_ != nullptr) {
      listener_->OnEvict(id, now_);
    }
  }
  EvictionListener* listener() const { return listener_; }

 private:
  size_t capacity_;
  std::string name_;
  uint64_t now_ = 0;
  EvictionListener* listener_ = nullptr;
};

// The prefetch-pipelined batch loop shared by the index-backed policies'
// AccessBatch overrides: `index` is whatever structure the policy probes
// first on a hit (its id -> slot table), and its Prefetch(key) pulls the
// probe target for request i + kBatchPrefetchDepth forward while request i
// runs through Access (clock advance and invariant hooks included).
template <typename Policy, typename Index>
uint64_t PrefetchPipelinedBatch(Policy& policy, const Index& index,
                                const uint32_t* ids, size_t n) {
  uint64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i + kBatchPrefetchDepth < n) {
      index.Prefetch(ids[i + kBatchPrefetchDepth]);
    }
    hits += policy.Access(ids[i]) ? 1 : 0;
  }
  return hits;
}

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_EVICTION_POLICY_H_
