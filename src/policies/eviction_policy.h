// Eviction-policy interface.
//
// This is the paper's cache abstraction (§2, Fig 1): a cache is a logically
// total-ordered set of uniform-size objects with insertion, removal,
// promotion, and demotion; the eviction algorithm decides the ordering. A
// policy consumes a request stream one object id at a time and reports
// hit/miss; everything else (ordering, ghosts, adaptation) is internal.
//
// Policies advance a logical clock by one per access, and every policy is
// observable through the shared CacheObservable interface (src/obs/): the
// base class tallies hits/misses itself and the Notify* helpers below tally
// admissions, evictions, lazy promotions, quick demotions, and ghost hits
// into plain uint64_t counters, snapshotted by Stats(). An optional
// AccessEventSink additionally observes each event with its logical
// timestamp; with no sink attached each event site costs one predictable
// branch (see src/obs/access_event.h for the contract). The simulator uses
// a sink to compute the per-object resource consumption of Fig. 3
// ((t_evicted - t_inserted) / cache_size per residency).

#ifndef QDLP_SRC_POLICIES_EVICTION_POLICY_H_
#define QDLP_SRC_POLICIES_EVICTION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/access_event.h"
#include "src/obs/cache_observable.h"
#include "src/obs/cache_stats.h"
#include "src/trace/trace.h"
#include "src/util/check.h"
#include "src/util/prefetch.h"

namespace qdlp {

class EvictionPolicy : public CacheObservable {
 public:
  EvictionPolicy(size_t capacity, std::string name)
      : capacity_(capacity), name_(std::move(name)) {
    QDLP_CHECK(capacity >= 1);
  }

  EvictionPolicy(const EvictionPolicy&) = delete;
  EvictionPolicy& operator=(const EvictionPolicy&) = delete;

  // Requests `id`. Returns true on a cache hit. On a miss the object is
  // admitted (possibly evicting), so a policy is also an admission point.
  //
  // When the build defines QDLP_CHECK_INVARIANTS (CMake option of the same
  // name; on in the debug/sanitizer presets, off in Release so benchmark
  // numbers are unaffected), every access re-validates the policy's
  // structural invariants via CheckInvariants() and aborts on violation.
  bool Access(ObjectId id) {
    ++now_;
    const bool hit = OnAccess(id);
    // Only hits are stored; misses is the identity now_ - hits, derived in
    // Stats(). One branchless add is all the always-on counting costs here.
    counters_.hits += static_cast<uint64_t>(hit);
    if (sink_ != nullptr) {
      if (hit) {
        sink_->OnHit(id, now_);
      } else {
        sink_->OnMiss(id, now_);
      }
    }
#ifdef QDLP_CHECK_INVARIANTS
    CheckInvariants();
#endif
    return hit;
  }

  // Replays a batch of requests from a dense u32 id stream (see
  // src/trace/dense_trace.h); returns the number of hits. Semantically
  // identical to calling Access per id — this exists so the batched sweep
  // engine (src/sim/batch_replay.h) has a virtual seam the index-backed
  // policies override with a software-prefetch pipeline: the index slot of
  // request i + kBatchPrefetchDepth is prefetched while request i is
  // processed, overlapping probe latency with policy work.
  virtual uint64_t AccessBatch(const uint32_t* ids, size_t n) {
    uint64_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      hits += Access(ids[i]) ? 1 : 0;
    }
    return hits;
  }

  // Validates the policy's internal invariants (queue-size accounting,
  // ghost/resident disjointness, index consistency, ...) with QDLP_CHECK,
  // aborting on violation. O(size) — test/debug machinery, not a hot-path
  // operation. The default is a no-op; policies with nontrivial internal
  // state override it. Always compiled (the correctness harness calls it
  // explicitly in every build mode); only the per-access hook in Access()
  // is gated behind QDLP_CHECK_INVARIANTS.
  //
  // The non-const overload is the CacheObservable entry point: it runs the
  // structural checks AND the telemetry consistency checks below.
  void CheckInvariants() final {
    static_cast<const EvictionPolicy*>(this)->CheckInvariants();
    CheckStatsConsistency();
  }
  virtual void CheckInvariants() const {}

  // Telemetry counter consistency: the counters are not a second
  // bookkeeping system that can drift — they must agree with the policy's
  // actual occupancy at every quiescent point.
  void CheckStatsConsistency() const {
    QDLP_CHECK(counters_.hits <= now_);
    const uint64_t misses = now_ - counters_.hits;
    QDLP_CHECK(counters_.inserts <= misses);
    QDLP_CHECK(counters_.inserts >= counters_.evictions);
    QDLP_CHECK(counters_.inserts - counters_.evictions == size());
    QDLP_CHECK(counters_.ghost_hits <= misses);
  }

  // Number of objects currently holding cache space.
  virtual size_t size() const = 0;
  // True when `id` currently holds cache space (ghost entries don't count).
  virtual bool Contains(ObjectId id) const = 0;

  // User-controlled removal (§2, Fig 1: removal is one of the four cache
  // operations — invoked directly or via TTL). Returns true if the object
  // was resident and has been removed. Policies that don't implement
  // removal return false without touching state; callers can check
  // SupportsRemoval() and fall back to lazy invalidation. Removals count
  // as evictions in Stats() (the object left cache space).
  virtual bool Remove(ObjectId id) {
    (void)id;
    return false;
  }
  virtual bool SupportsRemoval() const { return false; }

  // CacheObservable:
  std::string_view name() const final { return name_; }
  size_t capacity() const final { return capacity_; }
  CacheStats Stats() const final {
    CacheStats stats = counters_;
    stats.requests = now_;
    stats.misses = now_ - counters_.hits;  // identity; not stored per access
    stats.size = size();
    FillOccupancy(stats);
    return stats;
  }

  uint64_t now() const { return now_; }

  void set_event_sink(AccessEventSink* sink) { sink_ = sink; }
  AccessEventSink* event_sink() const { return sink_; }

 protected:
  virtual bool OnAccess(ObjectId id) = 0;

  // Composite policies (QD wrapper, S3-FIFO) override to report per-queue
  // occupancy (probation/main/ghost) in the Stats() snapshot. Also the
  // hook for counters that are identities rather than stored state (LRU
  // derives promotions == hits here to keep the store off its hit path);
  // the flow counters are already copied in when this runs.
  virtual void FillOccupancy(CacheStats& stats) const { (void)stats; }

  void NotifyInsert(ObjectId id) {
    ++counters_.inserts;
    if (sink_ != nullptr) {
      sink_->OnInsert(id, now_);
    }
  }
  void NotifyEvict(ObjectId id) {
    ++counters_.evictions;
    if (sink_ != nullptr) {
      sink_->OnEvict(id, now_);
    }
  }
  void NotifyPromote(ObjectId id) {
    ++counters_.promotions;
    if (sink_ != nullptr) {
      sink_->OnPromote(id, now_);
    }
  }
  void NotifyDemote(ObjectId id) {
    ++counters_.demotions;
    if (sink_ != nullptr) {
      sink_->OnDemote(id, now_);
    }
  }
  void NotifyGhostHit(ObjectId id) {
    ++counters_.ghost_hits;
    if (sink_ != nullptr) {
      sink_->OnGhostHit(id, now_);
    }
  }

  // Raw counter reads for policies that expose ad-hoc accessors.
  const CacheStats& counters() const { return counters_; }

 private:
  size_t capacity_;
  std::string name_;
  uint64_t now_ = 0;
  CacheStats counters_;  // flow counters; occupancy filled at Stats() time
  AccessEventSink* sink_ = nullptr;
};

// The prefetch-pipelined batch loop shared by the index-backed policies'
// AccessBatch overrides: `index` is whatever structure the policy probes
// first on a hit (its id -> slot table), and its Prefetch(key) pulls the
// probe target for request i + kBatchPrefetchDepth forward while request i
// runs through Access (clock advance and invariant hooks included).
template <typename Policy, typename Index>
uint64_t PrefetchPipelinedBatch(Policy& policy, const Index& index,
                                const uint32_t* ids, size_t n) {
  uint64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i + kBatchPrefetchDepth < n) {
      index.Prefetch(ids[i + kBatchPrefetchDepth]);
    }
    hits += policy.Access(ids[i]) ? 1 : 0;
  }
  return hits;
}

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_EVICTION_POLICY_H_
