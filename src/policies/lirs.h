// LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02).
//
// Partitions resident objects into LIR (low inter-reference recency, ~99% of
// capacity) and HIR blocks (~1%). Stack S orders blocks by recency and also
// holds non-resident HIR metadata; queue Q holds the resident HIR blocks,
// which are the eviction victims. A HIR block that is re-referenced while
// still in S (i.e., its reuse distance beats the coldest LIR block) is
// upgraded to LIR, demoting the LIR block at the stack bottom.
//
// The paper (§4, footnote 4) notes that two open-source LIRS implementations
// used by prior work were buggy; the invariants here (stack bottom is always
// LIR, non-resident metadata bounded) are enforced with checks and covered by
// dedicated tests.

#ifndef QDLP_SRC_POLICIES_LIRS_H_
#define QDLP_SRC_POLICIES_LIRS_H_

#include <deque>
#include <list>
#include <unordered_map>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class LirsPolicy : public EvictionPolicy {
 public:
  // hir_fraction of capacity is reserved for resident HIR blocks (Q);
  // classic LIRS uses 1%, with a floor of 1 block. `max_nonresident_factor`
  // bounds stack S's non-resident metadata to factor*capacity entries.
  LirsPolicy(size_t capacity, double hir_fraction = 0.01,
             double max_nonresident_factor = 3.0);

  size_t size() const override { return resident_count_; }
  bool Contains(ObjectId id) const override;

  size_t lir_count() const { return lir_count_; }
  size_t queue_size() const { return queue_.size(); }
  size_t stack_size() const { return stack_.size(); }
  // True when the bottom of stack S is a LIR block (core LIRS invariant).
  bool StackBottomIsLir() const;

  // LIRS invariants (SIGMETRICS'02 §3.3, plus the §4-footnote-4 pitfalls):
  // stack bottom is LIR, LIR blocks never exceed the LIR allocation, Q holds
  // exactly the resident HIR blocks, and the non-resident metadata stays
  // within its configured bound.
  void CheckInvariants() const override;

 protected:
  bool OnAccess(ObjectId id) override;
  void FillOccupancy(CacheStats& stats) const override {
    stats.probation_size = resident_count_ - lir_count_;  // resident HIR (Q)
    stats.main_size = lir_count_;
    stats.ghost_size = nonresident_count_;
  }

 private:
  enum class State {
    kLir,            // resident, in S
    kHirResident,    // resident, in Q, possibly in S
    kHirNonResident, // metadata only, in S
  };
  struct Entry {
    State state = State::kHirNonResident;
    bool in_stack = false;
    bool in_queue = false;
    std::list<ObjectId>::iterator stack_position;
    std::list<ObjectId>::iterator queue_position;
  };

  void PushStackTop(ObjectId id, Entry& entry);
  void PushQueueBack(ObjectId id, Entry& entry);
  void RemoveFromQueue(ObjectId id, Entry& entry);
  // Removes HIR entries from the stack bottom until a LIR block sits there.
  void PruneStack();
  // Evicts the front of Q (the coldest resident HIR block).
  void EvictFromQueue();
  // Demotes the LIR block at the stack bottom to resident HIR (moves to Q).
  void DemoteStackBottom();
  // Drops the oldest non-resident HIR metadata when over budget.
  void LimitNonResident();

  size_t lir_capacity_;
  size_t hir_capacity_;
  size_t max_nonresident_;

  std::list<ObjectId> stack_;  // front = top (most recent)
  std::list<ObjectId> queue_;  // front = eviction candidate
  // Ids in the order they became non-resident; drained (skipping stale
  // entries) to bound the metadata footprint.
  std::deque<ObjectId> nonresident_fifo_;
  std::unordered_map<ObjectId, Entry> index_;
  size_t resident_count_ = 0;
  size_t lir_count_ = 0;
  size_t nonresident_count_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_LIRS_H_
