// MQ — Multi-Queue replacement (Zhou, Philbin & Li, ATC'01).
//
// Designed for second-level buffer caches: m LRU queues where queue k holds
// objects with frequency in [2^k, 2^(k+1)), plus a ghost queue Qout
// remembering evicted objects' frequencies. Blocks expire down a queue level
// when not referenced for `lifetime` requests, so stale frequent blocks
// eventually become evictable. Cited by the paper among the multi-queue
// ancestors of the QD construction.

#ifndef QDLP_SRC_POLICIES_MQ_H_
#define QDLP_SRC_POLICIES_MQ_H_

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"

namespace qdlp {

class MqPolicy : public EvictionPolicy {
 public:
  // num_queues: frequency levels (ATC'01 uses 8). lifetime: requests without
  // a reference before a block is demoted one level; 0 = 2x capacity.
  // ghost_factor: Qout entries as a multiple of capacity (paper: 4x).
  MqPolicy(size_t capacity, int num_queues = 8, uint64_t lifetime = 0,
           double ghost_factor = 4.0);

  size_t size() const override { return resident_count_; }
  bool Contains(ObjectId id) const override;

  size_t queue_size(int level) const { return queues_[level].size(); }
  size_t ghost_size() const { return ghost_index_.size(); }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Entry {
    uint64_t frequency = 0;
    uint64_t expire_at = 0;
    int level = 0;
    std::list<ObjectId>::iterator position;
  };

  static int LevelForFrequency(uint64_t frequency, int num_queues);
  void PlaceInQueue(ObjectId id, Entry& entry);
  // Demotes expired queue heads one level (ATC'01's Adjust).
  void AdjustExpired();
  void EvictOne();
  void GhostInsert(ObjectId id, uint64_t frequency);

  int num_queues_;
  uint64_t lifetime_;
  size_t ghost_capacity_;

  std::vector<std::list<ObjectId>> queues_;  // per level; front = LRU end
  std::unordered_map<ObjectId, Entry> index_;  // resident objects
  size_t resident_count_ = 0;

  // Ghost (Qout): id -> remembered frequency, FIFO-bounded.
  std::deque<ObjectId> ghost_fifo_;
  std::unordered_map<ObjectId, uint64_t> ghost_index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_MQ_H_
