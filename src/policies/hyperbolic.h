// Hyperbolic caching (Blankstein, Sen & Freedman, ATC'17).
//
// Priority of an object is frequency / time-in-cache; eviction removes the
// sampled object with the lowest priority. The paper (§5) lists Hyperbolic
// as an alternative Quick Demotion mechanism — new objects with few accesses
// have low priority and are demoted fast.

#ifndef QDLP_SRC_POLICIES_HYPERBOLIC_H_
#define QDLP_SRC_POLICIES_HYPERBOLIC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/policies/eviction_policy.h"
#include "src/util/random.h"

namespace qdlp {

class HyperbolicPolicy : public EvictionPolicy {
 public:
  explicit HyperbolicPolicy(size_t capacity, uint64_t seed = 17,
                            size_t sample_size = 64);

  size_t size() const override { return index_.size(); }
  bool Contains(ObjectId id) const override { return index_.contains(id); }

 protected:
  bool OnAccess(ObjectId id) override;

 private:
  struct Object {
    ObjectId id = 0;
    uint64_t inserted_at = 0;
    uint64_t frequency = 0;
  };

  void EvictOne();

  Rng rng_;
  size_t sample_size_;
  std::vector<Object> objects_;
  std::unordered_map<ObjectId, size_t> index_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_POLICIES_HYPERBOLIC_H_
