#include "src/policies/lecar.h"

#include <cmath>

namespace qdlp {

LecarPolicy::LecarPolicy(size_t capacity, uint64_t seed, double learning_rate)
    : EvictionPolicy(capacity, "lecar"),
      learning_rate_(learning_rate),
      rng_(seed) {
  discount_ = std::pow(0.005, 1.0 / static_cast<double>(capacity));
  entries_.reserve(capacity);
}

void LecarPolicy::History::Push(ObjectId id, uint64_t time, size_t max_size) {
  fifo.emplace_back(id, time);
  index[id] = time;
  while (index.size() > max_size && !fifo.empty()) {
    const auto [oldest_id, oldest_time] = fifo.front();
    fifo.pop_front();
    // Only erase if this fifo record is the live one (not superseded by a
    // newer eviction of the same id).
    const auto it = index.find(oldest_id);
    if (it != index.end() && it->second == oldest_time) {
      index.erase(it);
    }
  }
}

bool LecarPolicy::History::Erase(ObjectId id) {
  return index.erase(id) > 0;  // fifo record goes stale; skipped on trim
}

void LecarPolicy::UpdateWeights(double& wrong, double& other,
                                uint64_t evicted_at) {
  // Regret is discounted by the time since the mistaken eviction.
  const double age = static_cast<double>(now() - evicted_at);
  const double reward = std::pow(discount_, age);
  other *= std::exp(learning_rate_ * reward);
  const double total = wrong + other;
  wrong /= total;
  other /= total;
}

void LecarPolicy::EvictOne() {
  QDLP_DCHECK(!entries_.empty());
  const bool use_lru = rng_.NextDouble() < w_lru_;
  ObjectId victim;
  if (use_lru) {
    victim = lru_list_.back();
  } else {
    victim = lfu_order_.begin()->second;
  }
  const Entry& entry = entries_.at(victim);
  lru_list_.erase(entry.lru_position);
  lfu_order_.erase({{entry.frequency, entry.last_access}, victim});
  entries_.erase(victim);
  NotifyEvict(victim);
  if (use_lru) {
    lru_history_.Push(victim, now(), capacity());
  } else {
    lfu_history_.Push(victim, now(), capacity());
  }
}

bool LecarPolicy::OnAccess(ObjectId id) {
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    lru_list_.splice(lru_list_.begin(), lru_list_, entry.lru_position);
    lfu_order_.erase({{entry.frequency, entry.last_access}, id});
    ++entry.frequency;
    entry.last_access = now();
    lfu_order_.insert({{entry.frequency, entry.last_access}, id});
    return true;
  }

  // Mistake feedback from the ghost histories.
  const auto lru_hist = lru_history_.index.find(id);
  if (lru_hist != lru_history_.index.end()) {
    const uint64_t evicted_at = lru_hist->second;
    lru_history_.Erase(id);
    NotifyGhostHit(id);
    UpdateWeights(w_lru_, w_lfu_, evicted_at);
  } else {
    const auto lfu_hist = lfu_history_.index.find(id);
    if (lfu_hist != lfu_history_.index.end()) {
      const uint64_t evicted_at = lfu_hist->second;
      lfu_history_.Erase(id);
      NotifyGhostHit(id);
      UpdateWeights(w_lfu_, w_lru_, evicted_at);
    }
  }

  if (entries_.size() == capacity()) {
    EvictOne();
  }
  Entry entry;
  entry.frequency = 1;
  entry.last_access = now();
  lru_list_.push_front(id);
  entry.lru_position = lru_list_.begin();
  lfu_order_.insert({{entry.frequency, entry.last_access}, id});
  entries_[id] = entry;
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
