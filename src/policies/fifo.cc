#include "src/policies/fifo.h"

namespace qdlp {

FifoPolicy::FifoPolicy(size_t capacity) : EvictionPolicy(capacity, "fifo") {
  live_.reserve(capacity);
}

void FifoPolicy::EvictOldest() {
  while (!queue_.empty()) {
    const auto [id, generation] = queue_.front();
    queue_.pop_front();
    const auto it = live_.find(id);
    if (it == live_.end() || it->second != generation) {
      continue;  // stale record (removed earlier)
    }
    live_.erase(it);
    NotifyEvict(id);
    return;
  }
  QDLP_CHECK(false);  // eviction requested from an empty cache
}

bool FifoPolicy::OnAccess(ObjectId id) {
  if (live_.contains(id)) {
    return true;
  }
  if (live_.size() == capacity()) {
    EvictOldest();
  }
  const uint64_t generation = next_generation_++;
  queue_.emplace_back(id, generation);
  live_[id] = generation;
  NotifyInsert(id);
  return false;
}

bool FifoPolicy::Remove(ObjectId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) {
    return false;
  }
  live_.erase(it);  // the queue record goes stale
  NotifyEvict(id);
  return true;
}

}  // namespace qdlp
