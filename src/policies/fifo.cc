#include "src/policies/fifo.h"

namespace qdlp {

FifoPolicy::FifoPolicy(size_t capacity) : EvictionPolicy(capacity, "fifo") {
  queue_.Reserve(capacity);
  // +1: a miss emplaces the newcomer before evicting the victim, so the
  // index transiently holds capacity + 1 entries.
  index_.Reserve(capacity + 1);
}

void FifoPolicy::CheckInvariants() const {
  QDLP_CHECK(index_.size() <= capacity());
  QDLP_CHECK(queue_.size() == index_.size());
  queue_.ForEach([&](uint32_t slot, ObjectId id) {
    const uint32_t* indexed = index_.Find(id);
    QDLP_CHECK(indexed != nullptr);
    QDLP_CHECK(*indexed == slot);
  });
  queue_.CheckInvariants();
  index_.CheckInvariants();
}

void FifoPolicy::EvictOldest() {
  QDLP_CHECK(!queue_.empty());
  const uint32_t slot = queue_.front();
  const ObjectId victim = queue_[slot];
  queue_.Erase(slot);
  index_.Erase(victim);
  NotifyEvict(victim);
}

bool FifoPolicy::OnAccess(ObjectId id) {
  const auto [slot, inserted] = index_.Emplace(id);
  if (!inserted) {
    return true;
  }
  // Evict after the emplace (one probe covers lookup + insert); Erase never
  // relocates live index slots, so `slot` stays valid across it.
  if (index_.size() > capacity()) {
    EvictOldest();
  }
  *slot = queue_.PushBack(id);
  NotifyInsert(id);
  return false;
}

bool FifoPolicy::Remove(ObjectId id) {
  const uint32_t* slot = index_.Find(id);
  if (slot == nullptr) {
    return false;
  }
  queue_.Erase(*slot);
  index_.Erase(id);
  NotifyEvict(id);
  return true;
}

}  // namespace qdlp
