#include "src/policies/fifo.h"

namespace qdlp {

// Compile both index backings once here rather than in every TU.
template class BasicFifoPolicy<FlatIndexFactory>;
template class BasicFifoPolicy<DenseIndexFactory>;

}  // namespace qdlp
