#include "src/policies/clock.h"

#include <string>

namespace qdlp {

namespace {
std::string ClockName(int bits) {
  if (bits == 1) {
    return "fifo-reinsertion";
  }
  return "clock" + std::to_string(bits);
}
}  // namespace

ClockPolicy::ClockPolicy(size_t capacity, int bits)
    : EvictionPolicy(capacity, ClockName(bits)), bits_(bits) {
  QDLP_CHECK(bits >= 1 && bits <= 8);
  QDLP_CHECK(capacity <= 0xFFFFFFFFu);  // ring slots are indexed by uint32
  max_counter_ = static_cast<uint8_t>((1u << bits) - 1);
  ring_.reserve(capacity);
  index_.Reserve(capacity);
}

void ClockPolicy::CheckInvariants() const {
  QDLP_CHECK(ring_.size() <= capacity());
  QDLP_CHECK(index_.size() <= capacity());
  size_t occupied = 0;
  for (size_t slot = 0; slot < ring_.size(); ++slot) {
    if (!ring_[slot].occupied) {
      continue;
    }
    ++occupied;
    QDLP_CHECK(ring_[slot].counter <= max_counter_);
    const uint32_t* indexed = index_.Find(ring_[slot].id);
    QDLP_CHECK(indexed != nullptr);
    QDLP_CHECK(*indexed == slot);
  }
  QDLP_CHECK(occupied == index_.size());
  for (const size_t slot : free_slots_) {
    QDLP_CHECK(slot < ring_.size());
    QDLP_CHECK(!ring_[slot].occupied);
  }
  index_.CheckInvariants();
}

bool ClockPolicy::OnAccess(ObjectId id) {
  const uint32_t* indexed = index_.Find(id);
  if (indexed != nullptr) {
    Slot& slot = ring_[*indexed];
    if (slot.counter < max_counter_) {
      ++slot.counter;
    }
    return true;
  }
  if (!free_slots_.empty()) {
    // Reuse a slot vacated by Remove().
    const size_t slot_index = free_slots_.back();
    free_slots_.pop_back();
    ring_[slot_index] = Slot{id, 0, true};
    index_[id] = static_cast<uint32_t>(slot_index);
    NotifyInsert(id);
    return false;
  }
  if (ring_.size() < capacity()) {
    // Still filling: append in FIFO order.
    index_[id] = static_cast<uint32_t>(ring_.size());
    ring_.push_back(Slot{id, 0, true});
    NotifyInsert(id);
    return false;
  }
  const size_t slot_index = EvictOne();
  ring_[slot_index] = Slot{id, 0, true};
  index_[id] = static_cast<uint32_t>(slot_index);
  NotifyInsert(id);
  // Advance past the slot we just filled so the new object gets a full lap
  // before it is considered for eviction, matching FIFO insertion order.
  hand_ = (slot_index + 1) % ring_.size();
  return false;
}

size_t ClockPolicy::EvictOne() {
  while (true) {
    Slot& slot = ring_[hand_];
    if (!slot.occupied) {
      hand_ = (hand_ + 1) % ring_.size();
      continue;
    }
    if (slot.counter == 0) {
      index_.Erase(slot.id);
      slot.occupied = false;
      NotifyEvict(slot.id);
      return hand_;
    }
    --slot.counter;
    hand_ = (hand_ + 1) % ring_.size();
  }
}

bool ClockPolicy::Remove(ObjectId id) {
  const uint32_t* indexed = index_.Find(id);
  if (indexed == nullptr) {
    return false;
  }
  const size_t slot_index = *indexed;
  ring_[slot_index].occupied = false;
  free_slots_.push_back(slot_index);
  index_.Erase(id);
  NotifyEvict(id);
  return true;
}

}  // namespace qdlp
