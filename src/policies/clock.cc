#include "src/policies/clock.h"

namespace qdlp {

// Compile both index backings once here rather than in every TU.
template class BasicClockPolicy<FlatIndexFactory>;
template class BasicClockPolicy<DenseIndexFactory>;

}  // namespace qdlp
