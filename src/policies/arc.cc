#include "src/policies/arc.h"

#include <algorithm>

namespace qdlp {

namespace {
std::string ArcName(double adaptation_rate, double fixed_p_fraction) {
  if (fixed_p_fraction >= 0.0) {
    return "arc-fixed";
  }
  if (adaptation_rate != 1.0) {
    return "arc-slow";
  }
  return "arc";
}
}  // namespace

ArcPolicy::ArcPolicy(size_t capacity, double adaptation_rate,
                     double fixed_p_fraction)
    : EvictionPolicy(capacity, ArcName(adaptation_rate, fixed_p_fraction)),
      adaptation_rate_(adaptation_rate) {
  QDLP_CHECK(adaptation_rate > 0.0);
  if (fixed_p_fraction >= 0.0) {
    QDLP_CHECK(fixed_p_fraction <= 1.0);
    adaptive_ = false;
    p_ = fixed_p_fraction * static_cast<double>(capacity);
  }
  index_.reserve(capacity * 2);
}

bool ArcPolicy::Contains(ObjectId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  return it->second.list == ListId::kT1 || it->second.list == ListId::kT2;
}

void ArcPolicy::CheckInvariants() const {
  const size_t c = capacity();
  QDLP_CHECK(t1_.size() + t2_.size() <= c);
  QDLP_CHECK(t1_.size() + b1_.size() <= c);
  QDLP_CHECK(t1_.size() + t2_.size() + b1_.size() + b2_.size() <= 2 * c);
  QDLP_CHECK(p_ >= 0.0 && p_ <= static_cast<double>(c));
  QDLP_CHECK(index_.size() ==
             t1_.size() + t2_.size() + b1_.size() + b2_.size());
  // Every list member is indexed under the matching list id with a valid
  // iterator; index_.size() matching the sum above rules out duplicates.
  const auto check_list = [&](const std::list<ObjectId>& list, ListId id) {
    for (auto it = list.begin(); it != list.end(); ++it) {
      const auto entry = index_.find(*it);
      QDLP_CHECK(entry != index_.end());
      QDLP_CHECK(entry->second.list == id);
      QDLP_CHECK(entry->second.position == it);
    }
  };
  check_list(t1_, ListId::kT1);
  check_list(t2_, ListId::kT2);
  check_list(b1_, ListId::kB1);
  check_list(b2_, ListId::kB2);
}

std::list<ObjectId>& ArcPolicy::ListFor(ListId list) {
  switch (list) {
    case ListId::kT1:
      return t1_;
    case ListId::kT2:
      return t2_;
    case ListId::kB1:
      return b1_;
    case ListId::kB2:
      return b2_;
  }
  QDLP_CHECK(false);
  return t1_;
}

void ArcPolicy::MoveTo(ObjectId id, ListId target) {
  auto& entry = index_.at(id);
  ListFor(entry.list).erase(entry.position);
  auto& dest = ListFor(target);
  dest.push_front(id);
  entry.list = target;
  entry.position = dest.begin();
}

void ArcPolicy::RemoveFrom(ObjectId id) {
  auto it = index_.find(id);
  QDLP_DCHECK(it != index_.end());
  ListFor(it->second.list).erase(it->second.position);
  index_.erase(it);
}

void ArcPolicy::Replace(bool requested_in_b2) {
  const size_t t1_size = t1_.size();
  if (t1_size > 0 &&
      (static_cast<double>(t1_size) > p_ ||
       (requested_in_b2 && static_cast<double>(t1_size) == p_))) {
    // Demote the LRU of T1 into ghost B1.
    const ObjectId victim = t1_.back();
    NotifyDemote(victim);
    NotifyEvict(victim);
    MoveTo(victim, ListId::kB1);
  } else {
    const ObjectId victim = t2_.back();
    NotifyDemote(victim);
    NotifyEvict(victim);
    MoveTo(victim, ListId::kB2);
  }
}

bool ArcPolicy::OnAccess(ObjectId id) {
  const size_t c = capacity();
  const auto it = index_.find(id);
  if (it != index_.end()) {
    switch (it->second.list) {
      case ListId::kT1:
      case ListId::kT2:
        // Case I: hit — promote to the MRU of T2.
        MoveTo(id, ListId::kT2);
        NotifyPromote(id);
        return true;
      case ListId::kB1: {
        // Case II: ghost hit in B1 — grow the recency target.
        const double delta =
            b1_.size() >= b2_.size()
                ? 1.0
                : static_cast<double>(b2_.size()) / static_cast<double>(b1_.size());
        if (adaptive_) {
          p_ = std::min(p_ + delta * adaptation_rate_, static_cast<double>(c));
        }
        NotifyGhostHit(id);
        Replace(/*requested_in_b2=*/false);
        MoveTo(id, ListId::kT2);
        NotifyInsert(id);
        return false;
      }
      case ListId::kB2: {
        // Case III: ghost hit in B2 — grow the frequency target.
        const double delta =
            b2_.size() >= b1_.size()
                ? 1.0
                : static_cast<double>(b1_.size()) / static_cast<double>(b2_.size());
        if (adaptive_) {
          p_ = std::max(p_ - delta * adaptation_rate_, 0.0);
        }
        NotifyGhostHit(id);
        Replace(/*requested_in_b2=*/true);
        MoveTo(id, ListId::kT2);
        NotifyInsert(id);
        return false;
      }
    }
  }
  // Case IV: complete miss.
  const size_t l1 = t1_.size() + b1_.size();
  const size_t l2 = t2_.size() + b2_.size();
  if (l1 == c) {
    if (t1_.size() < c) {
      // Delete the LRU ghost in B1, then replace.
      RemoveFrom(b1_.back());
      Replace(/*requested_in_b2=*/false);
    } else {
      // B1 is empty and T1 is full: evict the LRU of T1 outright.
      const ObjectId victim = t1_.back();
      NotifyEvict(victim);
      RemoveFrom(victim);
    }
  } else if (l1 < c && l1 + l2 >= c) {
    if (l1 + l2 == 2 * c) {
      RemoveFrom(b2_.back());
    }
    Replace(/*requested_in_b2=*/false);
  }
  t1_.push_front(id);
  index_[id] = Entry{ListId::kT1, t1_.begin()};
  NotifyInsert(id);
  return false;
}

}  // namespace qdlp
