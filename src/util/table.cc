#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/util/check.h"

namespace qdlp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  QDLP_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtPercent(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << " " << row[i];
      for (size_t pad = row[i].size(); pad < widths[i]; ++pad) {
        os << ' ';
      }
      os << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) {
        os << '-';
      }
      os << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

void TablePrinter::MaybeExportCsv(const std::string& basename) const {
  const char* dir = std::getenv("QDLP_CSV");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + basename + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[qdlp] could not write %s\n", path.c_str());
    return;
  }
  WriteCsv(out);
}

void TablePrinter::WriteCsv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      // Our cells never contain commas or quotes; keep it simple.
      os << row[i];
    }
    os << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) {
    write_row(row);
  }
}

}  // namespace qdlp
