// Zipf-distributed sampling over {0, ..., n-1}.
//
// Cache workloads overwhelmingly follow Zipf popularity (Breslau et al.;
// confirmed for modern web caches by Yang et al. OSDI'20), so the trace
// generators in src/trace lean on this sampler. Two implementations:
//
//  * ZipfSampler — rejection-inversion (Hörmann & Derflinger 1996), O(1) per
//    sample independent of n, exact for any skew > 0. This is the default.
//  * ZipfTable — cumulative-table inversion, O(log n) per sample, used as a
//    test oracle for the rejection sampler on small n.
//
// Rank 0 is the most popular object. skew (alpha) is the Zipf exponent:
// P(rank k) ∝ 1 / (k+1)^alpha.

#ifndef QDLP_SRC_UTIL_ZIPF_H_
#define QDLP_SRC_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace qdlp {

class ZipfSampler {
 public:
  // n must be >= 1. skew must be > 0; skew == 1 is handled exactly.
  ZipfSampler(uint64_t n, double skew);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double skew_;
  double h_x1_;        // H(1.5) - 1
  double h_n_;         // H(n + 0.5)
  double s_;           // 2 - HInverse(H(2.5) - 2^-skew)
};

// Exact table-based sampler; O(n) memory. Oracle for tests and fine for
// small n in examples.
class ZipfTable {
 public:
  ZipfTable(uint64_t n, double skew);

  uint64_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_ZIPF_H_
