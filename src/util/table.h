// Plain-text table rendering and CSV output for the experiment harnesses.
//
// Every bench binary prints the rows of the paper table/figure it
// regenerates; TablePrinter keeps those reports aligned and greppable, and
// WriteCsv lets users re-plot results with external tooling.

#ifndef QDLP_SRC_UTIL_TABLE_H_
#define QDLP_SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace qdlp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 4);
  static std::string FmtPercent(double v, int precision = 1);

  void Print(std::ostream& os) const;
  // Renders the same content as comma-separated values.
  void WriteCsv(std::ostream& os) const;
  // When the QDLP_CSV environment variable names a directory, also writes
  // this table to <dir>/<basename>.csv (harnesses call this after Print so
  // results can be re-plotted externally). No-op otherwise.
  void MaybeExportCsv(const std::string& basename) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_TABLE_H_
