// Count-Min Sketch with conservative update and periodic halving ("aging"),
// 4-bit counters packed two per byte — the frequency sketch of TinyLFU
// (Einziger, Friedman & Manes, ACM TOS'17).
//
// Estimate() never under-counts (within the aging window); over-counting is
// bounded by the sketch width. Aging halves every counter once the number of
// recorded increments reaches the configured sample size, giving the
// sliding-window frequency semantics W-TinyLFU relies on.

#ifndef QDLP_SRC_UTIL_COUNT_MIN_SKETCH_H_
#define QDLP_SRC_UTIL_COUNT_MIN_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdlp {

class CountMinSketch {
 public:
  // `expected_items`: working-set size the sketch should resolve (the cache
  // capacity, for TinyLFU). `sample_factor`: increments before aging, as a
  // multiple of expected_items (TinyLFU uses ~10x).
  explicit CountMinSketch(size_t expected_items, size_t sample_factor = 10);

  // Increments key's counters (conservative update), saturating at 15.
  // Triggers aging when the sample budget is exhausted.
  void Increment(uint64_t key);

  // Point estimate in [0, 15].
  uint32_t Estimate(uint64_t key) const;

  uint64_t aging_count() const { return agings_; }
  size_t counter_count() const { return counters_.size() * 2; }

 private:
  static constexpr int kRows = 4;
  static constexpr uint32_t kMaxCount = 15;

  size_t IndexOf(uint64_t key, int row) const;
  uint32_t CellGet(size_t index) const;
  void CellSet(size_t index, uint32_t value);
  void Age();

  size_t row_cells_;  // cells per row (power of two)
  std::vector<uint8_t> counters_;  // two 4-bit cells per byte, kRows rows
  uint64_t increments_ = 0;
  uint64_t sample_size_;
  uint64_t agings_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_COUNT_MIN_SKETCH_H_
