// Deterministic, fast pseudo-random number generation.
//
// All stochastic components in qdlp (trace generators, sampled-eviction
// policies, benchmark workloads) draw from Rng so that every experiment is
// reproducible from a single seed. Rng is xoshiro256**, seeded via
// SplitMix64 so that nearby seeds give independent streams.

#ifndef QDLP_SRC_UTIL_RANDOM_H_
#define QDLP_SRC_UTIL_RANDOM_H_

#include <cstdint>

namespace qdlp {

// Scrambles a 64-bit value; also usable as a hash for 64-bit keys.
// This is the SplitMix64 finalizer (public domain, Vigna).
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** 1.0 (public domain, Blackman & Vigna). Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9d8a7654321fedcbULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      sm += 0x9e3779b97f4a7c15ULL;
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // reduction; the modulo bias is at most 2^-64 * bound and is ignored.
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Uniform double in [lo, hi).
  double NextRange(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Geometric-ish: exponentially distributed with the given mean, as uint64.
  uint64_t NextExponential(double mean);

  // Standard UniformRandomBitGenerator interface so Rng works with <random>
  // and std::shuffle.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_RANDOM_H_
