// Fixed-size worker pool used by the sweep runner to replay many traces in
// parallel. Tasks are void() closures; Wait() blocks until the queue drains.
//
// Exception-safe: a task that throws neither terminates the worker nor
// wedges Wait(). The first exception is captured and rethrown from the next
// Wait() call (after the queue drains); later exceptions from the same batch
// are dropped. The pool stays usable after the rethrow.

#ifndef QDLP_SRC_UTIL_THREAD_POOL_H_
#define QDLP_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qdlp {

class ThreadPool {
 public:
  // num_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  // Blocks until every submitted task has finished executing. If any task
  // threw since the last Wait(), rethrows the first captured exception
  // (clearing it, so the pool remains usable).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;  // first task exception since last Wait()
  std::vector<std::thread> workers_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_THREAD_POOL_H_
