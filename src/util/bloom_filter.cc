#include "src/util/bloom_filter.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace qdlp {

BloomFilter::BloomFilter(size_t expected_items) {
  QDLP_CHECK(expected_items >= 1);
  // ~8.5 bits/item gives ~3% FPR at k=4; round words up to a power of two so
  // ProbeIndex can mask instead of mod.
  size_t words = (expected_items * 9 + 63) / 64;
  size_t pow2 = 1;
  while (pow2 < words) {
    pow2 <<= 1;
  }
  bits_.assign(pow2, 0);
}

size_t BloomFilter::ProbeIndex(uint64_t key, int probe) const {
  const uint64_t h1 = SplitMix64(key);
  const uint64_t h2 = SplitMix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  const uint64_t h = h1 + static_cast<uint64_t>(probe) * h2;
  return static_cast<size_t>(h) & (bits_.size() * 64 - 1);
}

void BloomFilter::Insert(uint64_t key) {
  for (int probe = 0; probe < kProbes; ++probe) {
    const size_t index = ProbeIndex(key, probe);
    bits_[index >> 6] |= 1ULL << (index & 63);
  }
  ++inserted_;
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (int probe = 0; probe < kProbes; ++probe) {
    const size_t index = ProbeIndex(key, probe);
    if ((bits_[index >> 6] & (1ULL << (index & 63))) == 0) {
      return false;
    }
  }
  return true;
}

void BloomFilter::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

}  // namespace qdlp
