// Process-wide dense thread ordinal: the first thread to ask gets 0, the
// next 1, and so on, cached thread-locally. Subsystems that stripe per-thread
// state (MPSC insert buffers, telemetry counter cells) use it to give each
// thread a stable private stripe without any registration protocol.

#ifndef QDLP_SRC_UTIL_THREAD_ORDINAL_H_
#define QDLP_SRC_UTIL_THREAD_ORDINAL_H_

#include <atomic>
#include <cstdint>

namespace qdlp {

inline uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_THREAD_ORDINAL_H_
