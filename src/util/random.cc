#include "src/util/random.h"

#include <cmath>

namespace qdlp {

uint64_t Rng::NextExponential(double mean) {
  // Inverse-CDF sampling; clamp the uniform away from 0 to keep log finite.
  double u = NextDouble();
  if (u < 1e-18) {
    u = 1e-18;
  }
  const double x = -mean * std::log(u);
  return x >= 0 ? static_cast<uint64_t>(x) : 0;
}

}  // namespace qdlp
