#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace qdlp {

// Rejection-inversion sampling for the Zipf distribution, following
// Hörmann & Derflinger, "Rejection-inversion to generate variates from
// monotone discrete distributions", ACM TOMACS 1996. The same scheme is used
// by Apache Commons Math and YCSB-style generators.

ZipfSampler::ZipfSampler(uint64_t n, double skew) : n_(n), skew_(skew) {
  QDLP_CHECK(n >= 1);
  QDLP_CHECK(skew > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::exp(-skew_ * std::log(2.0)));
}

// H(x) = integral of 1/t^skew from 1 to x (plus a constant), extended to the
// skew == 1 (log) case.
double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  if (std::abs(skew_ - 1.0) < 1e-12) {
    return log_x;
  }
  return std::expm1((1.0 - skew_) * log_x) / (1.0 - skew_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(skew_ - 1.0) < 1e-12) {
    return std::exp(x);
  }
  return std::exp(std::log1p(x * (1.0 - skew_)) / (1.0 - skew_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 0;
  }
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    if (k - x <= s_ || u >= H(k + 0.5) - std::exp(-skew_ * std::log(k))) {
      // Convert 1-based rank to 0-based id.
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

ZipfTable::ZipfTable(uint64_t n, double skew) {
  QDLP_CHECK(n >= 1);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) {
    v /= acc;
  }
}

uint64_t ZipfTable::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace qdlp
