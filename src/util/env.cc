#include "src/util/env.h"

#include <cstdlib>

namespace qdlp {

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) {
    return fallback;
  }
  return value;
}

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return static_cast<int64_t>(value);
}

std::string GetEnvString(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') {
    return fallback;
  }
  return raw;
}

}  // namespace qdlp
