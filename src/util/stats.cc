#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void PercentileSummary::AddAll(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double PercentileSummary::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double PercentileSummary::Quantile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (q <= 0.0) {
    return values_.front();
  }
  if (q >= 1.0) {
    return values_.back();
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) {
    return values_.back();
  }
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

void PercentileSummary::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

}  // namespace qdlp
