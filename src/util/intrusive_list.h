// Slab-backed intrusive doubly-linked list.
//
// All nodes live in one contiguous std::vector slab and are addressed by
// dense 32-bit slot ids instead of pointers/iterators, so a list operation
// never allocates (after Reserve) and never invalidates a slot id held by an
// external index. This is the hot-path replacement for std::list in the
// queue-based policies: a FIFO/LRU/SIEVE entry costs sizeof(T) + 8 bytes in
// one slab instead of a malloc'd 3-pointer node, and splices touch adjacent
// cache lines instead of chasing heap pointers.
//
// Erased slots go on an internal free list and are reused by the next push,
// so the slab never grows past the high-water mark of live nodes. Slot ids
// are stable for the lifetime of their node (push -> erase); the slab itself
// may reallocate when growing, so raw T* pointers must not be cached across
// pushes — hold SlotId and use operator[].

#ifndef QDLP_SRC_UTIL_INTRUSIVE_LIST_H_
#define QDLP_SRC_UTIL_INTRUSIVE_LIST_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace qdlp {

template <typename T>
class IntrusiveList {
 public:
  using SlotId = uint32_t;
  static constexpr SlotId kNullSlot = 0xFFFFFFFFu;

  IntrusiveList() = default;

  // Pre-sizes the slab for `n` live nodes.
  void Reserve(size_t n) { nodes_.reserve(n); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  SlotId front() const { return head_; }
  SlotId back() const { return tail_; }

  // Neighbor toward the back / toward the front; kNullSlot past the ends.
  SlotId Next(SlotId slot) const { return nodes_[slot].next; }
  SlotId Prev(SlotId slot) const { return nodes_[slot].prev; }

  T& operator[](SlotId slot) { return nodes_[slot].value; }
  const T& operator[](SlotId slot) const { return nodes_[slot].value; }

  SlotId PushFront(T value) {
    const SlotId slot = AllocateNode(std::move(value));
    LinkFront(slot);
    return slot;
  }

  SlotId PushBack(T value) {
    const SlotId slot = AllocateNode(std::move(value));
    LinkBack(slot);
    return slot;
  }

  // Unlinks `slot` and returns it to the free list. The slot id may be
  // reused by a later push; the caller must drop its copy.
  void Erase(SlotId slot) {
    Unlink(slot);
    nodes_[slot].next = free_head_;
    free_head_ = slot;
    --size_;
  }

  void MoveToFront(SlotId slot) {
    if (slot == head_) {
      return;
    }
    Unlink(slot);
    LinkFront(slot);
  }

  void MoveToBack(SlotId slot) {
    if (slot == tail_) {
      return;
    }
    Unlink(slot);
    LinkBack(slot);
  }

  // Visits nodes front-to-back as fn(SlotId, const T&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (SlotId slot = head_; slot != kNullSlot; slot = nodes_[slot].next) {
      fn(slot, nodes_[slot].value);
    }
  }

  // Structural self-check: both traversal directions agree with size(), and
  // live plus free nodes account for the whole slab. O(slab size).
  void CheckInvariants() const {
    size_t forward = 0;
    SlotId prev = kNullSlot;
    for (SlotId slot = head_; slot != kNullSlot; slot = nodes_[slot].next) {
      QDLP_CHECK(slot < nodes_.size());
      QDLP_CHECK(nodes_[slot].prev == prev);
      prev = slot;
      ++forward;
      QDLP_CHECK(forward <= nodes_.size());
    }
    QDLP_CHECK(prev == tail_);
    QDLP_CHECK(forward == size_);
    size_t free_count = 0;
    for (SlotId slot = free_head_; slot != kNullSlot;
         slot = nodes_[slot].next) {
      QDLP_CHECK(slot < nodes_.size());
      ++free_count;
      QDLP_CHECK(free_count <= nodes_.size());
    }
    QDLP_CHECK(size_ + free_count == nodes_.size());
  }

  // Bytes held by the slab (capacity, not just live nodes) — used for the
  // bytes/object accounting in bench JSON output and docs/PERFORMANCE.md.
  size_t MemoryBytes() const { return nodes_.capacity() * sizeof(Node); }

 private:
  struct Node {
    T value;
    SlotId prev;
    SlotId next;  // doubles as the free-list link while the slot is free
  };

  SlotId AllocateNode(T value) {
    ++size_;
    if (free_head_ != kNullSlot) {
      const SlotId slot = free_head_;
      free_head_ = nodes_[slot].next;
      nodes_[slot].value = std::move(value);
      return slot;
    }
    QDLP_CHECK(nodes_.size() < kNullSlot);
    nodes_.push_back(Node{std::move(value), kNullSlot, kNullSlot});
    return static_cast<SlotId>(nodes_.size() - 1);
  }

  void LinkFront(SlotId slot) {
    nodes_[slot].prev = kNullSlot;
    nodes_[slot].next = head_;
    if (head_ != kNullSlot) {
      nodes_[head_].prev = slot;
    } else {
      tail_ = slot;
    }
    head_ = slot;
  }

  void LinkBack(SlotId slot) {
    nodes_[slot].prev = tail_;
    nodes_[slot].next = kNullSlot;
    if (tail_ != kNullSlot) {
      nodes_[tail_].next = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
  }

  void Unlink(SlotId slot) {
    Node& node = nodes_[slot];
    if (node.prev != kNullSlot) {
      nodes_[node.prev].next = node.next;
    } else {
      head_ = node.next;
    }
    if (node.next != kNullSlot) {
      nodes_[node.next].prev = node.prev;
    } else {
      tail_ = node.prev;
    }
  }

  std::vector<Node> nodes_;
  SlotId head_ = kNullSlot;
  SlotId tail_ = kNullSlot;
  SlotId free_head_ = kNullSlot;
  size_t size_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_INTRUSIVE_LIST_H_
