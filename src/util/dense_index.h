// Direct-indexed policy index over a dense id universe.
//
// When a trace has been remapped to dense u32 ids (src/trace/dense_trace),
// the id space is exactly [0, num_objects), so the open-addressing probe of
// FlatMap collapses to one array access: slot = slots_[id]. No hashing, no
// probe chain, no tombstones — the whole index is a flat slot array of the
// universe size, and membership is a presence flag in the slot itself (one
// cache line touched per lookup, same as FlatMap's best case and strictly
// better than its miss case).
//
// DenseIndex implements the subset of the FlatMap API the policies use
// (Find/Emplace/Erase/Contains/Reserve/CheckInvariants/MemoryBytes/
// Prefetch), so the core policies can be instantiated against either
// backing through an index factory (below). Memory is O(universe) per
// instance rather than O(capacity): the batched sweep engine only selects
// this backing when the universe is small enough for that to be a win
// (BatchReplayOptions::max_dense_universe).

#ifndef QDLP_SRC_UTIL_DENSE_INDEX_H_
#define QDLP_SRC_UTIL_DENSE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/flat_map.h"
#include "src/util/prefetch.h"

namespace qdlp {

template <typename Value>
class DenseIndex {
 public:
  using Key = uint64_t;

  // Keys must lie in [0, universe). A universe of 0 is a valid degenerate
  // index that holds nothing (every Find misses, Emplace is illegal).
  explicit DenseIndex(uint64_t universe)
      : slots_(universe, Slot{Value{}, false}) {}

  // FlatMap-compatibility no-op: the slot array is always universe-sized.
  void Reserve(size_t n) { (void)n; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(Key key) const {
    return key < slots_.size() && slots_[key].present;
  }

  // Pointer to the mapped value, or nullptr. Unlike FlatMap, pointers stay
  // valid across inserts (the slot array never reallocates).
  Value* Find(Key key) {
    QDLP_DCHECK(key < slots_.size());
    Slot& slot = slots_[key];
    return slot.present ? &slot.value : nullptr;
  }
  const Value* Find(Key key) const {
    QDLP_DCHECK(key < slots_.size());
    const Slot& slot = slots_[key];
    return slot.present ? &slot.value : nullptr;
  }

  // Find-or-insert: returns the mapped value (default constructed when
  // absent) and whether it was inserted.
  std::pair<Value*, bool> Emplace(Key key) {
    QDLP_DCHECK(key < slots_.size());
    Slot& slot = slots_[key];
    if (slot.present) {
      return {&slot.value, false};
    }
    slot.value = Value{};
    slot.present = true;
    ++size_;
    return {&slot.value, true};
  }

  Value& operator[](Key key) { return *Emplace(key).first; }

  bool Erase(Key key) {
    QDLP_DCHECK(key < slots_.size());
    Slot& slot = slots_[key];
    if (!slot.present) {
      return false;
    }
    slot.present = false;
    slot.value = Value{};
    --size_;
    return true;
  }

  void Clear() {
    size_ = 0;
    for (Slot& slot : slots_) {
      slot.present = false;
      slot.value = Value{};
    }
  }

  // Visits entries as fn(Key, const Value&), in id order. O(universe).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t key = 0; key < slots_.size(); ++key) {
      if (slots_[key].present) {
        fn(static_cast<Key>(key), slots_[key].value);
      }
    }
  }

  // Pulls the slot of `key` toward the cache ahead of its lookup; the
  // batched replay pipeline issues this kBatchPrefetchDepth requests early.
  void Prefetch(Key key) const {
    if (key < slots_.size()) {
      PrefetchForRead(&slots_[key]);
    }
  }

  // Present-flag accounting matches the size counter. O(universe).
  void CheckInvariants() const {
    size_t present = 0;
    for (const Slot& slot : slots_) {
      if (slot.present) {
        ++present;
      }
    }
    QDLP_CHECK(present == size_);
  }

  // Bytes held by the slot array (bench bytes/object accounting). This is
  // universe-proportional — the price of probe-free lookups.
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

 private:
  struct Slot {
    Value value;
    bool present;
  };

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

// Index factories: the core policies are templates over one of these, so a
// single policy implementation serves both the general-purpose flat-map
// backing (arbitrary u64 ids) and the dense fast path (remapped traces).
// A factory builds every index a policy needs (value types differ between
// e.g. the FIFO slot index and the S3-FIFO entry index) from one shared
// configuration.

struct FlatIndexFactory {
  template <typename Value>
  using Index = FlatMap<Value>;

  template <typename Value>
  FlatMap<Value> Make() const {
    return FlatMap<Value>();
  }
};

struct DenseIndexFactory {
  // All ids fed to the policy must lie in [0, universe).
  uint64_t universe = 0;

  template <typename Value>
  using Index = DenseIndex<Value>;

  template <typename Value>
  DenseIndex<Value> Make() const {
    return DenseIndex<Value>(universe);
  }
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_DENSE_INDEX_H_
