// Small helpers for reading experiment-scale knobs from the environment.
//
// Bench binaries default to laptop-scale runs; QDLP_SCALE and friends let
// users trade runtime for fidelity without rebuilding.

#ifndef QDLP_SRC_UTIL_ENV_H_
#define QDLP_SRC_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace qdlp {

// Returns the value of `name` parsed as double, or `fallback` when unset or
// unparsable.
double GetEnvDouble(const std::string& name, double fallback);

// Returns the value of `name` parsed as int64, or `fallback`.
int64_t GetEnvInt(const std::string& name, int64_t fallback);

// Returns the raw value of `name`, or `fallback` when unset or empty.
std::string GetEnvString(const std::string& name, const std::string& fallback);

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_ENV_H_
