// Open-addressing hash map keyed by 64-bit object ids.
//
// The hot-path replacement for std::unordered_map<ObjectId, V> in the
// policy indexes: linear probing over one contiguous slot array (no
// per-node allocation, no bucket pointer chase, no prime modulo), keys
// scrambled with an invertible xor-multiply-xor mix so dense/strided id
// spaces still spread uniformly. A lookup is one multiply plus a short
// probe through adjacent cache lines.
//
// Deletion uses tombstones; an insert reuses the first tombstone on its
// probe path, so steady-state churn (erase victim + insert newcomer, the
// cache eviction pattern) recycles slots instead of growing the table.
// The table rehashes when full + tombstone slots exceed ~70% of capacity:
// in place (shedding the tombstone debt) while live entries fit in 5/9 of
// capacity, doubling only beyond that. Reserve(n) sizes for <= 50% live
// load, so a reserved table never grows — churn is absorbed by in-place
// rehashes whose cost amortizes to O(1) per erase against the >= 14% of
// capacity reclaimed each time.

#ifndef QDLP_SRC_UTIL_FLAT_MAP_H_
#define QDLP_SRC_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/prefetch.h"

namespace qdlp {

// Invertible xor-multiply-xor scramble (degski64). One multiply — cheaper
// than the SplitMix64 finalizer, and ample mixing for id-shaped keys.
inline uint64_t FlatMapHash(uint64_t x) {
  x ^= x >> 32;
  x *= 0xd6e8feb86659fd93ULL;
  x ^= x >> 32;
  return x;
}

template <typename Value>
class FlatMap {
 public:
  using Key = uint64_t;

  FlatMap() { Rehash(kMinCapacity); }

  // Pre-sizes the table so `n` live entries sit at <= 50% load: they fit
  // without rehashing, and under erase/insert churn every cleanup rehash
  // stays in place (see MaybeGrow), so the table never outgrows this.
  void Reserve(size_t n) {
    size_t capacity = kMinCapacity;
    while (capacity < 2 * n) {
      capacity *= 2;
    }
    if (capacity > slots_.size()) {
      Rehash(capacity);
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(Key key) const { return FindSlot(key) != kNotFound; }

  // Pointer to the mapped value, or nullptr. Invalidated by any mutation.
  Value* Find(Key key) {
    const size_t slot = FindSlot(key);
    return slot == kNotFound ? nullptr : &slots_[slot].value;
  }
  const Value* Find(Key key) const {
    const size_t slot = FindSlot(key);
    return slot == kNotFound ? nullptr : &slots_[slot].value;
  }

  // Find-or-insert in one probe: returns the mapped value (default
  // constructed when absent) and whether it was inserted. The pointer stays
  // valid across Erase of other keys (full slots never move) but not across
  // inserts, which may rehash.
  std::pair<Value*, bool> Emplace(Key key) {
    MaybeGrow();
    const size_t mask = slots_.size() - 1;
    size_t index = FlatMapHash(key) & mask;
    size_t first_tombstone = kNotFound;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.state == kFull && slot.key == key) {
        return {&slot.value, false};
      }
      if (slot.state == kEmpty) {
        size_t target = index;
        if (first_tombstone != kNotFound) {
          target = first_tombstone;
          --tombstones_;
        } else {
          ++used_;
        }
        Slot& dest = slots_[target];
        dest.key = key;
        dest.value = Value{};
        dest.state = kFull;
        ++size_;
        return {&dest.value, true};
      }
      if (slot.state == kTombstone && first_tombstone == kNotFound) {
        first_tombstone = index;
      }
      index = (index + 1) & mask;
    }
  }

  // Inserts default-constructed value if absent; returns the mapped value.
  Value& operator[](Key key) { return *Emplace(key).first; }

  // Pulls the probe-start slot of `key` toward the cache ahead of its
  // lookup. Only the first slot of the probe chain is prefetched: at the
  // load factors this table runs at (<= 70%), most probes terminate within
  // the first one or two adjacent slots, which share or neighbor that line.
  void Prefetch(Key key) const {
    PrefetchForRead(&slots_[FlatMapHash(key) & (slots_.size() - 1)]);
  }

  // Batched lookup: out[i] = Find(keys[i]) for i in [0, n), probing with a
  // software-prefetch pipeline so independent lookups overlap their memory
  // latency instead of serializing on it. Pointers obey the same
  // invalidation rule as Find (any mutation invalidates).
  void FindMany(const Key* keys, size_t n, Value** out) {
    for (size_t i = 0; i < n; ++i) {
      if (i + kBatchPrefetchDepth < n) {
        Prefetch(keys[i + kBatchPrefetchDepth]);
      }
      out[i] = Find(keys[i]);
    }
  }

  // Returns true if the key was present and has been removed.
  bool Erase(Key key) {
    const size_t slot = FindSlot(key);
    if (slot == kNotFound) {
      return false;
    }
    slots_[slot].state = kTombstone;
    slots_[slot].value = Value{};
    --size_;
    ++tombstones_;
    // Prune: a tombstone directly before an empty slot terminates no probe
    // chain, so the whole tombstone run ending here can revert to empty.
    // This keeps steady-state churn (erase + insert per eviction) from
    // accreting tombstones until a cleanup rehash.
    const size_t mask = slots_.size() - 1;
    if (slots_[(slot + 1) & mask].state == kEmpty) {
      size_t index = slot;
      while (slots_[index].state == kTombstone) {
        slots_[index].state = kEmpty;
        --used_;
        --tombstones_;
        index = (index - 1) & mask;
      }
    }
    return true;
  }

  void Clear() {
    size_ = 0;
    used_ = 0;
    tombstones_ = 0;
    for (Slot& slot : slots_) {
      slot.state = kEmpty;
      slot.value = Value{};
    }
  }

  // Visits entries in table order as fn(Key, const Value&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state == kFull) {
        fn(slot.key, slot.value);
      }
    }
  }

  // Structural self-check: slot-state accounting matches the counters and
  // every key is reachable from its home slot. O(table size).
  void CheckInvariants() const {
    QDLP_CHECK(!slots_.empty());
    QDLP_CHECK((slots_.size() & (slots_.size() - 1)) == 0);
    size_t full = 0;
    size_t tombstones = 0;
    for (const Slot& slot : slots_) {
      if (slot.state == kFull) {
        ++full;
      } else if (slot.state == kTombstone) {
        ++tombstones;
      }
    }
    QDLP_CHECK(full == size_);
    QDLP_CHECK(tombstones == tombstones_);
    QDLP_CHECK(full + tombstones == used_);
    QDLP_CHECK(used_ * kMaxLoadDen <= slots_.size() * kMaxLoadNum);
    for (const Slot& slot : slots_) {
      if (slot.state == kFull) {
        QDLP_CHECK(FindSlot(slot.key) != kNotFound);
      }
    }
  }

  // Bytes held by the slot array — used for the bytes/object accounting in
  // bench JSON output and docs/PERFORMANCE.md.
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

 private:
  enum State : uint8_t { kEmpty = 0, kTombstone = 1, kFull = 2 };

  struct Slot {
    Key key;
    Value value;
    State state;
  };

  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNotFound = ~size_t{0};
  // Max (full + tombstone) fraction before rehash: 7/10.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 10;
  // Max live fraction for an in-place (same capacity) rehash: 5/9. Above
  // it the table doubles; below it a cleanup reclaims at least
  // 7/10 - 5/9 ~ 14% of capacity, bounding rehashes per erase.
  static constexpr size_t kSameSizeNum = 5;
  static constexpr size_t kSameSizeDen = 9;

  size_t FindSlot(Key key) const {
    const size_t mask = slots_.size() - 1;
    size_t index = FlatMapHash(key) & mask;
    while (true) {
      const Slot& slot = slots_[index];
      if (slot.state == kFull && slot.key == key) {
        return index;
      }
      if (slot.state == kEmpty) {
        return kNotFound;
      }
      index = (index + 1) & mask;
    }
  }

  void MaybeGrow() {
    if ((used_ + 1) * kMaxLoadDen <= slots_.size() * kMaxLoadNum) {
      return;
    }
    // Doubling only when live entries need it; a table dominated by
    // tombstones is rebuilt at the same capacity to shed them.
    size_t capacity = slots_.size();
    if ((size_ + 1) * kSameSizeDen > capacity * kSameSizeNum) {
      capacity *= 2;
    }
    Rehash(capacity);
  }

  void Rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{0, Value{}, kEmpty});
    used_ = size_;
    tombstones_ = 0;
    const size_t mask = capacity - 1;
    for (Slot& slot : old) {
      if (slot.state != kFull) {
        continue;
      }
      size_t index = FlatMapHash(slot.key) & mask;
      while (slots_[index].state == kFull) {
        index = (index + 1) & mask;
      }
      slots_[index].key = slot.key;
      slots_[index].value = std::move(slot.value);
      slots_[index].state = kFull;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;        // kFull slots
  size_t used_ = 0;        // kFull + kTombstone slots
  size_t tombstones_ = 0;  // kTombstone slots
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_FLAT_MAP_H_
