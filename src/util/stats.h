// Summary statistics used by the simulator and the benchmark harnesses.

#ifndef QDLP_SRC_UTIL_STATS_H_
#define QDLP_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdlp {

// Single-pass accumulator: count, mean, variance (Welford), min, max.
class StreamingStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile summary of a sample set. Keeps all samples; intended for the
// per-trace result vectors in the experiment harnesses (thousands of values,
// not billions).
class PercentileSummary {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return values_.size(); }
  double Mean() const;
  // q in [0, 1]; linear interpolation between closest ranks. Returns 0 for an
  // empty summary.
  double Quantile(double q) const;
  double Min() const { return Quantile(0.0); }
  double Median() const { return Quantile(0.5); }
  double Max() const { return Quantile(1.0); }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_STATS_H_
