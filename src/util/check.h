// Lightweight assertion macros used across the qdlp libraries.
//
// Library code does not throw exceptions for control flow; recoverable
// conditions are reported through return values. QDLP_CHECK guards against
// programmer misuse (broken invariants, out-of-range configuration) and
// aborts with a message, in debug and release builds alike.

#ifndef QDLP_SRC_UTIL_CHECK_H_
#define QDLP_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define QDLP_CHECK(cond)                                                            \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "QDLP_CHECK failed: %s at %s:%d\n", #cond, __FILE__,     \
                   __LINE__);                                                       \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

#define QDLP_CHECK_MSG(cond, msg)                                                   \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "QDLP_CHECK failed: %s (%s) at %s:%d\n", #cond, msg,     \
                   __FILE__, __LINE__);                                             \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

// Checks that only run in debug builds; used on hot paths.
#ifdef NDEBUG
#define QDLP_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define QDLP_DCHECK(cond) QDLP_CHECK(cond)
#endif

#endif  // QDLP_SRC_UTIL_CHECK_H_
