// Portable software-prefetch shim for the batched replay hot loops.
//
// The sweep engine (src/sim/batch_replay) pipelines index probes: while
// request i is being applied to a policy, the probe target of request
// i + kBatchPrefetchDepth is prefetched, so the dependent load at its turn
// hits a line already in flight. Both index backings cooperate: FlatMap
// prefetches the probe-start slot of the hashed key, DenseIndex the
// directly-addressed slot.

#ifndef QDLP_SRC_UTIL_PREFETCH_H_
#define QDLP_SRC_UTIL_PREFETCH_H_

#include <cstddef>

namespace qdlp {

// Read-intent prefetch into all cache levels; a no-op where the builtin is
// unavailable. Policies mutate most probed slots (visited bits, counters),
// but prefetch-for-read avoids spurious exclusive-state traffic on the
// probe-only majority and still removes the memory latency from the miss.
inline void PrefetchForRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

// Lookahead distance of the batched-replay prefetch pipeline, in requests.
// Deep enough to cover DRAM latency at ~1-2 ns/request of policy work,
// shallow enough that the prefetched lines are still resident when their
// request comes up (see docs/PERFORMANCE.md, "Sweep engine" for tuning
// notes).
inline constexpr size_t kBatchPrefetchDepth = 8;

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_PREFETCH_H_
