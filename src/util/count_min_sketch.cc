#include "src/util/count_min_sketch.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace qdlp {

CountMinSketch::CountMinSketch(size_t expected_items, size_t sample_factor) {
  QDLP_CHECK(expected_items >= 1);
  QDLP_CHECK(sample_factor >= 1);
  size_t cells = 1;
  while (cells < expected_items) {
    cells <<= 1;
  }
  row_cells_ = std::max<size_t>(cells, 64);
  counters_.assign(kRows * row_cells_ / 2, 0);
  sample_size_ = static_cast<uint64_t>(expected_items) * sample_factor;
}

size_t CountMinSketch::IndexOf(uint64_t key, int row) const {
  const uint64_t h =
      SplitMix64(key + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(row + 1));
  return static_cast<size_t>(row) * row_cells_ +
         (static_cast<size_t>(h) & (row_cells_ - 1));
}

uint32_t CountMinSketch::CellGet(size_t index) const {
  const uint8_t byte = counters_[index >> 1];
  return (index & 1) != 0 ? byte >> 4 : byte & 0x0f;
}

void CountMinSketch::CellSet(size_t index, uint32_t value) {
  uint8_t& byte = counters_[index >> 1];
  if ((index & 1) != 0) {
    byte = static_cast<uint8_t>((byte & 0x0f) | (value << 4));
  } else {
    byte = static_cast<uint8_t>((byte & 0xf0) | value);
  }
}

void CountMinSketch::Increment(uint64_t key) {
  // Conservative update: only bump the cells currently at the minimum.
  uint32_t minimum = kMaxCount;
  size_t indices[kRows];
  for (int row = 0; row < kRows; ++row) {
    indices[row] = IndexOf(key, row);
    minimum = std::min(minimum, CellGet(indices[row]));
  }
  if (minimum < kMaxCount) {
    for (size_t index : indices) {
      if (CellGet(index) == minimum) {
        CellSet(index, minimum + 1);
      }
    }
  }
  if (++increments_ >= sample_size_) {
    Age();
  }
}

uint32_t CountMinSketch::Estimate(uint64_t key) const {
  uint32_t minimum = kMaxCount;
  for (int row = 0; row < kRows; ++row) {
    minimum = std::min(minimum, CellGet(IndexOf(key, row)));
  }
  return minimum;
}

void CountMinSketch::Age() {
  // Halve every 4-bit cell in place: clear each cell's low bit, then shift
  // the whole byte right (the bit shifted into the high cell's low position
  // was just cleared).
  for (uint8_t& byte : counters_) {
    byte = static_cast<uint8_t>((byte >> 1) & 0x77);
  }
  increments_ = 0;
  ++agings_;
}

}  // namespace qdlp
