// Blocked Bloom filter over 64-bit keys.
//
// Used as TinyLFU's "doorkeeper" (Einziger et al., ACM TOS'17): first-time
// objects set a bit instead of touching the frequency sketch, halving sketch
// traffic for one-hit wonders. Also usable standalone as the Bloom-filter
// admission policy the paper cites ([18, 54]: admit only on second request).

#ifndef QDLP_SRC_UTIL_BLOOM_FILTER_H_
#define QDLP_SRC_UTIL_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdlp {

class BloomFilter {
 public:
  // Sized for `expected_items` at roughly 3% false-positive rate with
  // k = 4 hash probes. expected_items must be >= 1.
  explicit BloomFilter(size_t expected_items);

  void Insert(uint64_t key);
  // May return true for keys never inserted (false positive), never false
  // for inserted keys (no false negatives until Clear()).
  bool MayContain(uint64_t key) const;
  // Resets all bits; used for periodic aging.
  void Clear();

  size_t bit_count() const { return bits_.size() * 64; }
  // Number of Insert() calls since the last Clear().
  size_t inserted() const { return inserted_; }

 private:
  static constexpr int kProbes = 4;

  // Derives the i-th probe position from two independent hash halves
  // (Kirsch-Mitzenmacher double hashing).
  size_t ProbeIndex(uint64_t key, int probe) const;

  std::vector<uint64_t> bits_;
  size_t inserted_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_UTIL_BLOOM_FILTER_H_
