// Synthetic workload generators.
//
// These substitute for the paper's 5307 production traces (see DESIGN.md §2).
// Each generator controls one of the access-pattern properties the paper
// identifies as causally relevant to the LP/QD results:
//
//  * GenerateZipf           — stationary Zipf popularity (Breslau et al.);
//                             baseline for every cache class.
//  * GeneratePopularityDecay— web/CDN behaviour: new objects keep arriving,
//                             popularity concentrates on recently-introduced
//                             objects, plus a one-hit-wonder stream (short-
//                             lived/versioned/dynamic data, §4).
//  * GenerateScanLoop       — block behaviour: Zipf hot set mixed with long
//                             sequential scans and loops (§4 cites scan/loop
//                             patterns in block workloads).
//  * GenerateHighReuseKv    — social-network / KV behaviour: small universe,
//                             high per-object reuse ("most objects are
//                             accessed more than once", §3 footnote 3).
//
// All generators are deterministic functions of their config (including the
// seed). Object ids are dense within a generator but namespaced per logical
// stream so that e.g. scan blocks never collide with hot-set blocks.

#ifndef QDLP_SRC_TRACE_GENERATORS_H_
#define QDLP_SRC_TRACE_GENERATORS_H_

#include <cstdint>
#include <string>

#include "src/trace/trace.h"

namespace qdlp {

struct ZipfTraceConfig {
  uint64_t num_requests = 100000;
  uint64_t num_objects = 20000;
  double skew = 1.0;
  uint64_t seed = 1;
};

Trace GenerateZipf(const ZipfTraceConfig& config);

struct PopularityDecayConfig {
  uint64_t num_requests = 100000;
  // A new object is introduced (and immediately requested) every
  // 1/introduction_rate requests on average.
  double introduction_rate = 0.12;
  // Requests target recently-introduced objects: the rank over objects in
  // reverse introduction order is Zipf(recency_skew). Higher skew means
  // faster popularity decay.
  double recency_skew = 0.8;
  // Fraction of requests that go to brand-new objects never requested again
  // (dynamic data, versioned names, short TTLs).
  double one_hit_wonder_fraction = 0.15;
  // Objects pre-populated before the trace starts (a warm corpus).
  uint64_t initial_objects = 2000;
  uint64_t seed = 1;
};

Trace GeneratePopularityDecay(const PopularityDecayConfig& config);

struct ScanLoopConfig {
  uint64_t num_requests = 100000;
  // Hot set accessed with Zipf popularity.
  uint64_t hot_objects = 8000;
  double hot_skew = 1.0;
  // Popularity decay: the hot set is a sliding window over a growing id
  // space; `hot_drift_objects` fresh ids enter (and as many old ids retire)
  // over the course of the trace. 0 = stationary popularity. The paper
  // observes popularity decay in block as well as web workloads (§3).
  uint64_t hot_drift_objects = 2000;
  // Probability that a request starts a sequential scan / a loop when in the
  // background (hot) state.
  double scan_start_probability = 0.002;
  double loop_start_probability = 0.001;
  // Scan length distribution: uniform in [min, max].
  uint64_t scan_length_min = 200;
  uint64_t scan_length_max = 3000;
  // Loops re-iterate a region of `loop_region` blocks `loop_iterations` times.
  uint64_t loop_region = 200;
  uint64_t loop_iterations = 4;
  // Fraction of scans that revisit a previously-scanned extent (re-scan),
  // rather than touching fresh blocks. Kept low: production block traces
  // rarely replay whole extents within cache-relevant windows, and high
  // values make every workload FIFO-optimal by construction.
  double rescan_fraction = 0.1;
  uint64_t seed = 1;
};

Trace GenerateScanLoop(const ScanLoopConfig& config);

// Abrupt working-set phases (Denning's program phases). The paper's
// footnote 2 conjectures this is the regime where CLOCK loses to LRU —
// virtual-memory workloads switch working sets suddenly, and CLOCK's
// retained reference bits delay adaptation — while noting that block/web
// cache workloads do NOT show such phases. This generator exists to test
// that conjecture; it is deliberately NOT part of the Table-1 registry.
struct PhaseChangeConfig {
  uint64_t num_requests = 100000;
  // Each phase draws Zipf(skew) from a disjoint working set of this size.
  uint64_t working_set = 2000;
  double skew = 0.8;
  // Requests per phase (phase switches are instantaneous).
  uint64_t phase_length = 10000;
  uint64_t seed = 1;
};

Trace GeneratePhaseChange(const PhaseChangeConfig& config);

struct HighReuseKvConfig {
  uint64_t num_requests = 100000;
  uint64_t num_objects = 6000;
  double skew = 1.2;
  // Extra temporal locality: with this probability a request repeats one of
  // the last `locality_window` distinct keys instead of sampling Zipf.
  double locality_probability = 0.2;
  uint64_t locality_window = 64;
  uint64_t seed = 1;
};

Trace GenerateHighReuseKv(const HighReuseKvConfig& config);

}  // namespace qdlp

#endif  // QDLP_SRC_TRACE_GENERATORS_H_
