// Request trace model.
//
// The paper studies eviction with uniform object sizes ("we assume objects to
// be uniform in size so that we can focus on the effect of access patterns"),
// so a trace is simply an ordered sequence of object ids. Traces carry enough
// metadata (dataset name, workload class, unique-object count) for the
// experiment harnesses to bucket results the way the paper's figures do
// (block vs web, cache size as a fraction of unique objects).

#ifndef QDLP_SRC_TRACE_TRACE_H_
#define QDLP_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qdlp {

using ObjectId = uint64_t;

// The paper groups its ten datasets into two classes for reporting.
enum class WorkloadClass {
  kBlock,
  kWeb,  // object/CDN and key-value caches
};

const char* WorkloadClassName(WorkloadClass cls);

struct Trace {
  std::string name;       // e.g. "msr/003"
  std::string dataset;    // e.g. "msr"
  WorkloadClass cls = WorkloadClass::kBlock;
  std::vector<ObjectId> requests;
  uint64_t num_objects = 0;  // number of distinct ids in `requests`

  size_t num_requests() const { return requests.size(); }
};

// Recomputes `num_objects` from the request stream.
uint64_t CountUniqueObjects(const std::vector<ObjectId>& requests);

// Descriptive statistics of a trace, used for the Table-1 style report and
// for validating that generated workloads have the intended character.
struct TraceStats {
  uint64_t num_requests = 0;
  uint64_t num_objects = 0;
  double mean_frequency = 0.0;      // requests per object
  double one_hit_wonder_ratio = 0.0;  // fraction of objects requested once
  double top_1pct_share = 0.0;      // share of requests to the top 1% objects
  double compulsory_miss_ratio = 0.0;  // num_objects / num_requests
  // Least-squares slope of log(frequency) vs log(rank) over the head of the
  // popularity distribution — the fitted Zipf exponent (0 when the trace is
  // too small to fit). Cache workloads typically land in [0.6, 1.3].
  double zipf_alpha = 0.0;
};

TraceStats ComputeTraceStats(const Trace& trace);

}  // namespace qdlp

#endif  // QDLP_SRC_TRACE_TRACE_H_
