#include "src/trace/generators.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace qdlp {

namespace {

// Id namespaces keep logical streams disjoint without coordination.
constexpr uint64_t kOneHitWonderBase = 1ULL << 40;
constexpr uint64_t kScanBase = 1ULL << 41;
constexpr uint64_t kLoopBase = 1ULL << 42;
constexpr uint64_t kDecayBase = 1ULL << 43;

}  // namespace

Trace GenerateZipf(const ZipfTraceConfig& config) {
  QDLP_CHECK(config.num_objects >= 1);
  Trace trace;
  trace.requests.reserve(config.num_requests);
  Rng rng(config.seed);
  ZipfSampler zipf(config.num_objects, config.skew);
  for (uint64_t i = 0; i < config.num_requests; ++i) {
    trace.requests.push_back(zipf.Sample(rng));
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

Trace GeneratePopularityDecay(const PopularityDecayConfig& config) {
  QDLP_CHECK(config.initial_objects >= 1);
  QDLP_CHECK(config.introduction_rate >= 0.0 && config.introduction_rate < 1.0);
  QDLP_CHECK(config.one_hit_wonder_fraction >= 0.0 &&
             config.one_hit_wonder_fraction < 1.0);
  Trace trace;
  trace.cls = WorkloadClass::kWeb;
  trace.requests.reserve(config.num_requests);
  Rng rng(config.seed);

  // Objects in introduction order; rank 0 of the recency-Zipf is the newest.
  std::vector<ObjectId> introduced;
  const uint64_t expected_new = static_cast<uint64_t>(
      static_cast<double>(config.num_requests) * config.introduction_rate);
  introduced.reserve(config.initial_objects + expected_new + 1);
  uint64_t next_id = kDecayBase;
  for (uint64_t i = 0; i < config.initial_objects; ++i) {
    introduced.push_back(next_id++);
  }

  // The sampler is sized for the final population; ranks beyond the current
  // population are rejected. Zipf mass concentrates at low ranks, so the
  // rejection rate is modest even early in the trace.
  ZipfSampler recency_zipf(config.initial_objects + expected_new + 1,
                           config.recency_skew);
  uint64_t one_hit_counter = kOneHitWonderBase;

  for (uint64_t i = 0; i < config.num_requests; ++i) {
    if (rng.NextBool(config.one_hit_wonder_fraction)) {
      trace.requests.push_back(one_hit_counter++);
      continue;
    }
    if (rng.NextBool(config.introduction_rate)) {
      introduced.push_back(next_id++);
      trace.requests.push_back(introduced.back());
      continue;
    }
    uint64_t rank = recency_zipf.Sample(rng);
    while (rank >= introduced.size()) {
      rank = recency_zipf.Sample(rng);
    }
    trace.requests.push_back(introduced[introduced.size() - 1 - rank]);
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

Trace GenerateScanLoop(const ScanLoopConfig& config) {
  QDLP_CHECK(config.hot_objects >= 1);
  QDLP_CHECK(config.scan_length_min >= 1);
  QDLP_CHECK(config.scan_length_max >= config.scan_length_min);
  Trace trace;
  trace.cls = WorkloadClass::kBlock;
  trace.requests.reserve(config.num_requests);
  Rng rng(config.seed);
  ZipfSampler hot_zipf(config.hot_objects, config.hot_skew);

  // Sliding hot window: rank 0 (most popular) maps to the newest id, and
  // the window advances by one id every `drift_interval` requests, retiring
  // the oldest ids. drift == 0 keeps popularity stationary.
  const uint64_t drift_interval =
      config.hot_drift_objects == 0
          ? 0
          : std::max<uint64_t>(1, config.num_requests / config.hot_drift_objects);
  uint64_t drift_base = 0;

  enum class State { kHot, kScan, kLoop };
  State state = State::kHot;

  // Scan bookkeeping. Fresh scans draw consecutive addresses from a bump
  // allocator; re-scans replay a previously-seen extent.
  struct Extent {
    uint64_t start;
    uint64_t length;
  };
  std::vector<Extent> past_scans;
  uint64_t scan_cursor = 0;
  uint64_t scan_remaining = 0;
  uint64_t next_scan_address = kScanBase;

  // Loop bookkeeping.
  uint64_t loop_start = 0;
  uint64_t loop_pos = 0;
  uint64_t loop_rounds_left = 0;
  uint64_t next_loop_address = kLoopBase;

  for (uint64_t i = 0; i < config.num_requests; ++i) {
    switch (state) {
      case State::kHot: {
        if (rng.NextBool(config.scan_start_probability)) {
          const uint64_t length =
              config.scan_length_min +
              rng.NextBounded(config.scan_length_max - config.scan_length_min + 1);
          if (!past_scans.empty() && rng.NextBool(config.rescan_fraction)) {
            const Extent& extent =
                past_scans[rng.NextBounded(past_scans.size())];
            scan_cursor = extent.start;
            scan_remaining = extent.length;
          } else {
            scan_cursor = next_scan_address;
            scan_remaining = length;
            past_scans.push_back({next_scan_address, length});
            next_scan_address += length;
          }
          state = State::kScan;
          // Fall through to emit the first scan request below on the next
          // loop iteration; emit a hot request now to keep the stream mixed.
        } else if (rng.NextBool(config.loop_start_probability)) {
          loop_start = next_loop_address;
          next_loop_address += config.loop_region;
          loop_pos = 0;
          loop_rounds_left = config.loop_iterations;
          state = State::kLoop;
        }
        if (drift_interval != 0 && i % drift_interval == 0 && i > 0) {
          ++drift_base;
        }
        const uint64_t rank = hot_zipf.Sample(rng);
        trace.requests.push_back(drift_base + (config.hot_objects - 1 - rank));
        break;
      }
      case State::kScan: {
        trace.requests.push_back(scan_cursor++);
        if (--scan_remaining == 0) {
          state = State::kHot;
        }
        break;
      }
      case State::kLoop: {
        trace.requests.push_back(loop_start + loop_pos);
        if (++loop_pos == config.loop_region) {
          loop_pos = 0;
          if (--loop_rounds_left == 0) {
            state = State::kHot;
          }
        }
        break;
      }
    }
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

Trace GeneratePhaseChange(const PhaseChangeConfig& config) {
  QDLP_CHECK(config.working_set >= 1);
  QDLP_CHECK(config.phase_length >= 1);
  Trace trace;
  trace.cls = WorkloadClass::kBlock;
  trace.requests.reserve(config.num_requests);
  Rng rng(config.seed);
  ZipfSampler zipf(config.working_set, config.skew);
  for (uint64_t i = 0; i < config.num_requests; ++i) {
    const uint64_t phase = i / config.phase_length;
    const uint64_t base = phase * config.working_set;
    trace.requests.push_back(base + zipf.Sample(rng));
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

Trace GenerateHighReuseKv(const HighReuseKvConfig& config) {
  QDLP_CHECK(config.num_objects >= 1);
  QDLP_CHECK(config.locality_window >= 1);
  Trace trace;
  trace.cls = WorkloadClass::kWeb;
  trace.requests.reserve(config.num_requests);
  Rng rng(config.seed);
  ZipfSampler zipf(config.num_objects, config.skew);

  std::vector<ObjectId> recent(config.locality_window, 0);
  size_t recent_filled = 0;
  size_t recent_next = 0;

  for (uint64_t i = 0; i < config.num_requests; ++i) {
    ObjectId id;
    if (recent_filled > 0 && rng.NextBool(config.locality_probability)) {
      id = recent[rng.NextBounded(recent_filled)];
    } else {
      id = zipf.Sample(rng);
    }
    recent[recent_next] = id;
    recent_next = (recent_next + 1) % config.locality_window;
    recent_filled = std::min(recent_filled + 1, recent.size());
    trace.requests.push_back(id);
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

}  // namespace qdlp
