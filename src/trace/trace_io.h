// Trace serialization: a simple binary format for speed and CSV for
// interchange, so users can replay their own production traces through the
// simulator.
//
// Binary format ("QDT1"): 4-byte magic, uint64 request count, then that many
// little-endian uint64 object ids.
// CSV format: one object id per line; lines starting with '#' are comments.

#ifndef QDLP_SRC_TRACE_TRACE_IO_H_
#define QDLP_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "src/trace/trace.h"

namespace qdlp {

// All functions return false / nullopt on I/O or format errors; they never
// abort on bad input files.
bool WriteTraceBinary(const Trace& trace, const std::string& path);
std::optional<Trace> ReadTraceBinary(const std::string& path);

bool WriteTraceCsv(const Trace& trace, const std::string& path);
std::optional<Trace> ReadTraceCsv(const std::string& path);

// Stream-level parsers behind the file readers. They consume from the
// stream's current position and leave `name` empty; the fuzz harness feeds
// them in-memory buffers (std::istringstream), so every byte of the format
// handling is reachable without touching the filesystem. The stream must be
// seekable for the oracleGeneral variant (files and stringstreams are).
std::optional<Trace> ParseTraceBinary(std::istream& in);
std::optional<Trace> ParseTraceCsv(std::istream& in);
std::optional<Trace> ParseTraceOracleGeneral(std::istream& in);

// libCacheSim "oracleGeneral" binary format, so traces prepared for that
// simulator (including the public MSR/Twitter conversions) replay here
// directly. Per record, little-endian, packed:
//   uint32 timestamp, uint64 object id, uint32 object size,
//   int64 next_access_vtime.
// Reading discards sizes/timestamps (uniform-size model); writing emits
// synthetic timestamps, size 1, and next-access times computed from the
// trace (so the output is valid oracle input for other simulators too).
bool WriteTraceOracleGeneral(const Trace& trace, const std::string& path);
std::optional<Trace> ReadTraceOracleGeneral(const std::string& path);

}  // namespace qdlp

#endif  // QDLP_SRC_TRACE_TRACE_IO_H_
