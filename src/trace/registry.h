// Dataset registry mirroring Table 1 of the paper.
//
// The paper evaluates on 5307 traces from ten data sources. We cannot ship
// those traces, so the registry defines ten synthetic *dataset families* with
// the same cache types (block vs web/KV) and the workload character the paper
// attributes to each source, and materializes any number of seeded traces per
// family with jittered parameters. Per-family trace counts and trace lengths
// are scaled down to laptop scale by default and can be grown with the
// `scale` knob (bench binaries read QDLP_SCALE).
//
// Everything is deterministic: trace (family, index) always yields the same
// request stream.

#ifndef QDLP_SRC_TRACE_REGISTRY_H_
#define QDLP_SRC_TRACE_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace qdlp {

enum class FamilyKind {
  kScanLoopBlock,     // MSR/FIU-style enterprise block storage
  kMixedBlock,        // CloudPhysics/Alibaba/TencentCBS-style cloud block
  kPopularityDecayWeb,// CDN / photo / wiki object caches
  kHighReuseKv,       // Twitter / social-network in-memory KV
};

struct DatasetSpec {
  std::string name;
  FamilyKind kind = FamilyKind::kMixedBlock;
  WorkloadClass cls = WorkloadClass::kBlock;
  // Number of traces to materialize at scale == 1.
  int base_trace_count = 4;
  // Requests per trace at scale == 1.
  uint64_t base_requests = 100000;
  // Family-specific shape parameters (interpreted per kind; jittered
  // per-trace by the registry).
  double skew = 1.0;            // Zipf/recency skew center
  double aux = 0.0;             // kind-specific: scan intensity or
                                // one-hit-wonder fraction or locality prob
  uint64_t universe = 10000;    // hot-set / corpus size center
  uint64_t seed = 0;            // family seed
};

// The ten families of Table 1.
std::vector<DatasetSpec> Table1Datasets();

// Materializes trace `index` (0-based) of `spec`. `scale` multiplies the
// request count; parameters are jittered deterministically per index.
Trace MakeTrace(const DatasetSpec& spec, int index, double scale = 1.0);

// Materializes all traces of all families. `scale` multiplies both per-family
// trace counts and request counts (sqrt-split so scale=4 gives 2x traces of
// 2x length).
std::vector<Trace> MaterializeRegistry(double scale = 1.0);

// Number of traces family `spec` contributes at the given scale.
int TraceCountAtScale(const DatasetSpec& spec, double scale);

}  // namespace qdlp

#endif  // QDLP_SRC_TRACE_REGISTRY_H_
