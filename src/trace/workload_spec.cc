#include "src/trace/workload_spec.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/trace/generators.h"

namespace qdlp {

namespace {

using ParamMap = std::unordered_map<std::string, std::string>;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> parts;
  std::stringstream stream(value);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

// Strict numeric parsing: the whole value must be consumed. (The CLI used
// to atof/strtoull leniently; untrusted specs deserve real validation.)
bool ParamDouble(const ParamMap& params, const std::string& key,
                 double fallback, double* out) {
  const auto it = params.find(key);
  if (it == params.end()) {
    *out = fallback;
    return true;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

bool ParamInt(const ParamMap& params, const std::string& key,
              uint64_t fallback, uint64_t* out) {
  const auto it = params.find(key);
  if (it == params.end()) {
    *out = fallback;
    return true;
  }
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

uint64_t Clamp(uint64_t value, uint64_t limit) {
  return limit == 0 ? value : std::min(value, limit);
}

bool PositiveSkew(double skew) { return skew > 0.0 && skew <= 100.0; }

bool Fraction(double value) { return value >= 0.0 && value < 1.0; }

}  // namespace

std::optional<Trace> BuildWorkload(const std::string& spec,
                                   std::string* error,
                                   const WorkloadSpecLimits& limits) {
  const auto parts = SplitCommas(spec);
  if (parts.empty()) {
    SetError(error, "empty workload spec");
    return std::nullopt;
  }
  const std::string kind = parts[0];
  ParamMap params;
  for (size_t i = 1; i < parts.size(); ++i) {
    const size_t eq = parts[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      SetError(error,
               "workload parameter '" + parts[i] + "' is not key=value");
      return std::nullopt;
    }
    params[parts[i].substr(0, eq)] = parts[i].substr(eq + 1);
  }

  uint64_t requests = 0;
  uint64_t seed = 0;
  uint64_t objects = 0;
  double skew = 0.0;
  if (!ParamInt(params, "requests", 200000, &requests) ||
      !ParamInt(params, "seed", 1, &seed)) {
    SetError(error, "malformed numeric parameter in '" + spec + "'");
    return std::nullopt;
  }
  requests = Clamp(requests, limits.max_requests);

  // Every generator validates its config with aborting checks; reject bad
  // parameter values here so untrusted specs fail soft instead.
  Trace trace;
  if (kind == "zipf") {
    if (!ParamInt(params, "objects", 20000, &objects) ||
        !ParamDouble(params, "skew", 1.0, &skew) || objects < 1 ||
        !PositiveSkew(skew)) {
      SetError(error, "bad zipf parameters in '" + spec + "'");
      return std::nullopt;
    }
    ZipfTraceConfig config;
    config.num_requests = requests;
    config.num_objects = Clamp(objects, limits.max_objects);
    config.skew = skew;
    config.seed = seed;
    trace = GenerateZipf(config);
  } else if (kind == "web") {
    double wonders = 0.0;
    double intro = 0.0;
    if (!ParamDouble(params, "wonders", 0.15, &wonders) ||
        !ParamDouble(params, "skew", 0.8, &skew) ||
        !ParamInt(params, "objects", 2000, &objects) ||
        !ParamDouble(params, "intro", 0.10, &intro) || objects < 1 ||
        !PositiveSkew(skew) || !Fraction(wonders) || !Fraction(intro)) {
      SetError(error, "bad web parameters in '" + spec + "'");
      return std::nullopt;
    }
    PopularityDecayConfig config;
    config.num_requests = requests;
    config.one_hit_wonder_fraction = wonders;
    config.recency_skew = skew;
    config.initial_objects = Clamp(objects, limits.max_objects);
    config.introduction_rate = intro;
    config.seed = seed;
    trace = GeneratePopularityDecay(config);
  } else if (kind == "block") {
    double scan = 0.0;
    double loop = 0.0;
    if (!ParamInt(params, "objects", 8000, &objects) ||
        !ParamDouble(params, "skew", 1.0, &skew) ||
        !ParamDouble(params, "scan", 0.002, &scan) ||
        !ParamDouble(params, "loop", 0.001, &loop) || objects < 1 ||
        !PositiveSkew(skew) || !Fraction(scan) || !Fraction(loop)) {
      SetError(error, "bad block parameters in '" + spec + "'");
      return std::nullopt;
    }
    ScanLoopConfig config;
    config.num_requests = requests;
    config.hot_objects = Clamp(objects, limits.max_objects);
    config.hot_skew = skew;
    config.scan_start_probability = scan;
    config.loop_start_probability = loop;
    config.seed = seed;
    trace = GenerateScanLoop(config);
  } else if (kind == "kv") {
    if (!ParamInt(params, "objects", 6000, &objects) ||
        !ParamDouble(params, "skew", 1.2, &skew) || objects < 1 ||
        !PositiveSkew(skew)) {
      SetError(error, "bad kv parameters in '" + spec + "'");
      return std::nullopt;
    }
    HighReuseKvConfig config;
    config.num_requests = requests;
    config.num_objects = Clamp(objects, limits.max_objects);
    config.skew = skew;
    config.seed = seed;
    trace = GenerateHighReuseKv(config);
  } else if (kind == "phase") {
    uint64_t phase = 0;
    if (!ParamInt(params, "objects", 2000, &objects) ||
        !ParamDouble(params, "skew", 0.8, &skew) ||
        !ParamInt(params, "phase", 10000, &phase) || objects < 1 ||
        phase < 1 || !PositiveSkew(skew)) {
      SetError(error, "bad phase parameters in '" + spec + "'");
      return std::nullopt;
    }
    PhaseChangeConfig config;
    config.num_requests = requests;
    config.working_set = Clamp(objects, limits.max_objects);
    config.skew = skew;
    config.phase_length = phase;
    config.seed = seed;
    trace = GeneratePhaseChange(config);
  } else {
    SetError(error, "unknown workload kind '" + kind + "'");
    return std::nullopt;
  }
  trace.name = spec;
  trace.dataset = kind;
  return trace;
}

}  // namespace qdlp
