// Textual workload specifications.
//
// A spec is "<kind>[,key=value]...", e.g. "zipf,objects=50000,skew=1.0" or
// "web,requests=30000". Kinds map onto the synthetic generators
// (generators.h): zipf, web (popularity decay), block (scan/loop), kv
// (high-reuse), phase (working-set phases). This used to live inside the
// qdlp_sim CLI; it is a library so the CLI, tests, and the fuzz harness
// share one parser.

#ifndef QDLP_SRC_TRACE_WORKLOAD_SPEC_H_
#define QDLP_SRC_TRACE_WORKLOAD_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/trace/trace.h"

namespace qdlp {

// Hard ceilings applied after parsing, before generation. Untrusted specs
// (fuzzing, config files) otherwise turn "requests=99999999999" into an
// allocation bomb. 0 = unlimited (the CLI default).
struct WorkloadSpecLimits {
  uint64_t max_requests = 0;
  uint64_t max_objects = 0;
};

// Parses `spec` and runs the matching generator. Returns nullopt on a
// malformed spec (unknown kind, parameter without '='); when `error` is
// non-null it receives a one-line description. Never aborts on bad input.
std::optional<Trace> BuildWorkload(const std::string& spec,
                                   std::string* error = nullptr,
                                   const WorkloadSpecLimits& limits = {});

}  // namespace qdlp

#endif  // QDLP_SRC_TRACE_WORKLOAD_SPEC_H_
