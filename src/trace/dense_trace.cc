#include "src/trace/dense_trace.h"

#include <utility>

namespace qdlp {

DenseTrace DensifyTrace(const Trace& trace) {
  DenseTrace dense;
  dense.name = trace.name;
  dense.dataset = trace.dataset;
  dense.cls = trace.cls;
  dense.requests.reserve(trace.requests.size());
  // num_objects is usually populated (generators set it); use it to
  // right-size the mapper's table and avoid growth rehashes mid-pass.
  DenseIdMapper mapper(trace.num_objects > 0
                           ? static_cast<size_t>(trace.num_objects)
                           : trace.requests.size() / 2);
  for (ObjectId id : trace.requests) {
    dense.requests.push_back(mapper.MapOrAssign(id));
  }
  dense.to_original = std::move(mapper).TakeToOriginal();
  return dense;
}

}  // namespace qdlp
