// Dense-id traces: a one-time remap of 64-bit object ids onto the compact
// range [0, num_objects), assigned in first-appearance order.
//
// The sweep harness replays the same trace under dozens of (policy x size)
// configurations; the remap is paid once per trace and buys three things
// everywhere downstream:
//
//  * The request stream halves in width (u32 vs u64), halving the DRAM
//    bandwidth of every replay pass over it.
//  * Policies built over DenseIndex (src/util/dense_index.h) replace every
//    hash probe with a direct-indexed slot load — ids are array indexes.
//  * `num_objects` falls out as a byproduct of the remap, so trace stats no
//    longer need a separate hash-set pass.
//
// Because ids are assigned by first appearance, the mapping is a bijection
// between the trace's distinct ids and [0, num_objects); policies whose
// decisions are id-agnostic (everything except sampling/hashing policies —
// see HasDenseVariant in policy_factory.h) produce bit-identical miss
// ratios on the dense stream. For the rest, `to_original` translates dense
// ids back so they can be fed the original stream batch by batch.

#ifndef QDLP_SRC_TRACE_DENSE_TRACE_H_
#define QDLP_SRC_TRACE_DENSE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/flat_map.h"

namespace qdlp {

// Incremental ObjectId -> dense-u32 assignment in first-appearance order.
// Exposed separately from DensifyTrace so single-pass consumers (trace
// stats, streaming loaders) can remap without materializing a DenseTrace.
class DenseIdMapper {
 public:
  explicit DenseIdMapper(size_t expected_objects = 0) {
    if (expected_objects > 0) {
      index_.Reserve(expected_objects);
      to_original_.reserve(expected_objects);
    }
  }

  // Returns the dense id for `id`, assigning the next free one on first
  // sight. Dense ids count up from 0 with no gaps.
  uint32_t MapOrAssign(ObjectId id) {
    const auto [slot, inserted] = index_.Emplace(id);
    if (inserted) {
      *slot = static_cast<uint32_t>(to_original_.size());
      to_original_.push_back(id);
    }
    return *slot;
  }

  // Number of distinct ids seen so far == the next dense id to be assigned.
  uint32_t num_ids() const {
    return static_cast<uint32_t>(to_original_.size());
  }

  // to_original()[dense] is the original id mapped to `dense`.
  const std::vector<ObjectId>& to_original() const { return to_original_; }
  std::vector<ObjectId> TakeToOriginal() && { return std::move(to_original_); }

 private:
  FlatMap<uint32_t> index_;
  std::vector<ObjectId> to_original_;
};

// A trace after the dense remap. Carries the same identity metadata as the
// Trace it came from plus the reverse mapping.
struct DenseTrace {
  std::string name;
  std::string dataset;
  WorkloadClass cls = WorkloadClass::kBlock;
  std::vector<uint32_t> requests;     // dense ids, first appearance = 0,1,...
  std::vector<ObjectId> to_original;  // dense id -> original ObjectId

  size_t num_requests() const { return requests.size(); }
  uint64_t num_objects() const { return to_original.size(); }
};

// One pass over `trace.requests`: remaps every request and returns the
// dense stream plus the reverse mapping. O(num_requests) time, and the
// only hash-table work the sweep engine does per trace.
DenseTrace DensifyTrace(const Trace& trace);

}  // namespace qdlp

#endif  // QDLP_SRC_TRACE_DENSE_TRACE_H_
