#include "src/trace/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/trace/generators.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace qdlp {

std::vector<DatasetSpec> Table1Datasets() {
  // Counts are the paper's per-source trace counts scaled to laptop size;
  // relative ordering (TencentCBS and Alibaba dominating the block side,
  // CDN and SocialNetwork dominating the web side) is preserved.
  std::vector<DatasetSpec> specs;
  auto add = [&specs](std::string name, FamilyKind kind, WorkloadClass cls,
                      int count, double skew, double aux, uint64_t universe,
                      uint64_t seed) {
    DatasetSpec spec;
    spec.name = std::move(name);
    spec.kind = kind;
    spec.cls = cls;
    spec.base_trace_count = count;
    spec.skew = skew;
    spec.aux = aux;
    spec.universe = universe;
    spec.seed = seed;
    specs.push_back(std::move(spec));
  };
  // name, kind, class, #traces, skew, aux, universe, seed
  add("msr", FamilyKind::kScanLoopBlock, WorkloadClass::kBlock, 8, 0.9, 1.6,
      9000, 101);
  add("fiu", FamilyKind::kScanLoopBlock, WorkloadClass::kBlock, 6, 1.0, 1.0,
      6000, 202);
  add("cloudphysics", FamilyKind::kMixedBlock, WorkloadClass::kBlock, 10, 0.95,
      0.8, 12000, 303);
  add("major_cdn", FamilyKind::kPopularityDecayWeb, WorkloadClass::kWeb, 12,
      0.75, 0.22, 2500, 404);
  add("tencent_photo", FamilyKind::kPopularityDecayWeb, WorkloadClass::kWeb, 2,
      0.70, 0.28, 4000, 505);
  add("wiki_cdn", FamilyKind::kPopularityDecayWeb, WorkloadClass::kWeb, 3,
      0.85, 0.12, 3000, 606);
  add("tencent_cbs", FamilyKind::kMixedBlock, WorkloadClass::kBlock, 16, 1.0,
      0.6, 10000, 707);
  add("alibaba", FamilyKind::kMixedBlock, WorkloadClass::kBlock, 12, 0.9, 1.2,
      14000, 808);
  add("twitter", FamilyKind::kHighReuseKv, WorkloadClass::kWeb, 8, 1.1, 0.15,
      8000, 909);
  add("social_network", FamilyKind::kHighReuseKv, WorkloadClass::kWeb, 10, 1.25,
      0.3, 5000, 1010);
  return specs;
}

int TraceCountAtScale(const DatasetSpec& spec, double scale) {
  QDLP_CHECK(scale > 0.0);
  const double count_scale = std::sqrt(scale);
  return std::max(1, static_cast<int>(std::lround(
                         static_cast<double>(spec.base_trace_count) * count_scale)));
}

namespace {

// Deterministic per-trace jitter around the family center values, so that a
// family is a population of related-but-distinct workloads, like the paper's
// per-source trace collections.
struct Jitter {
  double skew;
  double aux;
  uint64_t universe;
  uint64_t seed;
};

Jitter JitterFor(const DatasetSpec& spec, int index) {
  Rng rng(SplitMix64(spec.seed * 1000003ULL + static_cast<uint64_t>(index)));
  Jitter jitter;
  jitter.skew = spec.skew * rng.NextRange(0.85, 1.15);
  jitter.aux = spec.aux * rng.NextRange(0.6, 1.4);
  jitter.universe = std::max<uint64_t>(
      500, static_cast<uint64_t>(static_cast<double>(spec.universe) *
                                 rng.NextRange(0.6, 1.6)));
  jitter.seed = rng.Next();
  return jitter;
}

}  // namespace

Trace MakeTrace(const DatasetSpec& spec, int index, double scale) {
  QDLP_CHECK(index >= 0);
  QDLP_CHECK(scale > 0.0);
  const Jitter jitter = JitterFor(spec, index);
  const double request_scale = std::sqrt(scale);
  const uint64_t num_requests = std::max<uint64_t>(
      10000, static_cast<uint64_t>(static_cast<double>(spec.base_requests) *
                                   request_scale));

  Trace trace;
  switch (spec.kind) {
    case FamilyKind::kScanLoopBlock: {
      ScanLoopConfig config;
      config.num_requests = num_requests;
      config.hot_objects = jitter.universe;
      config.hot_skew = jitter.skew;
      // aux scales scan/loop intensity.
      config.scan_start_probability = 0.002 * jitter.aux;
      config.loop_start_probability = 0.001 * jitter.aux;
      config.hot_drift_objects =
          static_cast<uint64_t>(static_cast<double>(jitter.universe) * 0.35);
      config.seed = jitter.seed;
      trace = GenerateScanLoop(config);
      break;
    }
    case FamilyKind::kMixedBlock: {
      ScanLoopConfig config;
      config.num_requests = num_requests;
      config.hot_objects = jitter.universe;
      config.hot_skew = jitter.skew;
      config.scan_start_probability = 0.0012 * jitter.aux;
      config.loop_start_probability = 0.0004 * jitter.aux;
      config.scan_length_min = 100;
      config.scan_length_max = 1500;
      config.rescan_fraction = 0.15;
      config.hot_drift_objects =
          static_cast<uint64_t>(static_cast<double>(jitter.universe) * 0.45);
      config.seed = jitter.seed;
      trace = GenerateScanLoop(config);
      break;
    }
    case FamilyKind::kPopularityDecayWeb: {
      PopularityDecayConfig config;
      config.num_requests = num_requests;
      config.recency_skew = jitter.skew;
      config.one_hit_wonder_fraction = std::min(0.5, jitter.aux);
      config.initial_objects = jitter.universe;
      config.introduction_rate = 0.10;
      config.seed = jitter.seed;
      trace = GeneratePopularityDecay(config);
      break;
    }
    case FamilyKind::kHighReuseKv: {
      HighReuseKvConfig config;
      config.num_requests = num_requests;
      config.num_objects = jitter.universe;
      config.skew = jitter.skew;
      config.locality_probability = std::min(0.6, jitter.aux);
      config.seed = jitter.seed;
      trace = GenerateHighReuseKv(config);
      break;
    }
  }
  trace.dataset = spec.name;
  trace.cls = spec.cls;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%03d", index);
  trace.name = spec.name + buf;
  return trace;
}

std::vector<Trace> MaterializeRegistry(double scale) {
  std::vector<Trace> traces;
  for (const DatasetSpec& spec : Table1Datasets()) {
    const int count = TraceCountAtScale(spec, scale);
    for (int i = 0; i < count; ++i) {
      traces.push_back(MakeTrace(spec, i, scale));
    }
  }
  return traces;
}

}  // namespace qdlp
