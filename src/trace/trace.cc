#include "src/trace/trace.h"

#include <algorithm>
#include <cmath>

#include "src/trace/dense_trace.h"

namespace qdlp {

const char* WorkloadClassName(WorkloadClass cls) {
  switch (cls) {
    case WorkloadClass::kBlock:
      return "block";
    case WorkloadClass::kWeb:
      return "web";
  }
  return "unknown";
}

uint64_t CountUniqueObjects(const std::vector<ObjectId>& requests) {
  DenseIdMapper mapper(requests.size() / 2);
  for (ObjectId id : requests) {
    mapper.MapOrAssign(id);
  }
  return mapper.num_ids();
}

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats stats;
  stats.num_requests = trace.requests.size();
  // One remap pass replaces the unordered_map<id, count> histogram: dense
  // ids index a contiguous count array directly.
  DenseIdMapper mapper(trace.requests.size() / 2);
  std::vector<uint64_t> counts;
  for (ObjectId id : trace.requests) {
    const uint32_t dense = mapper.MapOrAssign(id);
    if (dense == counts.size()) {
      counts.push_back(0);
    }
    ++counts[dense];
  }
  stats.num_objects = mapper.num_ids();
  if (stats.num_objects == 0) {
    return stats;
  }
  stats.mean_frequency =
      static_cast<double>(stats.num_requests) / static_cast<double>(stats.num_objects);
  uint64_t one_hit = 0;
  for (uint64_t count : counts) {
    if (count == 1) {
      ++one_hit;
    }
  }
  stats.one_hit_wonder_ratio =
      static_cast<double>(one_hit) / static_cast<double>(stats.num_objects);
  std::sort(counts.begin(), counts.end(), std::greater<uint64_t>());
  const size_t top = std::max<size_t>(1, counts.size() / 100);
  uint64_t top_sum = 0;
  for (size_t i = 0; i < top; ++i) {
    top_sum += counts[i];
  }
  stats.top_1pct_share =
      static_cast<double>(top_sum) / static_cast<double>(stats.num_requests);

  // Zipf fit over the head of the rank-frequency curve (ranks up to the
  // 20th percentile or 10k, whichever is smaller; the tail of ties at
  // frequency 1 would otherwise flatten the slope).
  const size_t fit_span =
      std::min<size_t>(std::max<size_t>(counts.size() / 5, 10), 10000);
  if (counts.size() >= 10 && counts[0] > 1) {
    double sum_x = 0.0;
    double sum_y = 0.0;
    double sum_xx = 0.0;
    double sum_xy = 0.0;
    size_t n = 0;
    for (size_t rank = 0; rank < std::min(fit_span, counts.size()); ++rank) {
      if (counts[rank] == 0) {
        break;
      }
      const double x = std::log(static_cast<double>(rank + 1));
      const double y = std::log(static_cast<double>(counts[rank]));
      sum_x += x;
      sum_y += y;
      sum_xx += x * x;
      sum_xy += x * y;
      ++n;
    }
    const double denom = static_cast<double>(n) * sum_xx - sum_x * sum_x;
    if (n >= 2 && denom > 1e-9) {
      const double slope =
          (static_cast<double>(n) * sum_xy - sum_x * sum_y) / denom;
      stats.zipf_alpha = -slope;  // frequency ~ rank^-alpha
    }
  }
  if (stats.num_requests > 0) {
    stats.compulsory_miss_ratio = static_cast<double>(stats.num_objects) /
                                  static_cast<double>(stats.num_requests);
  }
  return stats;
}

}  // namespace qdlp
