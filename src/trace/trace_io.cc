#include "src/trace/trace_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <vector>

namespace qdlp {

namespace {
constexpr char kMagic[4] = {'Q', 'D', 'T', '1'};
}  // namespace

bool WriteTraceBinary(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = trace.requests.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(trace.requests.data()),
            static_cast<std::streamsize>(count * sizeof(ObjectId)));
  return static_cast<bool>(out);
}

std::optional<Trace> ParseTraceBinary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) {
    return std::nullopt;
  }
  // Guard against corrupt headers demanding absurd allocations.
  constexpr uint64_t kMaxRequests = 1ULL << 36;
  if (count > kMaxRequests) {
    return std::nullopt;
  }
  Trace trace;
  // Read in bounded chunks rather than trusting the header's count with one
  // big resize: a corrupt header claiming billions of records then costs
  // only as many bytes as the stream actually holds.
  constexpr uint64_t kChunk = 1ULL << 16;
  uint64_t remaining = count;
  while (remaining > 0) {
    const size_t batch = static_cast<size_t>(std::min(remaining, kChunk));
    const size_t old_size = trace.requests.size();
    trace.requests.resize(old_size + batch);
    in.read(reinterpret_cast<char*>(trace.requests.data() + old_size),
            static_cast<std::streamsize>(batch * sizeof(ObjectId)));
    if (!in) {
      return std::nullopt;
    }
    remaining -= batch;
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

std::optional<Trace> ReadTraceBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  auto trace = ParseTraceBinary(in);
  if (trace.has_value()) {
    trace->name = path;
  }
  return trace;
}

bool WriteTraceCsv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# qdlp trace: " << trace.name << "\n";
  for (ObjectId id : trace.requests) {
    out << id << "\n";
  }
  return static_cast<bool>(out);
}

std::optional<Trace> ParseTraceCsv(std::istream& in) {
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    char* end = nullptr;
    const unsigned long long id = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str()) {
      return std::nullopt;
    }
    trace.requests.push_back(static_cast<ObjectId>(id));
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

std::optional<Trace> ReadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  auto trace = ParseTraceCsv(in);
  if (trace.has_value()) {
    trace->name = path;
  }
  return trace;
}

namespace {

// One oracleGeneral record; packed to match libCacheSim's on-disk layout.
#pragma pack(push, 1)
struct OracleGeneralRecord {
  uint32_t timestamp;
  uint64_t object_id;
  uint32_t object_size;
  int64_t next_access_vtime;
};
#pragma pack(pop)
static_assert(sizeof(OracleGeneralRecord) == 24,
              "oracleGeneral records are 24 bytes");

}  // namespace

bool WriteTraceOracleGeneral(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  // Next-access virtual times (position of the next request, or -1).
  std::vector<int64_t> next_access(trace.requests.size(), -1);
  std::unordered_map<ObjectId, size_t> upcoming;
  for (size_t i = trace.requests.size(); i-- > 0;) {
    const auto it = upcoming.find(trace.requests[i]);
    next_access[i] = it == upcoming.end() ? -1 : static_cast<int64_t>(it->second);
    upcoming[trace.requests[i]] = i;
  }
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    OracleGeneralRecord record;
    record.timestamp = static_cast<uint32_t>(i);
    record.object_id = trace.requests[i];
    record.object_size = 1;
    record.next_access_vtime = next_access[i];
    out.write(reinterpret_cast<const char*>(&record), sizeof(record));
  }
  return static_cast<bool>(out);
}

std::optional<Trace> ParseTraceOracleGeneral(std::istream& in) {
  const std::streamoff start = in.tellg();
  if (start < 0) {
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const std::streamoff bytes = in.tellg() - start;
  in.seekg(start, std::ios::beg);
  if (bytes < 0 || bytes % static_cast<std::streamoff>(
                               sizeof(OracleGeneralRecord)) != 0) {
    return std::nullopt;
  }
  const size_t count = static_cast<size_t>(bytes) / sizeof(OracleGeneralRecord);
  Trace trace;
  trace.requests.reserve(count);
  OracleGeneralRecord record;
  for (size_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(&record), sizeof(record));
    if (!in) {
      return std::nullopt;
    }
    // Copy before push_back: the packed record's object_id sits at offset 4,
    // and binding vector::push_back's const uint64_t& directly to it is a
    // misaligned reference (flagged by UBSan's alignment check).
    const ObjectId id = record.object_id;
    trace.requests.push_back(id);
  }
  trace.num_objects = CountUniqueObjects(trace.requests);
  return trace;
}

std::optional<Trace> ReadTraceOracleGeneral(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  auto trace = ParseTraceOracleGeneral(in);
  if (trace.has_value()) {
    trace->name = path;
  }
  return trace;
}

}  // namespace qdlp
