#include "src/flash/flash_model.h"

#include <algorithm>
#include <cmath>

namespace qdlp {

// ---------------------------------------------------------------- LogFlash

LogFlashCache::LogFlashCache(size_t capacity_objects, size_t segment_objects,
                             int bits)
    : capacity_(capacity_objects), segment_objects_(segment_objects) {
  QDLP_CHECK(capacity_objects >= 1);
  QDLP_CHECK(segment_objects >= 1 && segment_objects <= capacity_objects);
  QDLP_CHECK(bits >= 0 && bits <= 8);
  max_counter_ = bits == 0 ? 0 : static_cast<uint8_t>((1u << bits) - 1);
  name_ = bits == 0 ? "flash-fifo"
                    : (bits == 1 ? "flash-clock1" : "flash-clock2");
  open_segment_.reserve(segment_objects);
}

void LogFlashCache::Append(ObjectId id, uint8_t counter) {
  const uint64_t generation = next_generation_++;
  open_segment_.push_back(Slot{id, generation});
  index_[id] = Entry{counter, generation};
  if (open_segment_.size() >= segment_objects_) {
    segments_.push_back(std::move(open_segment_));
    open_segment_.clear();
    open_segment_.reserve(segment_objects_);
  }
}

void LogFlashCache::ReclaimOldest() {
  if (segments_.empty()) {
    // Everything still sits in the open segment; seal it so it can be the
    // reclaim victim (degenerate tiny-cache case).
    QDLP_CHECK(!open_segment_.empty());
    segments_.push_back(std::move(open_segment_));
    open_segment_.clear();
    open_segment_.reserve(segment_objects_);
  }
  const std::vector<Slot> victim_segment = std::move(segments_.front());
  segments_.pop_front();
  ++stats_.segments_erased;
  for (const Slot& slot : victim_segment) {
    const ObjectId id = slot.id;
    const auto it = index_.find(id);
    if (it == index_.end() || it->second.generation != slot.generation) {
      continue;  // stale copy: the object was evicted or re-homed since
    }
    if (it->second.counter == 0) {
      index_.erase(it);  // evicted with the erase, zero extra writes
    } else {
      // RIPQ-style reinsertion: referenced data must be re-written to the
      // head of the log — this is CLOCK's flash write amplification.
      const uint8_t counter = it->second.counter - 1;
      index_.erase(it);
      ++stats_.flash_writes;
      Append(id, counter);
    }
  }
}

bool LogFlashCache::Access(ObjectId id) {
  ++stats_.requests;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    if (it->second.counter < max_counter_) {
      ++it->second.counter;
    }
    return true;
  }
  ++stats_.admissions;
  ++stats_.flash_writes;
  Append(id, 0);
  while (index_.size() > capacity_) {
    ReclaimOldest();
  }
  return false;
}

// ---------------------------------------------------------------- LruFlash

LruFlashCache::LruFlashCache(size_t capacity_objects, size_t segment_objects)
    : name_("flash-lru"),
      capacity_(capacity_objects),
      segment_objects_(segment_objects) {
  QDLP_CHECK(capacity_objects >= 1);
  QDLP_CHECK(segment_objects >= 1 && segment_objects <= capacity_objects);
  // 25% over-provisioning plus two spare segments, the classic arrangement
  // that gives GC room to breathe.
  const size_t device_slots = static_cast<size_t>(
      std::llround(static_cast<double>(capacity_objects) * 1.25));
  const size_t device_segments =
      (device_slots + segment_objects - 1) / segment_objects + 2;
  segments_.reserve(device_segments);
  for (size_t i = 0; i < device_segments; ++i) {
    segments_.push_back(std::make_unique<Segment>());
  }
  open_segment_ = 0;
}

uint64_t LruFlashCache::AppendToOpen(ObjectId id) {
  Segment& open = *segments_[open_segment_];
  QDLP_DCHECK(!open.sealed);
  const uint64_t generation = next_generation_++;
  open.slots.push_back(Slot{id, generation});
  ++open.live;
  ++flash_slots_used_;
  if (open.slots.size() >= segment_objects_) {
    open.sealed = true;
    // Find (or make) an empty segment to open next.
    bool found = false;
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (segments_[i]->slots.empty() && !segments_[i]->sealed) {
        open_segment_ = i;
        found = true;
        break;
      }
    }
    if (!found) {
      segments_.push_back(std::make_unique<Segment>());
      open_segment_ = segments_.size() - 1;
    }
  }
  return generation;
}

void LruFlashCache::EvictLogicalLru() {
  QDLP_DCHECK(!mru_list_.empty());
  const ObjectId victim = mru_list_.back();
  mru_list_.pop_back();
  const auto it = index_.find(victim);
  QDLP_DCHECK(it != index_.end());
  // Punch a hole: the slot stays written until its segment is GC'd.
  --segments_[it->second.segment]->live;
  index_.erase(it);
}

void LruFlashCache::GarbageCollectIfNeeded() {
  const size_t device_slots = segments_.size() * segment_objects_;
  while (device_slots - flash_slots_used_ < segment_objects_) {
    // Greedy victim: sealed segment with the fewest live objects.
    size_t victim_index = segments_.size();
    size_t victim_live = segment_objects_ + 1;
    for (size_t i = 0; i < segments_.size(); ++i) {
      const Segment& segment = *segments_[i];
      if (!segment.sealed || segment.slots.empty()) {
        continue;
      }
      if (segment.live < victim_live) {
        victim_live = segment.live;
        victim_index = i;
      }
    }
    QDLP_CHECK(victim_index < segments_.size());
    if (victim_live >= segment_objects_) {
      // No dead slots anywhere: GC cannot make progress (should not happen
      // with over-provisioning and a logical capacity below device size).
      return;
    }
    // Relocate live objects, then erase.
    Segment& victim = *segments_[victim_index];
    std::vector<ObjectId> survivors;
    survivors.reserve(victim.live);
    for (const Slot& slot : victim.slots) {
      const auto it = index_.find(slot.id);
      if (it != index_.end() && it->second.generation == slot.generation) {
        survivors.push_back(slot.id);
      }
    }
    flash_slots_used_ -= victim.slots.size();
    victim.slots.clear();
    victim.live = 0;
    victim.sealed = false;
    ++stats_.segments_erased;
    for (const ObjectId id : survivors) {
      ++stats_.flash_writes;  // GC re-write: LRU's write amplification
      const size_t destination_before = open_segment_;
      const uint64_t generation = AppendToOpen(id);
      Entry& entry = index_.at(id);
      entry.segment = destination_before;
      entry.generation = generation;
    }
  }
}

bool LruFlashCache::Access(ObjectId id) {
  ++stats_.requests;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    mru_list_.splice(mru_list_.begin(), mru_list_, it->second.lru_position);
    return true;
  }
  ++stats_.admissions;
  while (index_.size() >= capacity_) {
    EvictLogicalLru();
  }
  GarbageCollectIfNeeded();
  ++stats_.flash_writes;
  const size_t destination = open_segment_;
  const uint64_t generation = AppendToOpen(id);
  mru_list_.push_front(id);
  index_[id] = Entry{destination, generation, mru_list_.begin()};
  return false;
}

// -------------------------------------------------------------- RipqLruFlash

RipqLruFlashCache::RipqLruFlashCache(size_t capacity_objects,
                                     size_t segment_objects)
    : name_("flash-lru-ripq"),
      capacity_(capacity_objects),
      segment_objects_(segment_objects) {
  QDLP_CHECK(capacity_objects >= 1);
  QDLP_CHECK(segment_objects >= 1 && segment_objects <= capacity_objects);
  // Device = logical capacity plus one spare segment of headroom; writes
  // are strictly sequential (append at the head, reclaim at the tail).
  device_slots_ =
      ((capacity_objects + segment_objects - 1) / segment_objects + 1) *
      segment_objects;
  open_segment_.reserve(segment_objects);
}

void RipqLruFlashCache::Append(ObjectId id) {
  const uint64_t generation = next_generation_++;
  open_segment_.push_back(Slot{id, generation});
  ++slots_used_;
  index_.at(id).generation = generation;
  if (open_segment_.size() >= segment_objects_) {
    segments_.push_back(std::move(open_segment_));
    open_segment_.clear();
    open_segment_.reserve(segment_objects_);
  }
}

void RipqLruFlashCache::ReclaimOldest() {
  QDLP_CHECK(!segments_.empty());
  const std::vector<Slot> victim = std::move(segments_.front());
  segments_.pop_front();
  slots_used_ -= victim.size();
  ++stats_.segments_erased;
  for (const Slot& slot : victim) {
    const auto it = index_.find(slot.id);
    if (it == index_.end() || it->second.generation != slot.generation) {
      continue;  // stale copy or logically evicted: freed with the erase
    }
    // Still wanted by LRU: must be re-written at the log head. This is the
    // per-device-lap rewrite of every retained object.
    ++stats_.flash_writes;
    Append(slot.id);
  }
}

bool RipqLruFlashCache::Access(ObjectId id) {
  ++stats_.requests;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    mru_list_.splice(mru_list_.begin(), mru_list_, it->second.lru_position);
    return true;
  }
  ++stats_.admissions;
  // Logical eviction first (metadata only; the flash copy becomes stale).
  while (index_.size() >= capacity_) {
    const ObjectId victim = mru_list_.back();
    mru_list_.pop_back();
    index_.erase(victim);
  }
  // Physical space: reclaim from the tail until the new object fits.
  while (slots_used_ + 1 > device_slots_) {
    ReclaimOldest();
  }
  ++stats_.flash_writes;
  mru_list_.push_front(id);
  index_[id] = Entry{0, mru_list_.begin()};
  Append(id);
  return false;
}

// ---------------------------------------------------------------- QdLpFlash

QdLpFlashCache::QdLpFlashCache(size_t capacity_objects, size_t segment_objects,
                               double probation_fraction)
    : name_("flash-qd-lp-fifo"), segment_objects_(segment_objects) {
  QDLP_CHECK(capacity_objects >= 2);
  QDLP_CHECK(probation_fraction > 0.0 && probation_fraction < 1.0);
  probation_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(capacity_objects) *
                                          probation_fraction)));
  probation_capacity_ = std::min(probation_capacity_, capacity_objects - 1);
  main_capacity_ = capacity_objects - probation_capacity_;
}

void QdLpFlashCache::ReclaimMain() {
  while (true) {
    QDLP_DCHECK(!main_.empty());
    const ObjectId candidate = main_.front();
    main_.pop_front();
    auto it = index_.find(candidate);
    QDLP_DCHECK(it != index_.end() && !it->second.in_probation);
    if (it->second.counter > 0) {
      --it->second.counter;
      ++stats_.flash_writes;  // reinsertion = re-append to the main log
      main_.push_back(candidate);
      continue;
    }
    index_.erase(it);
    return;
  }
}

void QdLpFlashCache::ReclaimProbation() {
  QDLP_DCHECK(!probation_.empty());
  const ObjectId victim = probation_.front();
  probation_.pop_front();
  const auto it = index_.find(victim);
  QDLP_DCHECK(it != index_.end() && it->second.in_probation);
  const bool accessed = it->second.counter > 0;
  index_.erase(it);
  if (accessed) {
    // Lazy promotion: one re-write moves it into the main log.
    while (main_.size() >= main_capacity_) {
      ReclaimMain();
    }
    ++stats_.flash_writes;
    main_.push_back(victim);
    index_[victim] = Entry{false, 0};
  } else {
    // Quick demotion: dropped with its segment, zero extra writes; only the
    // (RAM) ghost remembers it.
    const uint64_t generation = ghost_generation_++;
    ghost_fifo_.push_back(victim);
    ghost_live_[victim] = generation;
    while (ghost_live_.size() > main_capacity_ && !ghost_fifo_.empty()) {
      const ObjectId oldest = ghost_fifo_.front();
      ghost_fifo_.pop_front();
      ghost_live_.erase(oldest);
    }
  }
}

bool QdLpFlashCache::Access(ObjectId id) {
  ++stats_.requests;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    if (it->second.in_probation) {
      it->second.counter = 1;
    } else if (it->second.counter < 3) {
      ++it->second.counter;
    }
    return true;
  }
  ++stats_.admissions;
  if (ghost_live_.erase(id) > 0) {
    // Demoted too fast once: admit straight into the main log.
    while (main_.size() >= main_capacity_) {
      ReclaimMain();
    }
    ++stats_.flash_writes;
    main_.push_back(id);
    index_[id] = Entry{false, 0};
    return false;
  }
  while (probation_.size() >= probation_capacity_) {
    ReclaimProbation();
  }
  ++stats_.flash_writes;
  probation_.push_back(id);
  index_[id] = Entry{true, 0};
  if ((stats_.admissions % segment_objects_) == 0) {
    ++stats_.segments_erased;  // coarse erase accounting for reporting
  }
  return false;
}

}  // namespace qdlp
