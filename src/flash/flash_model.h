// Log-structured flash-cache model: quantifying §2's flash-friendliness
// argument ("FIFO is always the first choice when implementing a flash
// cache because it does not incur write amplification").
//
// Flash is written in large append-only segments and erased in segments;
// a flash cache therefore writes admitted objects to an open segment and
// reclaims space a whole segment at a time. How an eviction design maps
// onto that medium determines its *device write amplification*
// (flash bytes written / bytes admitted):
//
//  * FIFO        — reclaim the oldest segment, drop everything: WA = 1.
//  * CLOCK / LP  — reclaim the oldest segment, but re-append objects whose
//                  reference bit is set (RIPQ-style reinsertion):
//                  WA = 1 + (fraction re-appended).
//  * LRU         — logical LRU order is unrelated to segment order, so
//                  evictions punch holes; reclaiming space means GC: pick
//                  the segment with the most holes and re-append its live
//                  objects. WA grows with how scattered the live data is.
//  * QD-LP-FIFO  — probation and main are both FIFO logs; quick-demoted
//                  objects are dropped with their segment, promotions and
//                  CLOCK survivors are re-appended.
//
// Uniform object sizes (the paper's model): capacities and segment sizes
// are in objects, and WA equals flash object-writes / admissions.

#ifndef QDLP_SRC_FLASH_FLASH_MODEL_H_
#define QDLP_SRC_FLASH_FLASH_MODEL_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/check.h"

namespace qdlp {

struct FlashStats {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t admissions = 0;      // objects first written on a miss
  uint64_t flash_writes = 0;    // total object-writes to flash (>= admissions)
  uint64_t segments_erased = 0;

  double miss_ratio() const {
    return requests == 0
               ? 0.0
               : 1.0 - static_cast<double>(hits) / static_cast<double>(requests);
  }
  // Device write amplification.
  double write_amplification() const {
    return admissions == 0 ? 0.0
                           : static_cast<double>(flash_writes) /
                                 static_cast<double>(admissions);
  }
};

// Common interface: a flash cache replays a uniform-size trace and reports
// miss ratio plus write amplification.
class FlashCache {
 public:
  virtual ~FlashCache() = default;
  virtual bool Access(ObjectId id) = 0;
  virtual const FlashStats& stats() const = 0;
  virtual const std::string& name() const = 0;
};

// FIFO and CLOCK-family flash caches: one append-only log of segments; the
// oldest segment is reclaimed whole. `bits` = 0 gives pure FIFO (drop all);
// bits >= 1 gives k-bit CLOCK with RIPQ-style re-append of referenced
// objects.
class LogFlashCache : public FlashCache {
 public:
  LogFlashCache(size_t capacity_objects, size_t segment_objects, int bits);

  bool Access(ObjectId id) override;
  const FlashStats& stats() const override { return stats_; }
  const std::string& name() const override { return name_; }

  size_t resident() const { return index_.size(); }

 private:
  struct Entry {
    uint8_t counter = 0;
    uint64_t generation = 0;  // identifies the live log copy
  };
  struct Slot {
    ObjectId id;
    uint64_t generation;
  };

  void ReclaimOldest();
  void Append(ObjectId id, uint8_t counter);

  std::string name_;
  size_t capacity_;
  size_t segment_objects_;
  uint8_t max_counter_;
  FlashStats stats_;

  std::deque<std::vector<Slot>> segments_;  // front = oldest sealed
  std::vector<Slot> open_segment_;
  std::unordered_map<ObjectId, Entry> index_;
  uint64_t next_generation_ = 0;
};

// LRU-on-flash: logical LRU eviction punches holes in segments; space is
// reclaimed by greedy GC (segment with the fewest live objects), which
// re-appends live-and-not-evicted objects. This is the design the paper
// says flash caches avoid.
class LruFlashCache : public FlashCache {
 public:
  LruFlashCache(size_t capacity_objects, size_t segment_objects);

  bool Access(ObjectId id) override;
  const FlashStats& stats() const override { return stats_; }
  const std::string& name() const override { return name_; }

  size_t resident() const { return index_.size(); }

 private:
  struct Slot {
    ObjectId id;
    uint64_t generation;
  };
  struct Segment {
    std::vector<Slot> slots;  // written copies; holes tracked via live count
    size_t live = 0;
    bool sealed = false;
  };
  struct Entry {
    size_t segment;
    uint64_t generation;  // identifies the live copy
    std::list<ObjectId>::iterator lru_position;
  };

  uint64_t AppendToOpen(ObjectId id);  // returns the copy generation
  void EvictLogicalLru();
  void GarbageCollectIfNeeded();

  std::string name_;
  size_t capacity_;
  size_t segment_objects_;
  FlashStats stats_;

  std::vector<std::unique_ptr<Segment>> segments_;
  size_t open_segment_ = 0;
  size_t flash_slots_used_ = 0;  // live + dead slots across sealed+open
  std::list<ObjectId> mru_list_;  // front = MRU
  std::unordered_map<ObjectId, Entry> index_;
  uint64_t next_generation_ = 0;
};

// Exact LRU on a strictly-sequential log (RIPQ's exact mode, FAST'15):
// reclaim always takes the oldest segment, and every object that LRU wants
// to keep — i.e. every live object, since live means "within the retained
// LRU prefix" — must be re-appended at the head. Hot objects are thus
// rewritten once per device lap, which is the write amplification §2's
// sources attribute to LRU-family policies on flash. (Contrast with
// LruFlashCache's greedy hole-collecting GC, which is cheaper but gives up
// sequential-only writes.)
class RipqLruFlashCache : public FlashCache {
 public:
  RipqLruFlashCache(size_t capacity_objects, size_t segment_objects);

  bool Access(ObjectId id) override;
  const FlashStats& stats() const override { return stats_; }
  const std::string& name() const override { return name_; }

  size_t resident() const { return index_.size(); }

 private:
  struct Slot {
    ObjectId id;
    uint64_t generation;
  };
  struct Entry {
    uint64_t generation;
    std::list<ObjectId>::iterator lru_position;
  };

  void Append(ObjectId id);
  void ReclaimOldest();

  std::string name_;
  size_t capacity_;
  size_t segment_objects_;
  size_t device_slots_;
  size_t slots_used_ = 0;
  FlashStats stats_;

  std::deque<std::vector<Slot>> segments_;  // front = oldest sealed
  std::vector<Slot> open_segment_;
  std::list<ObjectId> mru_list_;  // front = MRU
  std::unordered_map<ObjectId, Entry> index_;
  uint64_t next_generation_ = 0;
};

// QD-LP-FIFO on flash: a small probation log + main CLOCK log, each
// segment-structured; the ghost is RAM metadata (free).
class QdLpFlashCache : public FlashCache {
 public:
  QdLpFlashCache(size_t capacity_objects, size_t segment_objects,
                 double probation_fraction = 0.10);

  bool Access(ObjectId id) override;
  const FlashStats& stats() const override { return stats_; }
  const std::string& name() const override { return name_; }

 private:
  // Both queues are deque-modelled logs; per-object reclaim produces the
  // same write counts as per-segment reclaim for FIFO-family designs, so
  // segment granularity only shows up in the (coarse) erase statistic.
  struct Entry {
    bool in_probation;
    uint8_t counter;  // probation: accessed bit; main: CLOCK counter
  };

  void ReclaimProbation();
  void ReclaimMain();

  std::string name_;
  size_t probation_capacity_;
  size_t main_capacity_;
  size_t segment_objects_;
  FlashStats stats_;

  std::deque<ObjectId> probation_;
  std::deque<ObjectId> main_;
  std::unordered_map<ObjectId, Entry> index_;
  std::deque<ObjectId> ghost_fifo_;
  std::unordered_map<ObjectId, uint64_t> ghost_live_;  // id -> unused marker
  uint64_t ghost_generation_ = 0;
};

}  // namespace qdlp

#endif  // QDLP_SRC_FLASH_FLASH_MODEL_H_
