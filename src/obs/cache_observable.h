// CacheObservable — the shared observational interface of both cache
// hierarchies.
//
// EvictionPolicy (sequential) and ConcurrentCache (thread-safe) had drifted
// into incompatible observational APIs: `std::string name()` vs
// `const char* name()`, listener hooks on one side only, ApproxMetadataBytes
// duplicated. This interface is the single vocabulary: anything that caches
// can report its name, capacity, a CacheStats snapshot, its metadata
// footprint, and validate its own invariants — which is exactly what the
// bench JSON writer, the differential harness, and the stats report consume,
// without caring which hierarchy the cache came from.

#ifndef QDLP_SRC_OBS_CACHE_OBSERVABLE_H_
#define QDLP_SRC_OBS_CACHE_OBSERVABLE_H_

#include <cstddef>
#include <string_view>

#include "src/obs/cache_stats.h"

namespace qdlp {

class CacheObservable {
 public:
  virtual ~CacheObservable() = default;

  // Stable policy/cache label ("lru", "concurrent-s3fifo", ...). The view
  // is valid for the lifetime of the cache object.
  virtual std::string_view name() const = 0;

  // Number of objects the cache may hold.
  virtual size_t capacity() const = 0;

  // Coherent snapshot of the telemetry counters and current occupancy.
  // Sequential policies read plain counters; concurrent caches sum striped
  // relaxed atomics and take the (cold) eviction lock for the occupancy
  // fields, so this is safe to call concurrently with the hit path.
  virtual CacheStats Stats() const = 0;

  // Approximate bytes of eviction metadata currently held (slabs, index
  // tables, ghost entries — not cached data). Purely observational: the
  // throughput benches divide it by capacity for the bytes/object column in
  // BENCH_throughput.json (see docs/PERFORMANCE.md). 0 = not instrumented.
  virtual size_t ApproxMetadataBytes() const { return 0; }

  // Validates internal invariants (queue/index consistency, occupancy
  // accounting, ghost/resident disjointness, counter consistency) with
  // QDLP_CHECK, aborting on violation. O(size) — test/debug machinery, not
  // a hot-path operation. Non-const because concurrent caches take their
  // operational locks (and drain buffered misses) to get a stable view.
  virtual void CheckInvariants() {}
};

}  // namespace qdlp

#endif  // QDLP_SRC_OBS_CACHE_OBSERVABLE_H_
