// Striped telemetry counters for the concurrent caches.
//
// The concurrent hit paths are lock-free by design (one striped-index probe
// plus one relaxed RMW); always-on stats must not reintroduce a shared
// contended cache line. Counters are therefore striped into cache-line-sized
// cells indexed by the process-wide thread ordinal: each of the first
// kCells threads owns a cell exclusively, so its increments compile to a
// plain load/add/store of a relaxed atomic (no lock prefix, no line
// ping-pong). Threads beyond kCells share the cells and fall back to
// fetch_add — still relaxed, still wait-free.
//
// Snapshot() sums the cells with relaxed loads. Individual counters are
// exact (every increment lands); cross-counter relations are only exact at
// quiescent points, since a reader can observe a miss that has been counted
// whose admission has not happened yet (it may sit in an insert buffer).

#ifndef QDLP_SRC_OBS_CONCURRENT_COUNTERS_H_
#define QDLP_SRC_OBS_CONCURRENT_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/cache_stats.h"
#include "src/util/thread_ordinal.h"

namespace qdlp {

class ConcurrentStatsCounters {
 public:
  enum Counter : size_t {
    kHits = 0,
    kMisses,
    kInserts,
    kEvictions,
    kPromotions,
    kDemotions,
    kGhostHits,
    kNumCounters,
  };

  ConcurrentStatsCounters() : cells_(kCells) {}

  void Add(Counter which) {
    const uint32_t ordinal = ThreadOrdinal();
    std::atomic<uint64_t>& counter =
        cells_[ordinal & (kCells - 1)].v[which];
    if (ordinal < kCells) {
      // Exclusive cell: the ordinal is process-wide unique, so no other
      // thread writes this line. A relaxed load+store is one plain add.
      counter.store(counter.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    } else {
      // Shared cell (more threads than cells ever existed): atomic RMW.
      counter.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Sums the flow counters into a CacheStats (occupancy fields left 0 for
  // the owning cache to fill). requests = hits + misses.
  CacheStats Snapshot() const {
    CacheStats stats;
    for (const Cell& cell : cells_) {
      stats.hits += cell.v[kHits].load(std::memory_order_relaxed);
      stats.misses += cell.v[kMisses].load(std::memory_order_relaxed);
      stats.inserts += cell.v[kInserts].load(std::memory_order_relaxed);
      stats.evictions += cell.v[kEvictions].load(std::memory_order_relaxed);
      stats.promotions += cell.v[kPromotions].load(std::memory_order_relaxed);
      stats.demotions += cell.v[kDemotions].load(std::memory_order_relaxed);
      stats.ghost_hits += cell.v[kGhostHits].load(std::memory_order_relaxed);
    }
    stats.requests = stats.hits + stats.misses;
    return stats;
  }

  size_t MemoryBytes() const { return cells_.size() * sizeof(Cell); }

 private:
  // 64 cells x one 64-byte line: covers every realistic thread count with
  // exclusive cells in 4 KiB per cache.
  static constexpr size_t kCells = 64;
  static_assert((kCells & (kCells - 1)) == 0, "kCells must be a power of 2");

  struct alignas(64) Cell {
    std::atomic<uint64_t> v[kNumCounters] = {};
  };
  static_assert(sizeof(std::atomic<uint64_t>) * kNumCounters <= 64,
                "a cell must fit one cache line");

  std::vector<Cell> cells_;
};

}  // namespace qdlp

#endif  // QDLP_SRC_OBS_CONCURRENT_COUNTERS_H_
