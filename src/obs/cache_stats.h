// CacheStats — the one observational vocabulary every cache in the repo
// speaks, serial or concurrent.
//
// Production caches live or die by cheap, always-on telemetry (Caffeine's
// stats surface popularized this for W-TinyLFU), and the paper's own QD
// mechanism (§4) is invisible at runtime without it: whether a workload is
// being served by the probationary FIFO, resurrected through the ghost, or
// churning the main region is exactly the probation→main promotion rate and
// ghost-hit rate this struct exposes. Counters are populated by plain
// uint64_t increments in the sequential policies (EvictionPolicy) and by
// cache-line-padded relaxed atomics in the concurrent caches
// (concurrent_counters.h); Stats() on either hierarchy returns a coherent
// snapshot as this plain value type.

#ifndef QDLP_SRC_OBS_CACHE_STATS_H_
#define QDLP_SRC_OBS_CACHE_STATS_H_

#include <cstdint>

namespace qdlp {

struct CacheStats {
  // Flow counters, monotone over a cache's lifetime.
  uint64_t requests = 0;    // accesses observed (== hits + misses)
  uint64_t hits = 0;        // requests served from cache space
  uint64_t misses = 0;      // requests that were not (ghost hits included)
  uint64_t inserts = 0;     // admissions into cache space
  uint64_t evictions = 0;   // departures from cache space (user removals too)
  uint64_t promotions = 0;  // lazy promotions / reinsertions (probation→main,
                            //   CLOCK second chances, LRU move-to-front)
  uint64_t demotions = 0;   // quick demotions (probation→ghost)
  uint64_t ghost_hits = 0;  // misses whose id was remembered by a ghost

  // Occupancy snapshot, taken at Stats() time. The per-queue fields are 0
  // for policies without the corresponding region.
  uint64_t size = 0;            // objects currently holding cache space
  uint64_t probation_size = 0;  // small/probationary queue occupancy
  uint64_t main_size = 0;       // main region occupancy
  uint64_t ghost_size = 0;      // ghost (metadata-only) entries

  // Flow counters over the window since `before` was snapped (occupancy
  // fields stay as this snapshot's — occupancy is a level, not a flow).
  CacheStats DeltaSince(const CacheStats& before) const {
    CacheStats delta = *this;
    delta.requests -= before.requests;
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    delta.inserts -= before.inserts;
    delta.evictions -= before.evictions;
    delta.promotions -= before.promotions;
    delta.demotions -= before.demotions;
    delta.ghost_hits -= before.ghost_hits;
    return delta;
  }

  double hit_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
  double miss_ratio() const { return requests == 0 ? 0.0 : 1.0 - hit_ratio(); }
  // Fraction of misses that were ghost resurrections — how often quick
  // demotion threw away an object the workload still wanted.
  double ghost_hit_ratio() const {
    return misses == 0 ? 0.0
                       : static_cast<double>(ghost_hits) /
                             static_cast<double>(misses);
  }
  // Of the objects that left probation, the fraction that had proven reuse
  // and were promoted into the main region (the paper's §4 flow).
  double promotion_rate() const {
    const uint64_t departures = promotions + demotions;
    return departures == 0 ? 0.0
                           : static_cast<double>(promotions) /
                                 static_cast<double>(departures);
  }
};

}  // namespace qdlp

#endif  // QDLP_SRC_OBS_CACHE_STATS_H_
