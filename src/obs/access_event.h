// AccessEventSink — per-event observation hook for the sequential policies.
//
// Generalizes (and replaces) the old two-method EvictionListener: a sink
// sees the full event vocabulary of the paper's cache model — hit, miss,
// admission, eviction, lazy promotion, quick demotion, ghost resurrection —
// each stamped with the policy's logical clock (one tick per access).
//
// Cost contract: with no sink attached the Release hot path pays one
// predictable branch per event site (`sink_ != nullptr`, always false), so
// always-on stats stay free; with a sink attached every event is a virtual
// call, which is the price of per-event observation and why the simulator's
// residency accounting (src/sim/residency.h) is the intended kind of user,
// not production hot paths.
//
// Event order within one Access(): policy-internal events (insert, evict,
// promote, demote, ghost-hit) fire as the policy performs them; the
// terminal OnHit/OnMiss for the access fires last, after the policy has
// settled. All methods default to no-ops so sinks override only what they
// observe.
//
// The concurrent caches intentionally do NOT carry this hook: their hit
// path is lock-free and a per-hit virtual call would serialize exactly the
// cache line the design keeps private. They expose the same numbers through
// striped counters and Stats() instead (see docs/OBSERVABILITY.md).

#ifndef QDLP_SRC_OBS_ACCESS_EVENT_H_
#define QDLP_SRC_OBS_ACCESS_EVENT_H_

#include <cstdint>

#include "src/trace/trace.h"

namespace qdlp {

class AccessEventSink {
 public:
  virtual ~AccessEventSink() = default;

  // `id` was requested at logical time `time` and was resident.
  virtual void OnHit(ObjectId id, uint64_t time) {
    (void)id;
    (void)time;
  }
  // `id` was requested at logical time `time` and was not resident.
  virtual void OnMiss(ObjectId id, uint64_t time) {
    (void)id;
    (void)time;
  }
  // `id` was admitted into cache space.
  virtual void OnInsert(ObjectId id, uint64_t time) {
    (void)id;
    (void)time;
  }
  // `id` left cache space (eviction or user removal).
  virtual void OnEvict(ObjectId id, uint64_t time) {
    (void)id;
    (void)time;
  }
  // `id` was lazily promoted: probation→main, a CLOCK reinsertion/second
  // chance, or an LRU-family move-to-front. The object keeps its space.
  virtual void OnPromote(ObjectId id, uint64_t time) {
    (void)id;
    (void)time;
  }
  // `id` was quick-demoted out of probation (an OnEvict for the same id
  // follows from the same event site).
  virtual void OnDemote(ObjectId id, uint64_t time) {
    (void)id;
    (void)time;
  }
  // A miss for `id` matched a ghost entry (the subsequent admission goes
  // straight to the main region; OnInsert follows).
  virtual void OnGhostHit(ObjectId id, uint64_t time) {
    (void)id;
    (void)time;
  }
};

}  // namespace qdlp

#endif  // QDLP_SRC_OBS_ACCESS_EVENT_H_
